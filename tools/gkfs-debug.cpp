// gkfs-debug — decode the black box: postmortem crash reports and
// live flight-recorder dumps, rendered as a human-readable timeline.
//
//   gkfs-debug <postmortem-file> [--json]
//   gkfs-debug --live <hostfile> [--json]
//
// File mode parses a GEKKO-POSTMORTEM report written by a crashed (or
// SIGUSR2'd) gkfsd: header, backtrace, per-thread held locks, the
// in-flight RPC table, and the flight events correlated by trace id —
// events sharing a trace id are grouped so "what was trace 1a2b doing
// when the daemon died" is one block, not a grep. Live mode broadcasts
// the flight_dump RPC to every daemon in the hostfile and renders the
// merged rings the same way. --json emits a machine-readable document
// with the same content for tooling.
//
// Exit status: 0 on success, 1 on unreachable daemons / unreadable or
// unparseable report, 2 on usage errors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/flight_recorder.h"
#include "net/transport.h"
#include "proto/messages.h"
#include "rpc/engine.h"

namespace {

using gekko::flight::Event;
using gekko::flight::Postmortem;

/// JSON string escaping for the --json output (backtrace lines and
/// lock names are free-form text).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One flight event as a human line. The client op's a0 is a packed
/// ASCII tag; everything else renders numerically (a1 is the rpc id
/// for engine events, so resolve its name).
std::string format_event(const Event& e, std::uint64_t t0_ns) {
  char line[256];
  const double ms = (e.ts_ns - t0_ns) / 1e6;
  std::string detail;
  if (e.subsys == static_cast<std::uint8_t>(gekko::flight::Subsys::client)) {
    char tag[9];
    gekko::flight::untag(e.a0, tag);
    detail = std::string("op=") + tag;
  } else {
    char a0[32];
    std::snprintf(a0, sizeof(a0), "a0=%llx",
                  static_cast<unsigned long long>(e.a0));
    detail = a0;
    if (e.subsys ==
        static_cast<std::uint8_t>(gekko::flight::Subsys::engine)) {
      const std::string rpc = gekko::proto::rpc_name(
          static_cast<std::uint16_t>(e.a1));
      detail += " rpc=" + (rpc.empty() ? std::to_string(e.a1) : rpc);
    } else {
      detail += " a1=" + std::to_string(e.a1);
    }
  }
  std::snprintf(line, sizeof(line), "  %+12.3fms t%02u %s.%s %s", ms,
                e.thread, gekko::flight::subsys_name(e.subsys),
                gekko::flight::event_name(e.subsys, e.code), detail.c_str());
  return line;
}

std::string event_json(const Event& e) {
  std::ostringstream os;
  char tag[9];
  gekko::flight::untag(e.a0, tag);
  os << "{\"ts_ns\":" << e.ts_ns << ",\"thread\":" << e.thread
     << ",\"subsys\":\"" << gekko::flight::subsys_name(e.subsys)
     << "\",\"event\":\"" << gekko::flight::event_name(e.subsys, e.code)
     << "\",\"trace_id\":\"" << std::hex << e.trace_id << std::dec
     << "\",\"a0\":" << e.a0 << ",\"a1\":" << e.a1;
  if (e.subsys == static_cast<std::uint8_t>(gekko::flight::Subsys::client)) {
    os << ",\"tag\":\"" << json_escape(tag) << "\"";
  }
  os << "}";
  return os.str();
}

/// Trace-id-correlated timeline: untraced events first (background
/// activity), then one block per trace id, oldest trace first.
void print_timeline(const std::vector<Event>& events) {
  if (events.empty()) {
    std::printf("flight: no events recorded\n");
    return;
  }
  std::uint64_t t0 = events.front().ts_ns;
  for (const Event& e : events) t0 = std::min(t0, e.ts_ns);

  std::vector<const Event*> untraced;
  std::map<std::uint64_t, std::vector<const Event*>> by_trace;
  std::map<std::uint64_t, std::uint64_t> first_seen;  // trace -> min ts
  for (const Event& e : events) {
    if (e.trace_id == 0) {
      untraced.push_back(&e);
    } else {
      by_trace[e.trace_id].push_back(&e);
      auto [it, inserted] = first_seen.try_emplace(e.trace_id, e.ts_ns);
      if (!inserted && e.ts_ns < it->second) it->second = e.ts_ns;
    }
  }
  if (!untraced.empty()) {
    std::printf("background (no trace):\n");
    for (const Event* e : untraced) {
      std::printf("%s\n", format_event(*e, t0).c_str());
    }
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> order;  // (ts, id)
  order.reserve(first_seen.size());
  for (const auto& [id, ts] : first_seen) order.emplace_back(ts, id);
  std::sort(order.begin(), order.end());
  for (const auto& [ts, id] : order) {
    std::printf("trace %llx:\n", static_cast<unsigned long long>(id));
    for (const Event* e : by_trace[id]) {
      std::printf("%s\n", format_event(*e, t0).c_str());
    }
  }
}

int run_file_mode(const char* path, bool json) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "gkfs-debug: cannot read %s\n", path);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  auto pm = gekko::flight::parse_postmortem(text);
  if (!pm) {
    std::fprintf(stderr, "gkfs-debug: %s: %s\n", path,
                 pm.status().to_string().c_str());
    return 1;
  }

  if (json) {
    std::ostringstream os;
    os << "{\"signal\":" << pm->signal << ",\"signal_name\":\""
       << json_escape(pm->signal_name) << "\",\"node\":" << pm->node_id
       << ",\"pid\":" << pm->pid << ",\"time_ns\":" << pm->capture_ns
       << ",\"build\":\"" << json_escape(pm->build) << "\",\"complete\":"
       << (pm->complete ? "true" : "false");
    os << ",\"backtrace\":[";
    for (std::size_t i = 0; i < pm->backtrace.size(); ++i) {
      os << (i != 0 ? "," : "") << "\"" << json_escape(pm->backtrace[i])
         << "\"";
    }
    os << "],\"locks\":[";
    for (std::size_t i = 0; i < pm->locks.size(); ++i) {
      const auto& l = pm->locks[i];
      os << (i != 0 ? "," : "") << "{\"thread\":" << l.thread
         << ",\"name\":\"" << json_escape(l.name)
         << "\",\"rank\":" << l.rank << "}";
    }
    os << "],\"inflight\":[";
    for (std::size_t i = 0; i < pm->inflight.size(); ++i) {
      const auto& r = pm->inflight[i];
      const std::string rpc = gekko::proto::rpc_name(r.rpc_id);
      os << (i != 0 ? "," : "") << "{\"seq\":" << r.seq << ",\"rpc\":\""
         << (rpc.empty() ? std::to_string(r.rpc_id) : rpc)
         << "\",\"dest\":" << r.dest << ",\"trace_id\":\"" << std::hex
         << r.trace_id << std::dec << "\",\"start_ns\":" << r.start_ns
         << "}";
    }
    os << "],\"events\":[";
    for (std::size_t i = 0; i < pm->events.size(); ++i) {
      os << (i != 0 ? "," : "") << event_json(pm->events[i]);
    }
    os << "],\"log_tail\":[";
    for (std::size_t i = 0; i < pm->log_tail.size(); ++i) {
      os << (i != 0 ? "," : "") << "\"" << json_escape(pm->log_tail[i])
         << "\"";
    }
    os << "]}";
    std::printf("%s\n", os.str().c_str());
    return 0;
  }

  if (pm->signal != 0) {
    std::printf("postmortem: node %u pid %llu died with signal %d (%s)%s\n",
                pm->node_id, static_cast<unsigned long long>(pm->pid),
                pm->signal, pm->signal_name.c_str(),
                pm->complete ? "" : " [TRUNCATED REPORT]");
  } else {
    std::printf("live report: node %u pid %llu%s\n", pm->node_id,
                static_cast<unsigned long long>(pm->pid),
                pm->complete ? "" : " [TRUNCATED REPORT]");
  }
  if (!pm->build.empty()) std::printf("build: %s\n", pm->build.c_str());
  if (!pm->backtrace.empty()) {
    std::printf("\nbacktrace (%zu frames):\n", pm->backtrace.size());
    for (const auto& f : pm->backtrace) std::printf("  %s\n", f.c_str());
  }
  if (!pm->locks.empty()) {
    std::printf("\nheld locks:\n");
    for (const auto& l : pm->locks) {
      std::printf("  t%02u %s (rank %d)\n", l.thread, l.name.c_str(),
                  l.rank);
    }
  }
  if (!pm->inflight.empty()) {
    std::printf("\nin-flight rpcs:\n");
    for (const auto& r : pm->inflight) {
      const std::string rpc = gekko::proto::rpc_name(r.rpc_id);
      std::printf("  seq %llu %s -> node %u trace=%llx (begun %llu ns)\n",
                  static_cast<unsigned long long>(r.seq),
                  rpc.empty() ? std::to_string(r.rpc_id).c_str()
                              : rpc.c_str(),
                  r.dest, static_cast<unsigned long long>(r.trace_id),
                  static_cast<unsigned long long>(r.start_ns));
    }
  }
  std::printf("\nflight timeline (%zu events):\n", pm->events.size());
  print_timeline(pm->events);
  if (!pm->log_tail.empty()) {
    std::printf("\nlog tail (%zu lines):\n", pm->log_tail.size());
    for (const auto& l : pm->log_tail) std::printf("  %s\n", l.c_str());
  }
  return 0;
}

int run_live_mode(const char* hostfile, bool json) {
  auto fabric = gekko::net::make_fabric(hostfile, {});
  if (!fabric) {
    std::fprintf(stderr, "gkfs-debug: fabric: %s\n",
                 fabric.status().to_string().c_str());
    return 1;
  }
  gekko::rpc::EngineOptions eopts;
  eopts.name = "gkfs-debug";
  eopts.handler_threads = 1;
  eopts.rpc_timeout = std::chrono::milliseconds{2000};
  eopts.rpc_name = gekko::proto::rpc_name;
  gekko::rpc::Engine engine(**fabric, eopts);

  std::vector<Event> merged;
  std::size_t reachable = 0;
  bool first = true;
  if (json) std::printf("{\"nodes\":[");
  for (const auto id : (*fabric)->daemon_ids()) {
    auto r = engine.forward(
        id, gekko::proto::to_wire(gekko::proto::RpcId::flight_dump), {});
    if (!r) {
      std::fprintf(stderr, "gkfs-debug: node %u down (%s)\n", id,
                   r.status().to_string().c_str());
      continue;
    }
    auto resp = gekko::proto::FlightDumpResponse::decode(
        std::string_view(reinterpret_cast<const char*>(r->data()),
                         r->size()));
    if (!resp) {
      std::fprintf(stderr, "gkfs-debug: node %u bad response\n", id);
      continue;
    }
    ++reachable;
    const std::uint64_t dropped = resp->recorded > resp->events.size()
                                      ? resp->recorded - resp->events.size()
                                      : 0;
    if (json) {
      std::printf("%s{\"node\":%u,\"recorded\":%llu,\"dropped\":%llu,"
                  "\"events\":[",
                  first ? "" : ",", resp->node_id,
                  static_cast<unsigned long long>(resp->recorded),
                  static_cast<unsigned long long>(dropped));
      for (std::size_t i = 0; i < resp->events.size(); ++i) {
        std::printf("%s%s", i != 0 ? "," : "",
                    event_json(resp->events[i]).c_str());
      }
      std::printf("]}");
      first = false;
    } else {
      std::printf("node %u: %zu events (%llu recorded, %llu dropped to "
                  "wrap)\n",
                  resp->node_id, resp->events.size(),
                  static_cast<unsigned long long>(resp->recorded),
                  static_cast<unsigned long long>(dropped));
      merged.insert(merged.end(), resp->events.begin(), resp->events.end());
    }
  }
  if (json) std::printf("]}\n");
  if (reachable == 0) {
    std::fprintf(stderr, "gkfs-debug: no daemon reachable\n");
    return 1;
  }
  if (!json) {
    std::sort(merged.begin(), merged.end(),
              [](const Event& a, const Event& b) { return a.ts_ns < b.ts_ns; });
    print_timeline(merged);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* target = nullptr;
  bool live = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--live") {
      live = true;
    } else if (target == nullptr) {
      target = argv[i];
    } else {
      target = nullptr;
      break;
    }
  }
  if (target == nullptr) {
    std::fprintf(stderr,
                 "usage: gkfs-debug <postmortem-file> [--json]\n"
                 "       gkfs-debug --live <hostfile> [--json]\n");
    return 2;
  }
  return live ? run_live_mode(target, json) : run_file_mode(target, json);
}
