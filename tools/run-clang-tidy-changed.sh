#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy) over the C++ files changed on the
# current branch relative to the merge base with the default branch; falls
# back to the files touched by HEAD when there is no merge base (e.g. a
# fresh clone checked out at a single commit).
#
# Usage: run-clang-tidy-changed.sh [build-dir]
#   build-dir: directory containing compile_commands.json
#              (default: ./build)
#
# Exit codes:
#   0  clean (or nothing to check)
#   1  clang-tidy reported errors
#   77 clang-tidy unavailable -> callers (ctest SKIP_RETURN_CODE) treat
#      this as SKIPPED, not failed. The container image ships gcc only;
#      the bare-mutex/relaxed/blocking rules still run via gekko-lint.py.
set -u

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run-clang-tidy-changed: clang-tidy not found; skipping" >&2
  exit 77
fi
if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "run-clang-tidy-changed: no compile_commands.json in ${BUILD_DIR};" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 77
fi

cd "${REPO_ROOT}"

base="$(git merge-base origin/main HEAD 2>/dev/null \
        || git merge-base main HEAD 2>/dev/null \
        || true)"
if [ -n "${base}" ] && [ "${base}" != "$(git rev-parse HEAD)" ]; then
  changed="$(git diff --name-only --diff-filter=d "${base}" HEAD)"
else
  changed="$(git show --name-only --diff-filter=d --format= HEAD)"
fi

files=()
while IFS= read -r f; do
  case "$f" in
    src/*.cpp|src/*.cc) [ -f "$f" ] && files+=("$f") ;;
  esac
done <<< "${changed}"

if [ "${#files[@]}" -eq 0 ]; then
  echo "run-clang-tidy-changed: no changed C++ sources; nothing to do"
  exit 0
fi

echo "run-clang-tidy-changed: checking ${#files[@]} file(s)"
status=0
for f in "${files[@]}"; do
  echo "--- clang-tidy ${f}"
  clang-tidy -p "${BUILD_DIR}" --quiet "${f}" || status=1
done
exit "${status}"
