// gkfs-top — live per-node telemetry for a running GekkoFS deployment.
//
// Polls every daemon in the hostfile over the daemon_stat RPC and
// renders one table row per node: total ops served, per-interval RATES
// since the previous poll (ops/s, retries/s, timeouts/s, MB/s written
// and read), p50/p99 service latency of the busiest op, in-flight
// requests, and metadata volume. Rates are computed with the
// metrics_history helpers against the DAEMON's snapshot clock
// (captured_ns), so a daemon restart renders as rate 0, never as a
// negative spike. Unreachable daemons render as "down" instead of
// aborting the tool — exactly the situation an operator runs gkfs-top
// to diagnose.
//
//   gkfs-top <hostfile> [interval-seconds] [iterations]
//   gkfs-top <hostfile> --traces [K] [--chrome-trace out.json]
//
// interval-seconds defaults to 2 (0 = poll back-to-back); iterations
// defaults to 0 = run until interrupted. --traces switches to a
// one-shot trace view: drain every daemon's span ring (trace_dump),
// assemble cross-node causal trees, and print the K (default 10)
// slowest by end-to-end latency; --chrome-trace additionally writes
// Chrome Trace Event JSON for about://tracing / Perfetto.
#include <charconv>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/metrics_history.h"
#include "common/trace.h"
#include "net/transport.h"
#include "proto/messages.h"
#include "rpc/engine.h"

namespace {

bool parse_u32(const char* arg, std::uint32_t* out) {
  const char* last = arg + std::strlen(arg);
  const auto [ptr, ec] = std::from_chars(arg, last, *out);
  return ec == std::errc() && ptr == last && last != arg;
}

bool starts_with(const std::string& s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// The rpc.handler.<op>.latency histogram with the most samples — the
/// op dominating this daemon's load, whose tail is the one that
/// matters.
const gekko::metrics::HistogramStats* busiest_handler(
    const gekko::metrics::Snapshot& snap, std::string* op_name) {
  const gekko::metrics::HistogramStats* best = nullptr;
  for (const auto& [name, h] : snap.histograms) {
    if (!starts_with(name, "rpc.handler.") || !ends_with(name, ".latency")) {
      continue;
    }
    if (best == nullptr || h.count > best->count) {
      best = &h;
      *op_name = name.substr(std::strlen("rpc.handler."),
                             name.size() - std::strlen("rpc.handler.") -
                                 std::strlen(".latency"));
    }
  }
  return best;
}

std::int64_t total_inflight(const gekko::metrics::Snapshot& snap) {
  std::int64_t total = 0;
  for (const auto& [name, v] : snap.gauges) {
    if (starts_with(name, "rpc.handler.") && ends_with(name, ".inflight")) {
      total += v;
    }
  }
  return total;
}

/// One-shot --traces view: drain every daemon's span ring, assemble,
/// print the K slowest traces (and optionally the Chrome JSON).
int run_traces(gekko::rpc::Engine& engine,
               const std::vector<gekko::net::EndpointId>& daemons,
               std::size_t top_k, const char* chrome_out) {
  gekko::trace::Assembler assembler;
  std::size_t reachable = 0;
  for (const auto id : daemons) {
    auto r = engine.forward(
        id, gekko::proto::to_wire(gekko::proto::RpcId::trace_dump), {});
    if (!r) {
      std::printf("node %u: down\n", id);
      continue;
    }
    auto resp = gekko::proto::TraceDumpResponse::decode(
        std::string_view(reinterpret_cast<const char*>(r->data()),
                         r->size()));
    if (!resp) {
      std::printf("node %u: bad-response\n", id);
      continue;
    }
    ++reachable;
    assembler.add_spans(resp->spans, /*clock_offset_ns=*/0);
  }
  if (reachable == 0) {
    std::fprintf(stderr, "gkfs-top: no daemon reachable\n");
    return 1;
  }
  const auto trees = assembler.assemble();
  std::printf("%zu spans in %zu traces across %zu nodes\n",
              assembler.span_count(), trees.size(), reachable);
  if (chrome_out != nullptr) {
    const std::string json = gekko::trace::to_chrome_json(trees);
    std::ofstream out(chrome_out, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "gkfs-top: cannot write %s\n", chrome_out);
      return 1;
    }
    out << json;
    std::printf("wrote Chrome Trace JSON to %s\n", chrome_out);
  }
  for (const auto& tree : assembler.slowest(top_k)) {
    std::fputs(
        gekko::trace::format_trace(tree, gekko::proto::rpc_name).c_str(),
        stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* hostfile = nullptr;
  const char* chrome_out = nullptr;
  bool traces_mode = false;
  std::uint32_t top_k = 10;
  std::uint32_t interval = 2;
  std::uint32_t iterations = 0;
  std::uint32_t positional = 0;
  bool bad_args = false;
  for (int i = 1; i < argc && !bad_args; ++i) {
    const std::string arg = argv[i];
    if (arg == "--traces") {
      traces_mode = true;
      // Optional K operand.
      if (i + 1 < argc && parse_u32(argv[i + 1], &top_k)) ++i;
    } else if (arg == "--chrome-trace" && i + 1 < argc) {
      chrome_out = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      bad_args = true;
    } else if (positional == 0) {
      hostfile = argv[i];
      ++positional;
    } else if (positional == 1 && parse_u32(argv[i], &interval)) {
      ++positional;
    } else if (positional == 2 && parse_u32(argv[i], &iterations)) {
      ++positional;
    } else {
      bad_args = true;
    }
  }
  if (bad_args || hostfile == nullptr) {
    std::fprintf(stderr,
                 "usage: gkfs-top <hostfile> [interval-seconds] "
                 "[iterations]\n"
                 "       gkfs-top <hostfile> --traces [K] "
                 "[--chrome-trace out.json]\n");
    return 2;
  }

  // Client role: connect-only endpoint, no listener.
  auto fabric = gekko::net::make_fabric(hostfile, {});
  if (!fabric) {
    std::fprintf(stderr, "gkfs-top: fabric: %s\n",
                 fabric.status().to_string().c_str());
    return 1;
  }
  gekko::rpc::EngineOptions eopts;
  eopts.name = "gkfs-top";
  eopts.handler_threads = 1;
  eopts.rpc_timeout = std::chrono::milliseconds{2000};
  eopts.rpc_name = gekko::proto::rpc_name;
  gekko::rpc::Engine engine(**fabric, eopts);

  const auto daemons = (*fabric)->daemon_ids();
  if (traces_mode || chrome_out != nullptr) {
    return run_traces(engine, daemons, top_k, chrome_out);
  }
  // Previous poll per daemon, on that daemon's own snapshot clock —
  // rate_per_sec() then yields 0 (not a negative spike) across a
  // daemon restart, because both the counter and the clock reset.
  struct PrevSamples {
    gekko::metrics::SamplePoint ops, retries, timeouts, bytes_w, bytes_r;
    gekko::metrics::SamplePoint compact_in, stall_ms;
  };
  std::map<gekko::net::EndpointId, PrevSamples> prev;

  for (std::uint32_t iter = 0; iterations == 0 || iter < iterations;
       ++iter) {
    if (iter > 0 && interval > 0) {
      std::this_thread::sleep_for(std::chrono::seconds(interval));
    }
    std::printf(
        "%-5s %10s %9s %-14s %9s %9s %8s %8s %8s %9s %9s %9s %10s %9s\n",
        "node", "ops", "ops/s", "busiest-op", "p50(us)", "p99(us)",
        "inflight", "retry/s", "tmo/s", "MBw/s", "MBr/s", "meta",
        "compactM/s", "stallms/s");
    for (const auto id : daemons) {
      auto r = engine.forward(
          id, gekko::proto::to_wire(gekko::proto::RpcId::daemon_stat), {});
      if (!r) {
        std::printf("%-5u %s\n", id, "down");
        continue;
      }
      auto resp = gekko::proto::DaemonStatResponse::decode(
          std::string_view(reinterpret_cast<const char*>(r->data()),
                           r->size()));
      if (!resp) {
        std::printf("%-5u %s\n", id, "bad-response");
        continue;
      }
      auto snap = gekko::metrics::Snapshot::from_json(resp->metrics_json);
      if (!snap) {
        std::printf("%-5u %s\n", id, "bad-metrics");
        continue;
      }
      const std::uint64_t t = snap->captured_ns;
      auto point = [t](std::uint64_t v) {
        return gekko::metrics::SamplePoint{t, static_cast<std::int64_t>(v)};
      };
      PrevSamples cur;
      cur.ops = point(snap->counter_or("rpc.requests_handled"));
      cur.retries = point(snap->counter_or("rpc.retries"));
      cur.timeouts = point(snap->counter_or("rpc.timeouts"));
      cur.bytes_w = point(resp->bytes_written);
      cur.bytes_r = point(resp->bytes_read);
      cur.compact_in = point(
          static_cast<std::uint64_t>(snap->gauge_or("kv.compact.bytes_in")));
      cur.stall_ms = point(static_cast<std::uint64_t>(
          snap->gauge_or("kv.stall.foreground_ms")));

      double ops_s = 0.0;
      double retries_s = 0.0;
      double timeouts_s = 0.0;
      double mbw_s = 0.0;
      double mbr_s = 0.0;
      double compact_mbs = 0.0;
      double stall_ms_s = 0.0;
      if (auto it = prev.find(id); it != prev.end()) {
        using gekko::metrics::rate_per_sec;
        ops_s = rate_per_sec(it->second.ops, cur.ops);
        retries_s = rate_per_sec(it->second.retries, cur.retries);
        timeouts_s = rate_per_sec(it->second.timeouts, cur.timeouts);
        mbw_s = rate_per_sec(it->second.bytes_w, cur.bytes_w) /
                (1024.0 * 1024.0);
        mbr_s = rate_per_sec(it->second.bytes_r, cur.bytes_r) /
                (1024.0 * 1024.0);
        compact_mbs = rate_per_sec(it->second.compact_in, cur.compact_in) /
                      (1024.0 * 1024.0);
        stall_ms_s = rate_per_sec(it->second.stall_ms, cur.stall_ms);
      }
      prev[id] = cur;

      std::string op = "-";
      const auto* h = busiest_handler(*snap, &op);
      const double p50_us = h ? static_cast<double>(h->p50) / 1000.0 : 0.0;
      const double p99_us = h ? static_cast<double>(h->p99) / 1000.0 : 0.0;

      std::printf("%-5u %10" PRIu64 " %9.1f %-14s %9.1f %9.1f %8" PRId64
                  " %8.1f %8.1f %9.1f %9.1f %9" PRIu64 " %10.1f %9.1f\n",
                  id, static_cast<std::uint64_t>(cur.ops.value), ops_s,
                  op.c_str(), p50_us, p99_us, total_inflight(*snap),
                  retries_s, timeouts_s, mbw_s, mbr_s,
                  resp->metadata_entries, compact_mbs, stall_ms_s);
    }
    std::fflush(stdout);
  }
  return 0;
}
