// gkfs-top — live per-node telemetry for a running GekkoFS deployment.
//
// Polls every daemon in the hostfile over the daemon_stat RPC and
// renders one table row per node: total ops served, ops/s since the
// previous poll, p50/p99 service latency of the busiest op, in-flight
// requests, retry/timeout counters, and data/metadata volume.
// Unreachable daemons render as "down" instead of aborting the tool —
// exactly the situation an operator runs gkfs-top to diagnose.
//
//   gkfs-top <hostfile> [interval-seconds] [iterations]
//
// interval-seconds defaults to 2 (0 = poll back-to-back); iterations
// defaults to 0 = run until interrupted.
#include <charconv>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>

#include "common/metrics.h"
#include "net/socket_fabric.h"
#include "proto/messages.h"
#include "rpc/engine.h"

namespace {

bool parse_u32(const char* arg, std::uint32_t* out) {
  const char* last = arg + std::strlen(arg);
  const auto [ptr, ec] = std::from_chars(arg, last, *out);
  return ec == std::errc() && ptr == last && last != arg;
}

bool starts_with(const std::string& s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// The rpc.handler.<op>.latency histogram with the most samples — the
/// op dominating this daemon's load, whose tail is the one that
/// matters.
const gekko::metrics::HistogramStats* busiest_handler(
    const gekko::metrics::Snapshot& snap, std::string* op_name) {
  const gekko::metrics::HistogramStats* best = nullptr;
  for (const auto& [name, h] : snap.histograms) {
    if (!starts_with(name, "rpc.handler.") || !ends_with(name, ".latency")) {
      continue;
    }
    if (best == nullptr || h.count > best->count) {
      best = &h;
      *op_name = name.substr(std::strlen("rpc.handler."),
                             name.size() - std::strlen("rpc.handler.") -
                                 std::strlen(".latency"));
    }
  }
  return best;
}

std::int64_t total_inflight(const gekko::metrics::Snapshot& snap) {
  std::int64_t total = 0;
  for (const auto& [name, v] : snap.gauges) {
    if (starts_with(name, "rpc.handler.") && ends_with(name, ".inflight")) {
      total += v;
    }
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: gkfs-top <hostfile> [interval-seconds] "
                 "[iterations]\n");
    return 2;
  }
  std::uint32_t interval = 2;
  std::uint32_t iterations = 0;
  if (argc > 2 && !parse_u32(argv[2], &interval)) {
    std::fprintf(stderr, "gkfs-top: bad interval '%s'\n", argv[2]);
    return 2;
  }
  if (argc > 3 && !parse_u32(argv[3], &iterations)) {
    std::fprintf(stderr, "gkfs-top: bad iterations '%s'\n", argv[3]);
    return 2;
  }

  // Client role: connect-only endpoint, no listener.
  auto fabric = gekko::net::SocketFabric::create(
      argv[1], gekko::net::SocketFabricOptions{});
  if (!fabric) {
    std::fprintf(stderr, "gkfs-top: fabric: %s\n",
                 fabric.status().to_string().c_str());
    return 1;
  }
  gekko::rpc::EngineOptions eopts;
  eopts.name = "gkfs-top";
  eopts.handler_threads = 1;
  eopts.rpc_timeout = std::chrono::milliseconds{2000};
  eopts.rpc_name = gekko::proto::rpc_name;
  gekko::rpc::Engine engine(**fabric, eopts);

  const auto daemons = (*fabric)->daemon_ids();
  std::map<gekko::net::EndpointId, std::uint64_t> prev_ops;

  for (std::uint32_t iter = 0; iterations == 0 || iter < iterations;
       ++iter) {
    if (iter > 0 && interval > 0) {
      std::this_thread::sleep_for(std::chrono::seconds(interval));
    }
    std::printf(
        "%-5s %10s %9s %-14s %9s %9s %8s %8s %8s %10s %10s %9s\n", "node",
        "ops", "ops/s", "busiest-op", "p50(us)", "p99(us)", "inflight",
        "retries", "timeouts", "MB-written", "MB-read", "meta");
    for (const auto id : daemons) {
      auto r = engine.forward(
          id, gekko::proto::to_wire(gekko::proto::RpcId::daemon_stat), {});
      if (!r) {
        std::printf("%-5u %s\n", id, "down");
        continue;
      }
      auto resp = gekko::proto::DaemonStatResponse::decode(
          std::string_view(reinterpret_cast<const char*>(r->data()),
                           r->size()));
      if (!resp) {
        std::printf("%-5u %s\n", id, "bad-response");
        continue;
      }
      auto snap = gekko::metrics::Snapshot::from_json(resp->metrics_json);
      if (!snap) {
        std::printf("%-5u %s\n", id, "bad-metrics");
        continue;
      }
      const std::uint64_t ops = snap->counter_or("rpc.requests_handled");
      double ops_s = 0.0;
      if (auto it = prev_ops.find(id);
          it != prev_ops.end() && interval > 0 && ops >= it->second) {
        ops_s = static_cast<double>(ops - it->second) /
                static_cast<double>(interval);
      }
      prev_ops[id] = ops;

      std::string op = "-";
      const auto* h = busiest_handler(*snap, &op);
      const double p50_us = h ? static_cast<double>(h->p50) / 1000.0 : 0.0;
      const double p99_us = h ? static_cast<double>(h->p99) / 1000.0 : 0.0;

      std::printf("%-5u %10" PRIu64 " %9.1f %-14s %9.1f %9.1f %8" PRId64
                  " %8" PRIu64 " %8" PRIu64 " %10.1f %10.1f %9" PRIu64 "\n",
                  id, ops, ops_s, op.c_str(), p50_us, p99_us,
                  total_inflight(*snap), snap->counter_or("rpc.retries"),
                  snap->counter_or("rpc.timeouts"),
                  static_cast<double>(resp->bytes_written) / (1024.0 * 1024.0),
                  static_cast<double>(resp->bytes_read) / (1024.0 * 1024.0),
                  resp->metadata_entries);
    }
    std::fflush(stdout);
  }
  return 0;
}
