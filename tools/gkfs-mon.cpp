// gkfs-mon — cluster health & rate aggregator for GekkoFS.
//
// Where gkfs-top renders per-node tables for a human, gkfs-mon answers
// the operator/CI questions: is every daemon alive, and what are the
// cluster-wide rates right now? Each iteration it
//  1) drives one synchronous heartbeat round through HeartbeatMonitor
//     (misses accumulate deterministically — N iterations = N probes,
//     which is what makes --alert usable in CI),
//  2) drains every reachable daemon's metric_history rings and derives
//     per-second rates from the newest sample pairs (daemon-side
//     clocks, so daemon restarts read as rate 0, not negative spikes),
//  3) remembers each reachable daemon's newest flight-recorder event,
//     so a node that later goes dead still shows what it was last seen
//     doing (the black box survives in the monitor's memory even when
//     the daemon itself is gone),
//  4) renders a table, or a JSON document with --json.
//
//   gkfs-mon <hostfile> [interval-seconds] [iterations] [--json]
//            [--alert <rule>]... [--suspect-after N] [--dead-after N]
//            [--probe-timeout-ms T] [--transport auto|uds|tcp]
//
// interval defaults to 1 s (0 = back-to-back), iterations to 0 = run
// until interrupted (--alert or --json usually pair with a finite
// count).
//
// --alert fires on the FINAL iteration's cluster values; any fired
// rule exits 3 (CI gates on the exit code). Rule grammar:
//   <key><op><value>   op ∈ {>,>=,<,<=,==,!=}
// keys: alive, suspect, dead, ops_per_sec, retries_per_sec,
//       slow_ops_per_sec, fd_cache_miss_per_sec
// e.g. --alert 'dead>0' --alert 'retries_per_sec>100'
#include <charconv>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/flight_recorder.h"
#include "common/health.h"
#include "common/metrics_history.h"
#include "net/transport.h"
#include "proto/messages.h"
#include "rpc/engine.h"
#include "rpc/heartbeat.h"

namespace {

using gekko::metrics::SamplePoint;
using gekko::metrics::rate_per_sec;

bool parse_u32(const char* arg, std::uint32_t* out) {
  const char* last = arg + std::strlen(arg);
  const auto [ptr, ec] = std::from_chars(arg, last, *out);
  return ec == std::errc() && ptr == last && last != arg;
}

// ---------- alert rules ----------

struct AlertRule {
  std::string key;
  std::string op;  // > >= < <= == !=
  double threshold = 0.0;
  std::string text;  // original, for reporting

  [[nodiscard]] bool fires(double v) const {
    if (op == ">") return v > threshold;
    if (op == ">=") return v >= threshold;
    if (op == "<") return v < threshold;
    if (op == "<=") return v <= threshold;
    if (op == "==") return v == threshold;
    if (op == "!=") return v != threshold;
    return false;
  }
};

std::optional<AlertRule> parse_alert(const std::string& text) {
  // Longest operators first so ">=" never parses as ">" + "=0".
  static const char* kOps[] = {">=", "<=", "==", "!=", ">", "<"};
  for (const char* op : kOps) {
    const std::size_t pos = text.find(op);
    if (pos == std::string::npos || pos == 0) continue;
    AlertRule rule;
    rule.key = text.substr(0, pos);
    rule.op = op;
    rule.text = text;
    const std::string value = text.substr(pos + std::strlen(op));
    char* end = nullptr;
    rule.threshold = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') return std::nullopt;
    return rule;
  }
  return std::nullopt;
}

// ---------- rate extraction ----------

/// Newest sample of `family` in one daemon's drained history.
std::optional<SamplePoint> newest_sample(
    const gekko::proto::MetricHistoryResponse& hist,
    const std::string& family) {
  for (const auto& f : hist.families) {
    if (f.name != family) continue;
    if (f.samples.empty()) return std::nullopt;
    return SamplePoint{f.samples.back().first, f.samples.back().second};
  }
  return std::nullopt;
}

/// Per-second rate of `family` on one daemon: from the ring's newest
/// sample pair when the sampler has two, else from this tool's
/// previous poll (`prev`, updated in place) — so rates work even with
/// GEKKO_SAMPLE_MS=0 as long as gkfs-mon itself polls twice.
double family_rate(const gekko::proto::MetricHistoryResponse& hist,
                   const std::string& family,
                   std::map<std::string, SamplePoint>& prev) {
  double rate = 0.0;
  std::optional<SamplePoint> latest;
  for (const auto& f : hist.families) {
    if (f.name != family) continue;
    if (!f.samples.empty()) {
      latest = SamplePoint{f.samples.back().first, f.samples.back().second};
    }
    if (f.samples.size() >= 2) {
      const auto& a = f.samples[f.samples.size() - 2];
      const auto& b = f.samples.back();
      rate = rate_per_sec(SamplePoint{a.first, a.second},
                          SamplePoint{b.first, b.second});
    }
    break;
  }
  if (latest.has_value()) {
    if (rate == 0.0) {
      if (auto it = prev.find(family); it != prev.end()) {
        rate = rate_per_sec(it->second, *latest);
      }
    }
    prev[family] = *latest;
  }
  return rate;
}

// ---------- last-seen flight events ----------

/// One remembered flight event per daemon: what the node was doing the
/// last time gkfs-mon could still talk to it. Kept across iterations so
/// a dead node's row can answer "last seen doing X".
struct LastSeen {
  gekko::flight::Event event;
  bool valid = false;
};

/// "kv.compaction" / "client.op(creat)" — same naming the flight
/// recorder uses, compact enough for a table cell.
std::string describe_event(const gekko::flight::Event& e) {
  std::string out = gekko::flight::subsys_name(e.subsys);
  out += '.';
  out += gekko::flight::event_name(e.subsys, e.code);
  if (e.subsys == static_cast<std::uint8_t>(gekko::flight::Subsys::client) &&
      e.code == gekko::flight::ev::client_op) {
    char tag[9];
    gekko::flight::untag(e.a0, tag);
    out += '(';
    out += tag;
    out += ')';
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* hostfile = nullptr;
  std::uint32_t interval = 1;
  std::uint32_t iterations = 0;
  std::uint32_t suspect_after = 2;
  std::uint32_t dead_after = 4;
  std::uint32_t probe_timeout_ms = 250;
  bool json = false;
  std::vector<AlertRule> alerts;
  gekko::net::Transport transport = gekko::net::Transport::autodetect;
  std::uint32_t positional = 0;
  bool bad_args = false;
  for (int i = 1; i < argc && !bad_args; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--alert" && i + 1 < argc) {
      auto rule = parse_alert(argv[++i]);
      if (!rule.has_value()) {
        std::fprintf(stderr, "gkfs-mon: bad --alert rule '%s'\n", argv[i]);
        return 2;
      }
      alerts.push_back(std::move(*rule));
    } else if (arg == "--suspect-after" && i + 1 < argc &&
               parse_u32(argv[i + 1], &suspect_after)) {
      ++i;
    } else if (arg == "--dead-after" && i + 1 < argc &&
               parse_u32(argv[i + 1], &dead_after)) {
      ++i;
    } else if (arg == "--probe-timeout-ms" && i + 1 < argc &&
               parse_u32(argv[i + 1], &probe_timeout_ms)) {
      ++i;
    } else if (arg == "--transport" && i + 1 < argc) {
      auto parsed = gekko::net::parse_transport(argv[++i]);
      if (!parsed) {
        std::fprintf(stderr, "gkfs-mon: bad --transport value\n");
        return 2;
      }
      transport = *parsed;
    } else if (!arg.empty() && arg[0] == '-') {
      bad_args = true;
    } else if (positional == 0) {
      hostfile = argv[i];
      ++positional;
    } else if (positional == 1 && parse_u32(argv[i], &interval)) {
      ++positional;
    } else if (positional == 2 && parse_u32(argv[i], &iterations)) {
      ++positional;
    } else {
      bad_args = true;
    }
  }
  if (bad_args || hostfile == nullptr) {
    std::fprintf(
        stderr,
        "usage: gkfs-mon <hostfile> [interval-seconds] [iterations] "
        "[--json] [--alert <rule>]... [--suspect-after N] "
        "[--dead-after N] [--probe-timeout-ms T] "
        "[--transport auto|uds|tcp]\n");
    return 2;
  }

  gekko::net::MakeFabricOptions fopts;
  fopts.transport = transport;
  auto fabric = gekko::net::make_fabric(hostfile, fopts);
  if (!fabric) {
    std::fprintf(stderr, "gkfs-mon: fabric: %s\n",
                 fabric.status().to_string().c_str());
    return 1;
  }
  gekko::rpc::EngineOptions eopts;
  eopts.name = "gkfs-mon";
  eopts.handler_threads = 1;
  eopts.rpc_timeout = std::chrono::milliseconds{2000};
  eopts.rpc_name = gekko::proto::rpc_name;
  gekko::rpc::Engine engine(**fabric, eopts);
  const auto daemons = (*fabric)->daemon_ids();

  gekko::rpc::HeartbeatOptions hopts;
  hopts.interval_ms = 0;  // gkfs-mon drives rounds itself
  hopts.probe_timeout = std::chrono::milliseconds{probe_timeout_ms};
  hopts.thresholds = {suspect_after, dead_after};
  gekko::rpc::HeartbeatMonitor monitor(engine, daemons, hopts);

  // Per-daemon previous poll for the sampler-off rate fallback.
  std::map<gekko::net::EndpointId, std::map<std::string, SamplePoint>>
      prev_polls;
  // Per-daemon newest flight event, refreshed while the node is
  // reachable and retained after it dies ("last seen doing X").
  std::map<gekko::net::EndpointId, LastSeen> last_seen;
  static const std::string kFamilies[] = {
      "rpc.requests_handled", "rpc.retries", "trace.slow_ops",
      "storage.fd_cache.misses", "kv.compact.bytes_in",
      "kv.stall.foreground_ms"};
  constexpr std::size_t kNumFamilies =
      sizeof(kFamilies) / sizeof(kFamilies[0]);

  int exit_code = 0;
  for (std::uint32_t iter = 0; iterations == 0 || iter < iterations;
       ++iter) {
    if (iter > 0 && interval > 0) {
      std::this_thread::sleep_for(std::chrono::seconds(interval));
    }
    monitor.probe_now();

    // Drain histories; dead daemons simply contribute nothing.
    struct Row {
      gekko::net::EndpointId node;
      gekko::health::NodeHealth health;
      std::map<std::string, double> rates;
    };
    std::vector<Row> rows;
    double cluster_rate[kNumFamilies] = {};
    gekko::proto::MetricHistoryRequest hist_req{""};
    for (const auto id : daemons) {
      Row row;
      row.node = id;
      row.health = monitor.tracker().health_of(id);
      if (row.health.state != gekko::health::State::dead) {
        auto r = engine.forward(
            id, gekko::proto::to_wire(gekko::proto::RpcId::metric_history),
            hist_req.encode(),
            {}, std::chrono::milliseconds{probe_timeout_ms * 4});
        if (r.is_ok()) {
          auto hist = gekko::proto::MetricHistoryResponse::decode(
              std::string_view(reinterpret_cast<const char*>(r->data()),
                               r->size()));
          if (hist.is_ok()) {
            auto& prev = prev_polls[id];
            for (std::size_t f = 0; f < kNumFamilies; ++f) {
              const double rate = family_rate(*hist, kFamilies[f], prev);
              row.rates[kFamilies[f]] = rate;
              cluster_rate[f] += rate;
            }
          }
        }
        // Remember the node's newest flight event while we still can;
        // this is the forensic breadcrumb shown once the node is dead.
        auto fr = engine.forward(
            id, gekko::proto::to_wire(gekko::proto::RpcId::flight_dump),
            {}, {}, std::chrono::milliseconds{probe_timeout_ms * 4});
        if (fr.is_ok()) {
          auto dump = gekko::proto::FlightDumpResponse::decode(
              std::string_view(reinterpret_cast<const char*>(fr->data()),
                               fr->size()));
          if (dump.is_ok()) {
            const gekko::flight::Event* newest = nullptr;
            for (const auto& e : dump->events) {
              if (newest == nullptr || e.ts_ns >= newest->ts_ns) {
                newest = &e;
              }
            }
            if (newest != nullptr) {
              last_seen[id] = LastSeen{*newest, true};
            }
          }
        }
      }
      rows.push_back(std::move(row));
    }

    const std::size_t n_alive =
        monitor.tracker().count(gekko::health::State::alive);
    const std::size_t n_suspect =
        monitor.tracker().count(gekko::health::State::suspect);
    const std::size_t n_dead =
        monitor.tracker().count(gekko::health::State::dead);

    std::map<std::string, double> cluster;
    cluster["alive"] = static_cast<double>(n_alive);
    cluster["suspect"] = static_cast<double>(n_suspect);
    cluster["dead"] = static_cast<double>(n_dead);
    cluster["ops_per_sec"] = cluster_rate[0];
    cluster["retries_per_sec"] = cluster_rate[1];
    cluster["slow_ops_per_sec"] = cluster_rate[2];
    cluster["fd_cache_miss_per_sec"] = cluster_rate[3];
    cluster["compact_bytes_per_sec"] = cluster_rate[4];
    cluster["stall_ms_per_sec"] = cluster_rate[5];

    if (json) {
      std::string out = "{\"iteration\":" + std::to_string(iter) +
                        ",\"daemons\":[";
      bool first = true;
      for (const Row& row : rows) {
        if (!first) out += ',';
        first = false;
        out += "{\"node\":" + std::to_string(row.node) + ",\"state\":\"" +
               gekko::health::state_name(row.health.state) +
               "\",\"consecutive_misses\":" +
               std::to_string(row.health.consecutive_misses) +
               ",\"probes\":" + std::to_string(row.health.probes) +
               ",\"transitions\":" + std::to_string(row.health.transitions);
        if (auto ls = last_seen.find(row.node);
            ls != last_seen.end() && ls->second.valid) {
          out += ",\"last_seen\":\"" +
                 json_escape(describe_event(ls->second.event)) + "\"";
        }
        for (const auto& [family, rate] : row.rates) {
          out += ",\"" + json_escape(family) + "\":";
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.3f", rate);
          out += buf;
        }
        out += '}';
      }
      out += "],\"cluster\":{";
      first = true;
      for (const auto& [key, value] : cluster) {
        if (!first) out += ',';
        first = false;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f", value);
        out += "\"" + key + "\":" + buf;
      }
      out += "}}";
      std::printf("%s\n", out.c_str());
    } else {
      std::printf("%-5s %-8s %7s %7s %10s %9s %8s %9s %11s %9s  %s\n",
                  "node", "state", "misses", "probes", "ops/s", "retry/s",
                  "slow/s", "fdmiss/s", "compactB/s", "stallms/s",
                  "last-seen");
      for (const Row& row : rows) {
        auto rate_of = [&row](const char* family) {
          auto it = row.rates.find(family);
          return it == row.rates.end() ? 0.0 : it->second;
        };
        // The black-box breadcrumb only earns table space on dead
        // rows — for live nodes the rates already say what's going on.
        std::string doing;
        if (row.health.state == gekko::health::State::dead) {
          auto ls = last_seen.find(row.node);
          doing = (ls != last_seen.end() && ls->second.valid)
                      ? "last seen doing " + describe_event(ls->second.event)
                      : "last seen doing ?";
        }
        std::printf("%-5u %-8s %7u %7" PRIu64
                    " %10.1f %9.1f %8.1f %9.1f %11.1f %9.1f  %s\n",
                    row.node, gekko::health::state_name(row.health.state),
                    row.health.consecutive_misses, row.health.probes,
                    rate_of("rpc.requests_handled"), rate_of("rpc.retries"),
                    rate_of("trace.slow_ops"),
                    rate_of("storage.fd_cache.misses"),
                    rate_of("kv.compact.bytes_in"),
                    rate_of("kv.stall.foreground_ms"), doing.c_str());
      }
      std::printf("cluster: alive=%zu suspect=%zu dead=%zu ops/s=%.1f "
                  "retry/s=%.1f slow/s=%.1f fdmiss/s=%.1f "
                  "compactB/s=%.1f stallms/s=%.1f\n",
                  n_alive, n_suspect, n_dead, cluster["ops_per_sec"],
                  cluster["retries_per_sec"], cluster["slow_ops_per_sec"],
                  cluster["fd_cache_miss_per_sec"],
                  cluster["compact_bytes_per_sec"],
                  cluster["stall_ms_per_sec"]);
    }
    std::fflush(stdout);

    // Final iteration: evaluate the alert rules (CI gate).
    const bool last = iterations != 0 && iter + 1 == iterations;
    if (last) {
      for (const AlertRule& rule : alerts) {
        auto it = cluster.find(rule.key);
        if (it == cluster.end()) {
          std::fprintf(stderr, "gkfs-mon: alert '%s': unknown key '%s'\n",
                       rule.text.c_str(), rule.key.c_str());
          exit_code = 2;
          continue;
        }
        if (rule.fires(it->second)) {
          std::fprintf(stderr, "gkfs-mon: ALERT %s (value %.3f)\n",
                       rule.text.c_str(), it->second);
          exit_code = 3;
        }
      }
    }
  }
  return exit_code;
}
