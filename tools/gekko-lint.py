#!/usr/bin/env python3
"""gekko-lint: project concurrency invariants clang cannot express.

Run as `ctest -L lint` (or directly: tools/gekko-lint.py [repo-root]).
Exit 0 = clean, 1 = violations (printed one per line, grep-style).

Rules
-----
bare-mutex       std::mutex / std::shared_mutex / std::lock_guard /
                 std::unique_lock / std::scoped_lock /
                 std::condition_variable[_any] are forbidden in src/.
                 Use the annotated wrappers from
                 src/common/thread_annotations.h (gekko::Mutex,
                 LockGuard, UniqueLock, CondVar, ...), which carry
                 Clang Thread Safety capabilities and lockdep
                 instrumentation. Exempt: thread_annotations.h itself
                 and lockdep.{h,cpp} (the instrumentation layer), plus
                 any line tagged `// lint-ok: bare-mutex — <why>`.

relaxed          std::memory_order_relaxed is only allowed in files
                 that carry a `// relaxed-ok: <justification>` comment
                 explaining why relaxed ordering is sufficient.

blocking-in-net  sleep_for / sleep( / usleep( / nanosleep( in
                 src/net/ or src/rpc/ (fabric reader/acceptor threads,
                 engine progress/handler paths) must be tagged
                 `// blocking-ok: <why>` on the same line — a sleep on
                 a progress thread stalls every in-flight RPC.

include-hygiene  every header under src/ starts with #pragma once;
                 no file includes the same header twice; any file
                 using the GEKKO_* annotation macros or gekko lock
                 wrappers includes common/thread_annotations.h itself
                 (not via a transitive include that may go away).

metric-name      metric family names handed to Registry
                 counter()/gauge()/histogram() as full string literals
                 must be lowercase dot-separated
                 (`^[a-z0-9_]+(\\.[a-z0-9_]+)*$`) so the Prometheus
                 mangling (dots -> underscores, `gekko_` prefix) stays
                 collision-free and predictable. Additionally, the
                 `_bucket` histogram-series suffix may not appear in
                 string literals outside src/common/prometheus.* —
                 cumulative bucket series must come from prom::render(),
                 never be hand-rolled. Tag deliberate exceptions
                 `// metric-name-ok: <why>`.

batch-status     the BatchStatus wire enum (src/proto/messages.h) has
                 TWO conversion sites — batch_status_from_errc (daemon
                 encode) and batch_status_to_errc (client decode).
                 Every enumerator must appear in BOTH switch bodies:
                 an enumerator added to the enum but missing from one
                 side silently collapses that outcome to the io_error
                 catch-all on the wire.

status-discard   `(void)call(...)` in src/ silences the [[nodiscard]]
                 on Status/Result and must say why:
                 `// status-ignored-ok: <why>` on the same line or the
                 line directly above. Global-namespace calls
                 (`(void)::close(fd)`) are exempt — libc returns
                 errno-style ints, not Status, and the cast only mutes
                 -Wunused-result.

signal-safety    src/common/crash.cpp runs inside fatal-signal
                 handlers. Outside the region bracketed by the
                 `// crash-setup-begin` / `// crash-setup-end` marker
                 comments (install-time code, where anything goes), a
                 curated list of async-signal-UNSAFE constructs is
                 banned: allocation (malloc/free/new), stdio
                 formatting/streams (printf family, fopen, fflush),
                 std::string/std::vector/std::to_string, container
                 mutation (push_back/append/insert/resize), getenv,
                 GEKKO_LOG/log::write, and lock guards. Deliberate
                 exceptions tag the line `// signal-safe-ok: <why>`.
                 Both markers must be present exactly once.

span-name        span names handed to the tracer must be string
                 literals: TraceSpan::name stores the pointer, never a
                 copy, so a dynamically built name dangles once the
                 ring outlives the caller. Checked at Tracer record()
                 call sites (first argument must be a quoted literal)
                 and at trace::ScopedSpan / OpTrace construction sites
                 (the call must carry a literal). Forwarding helpers
                 that re-emit a literal received as a parameter tag the
                 line `// span-name-ok: <why>`.
"""

from __future__ import annotations

import os
import re
import sys

BARE_MUTEX = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard"
    r"|unique_lock|scoped_lock|shared_lock|condition_variable(_any)?)\b")
RELAXED = re.compile(r"\bmemory_order_relaxed\b")
BLOCKING = re.compile(r"\b(sleep_for|sleep\s*\(|usleep\s*\(|nanosleep\s*\()")
ANNOTATION_USE = re.compile(
    r"\bGEKKO_(GUARDED_BY|PT_GUARDED_BY|REQUIRES|REQUIRES_SHARED|ACQUIRE"
    r"|RELEASE|EXCLUDES|CAPABILITY|SCOPED_CAPABILITY)\b|"
    r"\b(gekko::)?(Mutex|SharedMutex|LockGuard|WriteLockGuard"
    r"|SharedLockGuard|UniqueLock|CondVar)\b")
INCLUDE = re.compile(r'^\s*#\s*include\s+["<]([^">]+)[">]')
# A discarded call result: `(void)` followed by a call expression.
# `::`-qualified callees (raw libc/syscalls) are exempt; a bare
# identifier, member access, or namespaced gekko call is not.
STATUS_DISCARD = re.compile(r"\(void\)\s*(?!::)[A-Za-z_](?:[\w.:]|->|\(\))*\(")
# A record() call on a tracer-ish receiver: `tracer.record(`,
# `tracer_->record(`, `engine_->tracer().record(`,
# `Tracer::global().record(`. Histogram/counter record() calls have
# non-tracer receivers and are not matched.
SPAN_RECORD = re.compile(
    r"(?:\b[Tt]racer\w*(?:\(\))?(?:\.|->)|\bTracer::global\(\)\.)"
    r"record\s*\(")
# A ScopedSpan/OpTrace RAII span being constructed (named variable).
SPAN_SCOPED = re.compile(r"\b(?:ScopedSpan|OpTrace)\s+\w+\s*\(")
# A Registry intern call whose family name is one complete string
# literal (closed by `)` or `,`). Dynamically composed names
# (`"rpc.caller." + op + ".sent"`) are skipped: the literal is only a
# prefix. counter_or()/gauge_or() lookups don't match.
METRIC_INTERN = re.compile(
    r"\b(?:counter|gauge|histogram)\s*\(\s*\"([^\"]*)\"\s*[),]")
METRIC_NAME_OK = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")
BUCKET_LITERAL = re.compile(r'"[^"]*_bucket[^"]*"')
# prom::render()/parse() are the one implementation allowed to spell
# the histogram exposition suffixes.
BUCKET_EXEMPT = {
    "src/common/prometheus.h",
    "src/common/prometheus.cpp",
}

# The crash translation unit: everything outside its setup region must
# stay async-signal-safe (write/fsync/clock_gettime/sigaction-family
# plus the sfmt helpers only).
CRASH_FILE = "src/common/crash.cpp"
CRASH_SETUP_BEGIN = "// crash-setup-begin"
CRASH_SETUP_END = "// crash-setup-end"
SIGNAL_UNSAFE = re.compile(
    r"\b(malloc|calloc|realloc|free|printf|fprintf|sprintf|snprintf"
    r"|vsnprintf|puts|fputs|putchar|fopen|fclose|fflush|fwrite|fread"
    r"|getenv|setenv|exit|abort|syslog|backtrace_symbols"  # (not .._fd)
    r"|std::to_string|push_back|emplace_back|insert|resize|reserve"
    r")\s*\(|"
    r"\bnew\b|\bdelete\b|"
    r"\bstd::(string|vector|map|set|ostringstream|cout|cerr)\b|"
    r"\bGEKKO_(LOG|TRACE|DEBUG|INFO|WARN|ERROR)\b|"
    r"\b(LockGuard|UniqueLock|SharedLockGuard|WriteLockGuard)\b|"
    r"\blog::write\b")

# The instrumentation layer itself is the only place bare primitives
# may live.
BARE_MUTEX_EXEMPT = {
    "src/common/thread_annotations.h",
    "src/common/lockdep.h",
    "src/common/lockdep.cpp",
}

SOURCE_EXTS = (".h", ".hpp", ".cpp", ".cc")


def strip_strings(line: str) -> str:
    """Blank out string/char literals so tokens inside them don't match."""
    out, i, n, quote = [], 0, len(line), None
    while i < n:
        c = line[i]
        if quote:
            if c == "\\":
                i += 2
                continue
            if c == quote:
                quote = None
            i += 1
            continue
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def code_of(line: str) -> str:
    """The code part of a line: literals blanked, // comment removed."""
    s = strip_strings(line)
    cut = s.find("//")
    return s[:cut] if cut >= 0 else s


def comment_pos(line: str) -> int:
    """Index of the `//` starting a comment (quote-aware), or -1."""
    i, n, quote = 0, len(line), None
    while i < n:
        c = line[i]
        if quote:
            if c == "\\":
                i += 2
                continue
            if c == quote:
                quote = None
        elif c in "\"'":
            quote = c
        elif c == "/" and i + 1 < n and line[i + 1] == "/":
            return i
        i += 1
    return -1


def lint_file(root: str, rel: str, errors: list[str]) -> None:
    path = os.path.join(root, rel)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.readlines()
    except OSError as e:
        errors.append(f"{rel}: unreadable: {e}")
        return
    text = "".join(lines)
    is_header = rel.endswith((".h", ".hpp"))
    in_net_layer = rel.startswith(("src/net/", "src/rpc/"))
    has_relaxed_ok = "// relaxed-ok:" in text

    includes_seen: dict[str, int] = {}
    uses_annotations = False
    includes_thread_annotations = False
    saw_pragma_once = False
    saw_include_before_pragma = False
    is_crash_file = rel == CRASH_FILE
    in_crash_setup = False
    crash_markers = {CRASH_SETUP_BEGIN: 0, CRASH_SETUP_END: 0}

    for lineno, raw in enumerate(lines, 1):
        code = code_of(raw)

        if is_crash_file:
            if CRASH_SETUP_BEGIN in raw:
                crash_markers[CRASH_SETUP_BEGIN] += 1
                in_crash_setup = True
            elif CRASH_SETUP_END in raw:
                crash_markers[CRASH_SETUP_END] += 1
                in_crash_setup = False
            elif not in_crash_setup and "signal-safe-ok:" not in raw:
                m = SIGNAL_UNSAFE.search(code)
                if m:
                    errors.append(
                        f"{rel}:{lineno}: signal-safety: "
                        f"'{m.group(0).strip()}' is not async-signal-safe "
                        f"and this line is outside the crash-setup "
                        f"region (the fatal handler may run it); move it "
                        f"inside the markers or tag the line "
                        f"`// signal-safe-ok: <why>` — {raw.strip()}")

        m = INCLUDE.match(raw)
        if m:
            inc = m.group(1)
            if inc in includes_seen:
                errors.append(
                    f"{rel}:{lineno}: include-hygiene: duplicate #include "
                    f"\"{inc}\" (first at line {includes_seen[inc]})")
            else:
                includes_seen[inc] = lineno
            if inc == "common/thread_annotations.h":
                includes_thread_annotations = True
            if not saw_pragma_once:
                saw_include_before_pragma = True

        if re.match(r"^\s*#\s*pragma\s+once\b", raw):
            saw_pragma_once = True

        if ANNOTATION_USE.search(code):
            uses_annotations = True

        if BARE_MUTEX.search(code):
            if rel in BARE_MUTEX_EXEMPT or "lint-ok: bare-mutex" in raw:
                pass
            else:
                errors.append(
                    f"{rel}:{lineno}: bare-mutex: use the annotated "
                    f"wrappers from common/thread_annotations.h "
                    f"(gekko::Mutex/LockGuard/UniqueLock/CondVar) — "
                    f"{raw.strip()}")

        if STATUS_DISCARD.search(code) and \
                "status-ignored-ok:" not in raw and \
                "status-ignored-ok:" not in (lines[lineno - 2]
                                             if lineno >= 2 else ""):
            errors.append(
                f"{rel}:{lineno}: status-discard: (void)-casting a call "
                f"silences [[nodiscard]] on Status/Result; say why with "
                f"`// status-ignored-ok: <why>` on this line or the one "
                f"above — {raw.strip()}")

        if RELAXED.search(code) and not has_relaxed_ok:
            errors.append(
                f"{rel}:{lineno}: relaxed: memory_order_relaxed without a "
                f"file-level `// relaxed-ok: <justification>` comment")

        if "span-name-ok:" not in raw:
            m = SPAN_RECORD.search(code)
            if m and not code[m.end():].lstrip().startswith('"'):
                errors.append(
                    f"{rel}:{lineno}: span-name: tracer record() must be "
                    f"called with a string-literal span name (TraceSpan "
                    f"stores the pointer); tag forwarding helpers "
                    f"`// span-name-ok: <why>` — {raw.strip()}")
            m = SPAN_SCOPED.search(code)
            if m and '"' not in code[m.end():]:
                errors.append(
                    f"{rel}:{lineno}: span-name: ScopedSpan/OpTrace must "
                    f"be constructed with a string-literal span name — "
                    f"{raw.strip()}")

        if "metric-name-ok:" not in raw:
            # Comments stripped, literals kept: the name rules inspect
            # the literals themselves.
            cpos = comment_pos(raw)
            literal_code = raw[:cpos] if cpos >= 0 else raw
            for m in METRIC_INTERN.finditer(literal_code):
                name = m.group(1)
                if not METRIC_NAME_OK.match(name):
                    errors.append(
                        f"{rel}:{lineno}: metric-name: family '{name}' must "
                        f"be lowercase dot-separated "
                        f"([a-z0-9_]+(.[a-z0-9_]+)*); tag deliberate "
                        f"exceptions `// metric-name-ok: <why>`")
            if rel not in BUCKET_EXEMPT and \
                    BUCKET_LITERAL.search(literal_code):
                errors.append(
                    f"{rel}:{lineno}: metric-name: `_bucket` series must "
                    f"be produced by prom::render(), never hand-rolled "
                    f"(only src/common/prometheus.* may spell it); tag "
                    f"deliberate exceptions `// metric-name-ok: <why>` — "
                    f"{raw.strip()}")

        if in_net_layer and BLOCKING.search(code) and \
                "blocking-ok:" not in raw:
            errors.append(
                f"{rel}:{lineno}: blocking-in-net: sleep on a fabric/rpc "
                f"thread stalls every in-flight RPC; tag the line "
                f"`// blocking-ok: <why>` if it is genuinely off the "
                f"progress path — {raw.strip()}")

    if is_crash_file:
        for marker, count in crash_markers.items():
            if count != 1:
                errors.append(
                    f"{rel}:1: signal-safety: expected exactly one "
                    f"`{marker}` marker, found {count} — the rule cannot "
                    f"tell handler code from setup code without it")

    if is_header and not saw_pragma_once:
        errors.append(f"{rel}:1: include-hygiene: header missing #pragma once")
    if is_header and saw_pragma_once and saw_include_before_pragma:
        errors.append(
            f"{rel}:1: include-hygiene: #include before #pragma once")
    if uses_annotations and not includes_thread_annotations and \
            rel not in ("src/common/thread_annotations.h",):
        errors.append(
            f"{rel}:1: include-hygiene: uses thread-safety annotations or "
            f"gekko lock wrappers but does not include "
            f"common/thread_annotations.h directly")


BATCH_STATUS_FILE = "src/proto/messages.h"


def brace_body(text: str, start: int) -> str:
    """The text between the brace at `start` and its matching close."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[start + 1:i]
    return text[start + 1:]


def lint_batch_status(root: str, errors: list[str]) -> None:
    """Every BatchStatus enumerator appears in both conversion sites."""
    rel = BATCH_STATUS_FILE
    try:
        with open(os.path.join(root, rel), encoding="utf-8",
                  errors="replace") as f:
            text = f.read()
    except OSError as e:
        errors.append(f"{rel}: batch-status: unreadable: {e}")
        return
    enum_m = re.search(r"enum\s+class\s+BatchStatus[^{]*\{", text)
    if not enum_m:
        errors.append(f"{rel}: batch-status: enum class BatchStatus not "
                      f"found (rule needs updating if it moved)")
        return
    enum_body = brace_body(text, enum_m.end() - 1)
    decommented = " ".join(code_of(l) for l in enum_body.splitlines())
    enumerators = []
    for entry in decommented.split(","):
        name = entry.split("=")[0].strip()
        if name:
            enumerators.append(name)
    if not enumerators:
        errors.append(f"{rel}: batch-status: no enumerators parsed from "
                      f"BatchStatus")
        return
    for fn in ("batch_status_from_errc", "batch_status_to_errc"):
        fn_m = re.search(re.escape(fn) + r"\s*\([^)]*\)\s*\{", text)
        if not fn_m:
            errors.append(f"{rel}: batch-status: conversion function "
                          f"{fn}() not found")
            continue
        body = brace_body(text, fn_m.end() - 1)
        lineno = text[:fn_m.start()].count("\n") + 1
        for name in enumerators:
            if not re.search(r"\bBatchStatus::" + name + r"\b", body):
                errors.append(
                    f"{rel}:{lineno}: batch-status: enumerator "
                    f"BatchStatus::{name} is not handled in {fn}() — "
                    f"encode and decode sites must map every status "
                    f"explicitly or the outcome collapses to io_error")


def main(argv: list[str]) -> int:
    root = os.path.abspath(argv[1]) if len(argv) > 1 else os.getcwd()
    src = os.path.join(root, "src")
    if not os.path.isdir(src):
        print(f"gekko-lint: no src/ under {root}", file=sys.stderr)
        return 2

    errors: list[str] = []
    checked = 0
    for dirpath, _dirnames, filenames in sorted(os.walk(src)):
        for name in sorted(filenames):
            if not name.endswith(SOURCE_EXTS):
                continue
            rel = os.path.relpath(os.path.join(dirpath, name), root)
            rel = rel.replace(os.sep, "/")
            lint_file(root, rel, errors)
            checked += 1
    lint_batch_status(root, errors)

    for e in errors:
        print(e)
    print(f"gekko-lint: {checked} files checked, {len(errors)} violation(s)",
          file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
