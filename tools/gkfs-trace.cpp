// gkfs-trace — cross-node trace collector for a running GekkoFS
// deployment.
//
// Drains every daemon's span ring over the trace_dump RPC, merges the
// spans into causal trees (trace::Assembler) and prints the K slowest
// end-to-end traces with per-span timing, indented by parentage.
// --chrome-trace additionally writes Chrome Trace Event JSON for
// about://tracing / Perfetto, with one pid per node, one tid per
// recording thread, and flow arrows on the RPC edges.
//
//   gkfs-trace <hostfile> [--top K] [--chrome-trace out.json]
//
// The ring keeps the most recent spans only; traces whose interior
// spans were overwritten still render (orphans are adopted as roots),
// and the tool reports how many spans each daemon dropped.
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/trace.h"
#include "net/transport.h"
#include "proto/messages.h"
#include "rpc/engine.h"

namespace {

bool parse_size(const char* arg, std::size_t* out) {
  const char* last = arg + std::strlen(arg);
  const auto [ptr, ec] = std::from_chars(arg, last, *out);
  return ec == std::errc() && ptr == last && last != arg;
}

}  // namespace

int main(int argc, char** argv) {
  const char* hostfile = nullptr;
  const char* chrome_out = nullptr;
  std::size_t top_k = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--top" && i + 1 < argc) {
      if (!parse_size(argv[++i], &top_k)) {
        std::fprintf(stderr, "gkfs-trace: bad --top '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--chrome-trace" && i + 1 < argc) {
      chrome_out = argv[++i];
    } else if (hostfile == nullptr && !arg.empty() && arg[0] != '-') {
      hostfile = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: gkfs-trace <hostfile> [--top K] "
                   "[--chrome-trace out.json]\n");
      return 2;
    }
  }
  if (hostfile == nullptr) {
    std::fprintf(stderr,
                 "usage: gkfs-trace <hostfile> [--top K] "
                 "[--chrome-trace out.json]\n");
    return 2;
  }

  // Client role: connect-only endpoint, no listener.
  auto fabric = gekko::net::make_fabric(hostfile, {});
  if (!fabric) {
    std::fprintf(stderr, "gkfs-trace: fabric: %s\n",
                 fabric.status().to_string().c_str());
    return 1;
  }
  gekko::rpc::EngineOptions eopts;
  eopts.name = "gkfs-trace";
  eopts.handler_threads = 1;
  eopts.rpc_timeout = std::chrono::milliseconds{2000};
  eopts.rpc_name = gekko::proto::rpc_name;
  gekko::rpc::Engine engine(**fabric, eopts);

  gekko::trace::Assembler assembler;
  std::size_t reachable = 0;
  for (const auto id : (*fabric)->daemon_ids()) {
    auto r = engine.forward(
        id, gekko::proto::to_wire(gekko::proto::RpcId::trace_dump), {});
    if (!r) {
      std::fprintf(stderr, "gkfs-trace: node %u down (%s)\n", id,
                   r.status().to_string().c_str());
      continue;
    }
    auto resp = gekko::proto::TraceDumpResponse::decode(
        std::string_view(reinterpret_cast<const char*>(r->data()),
                         r->size()));
    if (!resp) {
      std::fprintf(stderr, "gkfs-trace: node %u bad response\n", id);
      continue;
    }
    ++reachable;
    // All gkfs processes on one host share CLOCK_MONOTONIC; on a
    // multi-host deployment capture_ns anchors a per-node offset.
    assembler.add_spans(resp->spans, /*clock_offset_ns=*/0);
    const std::uint64_t dropped =
        resp->recorded > resp->spans.size()
            ? resp->recorded - resp->spans.size()
            : 0;
    std::printf("node %u: %zu spans (%llu recorded, %llu dropped to wrap)\n",
                resp->node_id, resp->spans.size(),
                static_cast<unsigned long long>(resp->recorded),
                static_cast<unsigned long long>(dropped));
  }
  if (reachable == 0) {
    std::fprintf(stderr, "gkfs-trace: no daemon reachable\n");
    return 1;
  }

  const auto trees = assembler.assemble();
  std::printf("%zu spans in %zu traces\n", assembler.span_count(),
              trees.size());

  if (chrome_out != nullptr) {
    const std::string json = gekko::trace::to_chrome_json(trees);
    std::ofstream out(chrome_out, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "gkfs-trace: cannot write %s\n", chrome_out);
      return 1;
    }
    out << json;
    out.close();
    std::printf("wrote %zu bytes of Chrome Trace JSON to %s\n", json.size(),
                chrome_out);
  }

  const auto slowest = assembler.slowest(top_k);
  if (!slowest.empty()) {
    std::printf("\nslowest %zu traces:\n", slowest.size());
    for (const auto& tree : slowest) {
      std::fputs(gekko::trace::format_trace(tree, gekko::proto::rpc_name)
                     .c_str(),
                 stdout);
    }
  }
  return 0;
}
