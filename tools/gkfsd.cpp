// gkfsd — the GekkoFS daemon as a standalone process.
//
// This is the deployment unit of the paper: one daemon per node,
// started by the user at job begin (in parallel across nodes), torn
// down at job end. Daemons find each other — and clients find them —
// through a shared hostfile (here: Unix-domain socket paths; on a real
// cluster: Mercury addresses).
//
//   gkfsd <hostfile> <self-id> <data-root> [chunk-size-bytes]
//
// Runs until SIGINT/SIGTERM. All state (metadata KV, chunk files)
// lives under <data-root> and survives restarts.
#include <csignal>
#include <cstdio>
#include <cstdlib>

#include "daemon/daemon.h"
#include "net/socket_fabric.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: gkfsd <hostfile> <self-id> <data-root> "
                 "[chunk-size-bytes]\n");
    return 2;
  }
  const char* hostfile = argv[1];
  const auto self_id = static_cast<gekko::net::EndpointId>(
      std::strtoul(argv[2], nullptr, 10));
  const char* root = argv[3];

  gekko::net::SocketFabricOptions fopts;
  fopts.self_id = self_id;
  auto fabric = gekko::net::SocketFabric::create(hostfile, fopts);
  if (!fabric) {
    std::fprintf(stderr, "gkfsd: fabric: %s\n",
                 fabric.status().to_string().c_str());
    return 1;
  }

  gekko::daemon::DaemonOptions dopts;
  if (argc > 4) {
    dopts.chunk_size =
        static_cast<std::uint32_t>(std::strtoul(argv[4], nullptr, 10));
  }
  auto daemon = gekko::daemon::GekkoDaemon::start(**fabric, root, dopts);
  if (!daemon) {
    std::fprintf(stderr, "gkfsd: start: %s\n",
                 daemon.status().to_string().c_str());
    return 1;
  }
  if ((*daemon)->endpoint() != self_id) {
    std::fprintf(stderr, "gkfsd: endpoint registration failed\n");
    return 1;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::fprintf(stderr, "gkfsd: daemon %u serving (root=%s)\n", self_id,
               root);
  while (g_stop == 0) {
    ::usleep(100 * 1000);
  }
  std::fprintf(stderr, "gkfsd: daemon %u shutting down\n", self_id);
  (*daemon)->shutdown();
  return 0;
}
