// gkfsd — the GekkoFS daemon as a standalone process.
//
// This is the deployment unit of the paper: one daemon per node,
// started by the user at job begin (in parallel across nodes), torn
// down at job end. Daemons find each other — and clients find them —
// through a shared hostfile (here: Unix-domain socket paths; on a real
// cluster: Mercury addresses).
//
//   gkfsd <hostfile> <self-id> <data-root> [chunk-size-bytes]
//         [--io-threads <n>] [--transport auto|uds|tcp]
//         [--metrics-port <p>]
//
// --io-threads sizes the daemon's chunk-I/O pool (0 = serial in-handler
// I/O); the default matches DaemonOptions::io_threads.
//
// --transport picks the fabric: "uds" for Unix-domain sockets, "tcp"
// for TCP with the epoll event loop, "auto" (the default) sniffs the
// hostfile — "host:port" addresses mean TCP, socket paths mean UDS.
//
// --metrics-port enables the Prometheus /metrics HTTP endpoint on that
// TCP port (0 = pick an ephemeral port). The bound port is printed to
// stderr as "gkfsd: metrics-port <id> <port>". Sampler cadence comes
// from GEKKO_SAMPLE_MS (default 1000, 0 disables).
//
// Runs until SIGINT/SIGTERM. All state (metadata KV, chunk files)
// lives under <data-root> and survives restarts.
//
// SIGUSR1 dumps a metrics snapshot (JSON) to stderr without stopping
// the daemon; the same snapshot is dumped once at exit (both routed
// through the crash/report module, which also keeps the snapshot
// staged for postmortems). SIGUSR2 dumps a live flight-recorder
// report (locks, in-flight RPCs, recent events) to stderr — decode it
// with gkfs-debug. Fatal signals (SIGSEGV/SIGABRT/SIGBUS/SIGFPE/
// SIGILL) write a postmortem to $GEKKO_CRASH_DIR (stderr when unset)
// before the daemon dies. For live polling across nodes use gkfs-top,
// which reads the same data over the daemon_stat RPC.
#include <charconv>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/crash.h"
#include "daemon/daemon.h"
#include "net/transport.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_dump_metrics = 0;
volatile std::sig_atomic_t g_dump_flight = 0;

void handle_signal(int) { g_stop = 1; }

void handle_dump(int) { g_dump_metrics = 1; }

void handle_flight_dump(int) { g_dump_flight = 1; }

/// Strict decimal parse; rejects garbage and trailing junk ("12abc")
/// instead of silently running daemon 0 like strtoul would.
bool parse_u32(const char* arg, std::uint32_t* out) {
  const char* last = arg + std::strlen(arg);
  const auto [ptr, ec] = std::from_chars(arg, last, *out);
  return ec == std::errc() && ptr == last && last != arg;
}

}  // namespace

int main(int argc, char** argv) {
  // Split flags from positional arguments so --io-threads may appear
  // anywhere on the command line.
  std::vector<const char*> positional;
  bool have_io_threads = false;
  std::uint32_t io_threads = 0;
  bool have_metrics_port = false;
  std::uint32_t metrics_port = 0;
  gekko::net::Transport transport = gekko::net::Transport::autodetect;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--io-threads") == 0) {
      if (i + 1 >= argc || !parse_u32(argv[i + 1], &io_threads)) {
        std::fprintf(stderr, "gkfsd: bad --io-threads value\n");
        return 2;
      }
      have_io_threads = true;
      ++i;
    } else if (std::strcmp(argv[i], "--metrics-port") == 0) {
      if (i + 1 >= argc || !parse_u32(argv[i + 1], &metrics_port) ||
          metrics_port > 65535) {
        std::fprintf(stderr, "gkfsd: bad --metrics-port value\n");
        return 2;
      }
      have_metrics_port = true;
      ++i;
    } else if (std::strcmp(argv[i], "--transport") == 0) {
      auto parsed = i + 1 < argc
                        ? gekko::net::parse_transport(argv[i + 1])
                        : gekko::Result<gekko::net::Transport>(
                              gekko::Status{gekko::Errc::invalid_argument,
                                            "missing value"});
      if (!parsed) {
        std::fprintf(stderr, "gkfsd: bad --transport value\n");
        return 2;
      }
      transport = *parsed;
      ++i;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() < 3 || positional.size() > 4) {
    std::fprintf(stderr,
                 "usage: gkfsd <hostfile> <self-id> <data-root> "
                 "[chunk-size-bytes] [--io-threads <n>] "
                 "[--transport auto|uds|tcp] [--metrics-port <p>]\n");
    return 2;
  }
  const char* hostfile = positional[0];
  std::uint32_t self_id = 0;
  if (!parse_u32(positional[1], &self_id)) {
    std::fprintf(stderr, "gkfsd: bad self-id '%s'\n", positional[1]);
    return 2;
  }
  const char* root = positional[2];

  gekko::net::MakeFabricOptions fopts;
  fopts.self_id = self_id;
  fopts.transport = transport;
  auto fabric = gekko::net::make_fabric(hostfile, fopts);
  if (!fabric) {
    std::fprintf(stderr, "gkfsd: fabric: %s\n",
                 fabric.status().to_string().c_str());
    return 1;
  }

  gekko::daemon::DaemonOptions dopts;
  if (positional.size() > 3) {
    if (!parse_u32(positional[3], &dopts.chunk_size) ||
        dopts.chunk_size == 0) {
      std::fprintf(stderr, "gkfsd: bad chunk-size '%s'\n", positional[3]);
      return 2;
    }
  }
  if (have_io_threads) dopts.io_threads = io_threads;
  if (have_metrics_port) {
    dopts.metrics_http_port = static_cast<int>(metrics_port);
  }
  auto daemon = gekko::daemon::GekkoDaemon::start(**fabric, root, dopts);
  if (!daemon) {
    std::fprintf(stderr, "gkfsd: start: %s\n",
                 daemon.status().to_string().c_str());
    return 1;
  }
  if ((*daemon)->endpoint() != self_id) {
    std::fprintf(stderr, "gkfsd: endpoint registration failed\n");
    return 1;
  }
  if ((*daemon)->metrics_http_port() >= 0) {
    // Parsed by scrape configs and tests (resolves --metrics-port 0).
    std::fprintf(stderr, "gkfsd: metrics-port %u %d\n", self_id,
                 (*daemon)->metrics_http_port());
  }

  // Arm the black box: fatal signals write a postmortem (build info,
  // backtrace, held locks, in-flight RPCs, flight events, the staged
  // metrics snapshot, log tail) to $GEKKO_CRASH_DIR before dying.
  gekko::crash::InstallOptions crash_opts;
  crash_opts.node_id = self_id;
  crash_opts.build_info = "gkfsd";
  if (gekko::Status st = gekko::crash::install(crash_opts); !st.is_ok()) {
    std::fprintf(stderr, "gkfsd: crash reports disabled: %s\n",
                 st.to_string().c_str());
  }

  // One path for every metrics dump (SIGUSR1, exit): stage the
  // snapshot for crash postmortems, then emit the legacy stderr line.
  auto dump_metrics = [&] {
    const std::string json = (*daemon)->metrics_json();
    gekko::crash::publish_metrics_json(json);
    std::fprintf(stderr, "gkfsd: metrics %u %s\n", self_id, json.c_str());
  };

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGUSR1, handle_dump);
  std::signal(SIGUSR2, handle_flight_dump);
  std::fprintf(stderr, "gkfsd: daemon %u serving (root=%s)\n", self_id,
               root);
  while (g_stop == 0) {
    ::usleep(100 * 1000);
    if (g_dump_metrics != 0) {
      g_dump_metrics = 0;
      // Snapshot off the signal handler, on the main loop: the
      // handler only sets a flag (metrics_json allocates).
      dump_metrics();
    }
    if (g_dump_flight != 0) {
      g_dump_flight = 0;
      // Live black-box dump without killing the daemon.
      gekko::crash::publish_metrics_json((*daemon)->metrics_json());
      gekko::crash::write_live_report(2);
    }
  }
  std::fprintf(stderr, "gkfsd: daemon %u shutting down\n", self_id);
  dump_metrics();
  (*daemon)->shutdown();
  // Clean exit: drop the armed handlers and the (empty) crash file.
  gekko::crash::disarm();
  return 0;
}
