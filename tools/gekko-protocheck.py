#!/usr/bin/env python3
"""gekko-protocheck: the RPC protocol model, machine-checked.

Run as `ctest -L lint` (or directly: tools/gekko-protocheck.py
[repo-root]; `--self-test` runs the negative suite). Exit 0 = model
consistent, 1 = violations (printed one per line), 2 = usage/parse
error.

The protocol is spread across four places that must agree: the RpcId
enum and its switches (src/proto/messages.h), the daemon handler
registrations (src/daemon/daemon.cpp), the client call sites
(src/client/, src/rpc/), and the codec round-trip table
(src/proto/codec_table.h) that the fuzz harnesses and corpus-replay
tests execute. A new RPC wired into some but not all of them compiles
fine and fails at runtime — or worse, silently inherits a retry policy
or ships a decoder no fuzzer ever sees. This checker parses all four
and fails the lint gate on any disagreement:

rpc-name        every RpcId enumerator has `case RpcId::x: return "x";`
                in rpc_name(), and the literal equals the enumerator.
retry-class     every enumerator is classified explicitly in
                rpc_retry_class() as idempotent / non_idempotent /
                probe. The default: clause is not classification — an
                RPC must state its replay semantics where reviewers
                see it.
handler         every enumerator is registered exactly once in
                register_handlers_ via `bind(RpcId::x, "x", ...)`,
                with the wire-name literal matching; no bind() for an
                id outside the enum.
codec-table     every enumerator has exactly one kCodecTable row; the
                row's rpc literal matches; each non-empty codec name
                is backed by &codec_round_trip<SameName> and each
                empty one by nullptr.
codec-coverage  every struct in messages.h that has both decode() and
                encode() appears in kCodecTable (or kExtraCodecs) —
                i.e. every wire decoder is reachable from the fuzz
                harness and the corpus replay test.
call-site       every enumerator has at least one client call site
                (`to_wire(RpcId::x)` under src/client/ or src/rpc/):
                an RPC nobody can send is dead protocol surface.
corpus          every non-empty codec in the table has at least one
                committed seed under fuzz/corpus/proto/ (snake_case of
                the codec struct name), so `ctest -L fuzz` and the
                corpus replay test start from a valid instance of it.
test-ref        every enumerator is referenced by the test tree —
                its wire name or one of its codec structs appears in
                tests/*.cpp.
"""

from __future__ import annotations

import os
import re
import sys

MESSAGES = "src/proto/messages.h"
CODEC_TABLE = "src/proto/codec_table.h"
DAEMON = "src/daemon/daemon.cpp"
CALL_SITE_DIRS = ("src/client", "src/rpc")
TESTS_DIR = "tests"
CORPUS_DIR = "fuzz/corpus/proto"

RETRY_CLASSES = ("idempotent", "non_idempotent", "probe")


def snake_case(name: str) -> str:
    """CamelCase codec struct -> snake_case corpus stem (ChunkIoRequest
    -> chunk_io_request)."""
    return re.sub(r"(?<!^)(?=[A-Z])", "_", name).lower()


def strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.S)
    return re.sub(r"//[^\n]*", "", text)


def brace_body(text: str, open_pos: int) -> str:
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[open_pos + 1:i]
    return text[open_pos + 1:]


class Tree:
    """The file set the checks run against. Real runs read from disk;
    the self-test substitutes mutated copies without touching disk."""

    def __init__(self, root: str):
        self.root = root
        self.files: dict[str, str] = {}

    def read(self, rel: str) -> str | None:
        if rel in self.files:
            return self.files[rel]
        try:
            with open(os.path.join(self.root, rel), encoding="utf-8",
                      errors="replace") as f:
                text = f.read()
        except OSError:
            return None
        self.files[rel] = text
        return text

    def walk_sources(self, rel_dir: str) -> list[str]:
        out = []
        base = os.path.join(self.root, rel_dir)
        for dirpath, _dirs, names in sorted(os.walk(base)):
            for name in sorted(names):
                if name.endswith((".h", ".hpp", ".cpp", ".cc")):
                    rel = os.path.relpath(os.path.join(dirpath, name),
                                          self.root)
                    out.append(rel.replace(os.sep, "/"))
        return out

    def corpus_files(self) -> list[str]:
        try:
            return sorted(os.listdir(os.path.join(self.root, CORPUS_DIR)))
        except OSError:
            return []


def parse_enum(tree: Tree, errors: list[str]) -> dict[str, int]:
    text = tree.read(MESSAGES)
    if text is None:
        errors.append(f"{MESSAGES}: unreadable")
        return {}
    m = re.search(r"enum\s+class\s+RpcId\s*:\s*std::uint16_t\s*\{", text)
    if not m:
        errors.append(f"{MESSAGES}: enum class RpcId not found")
        return {}
    body = strip_comments(brace_body(text, m.end() - 1))
    ids: dict[str, int] = {}
    for entry in body.split(","):
        entry = entry.strip()
        if not entry:
            continue
        em = re.match(r"(\w+)\s*=\s*(\d+)$", entry)
        if not em:
            errors.append(f"{MESSAGES}: unparseable RpcId entry '{entry}' "
                          f"(expected `name = N`)")
            continue
        name, value = em.group(1), int(em.group(2))
        if name in ids:
            errors.append(f"{MESSAGES}: duplicate RpcId enumerator {name}")
        if value in ids.values():
            errors.append(f"{MESSAGES}: RpcId::{name} reuses wire value "
                          f"{value}")
        ids[name] = value
    if not ids:
        errors.append(f"{MESSAGES}: RpcId enum parsed empty")
    return ids


def switch_body(text: str, fn_name: str) -> str | None:
    m = re.search(re.escape(fn_name) + r"\s*\([^)]*\)\s*\{", text)
    if not m:
        return None
    return brace_body(text, m.end() - 1)


def check_rpc_name(tree: Tree, ids: dict[str, int],
                   errors: list[str]) -> None:
    text = tree.read(MESSAGES) or ""
    body = switch_body(text, "inline std::string rpc_name")
    if body is None:
        errors.append(f"{MESSAGES}: rpc-name: rpc_name() not found")
        return
    cases = dict(re.findall(
        r'case\s+RpcId::(\w+)\s*:\s*return\s+"(\w*)"\s*;', body))
    for name in ids:
        if name not in cases:
            errors.append(f"{MESSAGES}: rpc-name: RpcId::{name} has no "
                          f"case in rpc_name()")
        elif cases[name] != name:
            errors.append(f"{MESSAGES}: rpc-name: rpc_name(RpcId::{name}) "
                          f"returns \"{cases[name]}\" — wire names must "
                          f"equal the enumerator")
    for name in cases:
        if name not in ids:
            errors.append(f"{MESSAGES}: rpc-name: case RpcId::{name} is "
                          f"not an RpcId enumerator")


def check_retry_class(tree: Tree, ids: dict[str, int],
                      errors: list[str]) -> None:
    text = tree.read(MESSAGES) or ""
    body = switch_body(text, "inline constexpr RpcRetryClass rpc_retry_class")
    if body is None:
        errors.append(f"{MESSAGES}: retry-class: rpc_retry_class() not found")
        return
    cases = dict(re.findall(
        r"case\s+RpcId::(\w+)\s*:\s*return\s+RpcRetryClass::(\w+)\s*;",
        body))
    for name in ids:
        if name not in cases:
            errors.append(
                f"{MESSAGES}: retry-class: RpcId::{name} is not classified "
                f"in rpc_retry_class() — every RPC must state its replay "
                f"semantics explicitly (idempotent / non_idempotent / probe)")
        elif cases[name] not in RETRY_CLASSES:
            errors.append(f"{MESSAGES}: retry-class: RpcId::{name} maps to "
                          f"unknown class RpcRetryClass::{cases[name]}")
    for name in cases:
        if name not in ids:
            errors.append(f"{MESSAGES}: retry-class: case RpcId::{name} is "
                          f"not an RpcId enumerator")


def check_handlers(tree: Tree, ids: dict[str, int],
                   errors: list[str]) -> None:
    text = tree.read(DAEMON)
    if text is None:
        errors.append(f"{DAEMON}: unreadable")
        return
    binds = re.findall(r'bind\(\s*RpcId::(\w+)\s*,\s*"(\w+)"',
                       strip_comments(text))
    seen: dict[str, str] = {}
    for name, wire in binds:
        if name in seen:
            errors.append(f"{DAEMON}: handler: RpcId::{name} is bound "
                          f"twice in register_handlers_")
        seen[name] = wire
        if name not in ids:
            errors.append(f"{DAEMON}: handler: bind() for RpcId::{name}, "
                          f"which is not an RpcId enumerator")
        elif wire != name:
            errors.append(f"{DAEMON}: handler: RpcId::{name} bound with "
                          f"wire name \"{wire}\" — must match the "
                          f"enumerator")
    for name in ids:
        if name not in seen:
            errors.append(
                f"{DAEMON}: handler: RpcId::{name} has no bind() in "
                f"register_handlers_ — requests for it hit the daemon's "
                f"unknown-rpc path")


ROW = re.compile(
    r"\{\s*RpcId::(\w+)\s*,\s*\"(\w+)\"\s*,\s*\"(\w*)\"\s*,\s*\"(\w*)\"\s*,"
    r"\s*(nullptr|&codec_round_trip<(\w+)>)\s*,"
    r"\s*(nullptr|&codec_round_trip<(\w+)>)\s*\}")


def parse_codec_table(tree: Tree, errors: list[str]) -> list[tuple]:
    text = tree.read(CODEC_TABLE)
    if text is None:
        errors.append(f"{CODEC_TABLE}: unreadable")
        return []
    m = re.search(r"kCodecTable\[\]\s*=\s*\{", text)
    if not m:
        errors.append(f"{CODEC_TABLE}: codec-table: kCodecTable not found")
        return []
    body = strip_comments(brace_body(text, m.end() - 1))
    rows = []
    for rm in ROW.finditer(body):
        rows.append((rm.group(1), rm.group(2), rm.group(3), rm.group(4),
                     rm.group(6), rm.group(8)))
    if not rows:
        errors.append(f"{CODEC_TABLE}: codec-table: no rows parsed from "
                      f"kCodecTable")
    return rows


def parse_extra_codecs(tree: Tree) -> list[str]:
    text = tree.read(CODEC_TABLE) or ""
    m = re.search(r"kExtraCodecs\[\]\s*=\s*\{", text)
    if not m:
        return []
    body = strip_comments(brace_body(text, m.end() - 1))
    return re.findall(r"\{\s*\"(\w+)\"\s*,\s*&codec_round_trip<(\w+)>",
                      body) and \
        [n for n, _ in re.findall(
            r"\{\s*\"(\w+)\"\s*,\s*&codec_round_trip<(\w+)>", body)]


def check_codec_table(rows: list[tuple], ids: dict[str, int],
                      errors: list[str]) -> None:
    seen: set[str] = set()
    for name, rpc, req, resp, req_fn, resp_fn in rows:
        if name in seen:
            errors.append(f"{CODEC_TABLE}: codec-table: duplicate row for "
                          f"RpcId::{name}")
        seen.add(name)
        if name not in ids:
            errors.append(f"{CODEC_TABLE}: codec-table: row for "
                          f"RpcId::{name}, which is not an RpcId enumerator")
        if rpc != name:
            errors.append(f"{CODEC_TABLE}: codec-table: RpcId::{name} row "
                          f"carries rpc literal \"{rpc}\" — must match the "
                          f"enumerator")
        for kind, declared, fn in (("request", req, req_fn),
                                   ("response", resp, resp_fn)):
            if declared == "" and fn is not None:
                errors.append(
                    f"{CODEC_TABLE}: codec-table: RpcId::{name} {kind} is "
                    f"declared empty but has a round-trip fn for {fn}")
            if declared != "" and fn is None:
                errors.append(
                    f"{CODEC_TABLE}: codec-table: RpcId::{name} {kind} "
                    f"codec {declared} has nullptr instead of "
                    f"&codec_round_trip<{declared}> — the fuzz harness "
                    f"would silently skip it")
            if declared != "" and fn is not None and fn != declared:
                errors.append(
                    f"{CODEC_TABLE}: codec-table: RpcId::{name} {kind} "
                    f"declares {declared} but round-trips {fn}")
    for name in ids:
        if name not in seen:
            errors.append(
                f"{CODEC_TABLE}: codec-table: RpcId::{name} has no "
                f"kCodecTable row — its payload codecs are invisible to "
                f"the fuzz harness and the corpus replay test")


def check_codec_coverage(tree: Tree, rows: list[tuple],
                         errors: list[str]) -> None:
    text = tree.read(MESSAGES) or ""
    stripped = strip_comments(text)
    covered = {c for row in rows for c in (row[4], row[5]) if c}
    covered.update(parse_extra_codecs(tree))
    for sm in re.finditer(r"struct\s+(\w+)\s*\{", stripped):
        struct_name = sm.group(1)
        body = brace_body(stripped, sm.end() - 1)
        if re.search(r"\bdecode\s*\(", body) and \
                re.search(r"\bencode\s*\(", body):
            if struct_name not in covered:
                errors.append(
                    f"{MESSAGES}: codec-coverage: struct {struct_name} has "
                    f"decode()/encode() but no kCodecTable / kExtraCodecs "
                    f"entry — no fuzz target or round-trip check sees it")


def check_call_sites(tree: Tree, ids: dict[str, int],
                     errors: list[str]) -> None:
    used: set[str] = set()
    for rel_dir in CALL_SITE_DIRS:
        for rel in tree.walk_sources(rel_dir):
            text = tree.read(rel) or ""
            used.update(re.findall(r"to_wire\(\s*RpcId::(\w+)\s*\)",
                                   strip_comments(text)))
    for name in ids:
        if name not in used:
            errors.append(
                f"{MESSAGES}: call-site: RpcId::{name} is never sent — no "
                f"to_wire(RpcId::{name}) under "
                f"{' or '.join(CALL_SITE_DIRS)}")
    for name in used:
        if name not in ids:
            errors.append(f"call-site: to_wire(RpcId::{name}) used but "
                          f"{name} is not an RpcId enumerator")


def check_corpus(tree: Tree, rows: list[tuple], errors: list[str]) -> None:
    corpus = tree.corpus_files()
    if not corpus:
        errors.append(f"{CORPUS_DIR}: corpus: empty or missing — run "
                      f"gekko_gen_corpus and commit the seeds")
        return
    joined = "\n".join(corpus)
    for name, _rpc, req, resp, _rf, _sf in rows:
        for kind, codec in (("request", req), ("response", resp)):
            if not codec:
                continue
            # Seeds are named after the rpc (stat_request.bin) or,
            # for shared codecs, after the struct (path_request.bin).
            if f"{name}_{kind}" not in joined and \
                    snake_case(codec) not in joined:
                errors.append(
                    f"{CORPUS_DIR}: corpus: no seed for the {name} "
                    f"{kind} ({codec}) — expected a file matching "
                    f"'{name}_{kind}' or '{snake_case(codec)}'")


def check_test_refs(tree: Tree, ids: dict[str, int], rows: list[tuple],
                    errors: list[str]) -> None:
    codecs_of = {name: [c for c in (req, resp) if c]
                 for name, _rpc, req, resp, _rf, _sf in rows}
    blob = "\n".join(tree.read(rel) or ""
                     for rel in tree.walk_sources(TESTS_DIR))
    for name in ids:
        tokens = [name] + codecs_of.get(name, [])
        if not any(re.search(r"\b" + re.escape(t) + r"\b", blob)
                   for t in tokens):
            errors.append(
                f"{TESTS_DIR}: test-ref: RpcId::{name} is unreferenced by "
                f"the test tree (neither \"{name}\" nor its codec structs "
                f"appear in tests/*.cpp)")


def run_checks(tree: Tree) -> list[str]:
    errors: list[str] = []
    ids = parse_enum(tree, errors)
    if not ids:
        return errors
    check_rpc_name(tree, ids, errors)
    check_retry_class(tree, ids, errors)
    check_handlers(tree, ids, errors)
    rows = parse_codec_table(tree, errors)
    check_codec_table(rows, ids, errors)
    check_codec_coverage(tree, rows, errors)
    check_call_sites(tree, ids, errors)
    check_corpus(tree, rows, errors)
    check_test_refs(tree, ids, rows, errors)
    return errors


# ---------------------------------------------------------------- self-test

def self_test(root: str) -> int:
    """Negative suite: mutate the real tree in memory, one defect at a
    time, and require the matching check to fire. A checker that cannot
    see planted defects is worse than none — it certifies."""
    base = Tree(root)
    clean = run_checks(base)
    if clean:
        print("self-test: baseline tree is not clean; fix these first:")
        for e in clean:
            print(f"  {e}")
        return 1

    messages = base.read(MESSAGES)
    daemon = base.read(DAEMON)
    table = base.read(CODEC_TABLE)
    assert messages and daemon and table

    def mutated(rel: str, old: str, new: str, count: int = 1) -> Tree:
        t = Tree(root)
        text = t.read(rel)
        assert text is not None and old in text, \
            f"self-test fixture drift: {old!r} not in {rel}"
        t.files[rel] = text.replace(old, new, count)
        return t

    cases = [
        ("rpc-name case removed",
         mutated(MESSAGES, 'case RpcId::stat: return "stat";', ""),
         "rpc-name: RpcId::stat has no case"),
        ("rpc-name literal mismatched",
         mutated(MESSAGES, 'case RpcId::stat: return "stat";',
                 'case RpcId::stat: return "status";'),
         'rpc-name: rpc_name(RpcId::stat) returns "status"'),
        ("retry classification removed",
         mutated(MESSAGES,
                 "case RpcId::read_chunks: return RpcRetryClass::idempotent;",
                 ""),
         "retry-class: RpcId::read_chunks is not classified"),
        ("handler registration removed",
         mutated(DAEMON, 'bind(RpcId::heartbeat, "heartbeat", ', "skip("),
         "handler: RpcId::heartbeat has no bind()"),
        ("handler wire name mismatched",
         mutated(DAEMON, 'bind(RpcId::heartbeat, "heartbeat"',
                 'bind(RpcId::heartbeat, "heart_beat"'),
         'handler: RpcId::heartbeat bound with wire name "heart_beat"'),
        ("codec table row removed",
         mutated(TABLE_ROW_FILE, TABLE_ROW_OLD, ""),
         "codec-table: RpcId::get_dirents has no kCodecTable row"),
        ("new rpc wired nowhere",
         mutated(MESSAGES, "batch_remove = 17,",
                 "batch_remove = 17,\n  evict_chunks = 18,"),
         "retry-class: RpcId::evict_chunks is not classified"),
        ("decoder outside the table",
         mutated(MESSAGES, "enum class RpcRetryClass",
                 "struct OrphanCodec {\n"
                 "  static Result<OrphanCodec> decode(std::string_view);\n"
                 "  std::string encode() const;\n"
                 "};\n\nenum class RpcRetryClass"),
         "codec-coverage: struct OrphanCodec"),
    ]
    failures = 0
    for label, tree, expect in cases:
        errors = run_checks(tree)
        if any(expect in e for e in errors):
            print(f"self-test: ok: {label}")
        else:
            failures += 1
            print(f"self-test: MISSED: {label} (expected an error "
                  f"containing {expect!r}; got {len(errors)} others)")
            for e in errors[:5]:
                print(f"    {e}")
    if failures:
        print(f"self-test: {failures} planted defect(s) went undetected")
        return 1
    print(f"self-test: all {len(cases)} planted defects detected")
    return 0


# The get_dirents table row spans one line in the current formatting;
# keep the fixture text in one place so drift fails loudly.
TABLE_ROW_FILE = CODEC_TABLE
TABLE_ROW_OLD = (
    '{RpcId::get_dirents,       "get_dirents",       "DirentsRequest",     '
    '  "DirentsResponse",       &codec_round_trip<DirentsRequest>,       '
    '&codec_round_trip<DirentsResponse>},')


def main(argv: list[str]) -> int:
    args = [a for a in argv[1:] if a != "--self-test"]
    root = os.path.abspath(args[0]) if args else os.getcwd()
    if not os.path.isfile(os.path.join(root, MESSAGES)):
        print(f"gekko-protocheck: {MESSAGES} not found under {root}",
              file=sys.stderr)
        return 2
    if "--self-test" in argv[1:]:
        return self_test(root)
    errors = run_checks(Tree(root))
    for e in errors:
        print(e)
    print(f"gekko-protocheck: {len(errors)} violation(s)", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
