// ABL-CACHE — the paper's second future-work item: "evaluate benefits
// of caching."
//
// Two client-side caches, each attacking one metadata hot path:
//  - stat cache (reads): GekkoFS stats the file per read to bound at
//    EOF; a warm cache removes that RPC from the read path.
//  - size-update cache (writes, §IV.B): buffers size updates; sweep
//    the flush interval to show the ceiling lifting gradually.
// 8 KiB transfers — metadata overhead is proportionally largest there.
#include <cstdio>

#include "bench_util.h"
#include "sim/data_sim.h"

using namespace gekko;
using namespace gekko::bench;
using namespace gekko::sim;

namespace {

SimResult read_point(std::uint32_t nodes, bool stat_cache) {
  Calibration cal;
  DataSimConfig d;
  d.nodes = nodes;
  d.transfer_size = 8 << 10;
  d.write = false;
  d.stat_cache = stat_cache;
  d.transfers_per_proc =
      scaled_ops(nodes, cal.procs_per_node, 8.0, 1.0e6, 20, 300);
  return run_gekkofs_data(d);
}

SimResult shared_write_point(std::uint32_t nodes, std::uint32_t interval) {
  Calibration cal;
  DataSimConfig d;
  d.nodes = nodes;
  d.transfer_size = 8 << 10;
  d.write = true;
  d.shared_file = true;
  d.size_cache_interval = interval;
  d.transfers_per_proc =
      scaled_ops(nodes, cal.procs_per_node, 8.0, 1.0e6, 20, 300);
  return run_gekkofs_data(d);
}

}  // namespace

int main() {
  print_header(
      "ABLATION — caching (paper future work item #2), 8 KiB transfers");

  std::printf("\n-- stat cache: file-per-process READS --\n");
  std::printf("%6s  %14s  %14s  %16s\n", "nodes", "ops/s (off)",
              "ops/s (on)", "md-RPC traffic");
  for (const std::uint32_t nodes : {4u, 16u, 64u, 256u}) {
    const SimResult off = read_point(nodes, false);
    const SimResult on = read_point(nodes, true);
    std::printf("%6u  %14s  %14s  %+14.0f%%\n", nodes,
                human_rate(off.ops_per_sec).c_str(),
                human_rate(on.ops_per_sec).c_str(),
                100.0 * (static_cast<double>(on.events) -
                         static_cast<double>(off.events)) /
                    static_cast<double>(off.events));
  }
  std::printf(
      "\nA negative result worth keeping: with reads SSD-bound and a\n"
      "fixed closed loop, removing the per-read stat RPC changes neither\n"
      "throughput nor latency (Little's law — the saved round trip turns\n"
      "into SSD queue wait). What the cache buys is the ~1/3 drop in\n"
      "simulated network/metadata events above: daemon headroom that\n"
      "matters when metadata phases run concurrently (mdtest-style\n"
      "storms + reads), at the usual freshness cost. This quantifies the\n"
      "paper's future-work question rather than assuming caching wins.\n");

  std::printf("\n-- size-update cache: SHARED-FILE writes, interval sweep "
              "(ops/s, 64 nodes) --\n");
  std::printf("%10s  %14s\n", "interval", "throughput");
  for (const std::uint32_t interval : {0u, 2u, 4u, 8u, 16u, 64u, 256u}) {
    const double t = shared_write_point(64, interval).ops_per_sec;
    std::printf("%10u  %14s%s\n", interval, human_rate(t).c_str(),
                interval == 0 ? "   <- paper's synchronous ceiling" : "");
  }
  std::printf(
      "\nThe ceiling lifts in proportion to the flush interval until the\n"
      "SSDs (not the metadata daemon) become the bottleneck — consistent\n"
      "with the paper's observation that the rudimentary cache restored\n"
      "file-per-process rates. The cost in both cases is metadata\n"
      "freshness across clients (bounded by interval / TTL).\n");
  return 0;
}
