// Connection-scaling benchmark for the TCP fabric's epoll engine:
// client-count sweep against two in-process daemons, all traffic over
// real TCP sockets, emitting BENCH_net_scale.json.
//
// Each client is its own thread with its OWN TcpFabric (one
// connection per daemon) and mount, hammering small metadata RPCs
// (stat) for a fixed window. The thing under test is the daemon-side
// event loop: N clients mean N concurrent connections multiplexed
// onto a fixed set of epoll loops — aggregate throughput must hold up
// as the connection count grows, since there is no thread-per-
// connection to scale with it.
//
// Acceptance gate: aggregate ops/s with 10x the clients stays within
// 20% of the peak across the sweep (>= 0.8 x peak). A transport that
// serializes badly on shared state or degrades per-connection as the
// fd set grows fails this.
//
//   net_scale [output.json]    (default: BENCH_net_scale.json)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "client/client.h"
#include "common/metrics.h"
#include "daemon/daemon.h"
#include "fs/mount.h"
#include "net/tcp_fabric.h"
#include "net/transport.h"

using namespace gekko;

namespace {

constexpr std::uint32_t kDaemons = 2;
constexpr std::uint32_t kChunkSize = 64 * 1024;
constexpr auto kWindow = std::chrono::milliseconds(400);
constexpr int kWarmupOps = 16;

struct Point {
  std::uint32_t clients;
  double ops_per_sec;
};

Result<Point> run_point(const std::filesystem::path& hostfile,
                        std::uint32_t clients) {
  std::atomic<std::uint64_t> ops{0};
  std::atomic<std::uint64_t> failures{0};
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint32_t> ready{0};

  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (std::uint32_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      net::MakeFabricOptions fopts;
      fopts.tcp_event_loops = 1;  // one loop thread per client fabric
      auto fabric = net::make_fabric(hostfile, fopts);
      if (!fabric) {
        failures.fetch_add(1);
        ready.fetch_add(1);
        return;
      }
      client::ClientOptions copts;
      copts.chunk_size = kChunkSize;
      fs::Mount mnt(**fabric, {0, 1}, copts);
      const std::string path = "/scale/f" + std::to_string(c % 4);
      for (int i = 0; i < kWarmupOps; ++i) {
        if (!mnt.stat(path).is_ok()) {
          failures.fetch_add(1);
          ready.fetch_add(1);
          return;
        }
      }
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_acquire)) {
        if (!mnt.stat(path).is_ok()) {
          failures.fetch_add(1);
          break;
        }
        ++local;
      }
      ops.fetch_add(local);
    });
  }

  while (ready.load(std::memory_order_acquire) < clients) {
    std::this_thread::yield();
  }
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(kWindow);
  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  if (failures.load() != 0) {
    return Status{Errc::io_error,
                  std::to_string(failures.load()) + " client(s) failed"};
  }
  Point p{clients, 0.0};
  p.ops_per_sec = static_cast<double>(ops.load()) /
                  std::chrono::duration<double>(elapsed).count();
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_net_scale.json";
  bench::print_header(
      "NET SCALE — client-count sweep over the TCP fabric\n"
      "(2 daemons, one epoll-driven TcpFabric per side; gate: ops/s at\n"
      " 10x clients >= 0.8 x peak across the sweep)");

  const auto root = std::filesystem::temp_directory_path() /
                    ("gekko_net_scale_" + std::to_string(::getpid()));
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);

  auto hostfile = net::TcpFabric::write_hostfile(root / "net", kDaemons);
  if (!hostfile) {
    std::fprintf(stderr, "hostfile: %s\n",
                 hostfile.status().to_string().c_str());
    return 1;
  }

  // Daemons: in-process, each on its own TCP fabric.
  std::vector<std::unique_ptr<net::HostedFabric>> daemon_fabrics;
  std::vector<std::unique_ptr<daemon::GekkoDaemon>> daemons;
  for (std::uint32_t i = 0; i < kDaemons; ++i) {
    net::MakeFabricOptions fopts;
    fopts.self_id = i;
    auto fabric = net::make_fabric(*hostfile, fopts);
    if (!fabric) {
      std::fprintf(stderr, "daemon fabric %u: %s\n", i,
                   fabric.status().to_string().c_str());
      return 1;
    }
    daemon_fabrics.push_back(std::move(*fabric));
    daemon::DaemonOptions dopts;
    dopts.chunk_size = kChunkSize;
    dopts.kv_options.background_compaction = false;
    auto d = daemon::GekkoDaemon::start(
        *daemon_fabrics.back(), root / ("node" + std::to_string(i)), dopts);
    if (!d) {
      std::fprintf(stderr, "daemon %u: %s\n", i,
                   d.status().to_string().c_str());
      return 1;
    }
    daemons.push_back(std::move(*d));
  }

  // Seed the files every client stats (striped across both daemons).
  {
    auto fabric = net::make_fabric(*hostfile, {});
    if (!fabric) return 1;
    client::ClientOptions copts;
    copts.chunk_size = kChunkSize;
    fs::Mount mnt(**fabric, {0, 1}, copts);
    for (int i = 0; i < 4; ++i) {
      auto fd = mnt.open("/scale/f" + std::to_string(i),
                         fs::create | fs::rd_wr);
      if (!fd || !mnt.close(*fd).is_ok()) {
        std::fprintf(stderr, "seed file %d failed\n", i);
        return 1;
      }
    }
  }

  const std::vector<std::uint32_t> client_grid = {1, 2, 4, 10};
  std::vector<Point> points;
  for (const auto clients : client_grid) {
    auto p = run_point(*hostfile, clients);
    if (!p) {
      std::fprintf(stderr, "point %u clients: %s\n", clients,
                   p.status().to_string().c_str());
      return 1;
    }
    points.push_back(*p);
  }

  std::printf("\n%10s %16s\n", "clients", "agg ops/s");
  double peak = 0.0;
  for (const auto& p : points) {
    std::printf("%10u %16s\n", p.clients,
                bench::human_rate(p.ops_per_sec).c_str());
    if (p.ops_per_sec > peak) peak = p.ops_per_sec;
  }

  const double at_max = points.back().ops_per_sec;
  const double ratio = at_max / peak;
  const bool gate_ok = ratio >= 0.8;
  std::printf("\n%u-client aggregate = %.2f x peak (gate: >= 0.80)\n",
              points.back().clients, ratio);

  auto& reg = metrics::Registry::global();
  const auto dials = reg.counter("net.tcp.dials").value();
  const auto frames = reg.counter("net.tcp.frames_in").value();

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"net_scale\",\n  \"daemons\": %u,\n"
               "  \"window_ms\": %lld,\n  \"points\": [\n",
               kDaemons,
               static_cast<long long>(kWindow.count()));
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::fprintf(f, "    {\"clients\": %u, \"ops_per_sec\": %.1f}%s\n",
                 points[i].clients, points[i].ops_per_sec,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"tcp_dials\": %llu,\n  \"tcp_frames_in\": %llu,\n"
               "  \"scale_ratio_at_%u_clients\": %.3f,\n"
               "  \"gate_min_ratio\": 0.8,\n  \"gate_ok\": %s\n}\n",
               static_cast<unsigned long long>(dials),
               static_cast<unsigned long long>(frames),
               points.back().clients, ratio, gate_ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s (gate_ok=%s)\n", out_path,
              gate_ok ? "true" : "false");

  for (auto& d : daemons) d->shutdown();
  daemons.clear();
  daemon_fabrics.clear();
  std::filesystem::remove_all(root);
  return gate_ok ? 0 : 1;
}
