// Daemon data-path benchmark: io_threads × transfer-size sweep over
// the write_chunks/read_chunks handlers (multi-slice IOR-style
// requests against one daemon), emitting BENCH_data_path.json.
//
// Two modes per point:
//  - raw: chunk files on the host FS as-is. On a build box the page
//    cache absorbs device latency, so this mostly measures syscall and
//    copy overheads (where the fd cache and the zero-copy send help).
//  - modeled-ssd: DaemonOptions::device_model charges each chunk task
//    the modeled Intel DC S3700 service time (DESIGN §1 hardware
//    substitution). This is the configuration where slice fan-out must
//    show: N io threads overlap N modeled device waits, reproducing
//    the paper's one-ULT-per-chunk-op scaling even on a small host.
//    The ≥1.5× io_threads=4 vs 1 acceptance gate reads this mode.
//
//   data_path [output.json]    (default: BENCH_data_path.json)
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"
#include "daemon/daemon.h"
#include "net/fabric.h"
#include "proto/messages.h"
#include "rpc/engine.h"
#include "storage/ssd_model.h"

using namespace gekko;

namespace {

constexpr std::uint32_t kChunkSize = 512 * 1024;  // paper §IV
constexpr std::size_t kSlices = 16;               // slices per request

struct Point {
  const char* mode;
  std::size_t io_threads;
  std::uint32_t transfer;
  double write_mib_s;
  double read_mib_s;
};

double mib_per_sec(std::uint64_t bytes, std::chrono::nanoseconds elapsed) {
  const double secs = std::chrono::duration<double>(elapsed).count();
  return static_cast<double>(bytes) / (1024.0 * 1024.0) / secs;
}

Result<Point> run_point(const storage::SsdModel* model, const char* mode,
                        std::size_t io_threads, std::uint32_t transfer,
                        std::size_t rounds) {
  const auto root = std::filesystem::temp_directory_path() /
                    ("gekko_dp_" + std::to_string(::getpid()) + "_" + mode +
                     "_" + std::to_string(io_threads) + "_" +
                     std::to_string(transfer));
  std::filesystem::remove_all(root);

  metrics::Registry registry;
  net::LoopbackFabric fabric;
  daemon::DaemonOptions opts;
  opts.chunk_size = kChunkSize;
  opts.io_threads = io_threads;
  opts.device_model = model;
  opts.kv_options.background_compaction = false;
  opts.registry = &registry;
  auto d = daemon::GekkoDaemon::start(fabric, root, opts);
  if (!d) return d.status();

  rpc::EngineOptions eopts;
  eopts.name = "dp-bench";
  rpc::Engine client(fabric, eopts);

  // One request = kSlices slices, each its own chunk (IOR segmented
  // layout: every transfer lands in a distinct chunk of one file).
  proto::ChunkIoRequest req;
  req.path = "/ior-file";
  req.slices.reserve(kSlices);
  for (std::size_t i = 0; i < kSlices; ++i) {
    proto::ChunkSlice s;
    s.chunk_id = i;
    s.offset_in_chunk = 0;
    s.length = transfer;
    s.bulk_offset = static_cast<std::uint64_t>(i) * transfer;
    req.slices.push_back(s);
  }
  const std::uint64_t req_bytes =
      static_cast<std::uint64_t>(kSlices) * transfer;
  std::vector<std::uint8_t> data(req_bytes);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }

  auto do_write = [&]() -> Status {
    return client
        .forward((*d)->endpoint(), proto::to_wire(proto::RpcId::write_chunks),
                 req.encode(), net::BulkRegion::expose_read(data))
        .status();
  };
  auto do_read = [&]() -> Status {
    return client
        .forward((*d)->endpoint(), proto::to_wire(proto::RpcId::read_chunks),
                 req.encode(), net::BulkRegion::expose_write(data))
        .status();
  };

  // Warm-up: creates the chunk files and primes the fd cache.
  GEKKO_RETURN_IF_ERROR(do_write());

  Point p{mode, io_threads, transfer, 0.0, 0.0};
  const auto w0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) GEKKO_RETURN_IF_ERROR(do_write());
  p.write_mib_s =
      mib_per_sec(req_bytes * rounds, std::chrono::steady_clock::now() - w0);

  const auto r0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) GEKKO_RETURN_IF_ERROR(do_read());
  p.read_mib_s =
      mib_per_sec(req_bytes * rounds, std::chrono::steady_clock::now() - r0);

  (*d)->shutdown();
  d->reset();
  std::filesystem::remove_all(root);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_data_path.json";
  bench::print_header(
      "DATA PATH — io_threads x transfer sweep over write/read_chunks\n"
      "(one daemon, 16-slice requests; modeled-ssd mode drives the\n"
      " >=1.5x io4-vs-io1 acceptance gate)");

  const storage::SsdModel ssd;
  const std::vector<std::size_t> thread_grid = {1, 2, 4, 8};
  const std::vector<std::uint32_t> transfer_grid = {64 * 1024, 512 * 1024};

  std::vector<Point> points;
  for (const std::uint32_t transfer : transfer_grid) {
    for (const std::size_t io : thread_grid) {
      // Raw rounds are cheap (page cache); modeled rounds each cost
      // ~16 modeled device services, so fewer suffice.
      auto raw = run_point(nullptr, "raw", io, transfer, 24);
      auto mod = run_point(&ssd, "modeled-ssd", io, transfer, 8);
      if (!raw || !mod) {
        std::fprintf(stderr, "bench point failed: %s %s\n",
                     raw.status().to_string().c_str(),
                     mod.status().to_string().c_str());
        return 1;
      }
      points.push_back(*raw);
      points.push_back(*mod);
    }
  }

  std::printf("\n%-12s %10s %12s %14s %14s\n", "mode", "io_thr", "transfer",
              "write MiB/s", "read MiB/s");
  for (const auto& p : points) {
    std::printf("%-12s %10zu %11uK %14.1f %14.1f\n", p.mode, p.io_threads,
                p.transfer / 1024, p.write_mib_s, p.read_mib_s);
  }

  // Speedup gate: modeled-ssd write+read throughput at io=4 vs io=1,
  // per transfer size.
  auto find = [&](const char* mode, std::size_t io,
                  std::uint32_t transfer) -> const Point* {
    for (const auto& p : points) {
      if (std::string(p.mode) == mode && p.io_threads == io &&
          p.transfer == transfer) {
        return &p;
      }
    }
    return nullptr;
  };

  bool gate_ok = true;
  std::string speedups_json;
  for (const std::uint32_t transfer : transfer_grid) {
    const Point* s1 = find("modeled-ssd", 1, transfer);
    const Point* s4 = find("modeled-ssd", 4, transfer);
    const double wsp = s4->write_mib_s / s1->write_mib_s;
    const double rsp = s4->read_mib_s / s1->read_mib_s;
    std::printf("modeled-ssd %uK: io4/io1 speedup write %.2fx read %.2fx\n",
                transfer / 1024, wsp, rsp);
    if (wsp < 1.5 || rsp < 1.5) gate_ok = false;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"transfer\":%u,\"write\":%.3f,\"read\":%.3f}",
                  speedups_json.empty() ? "" : ",", transfer, wsp, rsp);
    speedups_json += buf;
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"data_path\",\n  \"chunk_size\": %u,\n"
               "  \"slices_per_request\": %zu,\n  \"points\": [\n",
               kChunkSize, kSlices);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"io_threads\": %zu, "
                 "\"transfer\": %u, \"write_mib_s\": %.1f, "
                 "\"read_mib_s\": %.1f}%s\n",
                 p.mode, p.io_threads, p.transfer, p.write_mib_s,
                 p.read_mib_s, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"modeled_ssd_io4_vs_io1_speedup\": [%s],\n"
               "  \"gate_min_speedup\": 1.5,\n  \"gate_ok\": %s\n}\n",
               speedups_json.c_str(), gate_ok ? "true" : "false");
  std::fclose(f);
  std::printf("\nwrote %s (gate_ok=%s)\n", out_path,
              gate_ok ? "true" : "false");
  return gate_ok ? 0 : 1;
}
