// Reproduces §IV.B random-access claims (TXT-RAND):
//  - transfer sizes >= chunk size: random ~= sequential (whole-chunk
//    accesses are positionally indifferent),
//  - 8 KiB random at 512 nodes: write ~-33%, read ~-60% vs sequential.
#include <cstdio>

#include "bench_util.h"
#include "sim/data_sim.h"

using namespace gekko;
using namespace gekko::bench;
using namespace gekko::sim;

namespace {

SimResult run_point(bool write, bool random, std::uint64_t transfer,
                    std::uint32_t nodes) {
  Calibration cal;
  DataSimConfig d;
  d.nodes = nodes;
  d.transfer_size = transfer;
  d.write = write;
  d.random_offsets = random;
  const double chunks =
      static_cast<double>(transfer + d.chunk_size - 1) / d.chunk_size;
  const double daemons_touched =
      chunks < nodes ? chunks : static_cast<double>(nodes);
  d.transfers_per_proc = scaled_ops(nodes, cal.procs_per_node,
                                    4.0 * daemons_touched + 4.0, 1.0e6, 2,
                                    200);
  return run_gekkofs_data(d);
}

}  // namespace

int main() {
  print_header(
      "RANDOM vs SEQUENTIAL I/O (paper §IV.B, file-per-process)\n"
      "claims: random == sequential for transfers >= chunk (512 KiB);\n"
      "8 KiB random at 512 nodes: write -33%, read -60%");

  struct Size {
    const char* label;
    std::uint64_t bytes;
  };
  const Size sizes[] = {{"8k", 8ull << 10},
                        {"64k", 64ull << 10},
                        {"1m", 1ull << 20},
                        {"64m", 64ull << 20}};

  for (const std::uint32_t nodes : {64u, 512u}) {
    std::printf("\n-- %u nodes --\n", nodes);
    std::printf("%5s  %12s  %12s  %7s   %12s  %12s  %7s\n", "xfer",
                "seq write", "rnd write", "delta", "seq read", "rnd read",
                "delta");
    for (const auto& s : sizes) {
      const double sw = run_point(true, false, s.bytes, nodes).mib_per_sec;
      const double rw = run_point(true, true, s.bytes, nodes).mib_per_sec;
      const double sr = run_point(false, false, s.bytes, nodes).mib_per_sec;
      const double rr = run_point(false, true, s.bytes, nodes).mib_per_sec;
      std::printf("%5s  %10.0f    %10.0f    %+6.0f%%   %10.0f    %10.0f    %+6.0f%%\n",
                  s.label, sw, rw, 100.0 * (rw - sw) / sw, sr, rr,
                  100.0 * (rr - sr) / sr);
    }
  }
  std::printf(
      "\npaper anchors at 512 nodes / 8 KiB: write -33%%, read -60%%\n");
  return 0;
}
