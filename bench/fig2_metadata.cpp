// Reproduces Figure 2 (a/b/c): mdtest create/stat/remove throughput,
// GekkoFS vs Lustre (single dir and unique dir), 1..512 nodes with
// 16 processes per node — plus the in-text speedup factors at 512
// nodes (46M creates/s ~1405x, 44M stats/s ~359x, 22M removes/s ~453x).
//
// Simulated on the discrete-event cluster model; GekkoFS placement uses
// the production HashDistributor. mdtest's 100k files/proc is sampled
// at steady state (throughput in this closed-loop model is
// time-invariant, so a few hundred ops/proc measure the same rate).
#include <cstdio>

#include "bench_util.h"
#include "sim/metadata_sim.h"

using namespace gekko;
using namespace gekko::bench;
using namespace gekko::sim;

namespace {

const char* phase_name(MetaPhase p) {
  switch (p) {
    case MetaPhase::create: return "create";
    case MetaPhase::stat: return "stat";
    case MetaPhase::remove: return "remove";
  }
  return "?";
}

struct Fig2Row {
  std::uint32_t nodes;
  double gkfs;
  double lustre_single;
  double lustre_unique;
};

Fig2Row run_point(MetaPhase phase, std::uint32_t nodes) {
  Calibration cal;
  Fig2Row row{nodes, 0, 0, 0};

  MetadataSimConfig g;
  g.nodes = nodes;
  g.phase = phase;
  g.ops_per_proc = scaled_ops(nodes, cal.procs_per_node, 3.0);
  row.gkfs = run_gekkofs_metadata(g).ops_per_sec;

  LustreSimConfig l;
  l.nodes = nodes;
  l.phase = phase;
  l.ops_per_proc = scaled_ops(nodes, cal.procs_per_node, 4.0, 0.8e6);
  l.single_dir = true;
  row.lustre_single = run_lustre_metadata(l).ops_per_sec;
  l.single_dir = false;
  row.lustre_unique = run_lustre_metadata(l).ops_per_sec;
  return row;
}

}  // namespace

int main() {
  print_header(
      "FIG 2 — mdtest throughput vs node count (16 procs/node)\n"
      "paper: GekkoFS scales near-linearly; Lustre flat (MDS-bound)");

  double g512[3] = {0, 0, 0};
  double l512[3] = {0, 0, 0};
  int phase_idx = 0;
  for (MetaPhase phase :
       {MetaPhase::create, MetaPhase::stat, MetaPhase::remove}) {
    std::printf("\n-- Fig 2%c: %s throughput (ops/s) --\n",
                'a' + phase_idx, phase_name(phase));
    std::printf("%6s  %10s  %14s  %14s\n", "nodes", "GekkoFS",
                "Lustre single", "Lustre unique");
    for (const std::uint32_t nodes : paper_node_grid()) {
      const Fig2Row row = run_point(phase, nodes);
      std::printf("%6u  %10s  %14s  %14s\n", nodes,
                  human_rate(row.gkfs).c_str(),
                  human_rate(row.lustre_single).c_str(),
                  human_rate(row.lustre_unique).c_str());
      if (nodes == 512) {
        g512[phase_idx] = row.gkfs;
        l512[phase_idx] = row.lustre_single;
      }
    }
    ++phase_idx;
  }

  print_header("In-text claims at 512 nodes (paper -> measured)");
  const char* names[3] = {"creates", "stats", "removes"};
  const double paper_ops[3] = {46e6, 44e6, 22e6};
  const double paper_factor[3] = {1405, 359, 453};
  for (int i = 0; i < 3; ++i) {
    std::printf(
        "%-8s paper %5.0fM (~%5.0fx Lustre) | measured %5.1fM (~%5.0fx)\n",
        names[i], paper_ops[i] / 1e6, paper_factor[i], g512[i] / 1e6,
        l512[i] > 0 ? g512[i] / l512[i] : 0.0);
  }
  std::printf(
      "\nNote: 'x' factors compare against Lustre single-dir as in the\n"
      "paper's headline numbers; Lustre unique-dir is the easier case.\n");
  return 0;
}
