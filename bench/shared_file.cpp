// Reproduces §IV.B shared-file experiment (TXT-SHARED):
//
// "For the shared file cases ... no more than approximately 150K write
//  operations per second were achieved. This was due to network
//  contention on the daemon which maintains the shared file's
//  metadata ... we added a rudimentary client cache to locally buffer
//  size updates ... As a result, shared file I/O throughput for
//  sequential and random access were similar to file-per-process."
//
// Three configurations over the node grid, 8 KiB sequential writes:
//   file-per-process | shared (sync size updates) | shared (size cache).
#include <cstdio>

#include "bench_util.h"
#include "sim/data_sim.h"

using namespace gekko;
using namespace gekko::bench;
using namespace gekko::sim;

namespace {

SimResult run_point(std::uint32_t nodes, bool shared,
                    std::uint32_t cache_interval) {
  Calibration cal;
  DataSimConfig d;
  d.nodes = nodes;
  d.transfer_size = 8 << 10;
  d.write = true;
  d.shared_file = shared;
  d.size_cache_interval = cache_interval;
  d.transfers_per_proc =
      scaled_ops(nodes, cal.procs_per_node, 8.0, 1.0e6, 20, 300);
  return run_gekkofs_data(d);
}

}  // namespace

int main() {
  print_header(
      "SHARED FILE writes, 8 KiB transfers (paper §IV.B)\n"
      "claim: sync size updates cap the whole system near ~150K ops/s;\n"
      "the client size-update cache restores file-per-process rates");

  std::printf("%6s  %16s  %16s  %16s\n", "nodes", "file-per-proc",
              "shared (sync)", "shared (cache=64)");
  std::printf("%6s  %16s  %16s  %16s\n", "", "ops/s", "ops/s", "ops/s");
  double shared_peak = 0;
  for (const std::uint32_t nodes : short_node_grid()) {
    const SimResult fpp = run_point(nodes, false, 0);
    const SimResult ssync = run_point(nodes, true, 0);
    const SimResult scache = run_point(nodes, true, 64);
    if (ssync.ops_per_sec > shared_peak) shared_peak = ssync.ops_per_sec;
    std::printf("%6u  %16s  %16s  %16s\n", nodes,
                human_rate(fpp.ops_per_sec).c_str(),
                human_rate(ssync.ops_per_sec).c_str(),
                human_rate(scache.ops_per_sec).c_str());
  }
  std::printf("\nshared-file (sync) ceiling: paper ~150K ops/s | measured "
              "~%.0fK ops/s\n",
              shared_peak / 1e3);
  return 0;
}
