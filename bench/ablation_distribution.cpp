// ABL-DIST — the paper's third future-work item: "explore different
// data distribution patterns."
//
// Compares the default hash wide-striping against round-robin striding
// and BurstFS-style node-local placement, on the two workloads that
// separate them: file-per-process streaming (local placement wins on
// locality, loses nothing here since the fabric is uniform) and a
// SHARED file (local placement concentrates every chunk on one daemon
// and collapses).
#include <cstdio>

#include "bench_util.h"
#include "sim/data_sim.h"

using namespace gekko;
using namespace gekko::bench;
using namespace gekko::sim;

namespace {

double run_point(proto::DistributionPolicy policy, bool shared,
                 std::uint32_t nodes) {
  Calibration cal;
  DataSimConfig d;
  d.nodes = nodes;
  d.transfer_size = 1ull << 20;
  d.write = true;
  d.shared_file = shared;
  d.size_cache_interval = 64;  // isolate DATA placement effects
  d.policy = policy;
  d.transfers_per_proc =
      scaled_ops(nodes, cal.procs_per_node, 12.0, 1.0e6, 5, 200);
  return run_gekkofs_data(d).mib_per_sec;
}

}  // namespace

int main() {
  print_header(
      "ABLATION — data distribution policies (1 MiB writes)\n"
      "paper future work item #3; shared-file exposes hotspots");

  const proto::DistributionPolicy policies[] = {
      proto::DistributionPolicy::hash,
      proto::DistributionPolicy::round_robin,
      proto::DistributionPolicy::local};
  const char* names[] = {"hash (GekkoFS)", "round-robin", "node-local"};

  for (const bool shared : {false, true}) {
    std::printf("\n-- %s (MiB/s) --\n",
                shared ? "SHARED file" : "file-per-process");
    std::printf("%6s", "nodes");
    for (const char* n : names) std::printf("  %16s", n);
    std::printf("\n");
    for (const std::uint32_t nodes : {4u, 16u, 64u, 256u}) {
      std::printf("%6u", nodes);
      for (const auto policy : policies) {
        std::printf("  %16.0f", run_point(policy, shared, nodes));
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nExpected: policies tie on file-per-process (uniform load either\n"
      "way); node-local collapses on the shared file (every chunk on one\n"
      "daemon), which is why GekkoFS hashes per (path, chunk).\n");
  return 0;
}
