// ABL-CHUNK — the paper's first future-work item: "Investigate GekkoFS
// with various chunk sizes."
//
// Sweep the chunk size at fixed transfer sizes (64 nodes). Expected
// trade-off: small chunks spread a single transfer over more daemons
// (better parallelism for large transfers, more per-slice overhead);
// large chunks reduce RPC fan-out but concentrate load.
#include <cstdio>

#include "bench_util.h"
#include "sim/data_sim.h"

using namespace gekko;
using namespace gekko::bench;
using namespace gekko::sim;

int main() {
  print_header(
      "ABLATION — chunk size sweep (64 nodes, sequential write,\n"
      "file-per-process); paper future work item #1");

  const std::uint64_t transfers[] = {64ull << 10, 1ull << 20, 64ull << 20};
  const std::uint32_t chunk_sizes[] = {64u << 10, 256u << 10, 512u << 10,
                                       1u << 20, 4u << 20};

  std::printf("%9s", "chunk");
  for (const auto t : transfers) {
    std::printf("   xfer=%-13llu",
                static_cast<unsigned long long>(t >> 10));
  }
  std::printf(" (KiB; cells: MiB/s / mean transfer latency)\n");

  Calibration cal;
  for (const std::uint32_t cs : chunk_sizes) {
    std::printf("%6uKiB", cs >> 10);
    for (const std::uint64_t t : transfers) {
      DataSimConfig d;
      d.nodes = 64;
      d.chunk_size = cs;
      d.transfer_size = t;
      d.write = true;
      const double chunks = static_cast<double>(t + cs - 1) / cs;
      const double touched = chunks < 64 ? chunks : 64.0;
      d.transfers_per_proc = scaled_ops(64, cal.procs_per_node,
                                        4.0 * touched + 4.0, 1.0e6, 2, 200);
      const SimResult r = run_gekkofs_data(d);
      char lat[24];
      if (r.mean_latency_s >= 0.5e-3) {
        std::snprintf(lat, sizeof(lat), "%.1fms", r.mean_latency_s * 1e3);
      } else {
        std::snprintf(lat, sizeof(lat), "%.0fus", r.mean_latency_s * 1e6);
      }
      std::printf("  %8.0f/%-9s", r.mib_per_sec, lat);
    }
    std::printf("\n");
  }
  std::printf(
      "\nSteady-state throughput is SSD-bound and insensitive to chunk\n"
      "size in this calibration; the trade-off shows in LATENCY: small\n"
      "chunks fan a large transfer over more daemons (parallel drain),\n"
      "large chunks serialize it on fewer SSDs. 512 KiB (the paper's\n"
      "default) keeps large-transfer latency near-minimal without the\n"
      "per-slice overhead of very small chunks.\n");
  return 0;
}
