// CAL — real-engine validation at laptop scale: runs the actual
// GekkoFS stack (client -> RPC -> daemon -> LSM KV + chunk store) and
// the baseline PFS under the same unmodified mdtest/IOR drivers.
//
// Numbers here are NOT the paper's (one machine, in-process fabric);
// they validate that the functional system behaves and that GekkoFS
// beats the centralized baseline on single-directory metadata storms
// even at tiny scale.
#include <cstdio>
#include <filesystem>

#include "bench_util.h"
#include "cluster/cluster.h"
#include "workload/ior.h"
#include "workload/mdtest.h"

using namespace gekko;
using namespace gekko::bench;

int main() {
  print_header(
      "REAL ENGINE — mdtest + IOR on the functional GekkoFS stack\n"
      "(in-process daemons; validates behaviour, not paper magnitudes)");

  const auto root = std::filesystem::temp_directory_path() /
                    ("gekko_real_" + std::to_string(::getpid()));
  std::filesystem::remove_all(root);

  for (const std::uint32_t nodes : {1u, 2u, 4u}) {
    cluster::ClusterOptions opts;
    opts.nodes = nodes;
    opts.root = root / ("n" + std::to_string(nodes));
    opts.daemon_options.chunk_size = 128 * 1024;
    opts.daemon_options.kv_options.background_compaction = true;
    auto c = cluster::Cluster::start(opts);
    if (!c.is_ok()) {
      std::printf("cluster start failed: %s\n",
                  c.status().to_string().c_str());
      return 1;
    }
    auto mount = (*c)->mount();
    workload::GekkoAdapter gekko_fs(*mount);

    baseline::ParallelFileSystem pfs;
    workload::BaselineAdapter baseline_fs(pfs);

    workload::MdtestConfig md;
    md.procs = 4;
    md.files_per_proc = 1500;

    auto g = workload::run_mdtest(gekko_fs, md);
    auto b = workload::run_mdtest(baseline_fs, md);
    if (!g.is_ok() || !b.is_ok()) {
      std::printf("mdtest failed: %s %s\n", g.status().to_string().c_str(),
                  b.status().to_string().c_str());
      return 1;
    }
    std::printf("\n-- mdtest, %u daemon(s), 4 procs x %u files, single dir --\n",
                nodes, md.files_per_proc);
    std::printf("%10s  %12s  %12s  %12s  %18s\n", "", "create/s", "stat/s",
                "remove/s", "create p50/p99 us");
    std::printf("%10s  %12s  %12s  %12s  %8.1f /%8.1f\n", "gekkofs",
                human_rate(g->create.ops_per_sec).c_str(),
                human_rate(g->stat.ops_per_sec).c_str(),
                human_rate(g->remove.ops_per_sec).c_str(), g->create.p50_us,
                g->create.p99_us);
    std::printf("%10s  %12s  %12s  %12s  %8.1f /%8.1f\n", "baseline",
                human_rate(b->create.ops_per_sec).c_str(),
                human_rate(b->stat.ops_per_sec).c_str(),
                human_rate(b->remove.ops_per_sec).c_str(), b->create.p50_us,
                b->create.p99_us);

    workload::IorConfig ior;
    ior.procs = 4;
    ior.transfer_size = 64 * 1024;
    ior.bytes_per_proc = 4ull << 20;
    ior.verify = true;
    auto io = workload::run_ior(gekko_fs, ior);
    if (!io.is_ok()) {
      std::printf("ior failed: %s\n", io.status().to_string().c_str());
      return 1;
    }
    std::printf("-- IOR,    %u daemon(s), 64 KiB transfers, 4x4 MiB --\n",
                nodes);
    std::printf("%10s  write %8.1f MiB/s   read %8.1f MiB/s   verified=%s\n",
                "gekkofs", io->write.mib_per_sec, io->read.mib_per_sec,
                io->verified ? "yes" : "NO");
    if (!io->verified || io->write.errors + io->read.errors > 0) {
      std::printf("DATA INTEGRITY FAILURE\n");
      return 1;
    }
  }
  std::filesystem::remove_all(root);
  return 0;
}
