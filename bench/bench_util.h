// Shared helpers for the reproduction bench binaries: the node grid
// used across Fig. 2 / Fig. 3 and aligned table printing.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace gekko::bench {

/// The paper's x-axis: 1..512 nodes, powers of two (16 procs/node).
inline std::vector<std::uint32_t> paper_node_grid() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};
}

/// Smaller grid for slower configurations.
inline std::vector<std::uint32_t> short_node_grid() {
  return {1, 4, 16, 64, 256, 512};
}

/// Pick ops-per-proc so one simulated point costs roughly
/// `event_budget` events (throughput is steady-state; more ops only
/// burn wall-clock).
inline std::uint32_t scaled_ops(std::uint32_t nodes,
                                std::uint32_t procs_per_node,
                                double events_per_op,
                                double event_budget = 1.5e6,
                                std::uint32_t lo = 20,
                                std::uint32_t hi = 400) {
  const double procs = static_cast<double>(nodes) * procs_per_node;
  const double ops = event_budget / (procs * events_per_op);
  if (ops < lo) return lo;
  if (ops > hi) return hi;
  return static_cast<std::uint32_t>(ops);
}

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

inline std::string human_rate(double v) {
  char buf[32];
  if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%8.2fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%8.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%9.1f", v);
  }
  return buf;
}

}  // namespace gekko::bench
