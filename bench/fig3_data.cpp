// Reproduces Figure 3 (a/b): IOR sequential write/read throughput for
// transfer sizes 8 KiB / 64 KiB / 1 MiB / 64 MiB, file-per-process,
// 1..512 nodes, against the aggregated-SSD-peak reference — plus the
// in-text claims: 141 GiB/s write (~80% of peak) and 204 GiB/s read
// (~70%) at 64 MiB, >13M write / >22M read IOPS and <=700 us mean
// latency at 8 KiB.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sim/data_sim.h"

using namespace gekko;
using namespace gekko::bench;
using namespace gekko::sim;

namespace {

struct SizeSpec {
  const char* label;
  std::uint64_t bytes;
};

const std::vector<SizeSpec>& transfer_sizes() {
  static const std::vector<SizeSpec> kSizes = {
      {"8k", 8ull << 10}, {"64k", 64ull << 10}, {"1m", 1ull << 20},
      {"64m", 64ull << 20}};
  return kSizes;
}

SimResult run_point(bool write, std::uint64_t transfer,
                    std::uint32_t nodes) {
  Calibration cal;
  DataSimConfig d;
  d.nodes = nodes;
  d.transfer_size = transfer;
  d.write = write;
  const double chunks =
      static_cast<double>(transfer + d.chunk_size - 1) / d.chunk_size;
  const double daemons_touched =
      chunks < nodes ? chunks : static_cast<double>(nodes);
  const double events_per_transfer = 4.0 * daemons_touched + 4.0;
  d.transfers_per_proc = scaled_ops(nodes, cal.procs_per_node,
                                    events_per_transfer, 1.2e6, 2, 200);
  return run_gekkofs_data(d);
}

}  // namespace

int main() {
  Calibration cal;
  print_header(
      "FIG 3 — IOR sequential throughput, file-per-process (MiB/s)\n"
      "paper: near-linear scaling; 64 MiB reaches ~80% (write) / ~70%\n"
      "(read) of the aggregated SSD peak (rightmost column)");

  double w512_64m = 0, r512_64m = 0, w512_8k = 0, r512_8k = 0;
  double lat_8k_us = 0;
  for (const bool write : {true, false}) {
    std::printf("\n-- Fig 3%c: sequential %s --\n", write ? 'a' : 'b',
                write ? "write" : "read");
    std::printf("%6s", "nodes");
    for (const auto& s : transfer_sizes()) std::printf("  %10s", s.label);
    std::printf("  %12s\n", "SSD peak");
    for (const std::uint32_t nodes : paper_node_grid()) {
      std::printf("%6u", nodes);
      for (const auto& s : transfer_sizes()) {
        const SimResult r = run_point(write, s.bytes, nodes);
        std::printf("  %10.0f", r.mib_per_sec);
        if (nodes == 512) {
          if (s.bytes == (64ull << 20)) {
            (write ? w512_64m : r512_64m) = r.mib_per_sec;
          }
          if (s.bytes == (8ull << 10)) {
            (write ? w512_8k : r512_8k) = r.mib_per_sec;
            if (write) lat_8k_us = r.mean_latency_s * 1e6;
          }
        }
      }
      std::printf("  %12.0f\n", ssd_peak_mib_s(cal, nodes, write));
    }
  }

  print_header("In-text claims at 512 nodes (paper -> measured)");
  const double peak_w = ssd_peak_mib_s(cal, 512, true);
  const double peak_r = ssd_peak_mib_s(cal, 512, false);
  std::printf("64MiB write: paper 141 GiB/s (~80%% of SSD peak) | measured "
              "%.0f GiB/s (%.0f%%)\n",
              w512_64m / 1024, 100.0 * w512_64m / peak_w);
  std::printf("64MiB read : paper 204 GiB/s (~70%% of SSD peak) | measured "
              "%.0f GiB/s (%.0f%%)\n",
              r512_64m / 1024, 100.0 * r512_64m / peak_r);
  std::printf("8KiB write IOPS: paper >13M | measured %.1fM\n",
              w512_8k * 1024 * 1024 / 8192 / 1e6);
  std::printf("8KiB read  IOPS: paper >22M | measured %.1fM\n",
              r512_8k * 1024 * 1024 / 8192 / 1e6);
  std::printf("8KiB mean latency: paper <=700 us | measured %.0f us\n",
              lat_8k_us);
  return 0;
}
