// Reproduces the bootstrap claim (TXT-BOOT): "The file system ... can
// be easily deployed in under 20 seconds on a 512 node cluster."
//
// We boot real daemons (KV store open + WAL create + chunk dir + RPC
// registration) in-process and report per-daemon boot cost. Real
// deployments start daemons in PARALLEL across nodes, so the cluster
// boot time is ~max over nodes, not the sum — we report both.
#include <cstdio>
#include <filesystem>

#include "bench_util.h"
#include "cluster/cluster.h"

using namespace gekko;
using namespace gekko::bench;

int main() {
  print_header(
      "STARTUP — daemon bootstrap cost (real engine, in-process)\n"
      "paper claim: 512-node deployment in < 20 s (parallel start)");

  const auto root = std::filesystem::temp_directory_path() /
                    ("gekko_startup_" + std::to_string(::getpid()));
  std::printf("%7s  %14s  %16s  %22s\n", "daemons", "total boot",
              "per daemon", "512-node estimate*");
  for (const std::uint32_t n : {1u, 4u, 16u, 64u}) {
    std::filesystem::remove_all(root);
    cluster::ClusterOptions opts;
    opts.nodes = n;
    opts.root = root;
    opts.daemon_options.kv_options.background_compaction = false;
    auto c = cluster::Cluster::start(opts);
    if (!c.is_ok()) {
      std::printf("cluster start failed: %s\n", c.status().to_string().c_str());
      return 1;
    }
    const double total_s = (*c)->bootstrap_time().count() / 1e9;
    const double per_daemon_s = total_s / n;
    // Parallel start: one daemon per node -> cluster boot ~= slowest
    // daemon (+ scheduler skew, generously 3x).
    std::printf("%7u  %12.3f s  %14.4f s  %18.3f s\n", n, total_s,
                per_daemon_s, 3.0 * per_daemon_s);
    c->reset();
  }
  std::filesystem::remove_all(root);
  std::printf(
      "\n*parallel start across nodes: ~3x one daemon's boot time.\n"
      "Paper's own number (<20 s at 512 nodes) includes job-launcher\n"
      "overhead; daemon-side cost is milliseconds, consistent with it.\n");
  return 0;
}
