// MICRO — google-benchmark microbenchmarks for the substrates GekkoFS
// sits on: hashing/placement, wire codec, chunk math, the LSM KV store,
// chunk storage, and RPC round-trips over the in-process fabric.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/crc32.h"
#include "common/hash.h"
#include "common/path.h"
#include "kv/db.h"
#include "kv/merge.h"
#include "net/fabric.h"
#include "proto/chunking.h"
#include "proto/distributor.h"
#include "rpc/engine.h"
#include "storage/chunk_storage.h"

namespace {

using namespace gekko;

void BM_Xxhash64(benchmark::State& state) {
  const std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(xxhash64(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Xxhash64)->Arg(32)->Arg(256)->Arg(4096)->Arg(1 << 16);

void BM_Crc32c(benchmark::State& state) {
  const std::string data(static_cast<std::size_t>(state.range(0)), 'y');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(1 << 16);

void BM_PathNormalize(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        path::normalize("/scratch/job.123//rank0/./ckpt/../out.bin"));
  }
}
BENCHMARK(BM_PathNormalize);

void BM_DistributorPlacement(benchmark::State& state) {
  proto::HashDistributor dist(static_cast<std::uint32_t>(state.range(0)));
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::string path = "/a/file." + std::to_string(i++ & 1023);
    benchmark::DoNotOptimize(dist.metadata_target(path));
    benchmark::DoNotOptimize(dist.chunk_target(path, i & 127));
  }
}
BENCHMARK(BM_DistributorPlacement)->Arg(8)->Arg(512);

void BM_SplitExtent(benchmark::State& state) {
  const std::uint64_t len = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::split_extent(123456, len, 512 * 1024));
  }
}
BENCHMARK(BM_SplitExtent)->Arg(8 << 10)->Arg(64 << 20);

void BM_CodecEncodeDecode(benchmark::State& state) {
  for (auto _ : state) {
    std::vector<std::uint8_t> buf;
    Encoder enc(&buf);
    enc.str("/some/path/to/a/file");
    enc.u64(0xdeadbeef);
    enc.varint(12345);
    Decoder dec(buf);
    benchmark::DoNotOptimize(dec.str());
    benchmark::DoNotOptimize(dec.u64());
    benchmark::DoNotOptimize(dec.varint());
  }
}
BENCHMARK(BM_CodecEncodeDecode);

// ---------- KV store ----------

struct KvFixture {
  std::filesystem::path dir;
  std::unique_ptr<kv::DB> db;

  KvFixture() {
    dir = std::filesystem::temp_directory_path() /
          ("gekko_kvbench_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    kv::Options opts;
    opts.background_compaction = true;
    opts.merge_operator = std::make_shared<kv::U64MaxMergeOperator>();
    db = std::move(*kv::DB::open(dir, opts));
  }
  ~KvFixture() {
    db.reset();
    std::filesystem::remove_all(dir);
  }
};

void BM_KvPut(benchmark::State& state) {
  KvFixture fx;
  std::uint64_t i = 0;
  const std::string value(64, 'v');
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.db->put("/bench/file." + std::to_string(i++), value));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_KvPut);

void BM_KvGetHit(benchmark::State& state) {
  KvFixture fx;
  const std::string value(64, 'v');
  for (int i = 0; i < 10000; ++i) {
    (void)fx.db->put("/bench/file." + std::to_string(i), value);
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.db->get("/bench/file." + std::to_string(i++ % 10000)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_KvGetHit);

void BM_KvGetMissBloom(benchmark::State& state) {
  KvFixture fx;
  const std::string value(64, 'v');
  for (int i = 0; i < 10000; ++i) {
    (void)fx.db->put("/bench/file." + std::to_string(i), value);
  }
  (void)fx.db->flush();  // misses go through SST bloom filters
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.db->get("/absent/file." + std::to_string(i++)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_KvGetMissBloom);

void BM_KvMergeSizeUpdate(benchmark::State& state) {
  KvFixture fx;
  (void)fx.db->put("/shared", kv::U64MaxMergeOperator::encode(0));
  std::uint64_t size = 0;
  for (auto _ : state) {
    size += 8192;
    benchmark::DoNotOptimize(
        fx.db->merge("/shared", kv::U64MaxMergeOperator::encode(size)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_KvMergeSizeUpdate);

// ---------- chunk storage ----------

void BM_ChunkWrite(benchmark::State& state) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("gekko_csbench_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  auto cs = storage::ChunkStorage::open(dir, 512 * 1024);
  const std::vector<std::uint8_t> data(
      static_cast<std::size_t>(state.range(0)), 0xab);
  std::uint64_t chunk = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cs->write_chunk("/bench/file", chunk++ % 64, 0, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_ChunkWrite)->Arg(8 << 10)->Arg(512 << 10);

// ---------- RPC ----------

void BM_RpcRoundTrip(benchmark::State& state) {
  net::LoopbackFabric fabric;
  rpc::EngineOptions server_opts;
  server_opts.name = "bench-server";
  rpc::Engine server(fabric, server_opts);
  server.register_rpc(1, "echo", [](const net::Message& msg) {
    return Result<std::vector<std::uint8_t>>(msg.payload);
  });
  rpc::EngineOptions client_opts;
  client_opts.name = "bench-client";
  rpc::Engine client(fabric, client_opts);

  std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        client.forward(server.endpoint(), 1, payload));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RpcRoundTrip)->Arg(64)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
