// Metadata engine at millions-of-files scale: batched metadata RPCs
// vs one-RPC-per-op, on the real stack (client -> RPC -> daemon ->
// LSM KV), emitting BENCH_metadata_scale.json.
//
// Three mdtest passes against a 4-daemon in-process cluster with
// background compaction ON and a deliberately small memtable budget so
// the create storm drives many flushes and L0->L1 compactions while
// the foreground keeps writing:
//
//   unbatched  classic mdtest: one create/stat/remove RPC per file
//   batched    bulk phases: create_many/stat_many/remove_many in
//              chunks of 128 (client shards each chunk per daemon and
//              fans out batch_create / batch_stat / batch_remove)
//   coalesced  classic single-op API again, but with the client-side
//              Batcher enabled (informational: what transparent
//              coalescing buys synchronous one-at-a-time callers)
//
// Total files created across the passes exceeds one million.
//
// Acceptance gates (gate_ok in the JSON, nonzero exit on failure):
//   - batched create ops/s >= 3x unbatched create ops/s
//   - sum of kv.stall.foreground_ms over all daemons == 0, i.e. no
//     writer ever hard-blocked on the compaction pipeline
//
//   metadata_scale [output.json]   (default: BENCH_metadata_scale.json)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/cluster.h"
#include "kv/db.h"
#include "workload/mdtest.h"

using namespace gekko;
using namespace gekko::bench;

namespace {

constexpr std::uint32_t kDaemons = 4;
constexpr std::uint32_t kProcs = 8;
constexpr std::uint32_t kUnbatchedFiles = 25'000;   // x8 procs = 200k
constexpr std::uint32_t kBatchedFiles = 100'000;    // x8 procs = 800k
constexpr std::uint32_t kCoalescedFiles = 2'000;    // x8 procs =  16k
constexpr std::uint32_t kBatchSize = 256;

struct KvTotals {
  std::uint64_t stall_stops = 0;
  std::uint64_t stall_foreground_ms = 0;
  std::uint64_t stall_slowdowns = 0;
  std::uint64_t flushes = 0;
  std::uint64_t compactions = 0;
  std::uint64_t compact_bytes_in = 0;
  std::vector<std::uint64_t> puts_per_daemon;
};

KvTotals collect_kv(cluster::Cluster& c) {
  KvTotals t;
  for (std::uint32_t i = 0; i < c.node_count(); ++i) {
    const kv::DbStats s = c.daemon(i).metadata().db().stats();
    t.stall_stops += s.stall_stops;
    t.stall_foreground_ms += s.stall_foreground_ms;
    t.stall_slowdowns += s.stall_slowdowns;
    t.flushes += s.flushes;
    t.compactions += s.compactions;
    t.compact_bytes_in += s.compact_bytes_in;
    t.puts_per_daemon.push_back(s.puts);
  }
  return t;
}

void print_pass(const char* name, const workload::MdtestResult& r) {
  std::printf("%10s  create %10s/s (p50 %7.1f us, p99 %8.1f us)  "
              "stat %10s/s  remove %10s/s  errors=%llu\n",
              name, human_rate(r.create.ops_per_sec).c_str(), r.create.p50_us,
              r.create.p99_us, human_rate(r.stat.ops_per_sec).c_str(),
              human_rate(r.remove.ops_per_sec).c_str(),
              static_cast<unsigned long long>(r.create.errors +
                                              r.stat.errors +
                                              r.remove.errors));
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_metadata_scale.json";
  print_header(
      "METADATA SCALE — batched metadata RPCs + stall-free compaction\n"
      "(4 daemons, >1M files total; gates: batched creates >= 3x\n"
      " unbatched, kv.stall.foreground_ms == 0 with background\n"
      " compaction on)");

  const auto root = std::filesystem::temp_directory_path() /
                    ("gekko_md_scale_" + std::to_string(::getpid()));
  std::filesystem::remove_all(root);

  // Each pass gets its own cold cluster so no mode inherits the
  // previous pass's compaction debt; kv totals are summed across all
  // passes (the stall gate must hold everywhere), while the per-daemon
  // put spread is reported from the big batched pass.
  KvTotals kvt;
  std::vector<std::uint64_t> batched_puts;
  const auto run_pass =
      [&](const char* name, const workload::MdtestConfig& md,
          const client::ClientOptions& copts) -> Result<workload::MdtestResult> {
    cluster::ClusterOptions opts;
    opts.nodes = kDaemons;
    opts.root = root / name;
    opts.daemon_options.kv_options.background_compaction = true;
    // Small memtables: ~1M metadata records must ride through dozens of
    // flushes and L0->L1 compactions while creates keep arriving.
    opts.daemon_options.kv_options.memtable_budget = 1 * 1024 * 1024;
    auto c = cluster::Cluster::start(opts);
    if (!c.is_ok()) return c.status();
    auto mount = (*c)->mount(copts);
    workload::GekkoAdapter fs(*mount);
    auto r = workload::run_mdtest(fs, md);
    if (!r.is_ok()) return r.status();
    const KvTotals pass_kv = collect_kv(**c);
    kvt.stall_stops += pass_kv.stall_stops;
    kvt.stall_foreground_ms += pass_kv.stall_foreground_ms;
    kvt.stall_slowdowns += pass_kv.stall_slowdowns;
    kvt.flushes += pass_kv.flushes;
    kvt.compactions += pass_kv.compactions;
    kvt.compact_bytes_in += pass_kv.compact_bytes_in;
    if (md.batch_size > 1) batched_puts = pass_kv.puts_per_daemon;
    print_pass(name, *r);
    return r;
  };

  workload::MdtestConfig md;
  md.procs = kProcs;

  // Pass 1: classic one-RPC-per-op mdtest.
  md.files_per_proc = kUnbatchedFiles;
  md.base_dir = "/md_unbatched";
  auto unbatched = run_pass("unbatched", md, {});
  if (!unbatched.is_ok()) {
    std::fprintf(stderr, "unbatched pass failed: %s\n",
                 unbatched.status().to_string().c_str());
    return 1;
  }

  // Pass 2: bulk-RPC mdtest — the tentpole measurement.
  md.files_per_proc = kBatchedFiles;
  md.base_dir = "/md_batched";
  md.batch_size = kBatchSize;
  auto batched = run_pass("batched", md, {});
  if (!batched.is_ok()) {
    std::fprintf(stderr, "batched pass failed: %s\n",
                 batched.status().to_string().c_str());
    return 1;
  }

  // Pass 3: single-op API with the transparent client-side Batcher.
  client::ClientOptions copts;
  copts.batch.enabled = true;
  copts.batch.max_entries = kProcs;  // flush as soon as all ranks queue
  copts.batch.max_delay = std::chrono::milliseconds(1);
  md.files_per_proc = kCoalescedFiles;
  md.base_dir = "/md_coalesced";
  md.batch_size = 0;
  auto coalesced = run_pass("coalesced", md, copts);
  if (!coalesced.is_ok()) {
    std::fprintf(stderr, "coalesced pass failed: %s\n",
                 coalesced.status().to_string().c_str());
    return 1;
  }
  kvt.puts_per_daemon = batched_puts;
  const std::uint64_t total_files =
      static_cast<std::uint64_t>(kProcs) *
      (kUnbatchedFiles + kBatchedFiles + kCoalescedFiles);
  const double speedup =
      unbatched->create.ops_per_sec > 0
          ? batched->create.ops_per_sec / unbatched->create.ops_per_sec
          : 0.0;
  const std::uint64_t errors =
      unbatched->create.errors + unbatched->stat.errors +
      unbatched->remove.errors + batched->create.errors +
      batched->stat.errors + batched->remove.errors +
      coalesced->create.errors + coalesced->stat.errors +
      coalesced->remove.errors;
  const bool gate_ok = speedup >= 3.0 && kvt.stall_foreground_ms == 0 &&
                       errors == 0;

  std::printf("\ntotal files created: %llu\n",
              static_cast<unsigned long long>(total_files));
  std::printf("batched/unbatched create speedup: %.2fx (gate: >= 3.0)\n",
              speedup);
  std::printf("kv totals: flushes=%llu compactions=%llu "
              "stall_stops=%llu stall_foreground_ms=%llu "
              "stall_slowdowns=%llu\n",
              static_cast<unsigned long long>(kvt.flushes),
              static_cast<unsigned long long>(kvt.compactions),
              static_cast<unsigned long long>(kvt.stall_stops),
              static_cast<unsigned long long>(kvt.stall_foreground_ms),
              static_cast<unsigned long long>(kvt.stall_slowdowns));
  std::printf("kv puts per daemon:");
  for (const auto p : kvt.puts_per_daemon) {
    std::printf(" %llu", static_cast<unsigned long long>(p));
  }
  std::printf("\n");

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  const auto phase_json = [&](const char* name,
                              const workload::PhaseResult& p,
                              const char* trail) {
    std::fprintf(f,
                 "    \"%s\": {\"ops_per_sec\": %.1f, \"p50_us\": %.1f, "
                 "\"p99_us\": %.1f, \"errors\": %llu}%s\n",
                 name, p.ops_per_sec, p.p50_us, p.p99_us,
                 static_cast<unsigned long long>(p.errors), trail);
  };
  std::fprintf(f,
               "{\n  \"bench\": \"metadata_scale\",\n  \"daemons\": %u,\n"
               "  \"procs\": %u,\n  \"batch_size\": %u,\n"
               "  \"total_files\": %llu,\n",
               kDaemons, kProcs, kBatchSize,
               static_cast<unsigned long long>(total_files));
  std::fprintf(f, "  \"unbatched\": {\n");
  phase_json("create", unbatched->create, ",");
  phase_json("stat", unbatched->stat, ",");
  phase_json("remove", unbatched->remove, "");
  std::fprintf(f, "  },\n  \"batched\": {\n");
  phase_json("create", batched->create, ",");
  phase_json("stat", batched->stat, ",");
  phase_json("remove", batched->remove, "");
  std::fprintf(f, "  },\n  \"coalesced\": {\n");
  phase_json("create", coalesced->create, ",");
  phase_json("stat", coalesced->stat, ",");
  phase_json("remove", coalesced->remove, "");
  std::fprintf(f, "  },\n  \"kv\": {\n");
  std::fprintf(f,
               "    \"flushes\": %llu,\n    \"compactions\": %llu,\n"
               "    \"compact_bytes_in\": %llu,\n"
               "    \"stall_stops\": %llu,\n"
               "    \"stall_foreground_ms\": %llu,\n"
               "    \"stall_slowdowns\": %llu,\n    \"puts_per_daemon\": [",
               static_cast<unsigned long long>(kvt.flushes),
               static_cast<unsigned long long>(kvt.compactions),
               static_cast<unsigned long long>(kvt.compact_bytes_in),
               static_cast<unsigned long long>(kvt.stall_stops),
               static_cast<unsigned long long>(kvt.stall_foreground_ms),
               static_cast<unsigned long long>(kvt.stall_slowdowns));
  for (std::size_t i = 0; i < kvt.puts_per_daemon.size(); ++i) {
    std::fprintf(f, "%s%llu", i > 0 ? ", " : "",
                 static_cast<unsigned long long>(kvt.puts_per_daemon[i]));
  }
  std::fprintf(f,
               "]\n  },\n  \"create_speedup\": %.3f,\n"
               "  \"gate_min_speedup\": 3.0,\n"
               "  \"gate_stall_foreground_ms\": 0,\n"
               "  \"gate_ok\": %s\n}\n",
               speedup, gate_ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s (gate_ok=%s)\n", out_path,
              gate_ok ? "true" : "false");

  std::filesystem::remove_all(root);
  return gate_ok ? 0 : 1;
}
