// Interactive GekkoFS shell: a tiny REPL over the public Mount API,
// useful for poking a deployment by hand.
//
//   $ ./examples/gkfs_shell [root-dir] [nodes]        # embedded daemons
//   $ ./examples/gkfs_shell --attach <hostfile>        # running gkfsd's
//   gkfs> put /etc/hostname /host
//   gkfs> ls /
//   gkfs> cat /host
//   gkfs> stat /host
//   gkfs> df
//
// Commands: ls [dir] | cat <f> | put <local> <gkfs> | get <gkfs> <local>
//           | write <f> <text> | stat <f> | rm <f> | mkdir <d>
//           | rmdir <d> | truncate <f> <size> | df | help | quit
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/units.h"
#include "net/transport.h"

using namespace gekko;

namespace {

void print_help() {
  std::printf(
      "commands:\n"
      "  ls [dir]            list directory (readdir broadcast)\n"
      "  cat <file>          print file contents\n"
      "  write <file> <txt>  write text to a file\n"
      "  put <local> <gkfs>  copy a local file into GekkoFS\n"
      "  get <gkfs> <local>  copy out of GekkoFS\n"
      "  stat <path>         show metadata\n"
      "  rm <file>           unlink\n"
      "  mkdir/rmdir <dir>   directories\n"
      "  truncate <f> <n>    set file size\n"
      "  df                  per-daemon statistics\n"
      "  quit\n");
}

Result<std::vector<std::uint8_t>> read_whole(fs::Mount& mnt,
                                             const std::string& path) {
  auto md = mnt.stat(path);
  if (!md) return md.status();
  std::vector<std::uint8_t> buf(md->size);
  auto fd = mnt.open(path, fs::rd_only);
  if (!fd) return fd.status();
  auto n = mnt.pread(*fd, buf, 0);
  (void)mnt.close(*fd);
  if (!n) return n.status();
  buf.resize(*n);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<net::HostedFabric> socket_fabric;
  std::unique_ptr<fs::Mount> mnt;

  if (argc > 2 && std::string(argv[1]) == "--attach") {
    // Attached mode: talk to running gkfsd processes over Unix
    // sockets or TCP, per the hostfile's addresses.
    auto fabric = net::make_fabric(argv[2], {});
    if (!fabric) {
      std::fprintf(stderr, "attach failed: %s\n",
                   fabric.status().to_string().c_str());
      return 1;
    }
    socket_fabric = std::move(*fabric);
    auto daemons = socket_fabric->daemon_ids();
    mnt = std::make_unique<fs::Mount>(*socket_fabric, daemons);
    std::printf("GekkoFS shell — attached to %zu gkfsd daemon(s) via %s\n",
                daemons.size(), argv[2]);
  } else {
    const std::filesystem::path root =
        argc > 1 ? std::filesystem::path(argv[1])
                 : std::filesystem::temp_directory_path() / "gkfs_shell";
    const std::uint32_t nodes =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 4;

    cluster::ClusterOptions opts;
    opts.nodes = nodes;
    opts.root = root;
    auto booted = cluster::Cluster::start(opts);
    if (!booted) {
      std::fprintf(stderr, "boot failed: %s\n",
                   booted.status().to_string().c_str());
      return 1;
    }
    cluster = std::move(*booted);
    mnt = cluster->mount();
    std::printf(
        "GekkoFS shell — %u daemons over %s (state persists there)\n",
        nodes, root.c_str());
  }
  print_help();

  std::string line;
  while (true) {
    std::printf("gkfs> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::istringstream iss(line);
    std::string cmd, a, b;
    iss >> cmd >> a;
    std::getline(iss, b);
    if (!b.empty() && b.front() == ' ') b.erase(0, 1);

    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      print_help();
      continue;
    }

    Status st = Status::ok();
    if (cmd == "ls") {
      auto entries = mnt->client().readdir(a.empty() ? "/" : a);
      if (!entries) {
        st = entries.status();
      } else {
        for (const auto& e : *entries) {
          std::printf("%s%s\n", e.name.c_str(),
                      e.type == proto::FileType::directory ? "/" : "");
        }
      }
    } else if (cmd == "cat") {
      auto data = read_whole(*mnt, a);
      if (!data) {
        st = data.status();
      } else {
        fwrite(data->data(), 1, data->size(), stdout);
        if (!data->empty() && data->back() != '\n') std::printf("\n");
      }
    } else if (cmd == "write") {
      auto fd = mnt->open(a, fs::create | fs::wr_only | fs::trunc);
      if (!fd) {
        st = fd.status();
      } else {
        std::vector<std::uint8_t> bytes(b.begin(), b.end());
        auto n = mnt->pwrite(*fd, bytes, 0);
        if (!n) st = n.status();
        (void)mnt->close(*fd);
      }
    } else if (cmd == "put") {
      std::ifstream in(a, std::ios::binary);
      if (!in) {
        std::printf("cannot read %s\n", a.c_str());
        continue;
      }
      std::vector<std::uint8_t> bytes(
          (std::istreambuf_iterator<char>(in)),
          std::istreambuf_iterator<char>());
      auto fd = mnt->open(b, fs::create | fs::wr_only | fs::trunc);
      if (!fd) {
        st = fd.status();
      } else {
        auto n = mnt->pwrite(*fd, bytes, 0);
        if (!n) st = n.status();
        (void)mnt->close(*fd);
        std::printf("wrote %s\n", format_bytes(bytes.size()).c_str());
      }
    } else if (cmd == "get") {
      auto data = read_whole(*mnt, a);
      if (!data) {
        st = data.status();
      } else {
        std::ofstream out(b, std::ios::binary);
        out.write(reinterpret_cast<const char*>(data->data()),
                  static_cast<std::streamsize>(data->size()));
        std::printf("read %s\n", format_bytes(data->size()).c_str());
      }
    } else if (cmd == "stat") {
      auto md = mnt->stat(a);
      if (!md) {
        st = md.status();
      } else {
        std::printf("%s: %s, size=%s, mode=%o, mtime_ns=%lld\n", a.c_str(),
                    md->is_directory() ? "directory" : "regular file",
                    format_bytes(md->size).c_str(), md->mode,
                    static_cast<long long>(md->mtime_ns));
      }
    } else if (cmd == "rm") {
      st = mnt->unlink(a);
    } else if (cmd == "mkdir") {
      st = mnt->mkdir(a);
    } else if (cmd == "rmdir") {
      st = mnt->rmdir(a);
    } else if (cmd == "truncate") {
      st = mnt->truncate(a, std::strtoull(b.c_str(), nullptr, 10));
    } else if (cmd == "df") {
      auto stats = mnt->client().daemon_stats();
      if (!stats) {
        st = stats.status();
      } else {
        std::printf("%7s %10s %14s %14s\n", "daemon", "entries",
                    "bytes written", "bytes read");
        for (std::size_t d = 0; d < stats->size(); ++d) {
          std::printf("%7zu %10llu %14s %14s\n", d,
                      static_cast<unsigned long long>(
                          (*stats)[d].metadata_entries),
                      format_bytes((*stats)[d].bytes_written).c_str(),
                      format_bytes((*stats)[d].bytes_read).c_str());
        }
      }
    } else {
      std::printf("unknown command '%s' (try help)\n", cmd.c_str());
      continue;
    }
    if (!st.is_ok()) std::printf("error: %s\n", st.to_string().c_str());
  }
  return 0;
}
