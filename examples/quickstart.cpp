// Quickstart: boot a 4-daemon GekkoFS deployment in-process, mount it,
// and exercise the POSIX-like API end to end.
//
//   $ ./examples/quickstart [workdir]
//
// This mirrors the paper's usage model: a temporary file system pooled
// from node-local storage for the lifetime of a job, deployed by the
// user in seconds, destroyed afterwards.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/units.h"

using namespace gekko;

int main(int argc, char** argv) {
  const std::filesystem::path root =
      argc > 1 ? std::filesystem::path(argv[1])
               : std::filesystem::temp_directory_path() / "gekko_quickstart";
  std::filesystem::remove_all(root);

  // 1. Deploy: one daemon per "node", pooling node-local storage.
  cluster::ClusterOptions opts;
  opts.nodes = 4;
  opts.root = root;
  opts.daemon_options.chunk_size = 512 * 1024;  // the paper's default
  auto cluster = cluster::Cluster::start(opts);
  if (!cluster) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 cluster.status().to_string().c_str());
    return 1;
  }
  std::printf("deployed %u daemons in %.1f ms (paper: <20 s for 512 nodes)\n",
              (*cluster)->node_count(),
              (*cluster)->bootstrap_time().count() / 1e6);

  // 2. Mount: every client resolves placement independently; there is
  //    no metadata master to contact.
  auto mnt = (*cluster)->mount();

  // 3. Files: create, write across chunks (and therefore across
  //    daemons), read back.
  if (Status st = mnt->mkdir("/job42"); !st.is_ok()) {
    std::fprintf(stderr, "mkdir: %s\n", st.to_string().c_str());
    return 1;
  }
  auto fd = mnt->open("/job42/output.dat", fs::create | fs::rd_wr);
  if (!fd) return 1;

  std::vector<std::uint8_t> block(3 * 512 * 1024 + 777);  // 3+ chunks
  for (std::size_t i = 0; i < block.size(); ++i) {
    block[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  }
  auto written = mnt->pwrite(*fd, block, 0);
  if (!written || *written != block.size()) return 1;

  auto md = mnt->fstat(*fd);
  std::printf("wrote %s; stat says size=%s (chunks spread over %u daemons)\n",
              format_bytes(block.size()).c_str(),
              format_bytes(md->size).c_str(), (*cluster)->node_count());

  std::vector<std::uint8_t> back(block.size());
  auto read = mnt->pread(*fd, back, 0);
  std::printf("read back %s: %s\n", format_bytes(*read).c_str(),
              back == block ? "content verified" : "MISMATCH");
  (void)mnt->close(*fd);

  // 4. Directory listing is an eventually-consistent broadcast.
  for (int i = 0; i < 5; ++i) {
    auto f = mnt->open("/job42/part." + std::to_string(i),
                       fs::create | fs::wr_only);
    if (f) (void)mnt->close(*f);
  }
  auto dirfd = mnt->opendir("/job42");
  std::printf("ls /job42:");
  while (true) {
    auto entry = mnt->readdir(*dirfd);
    if (!entry || !entry->has_value()) break;
    std::printf(" %s", (*entry)->name.c_str());
  }
  std::printf("\n");
  (void)mnt->closedir(*dirfd);

  // 5. Relaxed POSIX: rename does not exist, by design.
  Status st = mnt->rename("/job42/output.dat", "/job42/renamed.dat");
  std::printf("rename -> %s (GekkoFS drops rarely-used POSIX features)\n",
              st.to_string().c_str());

  // 6. Teardown is just dropping the cluster; the namespace was
  //    temporary by design.
  mnt.reset();
  cluster->reset();
  std::filesystem::remove_all(root);
  std::printf("done.\n");
  return 0;
}
