#!/bin/sh
# Demonstrates the full GekkoFS deployment model with UNMODIFIED system
# tools (paper §III.B.a): real `gkfsd` daemon processes + the
# LD_PRELOAD client interposition library.
#
# Run from the repository root after building:
#   sh examples/preload_demo.sh [build-dir]
set -e

BUILD="${1:-build}"
LIB="$PWD/$BUILD/src/preload/libgkfs_preload.so"
GKFSD="$PWD/$BUILD/tools/gkfsd"
if [ ! -f "$LIB" ] || [ ! -x "$GKFSD" ]; then
  echo "build artifacts missing under $BUILD — build first" >&2
  exit 1
fi

DEMO="$(mktemp -d /tmp/gkfs-demo.XXXXXX)"
trap 'kill $D0 $D1 2>/dev/null; rm -rf "$DEMO" /tmp/gkfs_demo_src.txt' EXIT

echo "== 1. deploy: two gkfsd daemon PROCESSES + a shared hostfile =="
printf '0 %s/gkfsd.0.sock\n1 %s/gkfsd.1.sock\n' "$DEMO" "$DEMO" \
  > "$DEMO/hosts.txt"
"$GKFSD" "$DEMO/hosts.txt" 0 "$DEMO/node0" 2>/dev/null & D0=$!
"$GKFSD" "$DEMO/hosts.txt" 1 "$DEMO/node1" 2>/dev/null & D1=$!
while [ ! -S "$DEMO/gkfsd.0.sock" ] || [ ! -S "$DEMO/gkfsd.1.sock" ]; do
  sleep 0.1
done
echo "   daemons up ($D0, $D1)"

run() { LD_PRELOAD="$LIB" GKFS_MOUNT=/gkfs \
        GKFS_HOSTFILE="$DEMO/hosts.txt" "$@"; }

echo "== 2. unmodified tools through the interposition library =="
echo "hello from an unmodified tool" > /tmp/gkfs_demo_src.txt
run cp /tmp/gkfs_demo_src.txt /gkfs/hello.txt
run cat /gkfs/hello.txt
run mkdir /gkfs/results
run cp /tmp/gkfs_demo_src.txt /gkfs/results/a.txt
run ls -la /gkfs/results
run stat -c '%n: %s bytes, %F' /gkfs/results/a.txt

echo "== 3. CONCURRENT client processes (daemons own all state) =="
CP_PIDS=""
for i in 1 2 3 4; do
  run cp /tmp/gkfs_demo_src.txt "/gkfs/rank$i.out" &
  CP_PIDS="$CP_PIDS $!"
done
# wait only for the cp jobs — the daemons run until teardown
wait $CP_PIDS
run ls /gkfs/

echo "== 4. dd both directions =="
run dd if=/dev/zero of=/gkfs/zeros.bin bs=4096 count=8 2>/dev/null
run dd if=/gkfs/zeros.bin of=/dev/null bs=1024 2>/dev/null
run stat -c '%n: %s bytes' /gkfs/zeros.bin

echo "== 5. rename refused by design (paper relaxes POSIX) =="
run mv /gkfs/hello.txt /gkfs/renamed.txt 2>&1 || echo "   (mv failed as expected)"

echo "== 6. teardown: kill the daemons; the namespace was temporary =="
echo "done."
