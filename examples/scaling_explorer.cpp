// Scaling explorer: poke the cluster models from the command line.
//
//   ./scaling_explorer meta  <nodes> [create|stat|remove]
//   ./scaling_explorer data  <nodes> <transfer_bytes> [write|read]
//                            [seq|random] [fpp|shared] [cache_interval]
//   ./scaling_explorer lustre <nodes> [create|stat|remove] [single|unique]
//
// Useful for what-if questions the paper's figures don't cover
// directly, e.g. "where does the shared-file ceiling bite at 48 nodes
// with a cache interval of 8?"
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/data_sim.h"
#include "sim/metadata_sim.h"

using namespace gekko::sim;

namespace {

MetaPhase parse_phase(const char* s) {
  if (std::strcmp(s, "stat") == 0) return MetaPhase::stat;
  if (std::strcmp(s, "remove") == 0) return MetaPhase::remove;
  return MetaPhase::create;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  scaling_explorer meta   <nodes> [create|stat|remove]\n"
      "  scaling_explorer data   <nodes> <transfer_bytes> [write|read]\n"
      "                          [seq|random] [fpp|shared] [cache_interval]\n"
      "  scaling_explorer lustre <nodes> [create|stat|remove] "
      "[single|unique]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::uint32_t nodes =
      static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10));
  if (nodes == 0) return usage();

  if (std::strcmp(argv[1], "meta") == 0) {
    MetadataSimConfig cfg;
    cfg.nodes = nodes;
    cfg.phase = argc > 3 ? parse_phase(argv[3]) : MetaPhase::create;
    cfg.ops_per_proc = 200;
    const SimResult r = run_gekkofs_metadata(cfg);
    std::printf("gekkofs metadata: %u nodes -> %.3g ops/s "
                "(mean latency %.1f us, %llu sim events)\n",
                nodes, r.ops_per_sec, r.mean_latency_s * 1e6,
                static_cast<unsigned long long>(r.events));
    return 0;
  }

  if (std::strcmp(argv[1], "lustre") == 0) {
    LustreSimConfig cfg;
    cfg.nodes = nodes;
    cfg.phase = argc > 3 ? parse_phase(argv[3]) : MetaPhase::create;
    cfg.single_dir = !(argc > 4 && std::strcmp(argv[4], "unique") == 0);
    cfg.ops_per_proc = 100;
    const SimResult r = run_lustre_metadata(cfg);
    std::printf("lustre (%s dir): %u nodes -> %.3g ops/s "
                "(mean latency %.1f us)\n",
                cfg.single_dir ? "single" : "unique", nodes, r.ops_per_sec,
                r.mean_latency_s * 1e6);
    return 0;
  }

  if (std::strcmp(argv[1], "data") == 0) {
    if (argc < 4) return usage();
    DataSimConfig cfg;
    cfg.nodes = nodes;
    cfg.transfer_size = std::strtoull(argv[3], nullptr, 10);
    cfg.write = !(argc > 4 && std::strcmp(argv[4], "read") == 0);
    cfg.random_offsets = argc > 5 && std::strcmp(argv[5], "random") == 0;
    cfg.shared_file = argc > 6 && std::strcmp(argv[6], "shared") == 0;
    cfg.size_cache_interval =
        argc > 7 ? static_cast<std::uint32_t>(std::atoi(argv[7])) : 0;
    cfg.transfers_per_proc = 40;
    const SimResult r = run_gekkofs_data(cfg);
    std::printf("gekkofs data: %u nodes, %llu B %s %s %s -> %.0f MiB/s, "
                "%.3g ops/s (mean latency %.0f us)\n",
                nodes,
                static_cast<unsigned long long>(cfg.transfer_size),
                cfg.write ? "write" : "read",
                cfg.random_offsets ? "random" : "seq",
                cfg.shared_file ? "shared" : "fpp", r.mib_per_sec,
                r.ops_per_sec, r.mean_latency_s * 1e6);
    std::printf("aggregated SSD peak at this scale: %.0f MiB/s\n",
                ssd_peak_mib_s(cfg.cal, nodes, cfg.write));
    return 0;
  }
  return usage();
}
