// Checkpoint/restart — the canonical burst-buffer workload (paper §I:
// burst buffers "reduce the PFS' load and the applications' I/O
// overhead").
//
// Phase 1 (checkpoint): R simulated ranks dump their state as one file
// per rank per epoch (N-to-N checkpointing), hammering the temporary
// file system instead of the parallel file system.
// Phase 2 (failure): the daemons restart (the job's node-local data
// survives on the SSDs).
// Phase 3 (restart): every rank locates and re-reads its newest
// checkpoint and verifies integrity.
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/units.h"

using namespace gekko;

namespace {

constexpr std::uint32_t kRanks = 8;
constexpr std::uint32_t kEpochs = 3;
constexpr std::size_t kStateBytes = 256 * 1024;

std::vector<std::uint8_t> rank_state(std::uint32_t rank,
                                     std::uint32_t epoch) {
  std::vector<std::uint8_t> state(kStateBytes);
  Xoshiro256 rng(xxhash64("ckpt", rank * 1000ULL + epoch));
  for (auto& b : state) b = static_cast<std::uint8_t>(rng());
  return state;
}

std::string ckpt_path(std::uint32_t rank, std::uint32_t epoch) {
  return "/ckpt/epoch" + std::to_string(epoch) + "/rank" +
         std::to_string(rank) + ".dat";
}

}  // namespace

int main() {
  const auto root =
      std::filesystem::temp_directory_path() / "gekko_ckpt_example";
  std::filesystem::remove_all(root);

  cluster::ClusterOptions opts;
  opts.nodes = 4;
  opts.root = root;
  opts.daemon_options.chunk_size = 64 * 1024;
  auto cluster = cluster::Cluster::start(opts);
  if (!cluster) return 1;

  // ---- phase 1: checkpoint epochs ----
  {
    auto mnt = (*cluster)->mount();
    (void)mnt->mkdir("/ckpt");
    for (std::uint32_t epoch = 0; epoch < kEpochs; ++epoch) {
      (void)mnt->mkdir("/ckpt/epoch" + std::to_string(epoch));
      std::vector<std::thread> ranks;
      for (std::uint32_t r = 0; r < kRanks; ++r) {
        ranks.emplace_back([&, r, epoch] {
          const auto state = rank_state(r, epoch);
          auto fd = mnt->open(ckpt_path(r, epoch),
                              fs::create | fs::wr_only | fs::trunc);
          if (!fd) return;
          (void)mnt->pwrite(*fd, state, 0);
          (void)mnt->fsync(*fd);
          (void)mnt->close(*fd);
        });
      }
      for (auto& t : ranks) t.join();
      std::printf("epoch %u: %u ranks x %s checkpointed\n", epoch, kRanks,
                  format_bytes(kStateBytes).c_str());
    }
  }

  // ---- phase 2: the job "fails"; daemons restart over the same SSDs ----
  std::printf("simulating failure: restarting all daemons...\n");
  for (std::uint32_t d = 0; d < (*cluster)->node_count(); ++d) {
    if (Status st = (*cluster)->restart_daemon(d); !st.is_ok()) {
      std::fprintf(stderr, "restart failed: %s\n", st.to_string().c_str());
      return 1;
    }
  }

  // ---- phase 3: restart from the newest epoch ----
  auto mnt = (*cluster)->mount();
  // Discover the newest epoch via readdir (eventual consistency is fine:
  // checkpoints are complete, nothing is concurrently mutating).
  auto dirfd = mnt->opendir("/ckpt");
  if (!dirfd) return 1;
  int newest = -1;
  while (true) {
    auto e = mnt->readdir(*dirfd);
    if (!e || !e->has_value()) break;
    if ((*e)->name.starts_with("epoch")) {
      newest = std::max(newest, std::atoi((*e)->name.c_str() + 5));
    }
  }
  (void)mnt->closedir(*dirfd);
  std::printf("restart: newest epoch on the burst buffer = %d\n", newest);

  bool all_ok = true;
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    auto fd = mnt->open(ckpt_path(r, static_cast<std::uint32_t>(newest)),
                        fs::rd_only);
    if (!fd) {
      all_ok = false;
      continue;
    }
    std::vector<std::uint8_t> state(kStateBytes);
    auto n = mnt->pread(*fd, state, 0);
    (void)mnt->close(*fd);
    const bool ok = n.is_ok() && *n == kStateBytes &&
                    state == rank_state(r, static_cast<std::uint32_t>(newest));
    if (!ok) all_ok = false;
    std::printf("  rank %u: %s\n", r, ok ? "state restored" : "CORRUPT");
  }

  mnt.reset();
  cluster->reset();
  std::filesystem::remove_all(root);
  std::printf(all_ok ? "restart complete — all ranks verified.\n"
                     : "RESTART FAILED\n");
  return all_ok ? 0 : 1;
}
