// Data-driven science ingest pipeline (paper §I: data-driven workloads
// issue "large numbers of metadata operations ... and small I/O
// requests" that cripple a general-purpose PFS).
//
// Stage 1 (ingest): producer threads drop many small sample files into
// one flat directory — exactly the single-directory create storm that
// motivates GekkoFS's flat keyspace.
// Stage 2 (index): a scanner discovers samples via readdir and stats
// each one.
// Stage 3 (reduce): consumers read every sample and fold a global
// checksum.
//
// The same pipeline runs against the Lustre-like baseline for contrast;
// its MDS serializes stage 1.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "baseline/pfs.h"
#include "cluster/cluster.h"
#include "common/hash.h"
#include "workload/fs_adapter.h"

using namespace gekko;
using Clock = std::chrono::steady_clock;

namespace {

constexpr std::uint32_t kProducers = 4;
constexpr std::uint32_t kSamplesPerProducer = 400;
constexpr std::size_t kSampleBytes = 4096;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct PipelineStats {
  double ingest_s = 0;
  double index_s = 0;
  double reduce_s = 0;
  std::uint64_t indexed = 0;
  std::uint64_t checksum = 0;
};

PipelineStats run_pipeline(workload::FsAdapter& fs) {
  PipelineStats stats;
  (void)fs.mkdir("/samples");

  // Stage 1: ingest — small files, one flat directory.
  auto t0 = Clock::now();
  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&fs, p] {
      std::vector<std::uint8_t> sample(kSampleBytes);
      for (std::uint32_t i = 0; i < kSamplesPerProducer; ++i) {
        const std::uint64_t tag = p * 100000ULL + i;
        for (std::size_t b = 0; b < sample.size(); ++b) {
          sample[b] = static_cast<std::uint8_t>(mix64(tag + b));
        }
        const std::string path = "/samples/s" + std::to_string(p) + "_" +
                                 std::to_string(i) + ".bin";
        (void)fs.pwrite(path, 0, sample);
      }
    });
  }
  for (auto& t : producers) t.join();
  stats.ingest_s = seconds_since(t0);

  // Stage 2: index — discover + stat.
  t0 = Clock::now();
  std::vector<std::string> discovered;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    for (std::uint32_t i = 0; i < kSamplesPerProducer; ++i) {
      const std::string path = "/samples/s" + std::to_string(p) + "_" +
                               std::to_string(i) + ".bin";
      if (fs.stat(path).is_ok()) discovered.push_back(path);
    }
  }
  stats.index_s = seconds_since(t0);
  stats.indexed = discovered.size();

  // Stage 3: reduce — read everything, fold a checksum.
  t0 = Clock::now();
  std::atomic<std::uint64_t> checksum{0};
  std::vector<std::thread> consumers;
  const std::size_t shard =
      (discovered.size() + kProducers - 1) / kProducers;
  for (std::uint32_t c = 0; c < kProducers; ++c) {
    consumers.emplace_back([&, c] {
      std::vector<std::uint8_t> buf(kSampleBytes);
      const std::size_t begin = c * shard;
      const std::size_t end =
          std::min(discovered.size(), begin + shard);
      for (std::size_t i = begin; i < end; ++i) {
        auto n = fs.pread(discovered[i], 0, buf);
        if (n.is_ok()) {
          checksum.fetch_xor(xxhash64_bytes(buf.data(), *n),
                             std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : consumers) t.join();
  stats.reduce_s = seconds_since(t0);
  stats.checksum = checksum.load();
  return stats;
}

void print_stats(const char* name, const PipelineStats& s) {
  const double files = kProducers * kSamplesPerProducer;
  std::printf("%-10s ingest %6.2f s (%6.0f files/s) | index %6.2f s "
              "(%6.0f stats/s) | reduce %6.2f s | checksum %016llx\n",
              name, s.ingest_s, files / s.ingest_s, s.index_s,
              files / s.index_s, s.reduce_s,
              static_cast<unsigned long long>(s.checksum));
}

}  // namespace

int main() {
  const auto root =
      std::filesystem::temp_directory_path() / "gekko_ingest_example";
  std::filesystem::remove_all(root);

  std::printf("ingest pipeline: %u producers x %u samples x %zu B, flat dir\n",
              kProducers, kSamplesPerProducer, kSampleBytes);

  cluster::ClusterOptions opts;
  opts.nodes = 4;
  opts.root = root;
  opts.daemon_options.chunk_size = 64 * 1024;
  auto cluster = cluster::Cluster::start(opts);
  if (!cluster) return 1;
  auto mnt = (*cluster)->mount();
  workload::GekkoAdapter gekko_fs(*mnt);
  const PipelineStats g = run_pipeline(gekko_fs);
  print_stats("gekkofs", g);

  baseline::ParallelFileSystem pfs;
  workload::BaselineAdapter baseline_fs(pfs);
  const PipelineStats b = run_pipeline(baseline_fs);
  print_stats("baseline", b);

  const bool same = g.indexed == b.indexed && g.checksum == b.checksum;
  std::printf("cross-check: %llu files, checksums %s\n",
              static_cast<unsigned long long>(g.indexed),
              same ? "match across file systems" : "DIFFER (bug!)");

  mnt.reset();
  cluster->reset();
  std::filesystem::remove_all(root);
  return same ? 0 : 1;
}
