// Deterministic fuzzing engine for toolchains without libFuzzer (the
// repo's baked-in gcc). Replays every corpus input verbatim, then runs
// a fixed number of structural mutations of corpus picks — bit flips,
// interesting-value writes, truncate/extend, block duplication and
// cross-seed splices — through LLVMFuzzerTestOneInput.
//
// Everything is seeded from -seed (default 1) through one xorshift64
// stream, and corpus files are loaded in sorted order, so a given
// (corpus, seed, runs) triple is exactly reproducible: a CI crash
// replays locally with the same flags. No coverage feedback — this is
// a smoke/regression engine; hand the same harness to clang+libFuzzer
// for discovery runs.
//
// Flags (libFuzzer spelling; unknown -flags are ignored so shared
// scripts can pass libFuzzer-isms harmlessly):
//   -runs=N      mutation iterations after corpus replay (default 5000)
//   -seed=S      PRNG seed (default 1)
//   -max_len=L   cap on mutated input size (default 4096)
//   <path>...    corpus files or directories (recursed, sorted)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "driver/fuzz_driver.h"

namespace {

struct Rng {
  std::uint64_t s;
  explicit Rng(std::uint64_t seed) : s(seed ? seed : 0x9e3779b97f4a7c15ull) {}
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  std::uint64_t below(std::uint64_t n) { return n ? next() % n : 0; }
};

using Bytes = std::vector<std::uint8_t>;

void load_corpus_path(const std::filesystem::path& p,
                      std::vector<Bytes>* corpus) {
  std::error_code ec;
  if (std::filesystem::is_directory(p, ec)) {
    std::vector<std::filesystem::path> entries;
    for (const auto& e :
         std::filesystem::recursive_directory_iterator(p, ec)) {
      if (e.is_regular_file()) entries.push_back(e.path());
    }
    std::sort(entries.begin(), entries.end());
    for (const auto& e : entries) load_corpus_path(e, corpus);
    return;
  }
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "warning: cannot read corpus file %s\n",
                 p.string().c_str());
    return;
  }
  Bytes b((std::istreambuf_iterator<char>(in)),
          std::istreambuf_iterator<char>());
  corpus->push_back(std::move(b));
}

const std::uint64_t kInteresting[] = {
    0,       1,         0x7f,       0x80,       0xff,       0x100,
    0x7fff,  0x8000,    0xffff,     0x7fffffff, 0x80000000, 0xffffffff,
    1u << 20, 64u << 20, 0x7fffffffffffffffull, 0xffffffffffffffffull};

void mutate(Bytes* b, Rng* rng, const std::vector<Bytes>& corpus,
            std::size_t max_len) {
  const int n_mut = 1 + static_cast<int>(rng->below(8));
  for (int m = 0; m < n_mut; ++m) {
    switch (rng->below(8)) {
      case 0:  // bit flip
        if (!b->empty()) {
          (*b)[rng->below(b->size())] ^=
              static_cast<std::uint8_t>(1u << rng->below(8));
        }
        break;
      case 1:  // random byte
        if (!b->empty()) {
          (*b)[rng->below(b->size())] =
              static_cast<std::uint8_t>(rng->next());
        }
        break;
      case 2: {  // interesting value, random width, random offset
        const std::uint64_t v = kInteresting[rng->below(std::size(
            kInteresting))];
        const std::size_t width = std::size_t{1} << rng->below(4);  // 1/2/4/8
        if (b->size() >= width) {
          std::memcpy(b->data() + rng->below(b->size() - width + 1), &v,
                      width);
        }
        break;
      }
      case 3:  // truncate
        if (!b->empty()) b->resize(rng->below(b->size()));
        break;
      case 4: {  // extend with random bytes
        const std::size_t add = 1 + rng->below(32);
        for (std::size_t i = 0; i < add && b->size() < max_len; ++i) {
          b->push_back(static_cast<std::uint8_t>(rng->next()));
        }
        break;
      }
      case 5: {  // duplicate a block in place
        if (!b->empty() && b->size() < max_len) {
          const std::size_t start = rng->below(b->size());
          const std::size_t len =
              std::min<std::size_t>(1 + rng->below(16), b->size() - start);
          b->insert(b->begin() + static_cast<std::ptrdiff_t>(start),
                    b->begin() + static_cast<std::ptrdiff_t>(start),
                    b->begin() + static_cast<std::ptrdiff_t>(start + len));
        }
        break;
      }
      case 6: {  // erase a block
        if (!b->empty()) {
          const std::size_t start = rng->below(b->size());
          const std::size_t len =
              std::min<std::size_t>(1 + rng->below(16), b->size() - start);
          b->erase(b->begin() + static_cast<std::ptrdiff_t>(start),
                   b->begin() + static_cast<std::ptrdiff_t>(start + len));
        }
        break;
      }
      case 7: {  // splice a slice of another corpus input
        if (!corpus.empty()) {
          const Bytes& other = corpus[rng->below(corpus.size())];
          if (!other.empty()) {
            const std::size_t start = rng->below(other.size());
            const std::size_t len = std::min<std::size_t>(
                1 + rng->below(64), other.size() - start);
            const std::size_t at = rng->below(b->size() + 1);
            b->insert(b->begin() + static_cast<std::ptrdiff_t>(at),
                      other.begin() + static_cast<std::ptrdiff_t>(start),
                      other.begin() +
                          static_cast<std::ptrdiff_t>(start + len));
          }
        }
        break;
      }
    }
  }
  if (b->size() > max_len) b->resize(max_len);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t runs = 5000;
  std::uint64_t seed = 1;
  std::size_t max_len = 4096;
  std::vector<Bytes> corpus;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("-runs=", 0) == 0) {
      runs = std::strtoull(argv[i] + 6, nullptr, 10);
    } else if (arg.rfind("-seed=", 0) == 0) {
      seed = std::strtoull(argv[i] + 6, nullptr, 10);
    } else if (arg.rfind("-max_len=", 0) == 0) {
      max_len = std::strtoull(argv[i] + 9, nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      // Ignore other libFuzzer-style flags: shared scripts may pass
      // them and they have no standalone equivalent.
    } else {
      load_corpus_path(std::filesystem::path(arg), &corpus);
    }
  }

  std::fprintf(stderr, "standalone fuzz: %zu corpus inputs, %llu runs, "
                       "seed %llu, max_len %zu\n",
               corpus.size(), static_cast<unsigned long long>(runs),
               static_cast<unsigned long long>(seed), max_len);

  // Phase 1: corpus replay — every committed reproducer re-executes.
  for (const Bytes& b : corpus) {
    LLVMFuzzerTestOneInput(b.data(), b.size());
  }

  // Phase 2: deterministic mutation loop.
  Rng rng(seed);
  Bytes scratch;
  for (std::uint64_t i = 0; i < runs; ++i) {
    if (!corpus.empty() && rng.below(8) != 0) {
      scratch = corpus[rng.below(corpus.size())];
    } else {
      scratch.clear();
      const std::size_t len = rng.below(128);
      for (std::size_t j = 0; j < len; ++j) {
        scratch.push_back(static_cast<std::uint8_t>(rng.next()));
      }
    }
    mutate(&scratch, &rng, corpus, max_len);
    LLVMFuzzerTestOneInput(scratch.data(), scratch.size());
    if ((i + 1) % 250000 == 0) {
      std::fprintf(stderr, "  #%llu\n",
                   static_cast<unsigned long long>(i + 1));
    }
  }
  std::fprintf(stderr, "#%llu DONE\n",
               static_cast<unsigned long long>(runs));
  return 0;
}
