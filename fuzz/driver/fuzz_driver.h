// Shared contract between the fuzz harnesses and whichever engine
// drives them.
//
// Every harness defines the libFuzzer entry point
//
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t n);
//
// so a clang toolchain can link the real libFuzzer (-fsanitize=fuzzer)
// for coverage-guided runs. The repo's baked-in toolchain is gcc, which
// has no libFuzzer — there the harness links driver/standalone_main.cpp
// instead: a deterministic corpus-replay + structural-mutation engine
// that accepts the same flag spelling (-runs=N -seed=S -max_len=L plus
// positional corpus dirs/files), so scripts/fuzz.sh and the ctest fuzz
// smoke run identically under either engine.
//
// Harnesses signal a property violation (round-trip breakage, not a
// mere decode rejection) by calling gekko::fuzz::fail(), which prints
// the reason plus a hex dump of the offending input and aborts — both
// engines, and ASan/UBSan, report that as a crash on a reproducible
// input.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstddef>
#include <string_view>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace gekko::fuzz {

/// Abort with a reason and a reproducer dump. Never returns.
[[noreturn]] inline void fail(const char* harness, const char* why,
                              const std::uint8_t* data, std::size_t size) {
  std::fprintf(stderr, "\n[%s] property violation: %s\n", harness, why);
  std::fprintf(stderr, "input (%zu bytes):", size);
  for (std::size_t i = 0; i < size; ++i) {
    std::fprintf(stderr, "%s%02x", (i % 32 == 0) ? "\n  " : " ", data[i]);
  }
  std::fprintf(stderr, "\n");
  std::abort();
}

inline std::string_view as_view(const std::uint8_t* data, std::size_t size) {
  return {reinterpret_cast<const char*>(data), size};
}

}  // namespace gekko::fuzz
