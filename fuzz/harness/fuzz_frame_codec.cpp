// Harness: net::wire frame decoder (the rawest untrusted surface — raw
// socket bytes from a peer that may be truncated, buggy, or hostile).
//
// Properties checked on every input the decoder ACCEPTS:
//   1. decode → encode → decode converges, and every Message field
//      survives the trip (bulk payload is compared semantically, not
//      byte-for-byte: response-range frames re-encode from a served
//      region, which this harness does not reconstruct).
//   2. apply_response_ranges() against a small real region either
//      succeeds entirely in bounds or rejects with corruption — ASan
//      owns the "no out-of-bounds write" half of that claim.
// Rejected inputs must fail with corruption, never crash.
#include <cstring>
#include <span>
#include <vector>

#include "driver/fuzz_driver.h"
#include "net/frame_codec.h"

using namespace gekko;
using gekko::fuzz::fail;

namespace {
constexpr std::uint32_t kMaxFrame = 1u << 20;
}

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  net::wire::DecodedFrame frame;
  const Status st = net::wire::decode_frame(
      std::span<const std::uint8_t>(data, size), kMaxFrame, &frame);
  if (!st.is_ok()) return 0;  // rejection is the decoder doing its job

  // Response ranges point into the input buffer; applying them against
  // a real writable region exercises the bounds re-check under ASan.
  if (!frame.ranges.empty()) {
    const net::BulkRegion region =
        net::BulkRegion::adopt(std::vector<std::uint8_t>(4096), true);
    (void)net::wire::apply_response_ranges(region, frame.ranges);
  }

  auto encoded = net::wire::encode_frame(frame.msg, nullptr,
                                         frame.msg.source, kMaxFrame);
  if (!encoded.is_ok()) {
    // A decoded response-data frame re-encodes without its served
    // region (we pass bulk_out = nullptr), so the only legitimate
    // failure is none at all — sizes were already under kMaxFrame.
    fail("frame_codec", "decoded frame failed to re-encode", data, size);
  }
  std::vector<std::uint8_t> wire;
  encoded->flatten_into(&wire);

  net::wire::DecodedFrame again;
  const Status st2 = net::wire::decode_frame(
      std::span<const std::uint8_t>(wire.data() + net::wire::kLenPrefixBytes,
                                    wire.size() -
                                        net::wire::kLenPrefixBytes),
      kMaxFrame, &again);
  if (!st2.is_ok()) {
    fail("frame_codec", "re-encoded frame failed to decode", data, size);
  }
  if (again.msg.kind != frame.msg.kind ||
      again.msg.rpc_id != frame.msg.rpc_id ||
      again.msg.seq != frame.msg.seq ||
      again.msg.trace_id != frame.msg.trace_id ||
      again.msg.parent_span != frame.msg.parent_span ||
      again.msg.source != frame.msg.source ||
      again.msg.payload != frame.msg.payload) {
    fail("frame_codec", "message fields changed across round trip", data,
         size);
  }
  return 0;
}
