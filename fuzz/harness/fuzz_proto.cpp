// Harness: every proto::messages.h payload codec, driven through the
// shared codec table (src/proto/codec_table.h) so this file never
// trails the protocol — a new RpcId row is fuzzed automatically, and
// gekko-protocheck fails the lint gate if the row is missing.
//
// Input shape: [selector u8][payload...]. The selector picks one
// (row, side) or extra codec; the payload goes through the decode →
// encode → decode canonicalization check. not_decodable is fine;
// either violation state aborts with the reproducer.
#include <cstddef>

#include "driver/fuzz_driver.h"
#include "proto/codec_table.h"

using namespace gekko;
using gekko::fuzz::as_view;
using gekko::fuzz::fail;

namespace {

struct Target {
  const char* name;
  proto::RoundTripFn check;
};

// Flattened (row, side) targets + extra codecs, built once.
const std::vector<Target>& targets() {
  static const std::vector<Target> t = [] {
    std::vector<Target> v;
    for (const auto& row : proto::kCodecTable) {
      if (row.request_check != nullptr) {
        v.push_back({row.request, row.request_check});
      }
      if (row.response_check != nullptr) {
        v.push_back({row.response, row.response_check});
      }
    }
    for (const auto& extra : proto::kExtraCodecs) {
      v.push_back({extra.name, extra.check});
    }
    return v;
  }();
  return t;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const auto& t = targets();
  const Target& target = t[data[0] % t.size()];
  const proto::RoundTrip rt = target.check(as_view(data + 1, size - 1));
  if (rt == proto::RoundTrip::redecode_failed ||
      rt == proto::RoundTrip::not_canonical) {
    std::fprintf(stderr, "codec %s: %s\n", target.name,
                 proto::round_trip_name(rt));
    fail("proto", "codec round-trip violation", data, size);
  }
  return 0;
}
