// Harness: the LSM's on-disk readers — prefix-compressed block
// iteration (in memory) and whole-SSTable opens (footer, index, bloom
// filter, block CRCs) from a scratch file.
//
// Input shape: [mode u8][bytes...]. Even modes walk the bytes as a
// block: full forward iteration plus a seek with a fabricated internal
// key. Odd modes write the bytes as a table file and run Table::open;
// when a hostile file somehow passes validation, iterating and point-
// lookups over it must still stay in bounds (ASan enforces that half).
// No round-trip here — readers of attacker-controlled storage must
// simply never crash and must fail corrupt inputs cleanly.
#include <cstdio>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "driver/fuzz_driver.h"
#include "common/logging.h"
#include "kv/block.h"
#include "kv/internal_key.h"
#include "kv/options.h"
#include "kv/sstable.h"

using namespace gekko;
using gekko::fuzz::as_view;

namespace {

// Corrupt tables log as they are rejected; keep long runs readable.
const bool kQuietLogs = [] {
  log::set_level(log::Level::off);
  return true;
}();

const std::filesystem::path& scratch_path() {
  static const std::filesystem::path p = [] {
    std::error_code ec;
    const bool shm = std::filesystem::is_directory("/dev/shm", ec);
    return (shm ? std::filesystem::path("/dev/shm")
                : std::filesystem::temp_directory_path()) /
           ("gekko_fuzz_sst_" + std::to_string(::getpid()) + ".sst");
  }();
  return p;
}

void walk_block(std::string_view block) {
  kv::BlockIterator it(block);
  it.seek_to_first();
  // Forward walk is bounded: every entry consumes >= 3 bytes of data.
  while (it.valid()) {
    (void)it.key();
    (void)it.value();
    it.next();
  }
  // Seek with a well-formed internal key built from the input's tail
  // (compare_internal requires the 8-byte trailer on both sides).
  std::string target(block.substr(0, std::min<std::size_t>(block.size(), 8)));
  target.append(kv::make_lookup_key("fuzz", 1u << 20).substr(0, 12));
  target.resize(std::max<std::size_t>(target.size(), 8), '\0');
  kv::BlockIterator it2(block);
  it2.seek(target);
  while (it2.valid()) {
    (void)it2.key();
    it2.next();
  }
}

void open_table(const std::uint8_t* data, std::size_t size) {
  {
    std::FILE* f = std::fopen(scratch_path().c_str(), "wb");
    if (f == nullptr) return;
    if (size > 0) std::fwrite(data, 1, size, f);
    std::fclose(f);
  }
  kv::Options options;  // no cache: every read goes through the file
  auto table = kv::Table::open(scratch_path(), options, /*file_number=*/1);
  if (!table.is_ok()) return;  // rejected as corrupt — the common case

  kv::Table::Iterator it(*table);
  it.seek_to_first();
  for (int steps = 0; it.valid() && steps < 4096; ++steps) {
    (void)it.key();
    (void)it.value();
    it.next();
  }
  kv::LookupResult result;
  (void)(*table)->get("fuzz-key", ~0ull >> 8, &result);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  if (data[0] % 2 == 0) {
    walk_block(as_view(data + 1, size - 1));
  } else {
    open_table(data + 1, size - 1);
  }
  return 0;
}
