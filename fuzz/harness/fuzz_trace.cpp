// Harness: trace::parse_chrome_json — the Chrome-trace reader used by
// tooling and tests over exporter output that may come from another
// (possibly skewed or truncated) node's dump. Arbitrary JSON-ish text
// must parse or fail cleanly, never crash or hang.
#include "driver/fuzz_driver.h"
#include "common/trace.h"

using namespace gekko;
using gekko::fuzz::as_view;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  (void)trace::parse_chrome_json(as_view(data, size));
  return 0;
}
