// Harness: prom::parse — the strict Prometheus text-exposition parser
// gkfs-mon runs over bytes fetched from a daemon's /metrics endpoint
// (i.e., over the network). Arbitrary text must either parse or fail
// with corruption; parsing must be deterministic (same input, same
// outcome) since gkfs-mon diffs consecutive scrapes.
#include <string>

#include "driver/fuzz_driver.h"
#include "common/prometheus.h"

using namespace gekko;
using gekko::fuzz::as_view;
using gekko::fuzz::fail;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text = as_view(data, size);
  auto first = prom::parse(text);
  auto second = prom::parse(text);
  if (first.is_ok() != second.is_ok()) {
    fail("prometheus", "parse is non-deterministic", data, size);
  }
  if (first.is_ok() &&
      first->families.size() != second->families.size()) {
    fail("prometheus", "parse yields differing family counts", data, size);
  }
  return 0;
}
