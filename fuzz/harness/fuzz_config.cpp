// Harness: the text parsers an operator (or a compromised node) feeds
// the daemon and tools at startup and over RPC:
//   - Config::parse + typed getters and parse_size (config files)
//   - net::parse_transport / looks_like_tcp_address (CLI flags)
//   - net::parse_hostfile (the shared hostfile)
//   - metrics::Snapshot::from_json (daemon_stat's metrics_json field —
//     network data; checked for to_json/from_json round-trip fixpoint)
//
// Input shape: [selector u8][text...].
#include <string>

#include "driver/fuzz_driver.h"
#include "common/config.h"
#include "common/metrics.h"
#include "net/transport.h"

using namespace gekko;
using gekko::fuzz::as_view;
using gekko::fuzz::fail;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const std::string_view text = as_view(data + 1, size - 1);
  switch (data[0] % 5) {
    case 0: {
      auto cfg = Config::parse(text);
      if (!cfg.is_ok()) break;
      // Typed getters re-parse stored values; drive every one of them
      // over every parsed key.
      for (const auto& [key, value] : cfg->entries()) {
        (void)cfg->get_string(key);
        (void)cfg->get_int(key);
        (void)cfg->get_double(key);
        (void)cfg->get_bool(key);
        (void)cfg->get_size(key);
      }
      break;
    }
    case 1:
      (void)Config::parse_size(text);
      break;
    case 2:
      (void)net::parse_transport(text);
      (void)net::looks_like_tcp_address(text);
      break;
    case 3:
      (void)net::parse_hostfile(std::string(text));
      break;
    case 4: {
      auto snap = metrics::Snapshot::from_json(text);
      if (!snap.is_ok()) break;
      const std::string json1 = snap->to_json();
      auto again = metrics::Snapshot::from_json(json1);
      if (!again.is_ok()) {
        fail("config", "Snapshot::to_json output rejected by from_json",
             data, size);
      }
      if (again->to_json() != json1) {
        fail("config", "Snapshot json round trip is not a fixed point",
             data, size);
      }
      break;
    }
  }
  return 0;
}
