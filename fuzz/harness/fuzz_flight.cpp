// Harness: flight::parse_postmortem — the crash-forensics reader.
// Postmortems are written by a dying process's signal handler, so the
// parser's whole job is surviving hostile input: torn mid-line, torn
// mid-section, binary garbage where text should be. Arbitrary bytes
// must parse or fail cleanly, and anything that DOES parse must be
// renderable to a stable text fixed point:
//
//   render(parse(render(parse(x)))) == render(parse(x))
//
// — the same decode → encode → decode canonicalization contract the
// binary codecs obey, so gkfs-debug can re-save what it read without
// silently changing it.
#include <string>

#include "driver/fuzz_driver.h"
#include "common/flight_recorder.h"

using namespace gekko;
using gekko::fuzz::as_view;
using gekko::fuzz::fail;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  auto first = flight::parse_postmortem(as_view(data, size));
  if (!first.is_ok()) return 0;

  const std::string canonical = flight::render_postmortem(*first);
  auto second = flight::parse_postmortem(canonical);
  if (!second.is_ok()) {
    fail("flight", "rendered postmortem failed to re-parse", data, size);
  }
  if (flight::render_postmortem(*second) != canonical) {
    fail("flight", "postmortem text not a render fixed point", data, size);
  }
  return 0;
}
