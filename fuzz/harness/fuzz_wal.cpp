// Harness: kv::wal_recover over arbitrary file bytes, with every
// replayed record additionally pushed through the WriteBatch decoder
// (exactly what DB::recover_ does with it).
//
// Properties: recovery of arbitrary bytes must terminate, never crash,
// never allocate beyond kMaxWalRecordBytes for one record, and only
// ever report a hard error for callback failures — torn/corrupt tails
// come back as stats.tail_corruption with the intact prefix applied.
#include <cstdio>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "driver/fuzz_driver.h"
#include "common/logging.h"
#include "kv/wal.h"
#include "kv/write_batch.h"

using namespace gekko;
using gekko::fuzz::fail;

namespace {

// Nearly every mutated input is a corrupt WAL, and recovery warns
// about each one — silence the logger or the run drowns in it.
const bool kQuietLogs = [] {
  log::set_level(log::Level::off);
  return true;
}();

// One scratch file per process, under the fastest tmpfs available.
// Recovery reads straight from disk, so the bytes must land in a real
// file; rewriting one fixed path keeps the per-iteration cost at a
// single truncate+write.
const std::filesystem::path& scratch_path() {
  static const std::filesystem::path p = [] {
    std::error_code ec;
    const bool shm = std::filesystem::is_directory("/dev/shm", ec);
    return (shm ? std::filesystem::path("/dev/shm")
                : std::filesystem::temp_directory_path()) /
           ("gekko_fuzz_wal_" + std::to_string(::getpid()) + ".log");
  }();
  return p;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  {
    std::FILE* f = std::fopen(scratch_path().c_str(), "wb");
    if (f == nullptr) return 0;
    if (size > 0) std::fwrite(data, 1, size, f);
    std::fclose(f);
  }

  auto stats = kv::wal_recover(
      scratch_path(), [](kv::SequenceNumber, std::string_view bytes) {
        // DB::recover_ feeds each record to the WriteBatch decoder;
        // mirror that so corrupt-but-CRC-colliding payloads exercise it.
        auto batch = kv::WriteBatch::from_bytes(bytes);
        if (batch.is_ok()) {
          (void)batch->for_each(
              [](kv::ValueType, std::string_view, std::string_view) {});
        }
        return Status::ok();
      });
  // The callback never fails, so recovery itself must not either:
  // arbitrary bytes are at worst a corrupt tail, not a hard error.
  if (!stats.is_ok()) {
    std::fprintf(stderr, "wal_recover: %s\n", stats.status().to_string().c_str());
    fail("wal", "recovery hard-failed on untrusted bytes", data, size);
  }
  return 0;
}
