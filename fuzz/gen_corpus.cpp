// Seed-corpus generator. Writes one file per seed under
// <out>/<family>/, where <out> is argv[1] (default: ./corpus).
//
// Two kinds of seed:
//   - valid encodings of every message/record/file format, built with
//     the real encoders, so mutation starts from deep in each decoder's
//     accept-space instead of bouncing off the first length check;
//   - regression reproducers for every wire/storage bug fixed to date
//     (overflowing bulk ranges, preallocation-bomb counts, sub-8-byte
//     internal keys, out-of-bounds block handles, forged WAL lengths),
//     so `ctest -L fuzz` and tests/corpus_replay_test.cpp re-execute
//     each of them forever.
//
// The committed fuzz/corpus/** is this program's output; re-run it
// after protocol changes and commit the diff.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/codec.h"
#include "kv/block.h"
#include "kv/internal_key.h"
#include "kv/sstable.h"
#include "kv/wal.h"
#include "kv/write_batch.h"
#include "net/frame_codec.h"
#include "proto/codec_table.h"

using namespace gekko;

namespace {

std::filesystem::path g_out;

void write_seed(const std::string& family, const std::string& name,
                const void* data, std::size_t size) {
  const auto dir = g_out / family;
  std::filesystem::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(size));
  if (!out) {
    std::fprintf(stderr, "failed to write %s/%s\n", family.c_str(),
                 name.c_str());
    std::exit(1);
  }
}

void write_seed(const std::string& family, const std::string& name,
                const std::vector<std::uint8_t>& bytes) {
  write_seed(family, name, bytes.data(), bytes.size());
}

void write_seed(const std::string& family, const std::string& name,
                const std::string& bytes) {
  write_seed(family, name, bytes.data(), bytes.size());
}

// Selector-prefixed seed for the proto harness: first byte picks the
// (row, side) target the same way fuzz_proto.cpp does.
void proto_seed(std::uint8_t selector, const std::string& name,
                const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> bytes;
  bytes.push_back(selector);
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  write_seed("proto", name, bytes);
}

std::vector<std::uint8_t> flatten_frame(const net::Message& msg,
                                        const net::BulkRegion* bulk_out) {
  auto f = net::wire::encode_frame(msg, bulk_out, msg.source, 1u << 20);
  if (!f.is_ok()) {
    std::fprintf(stderr, "encode_frame failed: %s\n",
                 f.status().to_string().c_str());
    std::exit(1);
  }
  std::vector<std::uint8_t> wire;
  f->flatten_into(&wire);
  // Harness input is the frame body (after the u32 length prefix).
  wire.erase(wire.begin(),
             wire.begin() + static_cast<std::ptrdiff_t>(
                                net::wire::kLenPrefixBytes));
  return wire;
}

void gen_frame_codec() {
  net::Message req;
  req.kind = net::MessageKind::request;
  req.rpc_id = proto::to_wire(proto::RpcId::stat);
  req.seq = 42;
  req.source = 7;
  req.trace_id = 0xabcdef;
  req.parent_span = 0x123;
  req.payload = proto::PathRequest{"/data/file0"}.encode();
  write_seed("frame_codec", "request_stat.bin", flatten_frame(req, nullptr));

  net::Message bulk_read = req;
  bulk_read.rpc_id = proto::to_wire(proto::RpcId::write_chunks);
  std::vector<std::uint8_t> blob(512, 0x5a);
  bulk_read.bulk = net::BulkRegion::adopt(blob, /*writable=*/false);
  write_seed("frame_codec", "request_bulk_read.bin",
             flatten_frame(bulk_read, nullptr));

  net::Message bulk_write = req;
  bulk_write.rpc_id = proto::to_wire(proto::RpcId::read_chunks);
  bulk_write.bulk =
      net::BulkRegion::adopt(std::vector<std::uint8_t>(1024), true);
  write_seed("frame_codec", "request_bulk_writable.bin",
             flatten_frame(bulk_write, nullptr));

  net::Message resp;
  resp.kind = net::MessageKind::response;
  resp.seq = 42;
  resp.source = 1;
  resp.payload = proto::ChunkIoResponse{4096}.encode();
  const auto region =
      net::BulkRegion::adopt(std::vector<std::uint8_t>(256, 0x11), true);
  region.record_push(0, 64);
  region.record_push(128, 32);
  write_seed("frame_codec", "response_ranges.bin",
             flatten_frame(resp, &region));

  // Regression reproducer: a response-data range whose u64 offset sits
  // near 2^64 so offset+len wraps. range_in_bounds() must reject it in
  // apply_response_ranges without writing a byte (overflow fix).
  std::vector<std::uint8_t> hostile;
  {
    Encoder enc(&hostile);
    enc.u8(1);                   // kind = response
    enc.u16(0);                  // rpc_id
    enc.u64(42);                 // seq
    enc.u32(1);                  // source
    enc.u64(0);                  // trace_id
    enc.u64(0);                  // parent_span
    enc.str("");                 // payload
    enc.u8(net::wire::kBulkResponseData);
    enc.varint(1);               // one range
    enc.u64(~0ull - 7);          // offset near 2^64
    enc.str("overflow");         // 8 bytes: offset+len wraps past 0
  }
  write_seed("frame_codec", "regression_range_overflow.bin", hostile);
}

void gen_proto() {
  // Mirror of fuzz_proto.cpp's flattened target order: request/response
  // checks per kCodecTable row (skipping empty sides), then extras.
  std::uint8_t selector = 0;
  auto next = [&selector]() { return selector++; };

  const proto::Metadata md{proto::FileType::regular, 4096, 111, 222, 0644};

  // create
  proto_seed(next(), "create_request.bin",
             proto::CreateRequest{"/a/b", 0, 0644, 1234}.encode());
  // stat
  proto_seed(next(), "stat_request.bin",
             proto::PathRequest{"/a/b"}.encode());
  proto_seed(next(), "stat_response.bin", proto::StatResponse{md}.encode());
  // remove_metadata
  proto_seed(next(), "remove_metadata_request.bin",
             proto::PathRequest{"/a/b"}.encode());
  proto_seed(next(), "remove_metadata_response.bin",
             proto::StatResponse{md}.encode());
  // remove_data
  proto_seed(next(), "remove_data_request.bin",
             proto::PathRequest{"/a/b"}.encode());
  // update_size
  proto_seed(next(), "update_size_request.bin",
             proto::UpdateSizeRequest{"/a/b", 1 << 20, 999}.encode());
  // truncate_metadata / truncate_data
  proto_seed(next(), "truncate_metadata_request.bin",
             proto::TruncateRequest{"/a/b", 512}.encode());
  proto_seed(next(), "truncate_data_request.bin",
             proto::TruncateRequest{"/a/b", 512}.encode());
  // write_chunks / read_chunks
  proto::ChunkIoRequest io;
  io.path = "/a/b";
  io.slices = {{0, 0, 4096, 0}, {1, 128, 256, 4096}};
  const std::uint8_t write_chunks_req = next();
  proto_seed(write_chunks_req, "write_chunks_request.bin", io.encode());
  proto_seed(next(), "write_chunks_response.bin",
             proto::ChunkIoResponse{4352}.encode());
  proto_seed(next(), "read_chunks_request.bin", io.encode());
  proto_seed(next(), "read_chunks_response.bin",
             proto::ChunkIoResponse{4352}.encode());
  // get_dirents
  proto_seed(next(), "dirents_request.bin",
             proto::DirentsRequest{"/a"}.encode());
  proto::DirentsResponse dirents;
  dirents.entries = {{"b", proto::FileType::regular},
                     {"c", proto::FileType::directory}};
  proto_seed(next(), "dirents_response.bin", dirents.encode());
  // daemon_stat
  proto::DaemonStatResponse ds;
  ds.metadata_entries = 10;
  ds.bytes_written = 1 << 20;
  ds.metrics_json = "{}";
  proto_seed(next(), "daemon_stat_response.bin", ds.encode());
  // trace_dump
  proto::TraceDumpResponse td;
  td.node_id = 1;
  td.capture_ns = 123456789;
  td.recorded = 1;
  td.capacity = 1024;
  trace::Span span;
  span.trace_id = 7;
  span.span_id = 8;
  span.name = "rpc.stat";
  span.start_ns = 100;
  span.duration_ns = 50;
  td.spans.push_back(span);
  proto_seed(next(), "trace_dump_response.bin", td.encode());
  // heartbeat
  proto_seed(next(), "heartbeat_response.bin",
             proto::HeartbeatResponse{3, 999, 12345}.encode());
  // metric_history
  proto_seed(next(), "metric_history_request.bin",
             proto::MetricHistoryRequest{"rpc."}.encode());
  proto::MetricHistoryResponse mh;
  mh.node_id = 3;
  mh.captured_ns = 42;
  mh.interval_ms = 500;
  proto::MetricFamilyHistory fam;
  fam.name = "rpc.calls";
  fam.recorded = 2;
  fam.capacity = 64;
  fam.samples = {{100, 1}, {200, 2}};
  mh.families.push_back(fam);
  proto_seed(next(), "metric_history_response.bin", mh.encode());
  // batch_create
  proto::BatchCreateRequest bc;
  bc.entries = {{"/a/1", 0, 0644, 1}, {"/a/2", 0, 0644, 2}};
  const std::uint8_t batch_create_req = next();
  proto_seed(batch_create_req, "batch_create_request.bin", bc.encode());
  proto::BatchCreateResponse bcr;
  bcr.statuses = {proto::BatchStatus::ok, proto::BatchStatus::exists};
  proto_seed(next(), "batch_create_response.bin", bcr.encode());
  // batch_stat
  proto_seed(next(), "batch_stat_request.bin",
             proto::BatchPathRequest{{"/a/1", "/a/2"}}.encode());
  proto::BatchStatResponse bsr;
  bsr.entries.push_back({proto::BatchStatus::ok, md});
  bsr.entries.push_back({proto::BatchStatus::not_found, {}});
  proto_seed(next(), "batch_stat_response.bin", bsr.encode());
  // batch_remove
  proto_seed(next(), "batch_remove_request.bin",
             proto::BatchPathRequest{{"/a/1"}}.encode());
  proto::BatchRemoveResponse brr;
  brr.entries.push_back({proto::BatchStatus::ok, 4096, 0});
  proto_seed(next(), "batch_remove_response.bin", brr.encode());
  // flight_dump
  proto::FlightDumpResponse fd;
  fd.node_id = 2;
  fd.capture_ns = 987654321;
  fd.recorded = 3;
  fd.capacity = 256;
  fd.events.push_back({1000, 0xfeed, 42, 7, 3, 1, 1});
  fd.events.push_back({2000, 0, flight::tag("creat"), 0, 1, 5, 1});
  proto_seed(next(), "flight_dump_response.bin", fd.encode());
  // extras: Metadata
  {
    const std::string enc = md.encode();
    std::vector<std::uint8_t> payload(enc.begin(), enc.end());
    proto_seed(next(), "metadata.bin", payload);
  }

  // Regression reproducer: preallocation-bomb counts. A varint count
  // of ~2^62 slices/entries with a near-empty remainder must be thrown
  // out by count_fits() before reserve() allocates (batched-RPC fix).
  {
    std::vector<std::uint8_t> payload;
    Encoder enc(&payload);
    enc.str("/a/b");
    enc.varint(0x3fffffffffffffffull);
    proto_seed(write_chunks_req, "regression_slice_count_bomb.bin", payload);
  }
  {
    std::vector<std::uint8_t> payload;
    Encoder enc(&payload);
    enc.varint(0x3fffffffffffffffull);
    proto_seed(batch_create_req, "regression_batch_count_bomb.bin", payload);
  }
}

void gen_wal() {
  const auto tmp = std::filesystem::temp_directory_path() /
                   "gekko_gen_corpus_wal.log";
  auto read_back = [&tmp]() {
    std::ifstream in(tmp, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };

  kv::WriteBatch batch;
  batch.put("/k/1", "value-1");
  batch.erase("/k/2");
  const auto& bytes = batch.data();
  const std::string_view batch_view(
      reinterpret_cast<const char*>(bytes.data()), bytes.size());
  {
    auto w = kv::WalWriter::create(tmp);
    if (!w.is_ok()) std::exit(1);
    (void)w->append(1, batch_view, false);       // status-ignored-ok: seed gen
    (void)w->append(3, "not-a-batch", false);    // status-ignored-ok: seed gen
    (void)w->close();                            // status-ignored-ok: seed gen
  }
  const std::string valid = read_back();
  write_seed("wal", "two_records.bin", valid);
  write_seed("wal", "torn_tail.bin", valid.substr(0, valid.size() - 5));

  // Regression reproducer: forged header claiming a ~4 GiB payload.
  // Recovery must treat it as tail corruption at the length cap, not
  // attempt the allocation (wal_recover hardening).
  std::string forged = valid;
  forged.resize(forged.size() + 16, '\0');
  const std::uint32_t fake_len = 0xfffffff0u;
  std::memcpy(forged.data() + valid.size() + 4, &fake_len, 4);
  write_seed("wal", "regression_len_bomb.bin", forged);
  std::filesystem::remove(tmp);
}

void gen_sstable() {
  // Block mode (selector 0): a real prefix-compressed block.
  kv::BlockBuilder builder(4);
  for (int i = 0; i < 16; ++i) {
    const std::string user_key = "/key/" + std::to_string(i);
    const std::string ikey = kv::make_internal_key(
        user_key, static_cast<kv::SequenceNumber>(i + 1),
        kv::ValueType::value);
    builder.add(ikey, "value-" + std::to_string(i));
  }
  const std::string block = builder.finish();
  std::string seed;
  seed.push_back('\0');  // selector 0 = block mode
  seed.append(block);
  write_seed("sstable", "block_valid.bin", seed);

  // Regression reproducer: an entry whose key is SHORTER than the
  // 8-byte internal trailer. The iterator must reject it as corruption
  // instead of letting compare_internal read out of bounds.
  std::string bad;
  bad.push_back('\0');           // selector 0
  bad.push_back('\0');           // shared = 0
  bad.push_back('\x03');         // non_shared = 3 (< 8!)
  bad.push_back('\x01');         // value_len = 1
  bad.append("abcV");            // 3 key bytes + 1 value byte
  const std::uint32_t restart0 = 0;
  const std::uint32_t nrestarts = 1;
  bad.append(reinterpret_cast<const char*>(&restart0), 4);
  bad.append(reinterpret_cast<const char*>(&nrestarts), 4);
  write_seed("sstable", "regression_short_internal_key.bin", bad);

  // Table mode (selector 1): a forged footer whose index handle points
  // 2^60 bytes past EOF. Table::open must fail with corruption before
  // the block read allocates (read_block_raw_ bounds fix).
  std::string forged;
  forged.push_back('\x01');      // selector 1 = table mode
  forged.append(64, 'x');        // some file body
  std::string footer(40, '\0');
  const std::uint64_t off = 1ull << 60, sz = 1ull << 30;
  std::memcpy(footer.data(), &off, 8);
  std::memcpy(footer.data() + 8, &sz, 8);
  const std::uint64_t magic = kv::kTableMagic;
  std::memcpy(footer.data() + 32, &magic, 8);
  forged.append(footer);
  write_seed("sstable", "regression_handle_oob.bin", forged);
}

void gen_text_families() {
  write_seed("prometheus", "exposition.txt",
             std::string("# TYPE gekko_rpc_calls counter\n"
                         "gekko_rpc_calls{rpc=\"stat\"} 42\n"
                         "# TYPE gekko_rpc_latency_us histogram\n"
                         "gekko_rpc_latency_us_bucket{le=\"100\"} 1\n"
                         "gekko_rpc_latency_us_bucket{le=\"+Inf\"} 2\n"
                         "gekko_rpc_latency_us_sum 123.5\n"
                         "gekko_rpc_latency_us_count 2\n"));
  write_seed("trace", "chrome.json",
             std::string("{\"traceEvents\":[{\"name\":\"rpc.stat\","
                         "\"ph\":\"X\",\"ts\":1,\"dur\":5,\"pid\":1,"
                         "\"tid\":2}]}"));

  const std::string cfg =
      "# gekkofs config\n"
      "daemon.chunk_size=512KiB\n"
      "net.latency_us=1.5\n"
      "kv.sync_wal=true\n";
  write_seed("config", "config.txt", std::string(1, '\0') + cfg);
  write_seed("config", "parse_size.txt", std::string(1, '\x01') + "512KiB");
  // Hardened: a size whose scaled value leaves uint64 used to wrap mod
  // 2^64 to a tiny limit; parse_size rejects it now.
  write_seed("config", "regression_size_wrap.txt",
             std::string(1, '\x01') + "17179869184g");
  write_seed("config", "transport.txt", std::string(1, '\x02') + "tcp");
  write_seed("config", "hostfile.txt",
             std::string(1, '\x03') +
                 "# hosts\n0 127.0.0.1:9000\n1 127.0.0.1:9001\n");
  write_seed("config", "snapshot.json",
             std::string(1, '\x04') +
                 "{\"node_id\":1,\"captured_ns\":42,"
                 "\"counters\":{\"rpc.calls\":42},"
                 "\"gauges\":{\"kv.puts\":7},\"histograms\":{}}");
  // Fuzz-found: a 20-digit counter value overflowed the signed digit
  // accumulator in Snapshot's JSON parser (UB under UBSan). Counters
  // are uint64 on the wire, so this value must now parse and
  // round-trip, while anything past UINT64_MAX parse-fails cleanly.
  write_seed("config", "regression_int64_overflow.json",
             std::string(1, '\x04') +
                 "{\"node_id\":1,\"captured_ns\":42,"
                 "\"counters\":{\"x\":18446744073709551610},"
                 "\"gauges\":{},\"histograms\":{}}");
  // Fuzz-found: a negative counter used to wrap through the signed
  // parse path to 2^64-2, which to_json re-emitted as a number the
  // parser then rejected — breaking decode→encode→decode. Counters
  // reject '-' outright now.
  write_seed("config", "regression_negative_counter.json",
             std::string(1, '\x04') +
                 "{\"node_id\":1,\"captured_ns\":42,"
                 "\"counters\":{\"rpc.calls\":-2},"
                 "\"gauges\":{\"kv.puts\":7},\"histograms\":{}}");
  write_seed("config", "snapshot_int64_min.json",
             std::string(1, '\x04') +
                 "{\"node_id\":1,\"captured_ns\":42,\"counters\":{},"
                 "\"gauges\":{\"depth\":-9223372036854775808},"
                 "\"histograms\":{}}");
}

void gen_flight() {
  // A full postmortem built with the real renderer, so mutation starts
  // from a document that exercises every section parser.
  flight::Postmortem pm;
  pm.signal = 11;
  pm.signal_name = "SIGSEGV";
  pm.node_id = 3;
  pm.pid = 4242;
  pm.capture_ns = 123456789;
  pm.build = "gkfsd pid=4242";
  pm.backtrace = {"./gkfsd(+0x1234) [0x55aa]", "libc.so.6(+0x5678)"};
  pm.locks.push_back({1, "engine.pending", 220});
  pm.locks.push_back({2, "<anon>", 0});
  pm.inflight.push_back({9, 0xfeed, 1000, 2, 7});
  pm.events.push_back({1000, 0xfeed, 9, 7, 1, 1, 1});
  pm.events.push_back({2000, 0, flight::tag("creat"), 0, 2, 5, 1});
  pm.metrics_json = "{\"counters\":{\"rpc.calls\":42}}";
  pm.log_tail = {"E engine: peer 2 dead", "I daemon: serving"};
  pm.complete = true;
  write_seed("flight", "postmortem_full.txt",
             flight::render_postmortem(pm));

  // Truncated mid-section: the parser must accept it (crashes tear
  // reports all the time) and report complete=false.
  const std::string full = flight::render_postmortem(pm);
  write_seed("flight", "postmortem_torn.txt",
             full.substr(0, full.size() * 2 / 3));

  // Live report shape: no signal line, no backtrace.
  flight::Postmortem live;
  live.node_id = 1;
  live.pid = 77;
  live.capture_ns = 55;
  live.build = "gkfsd";
  live.events.push_back({10, 0, 1, 0, 1, 4, 2});
  live.complete = true;
  write_seed("flight", "postmortem_live.txt",
             flight::render_postmortem(live));

  // Header only — magic is the one mandatory token.
  write_seed("flight", "postmortem_magic_only.txt",
             std::string("GEKKO-POSTMORTEM v1\n"));
}

}  // namespace

int main(int argc, char** argv) {
  g_out = argc > 1 ? std::filesystem::path(argv[1])
                   : std::filesystem::path("corpus");
  gen_frame_codec();
  gen_proto();
  gen_wal();
  gen_sstable();
  gen_text_families();
  gen_flight();
  std::printf("corpus written to %s\n", g_out.string().c_str());
  return 0;
}
