#!/usr/bin/env bash
# One-shot verification gate: configure + build + lint + full test
# suite with the runtime lock-order validator on. This is the command
# to run before pushing; it is exactly what CI would run.
#
# Usage: scripts/check.sh [build-dir]
#   build-dir   defaults to ./build
#
# Environment:
#   GEKKO_SANITIZE   forward a sanitizer to the build
#                    (thread | address | undefined); uses a separate
#                    build dir build-<sanitizer> so the plain build
#                    stays warm.
#   JOBS             parallel build jobs (default: nproc)
set -eu

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SAN="${GEKKO_SANITIZE:-}"
if [ -n "${SAN}" ]; then
  BUILD_DIR="${1:-${REPO_ROOT}/build-${SAN}}"
else
  BUILD_DIR="${1:-${REPO_ROOT}/build}"
fi
JOBS="${JOBS:-$(nproc)}"

echo "== check.sh: configure (${BUILD_DIR}${SAN:+, sanitize=${SAN}})"
# GEKKO_THREAD_SAFETY is a hard error on violations under clang and a
# warned no-op under gcc, so it is always safe to request here.
cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DGEKKO_THREAD_SAFETY=ON \
      ${SAN:+-DGEKKO_SANITIZE=${SAN}} >/dev/null

echo "== check.sh: build (-j${JOBS})"
cmake --build "${BUILD_DIR}" -j"${JOBS}"

echo "== check.sh: lint gate (ctest -L lint)"
(cd "${BUILD_DIR}" && ctest -L lint --output-on-failure)

echo "== check.sh: sanitize-labeled suites"
(cd "${BUILD_DIR}" && GEKKO_LOCKDEP=1 ctest -L sanitize --output-on-failure)

echo "== check.sh: telemetry suite (ctest -L telemetry)"
(cd "${BUILD_DIR}" && GEKKO_LOCKDEP=1 ctest -L telemetry --output-on-failure)

echo "== check.sh: batched-metadata suite (ctest -L metadata_scale)"
(cd "${BUILD_DIR}" && GEKKO_LOCKDEP=1 ctest -L metadata_scale --output-on-failure)

echo "== check.sh: forensics suite (ctest -L forensics)"
(cd "${BUILD_DIR}" && GEKKO_LOCKDEP=1 ctest -L forensics --output-on-failure)

echo "== check.sh: full test suite (lockdep on)"
(cd "${BUILD_DIR}" && GEKKO_LOCKDEP=1 ctest --output-on-failure)

# Deterministic fuzz smoke: corpus replay + a fixed mutation budget per
# decoder family, in a dedicated ASan+UBSan build (the fuzz harnesses
# only exist under -DGEKKO_FUZZ=ON). Skipped when a sanitizer build was
# requested above — TSan does not compose with ASan, and the fuzz build
# pins its own sanitizers. scripts/fuzz.sh runs the long version.
if [ -z "${SAN}" ]; then
  FUZZ_BUILD_DIR="${REPO_ROOT}/build-fuzz"
  echo "== check.sh: fuzz smoke (configure ${FUZZ_BUILD_DIR})"
  cmake -S "${REPO_ROOT}" -B "${FUZZ_BUILD_DIR}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DGEKKO_FUZZ=ON \
        -DGEKKO_SANITIZE=address+undefined \
        -DGEKKO_BUILD_BENCH=OFF \
        -DGEKKO_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build "${FUZZ_BUILD_DIR}" -j"${JOBS}" >/dev/null
  (cd "${FUZZ_BUILD_DIR}" && ctest -L fuzz --output-on-failure)
fi

echo "== check.sh: all gates passed"
