#!/usr/bin/env bash
# Build the fuzz harnesses and run every decoder family for a sustained
# budget under ASan+UBSan. scripts/check.sh runs the short deterministic
# smoke (`ctest -L fuzz`); this script is the long-haul version to run
# after protocol or decoder changes.
#
# Usage: scripts/fuzz.sh [runs] [family...]
#   runs      iterations per family (default: 1000000)
#   family    subset of families to run (default: all harnesses built)
#
# Environment:
#   BUILD_DIR   fuzz build dir (default: <repo>/build-fuzz)
#   SEED        PRNG seed for the standalone engine (default: 1)
#   MAX_LEN     max mutated input length in bytes (default: 4096)
#   JOBS        parallel build jobs (default: nproc)
#
# With clang the harnesses link real libFuzzer and this script's flags
# pass straight through; with gcc the deterministic standalone engine
# accepts the same spelling. A failure hex-dumps the reproducer — save
# it under fuzz/corpus/<family>/regression_<what>.bin, fix the bug, and
# the corpus replay test (plain builds) pins it forever.
set -eu

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build-fuzz}"
RUNS="${1:-1000000}"
[ "$#" -gt 0 ] && shift
SEED="${SEED:-1}"
MAX_LEN="${MAX_LEN:-4096}"
JOBS="${JOBS:-$(nproc)}"

echo "== fuzz.sh: configure (${BUILD_DIR}, ASan+UBSan)"
cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DGEKKO_FUZZ=ON \
      -DGEKKO_SANITIZE=address+undefined \
      -DGEKKO_BUILD_BENCH=OFF \
      -DGEKKO_BUILD_EXAMPLES=OFF >/dev/null

echo "== fuzz.sh: build (-j${JOBS})"
cmake --build "${BUILD_DIR}" -j"${JOBS}" >/dev/null

if [ "$#" -gt 0 ]; then
  FAMILIES="$*"
else
  FAMILIES="$(cd "${BUILD_DIR}/fuzz" && ls gekko_fuzz_* |
              sed 's/^gekko_fuzz_//')"
fi

for family in ${FAMILIES}; do
  echo "== fuzz.sh: ${family} (${RUNS} runs, seed ${SEED})"
  "${BUILD_DIR}/fuzz/gekko_fuzz_${family}" \
      -runs="${RUNS}" -seed="${SEED}" -max_len="${MAX_LEN}" \
      "${REPO_ROOT}/fuzz/corpus/${family}"
done

echo "== fuzz.sh: all families clean"
