// The public GekkoFS file-system API.
//
// A Mount binds one application process to a GekkoFS deployment: it
// owns the forwarding Client and the File Map and exposes the
// POSIX-like calls the interposition library would intercept. POSIX
// relaxations (paper §III.A) are enforced here:
//   - no rename/link (Errc::not_supported),
//   - no permission checks,
//   - readdir is eventually consistent,
//   - every data/metadata operation is synchronous (no caches), except
//     the opt-in size-update write-back cache.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "client/client.h"
#include "common/result.h"
#include "fs/file_map.h"

namespace gekko::fs {

class Mount {
 public:
  Mount(net::Fabric& fabric, std::vector<net::EndpointId> daemons,
        client::ClientOptions options = {});

  // -- file lifecycle ------------------------------------------------------
  /// POSIX-like open. Returns a GekkoFS fd (>= kFdBase).
  Result<int> open(std::string_view path, std::uint32_t flags,
                   std::uint32_t mode = 0644);
  Status close(int fd);

  // -- I/O -------------------------------------------------------------
  Result<std::size_t> pwrite(int fd, std::span<const std::uint8_t> data,
                             std::uint64_t offset);
  Result<std::size_t> pread(int fd, std::span<std::uint8_t> out,
                            std::uint64_t offset);
  /// Positioned variants advance the fd offset (append honors O_APPEND).
  Result<std::size_t> write(int fd, std::span<const std::uint8_t> data);
  Result<std::size_t> read(int fd, std::span<std::uint8_t> out);

  enum class Whence { set, cur, end };
  Result<std::uint64_t> lseek(int fd, std::int64_t offset, Whence whence);

  Status fsync(int fd);  // flushes cached size updates (data is sync)

  // -- metadata --------------------------------------------------------
  Result<proto::Metadata> stat(std::string_view path);
  Result<proto::Metadata> fstat(int fd);
  Status unlink(std::string_view path);
  Status truncate(std::string_view path, std::uint64_t size);

  // -- directories -------------------------------------------------------
  Status mkdir(std::string_view path, std::uint32_t mode = 0755);
  Status rmdir(std::string_view path);
  Result<int> opendir(std::string_view path);
  /// nullopt at end of stream.
  Result<std::optional<proto::Dirent>> readdir(int dirfd);
  Status closedir(int dirfd);

  // -- unsupported by design (paper §III.A) -------------------------------
  Status rename(std::string_view, std::string_view) {
    return Status{Errc::not_supported, "GekkoFS does not support rename"};
  }
  Status link(std::string_view, std::string_view) {
    return Status{Errc::not_supported, "GekkoFS does not support links"};
  }
  Status symlink(std::string_view, std::string_view) {
    return Status{Errc::not_supported, "GekkoFS does not support links"};
  }

  // -- introspection -----------------------------------------------------
  [[nodiscard]] client::Client& client() noexcept { return client_; }
  [[nodiscard]] const FileMap& file_map() const noexcept { return files_; }

 private:
  Result<std::shared_ptr<OpenFile>> checked_file_(int fd) const;

  client::Client client_;
  FileMap files_;
};

}  // namespace gekko::fs
