// The client File Map (paper §III.B.a, client component 2):
// "a file map that manages the file descriptors of open files and
//  directories, independently of the kernel".
//
// Descriptors live in their own number space starting far above any
// kernel fd (like the interposition library's separation of GekkoFS
// fds from node-local fds).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "proto/metadata.h"

namespace gekko::fs {

/// Open flags (subset of POSIX; rename/link don't exist in GekkoFS).
enum OpenFlag : std::uint32_t {
  rd_only = 1u << 0,
  wr_only = 1u << 1,
  rd_wr = 1u << 2,
  create = 1u << 3,
  excl = 1u << 4,
  trunc = 1u << 5,
  append = 1u << 6,
};

inline constexpr int kFdBase = 100000;

struct OpenFile {
  std::string path;  // normalized
  std::uint32_t flags = 0;
  proto::FileType type = proto::FileType::regular;
  std::atomic<std::uint64_t> position{0};

  [[nodiscard]] bool readable() const noexcept {
    return (flags & (rd_only | rd_wr)) != 0;
  }
  [[nodiscard]] bool writable() const noexcept {
    return (flags & (wr_only | rd_wr)) != 0;
  }
  [[nodiscard]] bool appending() const noexcept {
    return (flags & append) != 0;
  }
};

struct OpenDir {
  std::string path;
  std::vector<proto::Dirent> entries;  // snapshot at opendir()
  std::size_t cursor = 0;
};

class FileMap {
 public:
  int insert_file(std::shared_ptr<OpenFile> file) {
    WriteLockGuard lock(mutex_);
    const int fd = next_fd_++;
    files_[fd] = std::move(file);
    return fd;
  }

  int insert_dir(std::shared_ptr<OpenDir> dir) {
    WriteLockGuard lock(mutex_);
    const int fd = next_fd_++;
    dirs_[fd] = std::move(dir);
    return fd;
  }

  [[nodiscard]] std::shared_ptr<OpenFile> file(int fd) const {
    SharedLockGuard lock(mutex_);
    auto it = files_.find(fd);
    return it != files_.end() ? it->second : nullptr;
  }

  [[nodiscard]] std::shared_ptr<OpenDir> dir(int fd) const {
    SharedLockGuard lock(mutex_);
    auto it = dirs_.find(fd);
    return it != dirs_.end() ? it->second : nullptr;
  }

  bool erase(int fd) {
    WriteLockGuard lock(mutex_);
    return files_.erase(fd) > 0 || dirs_.erase(fd) > 0;
  }

  /// True if `fd` belongs to this map (vs. the kernel's space) — the
  /// dispatch test the interposition shim performs on every call.
  [[nodiscard]] static bool owns(int fd) noexcept { return fd >= kFdBase; }

  [[nodiscard]] std::size_t open_count() const {
    SharedLockGuard lock(mutex_);
    return files_.size() + dirs_.size();
  }

 private:
  /// Read-mostly (every shim call does a file()/dir() lookup; opens
  /// and closes are comparatively rare), hence a SharedMutex.
  mutable SharedMutex mutex_{"fs.file_map", lockdep::rank::kFileMap};
  int next_fd_ GEKKO_GUARDED_BY(mutex_) = kFdBase;
  std::unordered_map<int, std::shared_ptr<OpenFile>> files_
      GEKKO_GUARDED_BY(mutex_);
  std::unordered_map<int, std::shared_ptr<OpenDir>> dirs_
      GEKKO_GUARDED_BY(mutex_);
};

}  // namespace gekko::fs
