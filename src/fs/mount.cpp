// relaxed-ok: mount op tallies are standalone counters read only by
// stats(); no other data is published through them.
#include "fs/mount.h"

#include "common/path.h"

namespace gekko::fs {

Mount::Mount(net::Fabric& fabric, std::vector<net::EndpointId> daemons,
             client::ClientOptions options)
    : client_(fabric, std::move(daemons), std::move(options)) {}

Result<std::shared_ptr<OpenFile>> Mount::checked_file_(int fd) const {
  auto file = files_.file(fd);
  if (!file) return Status{Errc::bad_fd, "fd " + std::to_string(fd)};
  return file;
}

// ---------- lifecycle ----------

Result<int> Mount::open(std::string_view raw_path, std::uint32_t flags,
                        std::uint32_t mode) {
  auto normalized = path::normalize(raw_path);
  if (!normalized) return normalized.status();
  const std::string& p = *normalized;

  // Access-mode sanity: exactly one of rd_only/wr_only/rd_wr.
  const int modes = ((flags & rd_only) != 0) + ((flags & wr_only) != 0) +
                    ((flags & rd_wr) != 0);
  if (modes != 1) {
    return Status{Errc::invalid_argument, "exactly one access mode required"};
  }

  proto::FileType type = proto::FileType::regular;
  if (flags & create) {
    // create-vs-unlink races: "exists" followed by a failed stat means
    // another client removed the file in between — retry the create
    // (POSIX O_CREAT semantics, bounded).
    Status st = Status::ok();
    for (int attempt = 0; attempt < 8; ++attempt) {
      st = client_.create(p, proto::FileType::regular, mode);
      if (st.is_ok()) break;
      if (st.code() != Errc::exists) return st;
      if (flags & excl) return Errc::exists;
      auto md = client_.stat(p);
      if (md.is_ok()) {
        type = md->type;
        st = Status::ok();
        break;
      }
      if (md.code() != Errc::not_found) return md.status();
      st = md.status();  // lost the race; loop and re-create
    }
    if (!st.is_ok()) return st;
  } else {
    auto md = client_.stat(p);
    if (!md) return md.status();
    type = md->type;
  }
  if (type == proto::FileType::directory && ((flags & (wr_only | rd_wr)))) {
    return Errc::is_directory;
  }

  if ((flags & trunc) && type == proto::FileType::regular) {
    GEKKO_RETURN_IF_ERROR(client_.truncate(p, 0));
  }

  auto file = std::make_shared<OpenFile>();
  file->path = p;
  file->flags = flags;
  file->type = type;
  return files_.insert_file(std::move(file));
}

Status Mount::close(int fd) {
  auto file = files_.file(fd);
  if (file) {
    // close() is the durability point for cached size updates.
    GEKKO_RETURN_IF_ERROR(client_.flush_size(file->path));
  }
  if (!files_.erase(fd)) return Errc::bad_fd;
  return Status::ok();
}

// ---------- I/O ----------

Result<std::size_t> Mount::pwrite(int fd, std::span<const std::uint8_t> data,
                                  std::uint64_t offset) {
  GEKKO_ASSIGN_OR_RETURN(auto file, checked_file_(fd));
  if (!file->writable()) return Errc::bad_fd;
  return client_.write(file->path, offset, data);
}

Result<std::size_t> Mount::pread(int fd, std::span<std::uint8_t> out,
                                 std::uint64_t offset) {
  GEKKO_ASSIGN_OR_RETURN(auto file, checked_file_(fd));
  if (!file->readable()) return Errc::bad_fd;
  return client_.read(file->path, offset, out);
}

Result<std::size_t> Mount::write(int fd, std::span<const std::uint8_t> data) {
  GEKKO_ASSIGN_OR_RETURN(auto file, checked_file_(fd));
  if (!file->writable()) return Errc::bad_fd;

  std::uint64_t offset;
  if (file->appending()) {
    auto md = client_.stat(file->path);
    if (!md) return md.status();
    offset = md->size;
  } else {
    offset = file->position.load(std::memory_order_relaxed);
  }
  auto written = client_.write(file->path, offset, data);
  if (!written) return written.status();
  file->position.store(offset + *written, std::memory_order_relaxed);
  return written;
}

Result<std::size_t> Mount::read(int fd, std::span<std::uint8_t> out) {
  GEKKO_ASSIGN_OR_RETURN(auto file, checked_file_(fd));
  if (!file->readable()) return Errc::bad_fd;
  const std::uint64_t offset = file->position.load(std::memory_order_relaxed);
  auto n = client_.read(file->path, offset, out);
  if (!n) return n.status();
  file->position.store(offset + *n, std::memory_order_relaxed);
  return n;
}

Result<std::uint64_t> Mount::lseek(int fd, std::int64_t offset,
                                   Whence whence) {
  GEKKO_ASSIGN_OR_RETURN(auto file, checked_file_(fd));
  std::int64_t base = 0;
  switch (whence) {
    case Whence::set:
      base = 0;
      break;
    case Whence::cur:
      base = static_cast<std::int64_t>(
          file->position.load(std::memory_order_relaxed));
      break;
    case Whence::end: {
      auto md = client_.stat(file->path);
      if (!md) return md.status();
      base = static_cast<std::int64_t>(md->size);
      break;
    }
  }
  const std::int64_t target = base + offset;
  if (target < 0) return Errc::invalid_argument;
  file->position.store(static_cast<std::uint64_t>(target),
                       std::memory_order_relaxed);
  return static_cast<std::uint64_t>(target);
}

Status Mount::fsync(int fd) {
  GEKKO_ASSIGN_OR_RETURN(auto file, checked_file_(fd));
  // Data is written synchronously; only cached size updates may be
  // outstanding.
  return client_.flush_size(file->path);
}

// ---------- metadata ----------

Result<proto::Metadata> Mount::stat(std::string_view raw_path) {
  auto normalized = path::normalize(raw_path);
  if (!normalized) return normalized.status();
  if (*normalized == "/") {
    // The root exists implicitly (it has no KV record of its own).
    proto::Metadata md;
    md.type = proto::FileType::directory;
    md.mode = 0755;
    return md;
  }
  return client_.stat(*normalized);
}

Result<proto::Metadata> Mount::fstat(int fd) {
  GEKKO_ASSIGN_OR_RETURN(auto file, checked_file_(fd));
  return client_.stat(file->path);
}

Status Mount::unlink(std::string_view raw_path) {
  auto normalized = path::normalize(raw_path);
  if (!normalized) return normalized.status();
  auto md = client_.stat(*normalized);
  if (!md) return md.status();
  if (md->is_directory()) return Errc::is_directory;
  return client_.remove(*normalized);
}

Status Mount::truncate(std::string_view raw_path, std::uint64_t size) {
  auto normalized = path::normalize(raw_path);
  if (!normalized) return normalized.status();
  return client_.truncate(*normalized, size);
}

// ---------- directories ----------

Status Mount::mkdir(std::string_view raw_path, std::uint32_t mode) {
  auto normalized = path::normalize(raw_path);
  if (!normalized) return normalized.status();
  if (*normalized == "/") return Errc::exists;
  return client_.create(*normalized, proto::FileType::directory, mode);
}

Status Mount::rmdir(std::string_view raw_path) {
  auto normalized = path::normalize(raw_path);
  if (!normalized) return normalized.status();
  if (*normalized == "/") return Errc::busy;
  return client_.rmdir(*normalized);
}

Result<int> Mount::opendir(std::string_view raw_path) {
  auto normalized = path::normalize(raw_path);
  if (!normalized) return normalized.status();

  if (*normalized != "/") {
    auto md = client_.stat(*normalized);
    if (!md) return md.status();
    if (!md->is_directory()) return Errc::not_directory;
  }
  // Snapshot the (eventually consistent) merged listing at open time —
  // GekkoFS "does not guarantee to return the current state of the
  // directory" (paper §III.A).
  auto entries = client_.readdir(*normalized);
  if (!entries) return entries.status();

  auto dir = std::make_shared<OpenDir>();
  dir->path = *normalized;
  dir->entries = std::move(*entries);
  return files_.insert_dir(std::move(dir));
}

Result<std::optional<proto::Dirent>> Mount::readdir(int dirfd) {
  auto dir = files_.dir(dirfd);
  if (!dir) return Status{Errc::bad_fd, "dirfd " + std::to_string(dirfd)};
  if (dir->cursor >= dir->entries.size()) {
    return std::optional<proto::Dirent>{};
  }
  return std::optional<proto::Dirent>{dir->entries[dir->cursor++]};
}

Status Mount::closedir(int dirfd) {
  if (!files_.dir(dirfd)) return Errc::bad_fd;
  files_.erase(dirfd);
  return Status::ok();
}

}  // namespace gekko::fs
