// relaxed-ok: IoStageNs io/bulk tallies are plain accumulators; the
// io_pool_ Eventual join that precedes reading them is the
// synchronization point, so the loads cannot observe torn sums.
#include "daemon/daemon.h"

#include <chrono>
#include <thread>
#include <vector>

#include "common/crash.h"
#include "common/flight_recorder.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/prometheus.h"
#include "common/trace.h"
#include "common/units.h"
#include "kv/cache.h"
#include "proto/messages.h"
#include "task/future.h"

namespace gekko::daemon {

using proto::RpcId;

Result<std::unique_ptr<GekkoDaemon>> GekkoDaemon::start(
    net::Fabric& fabric, const std::filesystem::path& root,
    DaemonOptions options) {
  std::unique_ptr<GekkoDaemon> d(new GekkoDaemon(std::move(options)));
  d->fabric_ = &fabric;
  d->registry_ = d->options_.registry != nullptr
                     ? d->options_.registry
                     : &metrics::Registry::global();

  // Default a modest block cache so SST reads (stat storms) hit memory
  // and `kv.cache.*` metrics are meaningful out of the box.
  if (d->options_.kv_options.block_cache == nullptr) {
    d->options_.kv_options.block_cache =
        std::make_shared<kv::BlockCache>(8_MiB);
  }

  auto metadata = MetadataBackend::open(root / "metadata",
                                        d->options_.kv_options);
  if (!metadata) return metadata.status();
  d->metadata_ = std::move(*metadata);

  storage::ChunkStorageOptions storage_opts;
  storage_opts.fd_cache_capacity = d->options_.fd_cache_capacity;
  auto data = storage::ChunkStorage::open(root / "chunks",
                                          d->options_.chunk_size,
                                          storage_opts);
  if (!data) return data.status();
  d->data_ = std::make_unique<storage::ChunkStorage>(std::move(*data));

  if (d->options_.io_threads > 0) {
    d->io_pool_ =
        std::make_unique<task::Pool>(d->options_.io_threads, "iostreams");
  }
  d->io_queue_ = &d->registry_->histogram("daemon.io.queue");
  d->io_service_ = &d->registry_->histogram("daemon.io.service");

  rpc::EngineOptions rpc_opts = d->options_.rpc_options;
  rpc_opts.handler_threads = d->options_.handler_threads;
  if (rpc_opts.name == "engine") rpc_opts.name = "gkfs-daemon";
  if (rpc_opts.registry == nullptr) rpc_opts.registry = d->registry_;
  if (!rpc_opts.rpc_name) rpc_opts.rpc_name = proto::rpc_name;
  // Paused: the listener binds here (clients may connect and queue
  // requests) but nothing dispatches until every handler is in place —
  // otherwise a fast client can have its first rpc bounced with
  // not_supported during daemon startup.
  rpc_opts.start_paused = true;
  d->engine_ = std::make_unique<rpc::Engine>(fabric, rpc_opts);
  d->register_handlers_();
  d->engine_->start();

  // Telemetry sampler: periodic Registry -> History pump feeding the
  // metric_history RPC. pre_sample republishes backend absolutes so
  // the time series sees storage/kv gauges move between RPC dumps.
  metrics::SamplerOptions sampler_opts;
  sampler_opts.interval_ms =
      d->options_.sample_interval_ms.has_value()
          ? *d->options_.sample_interval_ms
          : metrics::sample_interval_ms_from_env(1000);
  sampler_opts.retention = d->options_.sample_retention;
  sampler_opts.pre_sample = [daemon = d.get()] {
    daemon->publish_backend_metrics_();
    // Keep the crash module's double-buffered snapshot fresh: this is
    // the [metrics] section a fatal-signal postmortem embeds (the
    // handler itself can serialize nothing).
    crash::publish_metrics_json(daemon->metrics_json());
  };
  d->sampler_ = std::make_unique<metrics::Sampler>(*d->registry_,
                                                   std::move(sampler_opts));
  d->sampler_->start();

  if (d->options_.metrics_http_port >= 0) {
    net::HttpExporterOptions http_opts;
    http_opts.port = static_cast<std::uint16_t>(d->options_.metrics_http_port);
    http_opts.registry = d->registry_;
    const std::string node_label =
        std::to_string(static_cast<std::uint32_t>(d->engine_->endpoint()));
    auto exporter = net::HttpExporter::create(
        std::move(http_opts),
        [daemon = d.get(), node_label](const std::string& path) {
          if (path == "/metrics") {
            daemon->publish_backend_metrics_();
            prom::RenderOptions render_opts;
            render_opts.labels["node"] = node_label;
            return net::HttpResponse{
                200, "text/plain; version=0.0.4; charset=utf-8",
                prom::render(*daemon->registry_, render_opts)};
          }
          if (path == "/healthz") {
            return net::HttpResponse{200, "text/plain", "ok\n"};
          }
          return net::HttpResponse{404, "text/plain", "not found\n"};
        });
    if (!exporter) return exporter.status();
    d->http_ = std::move(*exporter);
  }

  GEKKO_INFO("daemon") << "daemon up at endpoint " << d->engine_->endpoint()
                       << " root=" << root.string();
  return d;
}

GekkoDaemon::~GekkoDaemon() { shutdown(); }

void GekkoDaemon::shutdown() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) return;
  // Exporter first (no new scrapes), then the engine: joining the
  // handler pool waits out every in-flight chunk handler, and each of
  // those has already joined its own slice tasks — so by the time the
  // io pool shuts down it is quiescent. The sampler stops last: its
  // final sample captures the fully-settled counters.
  if (http_) http_->stop();
  if (engine_) engine_->shutdown();
  if (io_pool_) io_pool_->shutdown();
  if (sampler_) sampler_->stop();
}

void GekkoDaemon::register_handlers_() {
  // Each handler is wrapped with daemon-level service accounting
  // (`daemon.<op>.ops/.errors/.latency`). The engine separately tracks
  // rpc.handler.* including queueing — the daemon view is pure service
  // time of the op against kv/storage.
  auto bind = [this](RpcId id, const char* name,
                     Result<std::vector<std::uint8_t>> (GekkoDaemon::*fn)(
                         const net::Message&)) {
    const std::string base = std::string("daemon.") + name + ".";
    auto* ops = &registry_->counter(base + "ops");
    auto* errors = &registry_->counter(base + "errors");
    auto* latency = &registry_->histogram(base + "latency");
    engine_->register_rpc(
        proto::to_wire(id), name,
        [this, fn, ops, errors, latency](const net::Message& msg) {
          const std::uint64_t t0 = metrics::now_ns();
          auto result = (this->*fn)(msg);
          latency->record(metrics::now_ns() - t0);
          ops->inc();
          if (!result.is_ok()) errors->inc();
          return result;
        });
  };
  bind(RpcId::create, "create", &GekkoDaemon::on_create_);
  bind(RpcId::stat, "stat", &GekkoDaemon::on_stat_);
  bind(RpcId::remove_metadata, "remove_metadata",
       &GekkoDaemon::on_remove_metadata_);
  bind(RpcId::remove_data, "remove_data", &GekkoDaemon::on_remove_data_);
  bind(RpcId::update_size, "update_size", &GekkoDaemon::on_update_size_);
  bind(RpcId::truncate_metadata, "truncate_metadata",
       &GekkoDaemon::on_truncate_metadata_);
  bind(RpcId::truncate_data, "truncate_data",
       &GekkoDaemon::on_truncate_data_);
  bind(RpcId::write_chunks, "write_chunks", &GekkoDaemon::on_write_chunks_);
  bind(RpcId::read_chunks, "read_chunks", &GekkoDaemon::on_read_chunks_);
  bind(RpcId::get_dirents, "get_dirents", &GekkoDaemon::on_get_dirents_);
  bind(RpcId::batch_create, "batch_create", &GekkoDaemon::on_batch_create_);
  bind(RpcId::batch_stat, "batch_stat", &GekkoDaemon::on_batch_stat_);
  bind(RpcId::batch_remove, "batch_remove", &GekkoDaemon::on_batch_remove_);
  bind(RpcId::daemon_stat, "daemon_stat", &GekkoDaemon::on_daemon_stat_);
  bind(RpcId::trace_dump, "trace_dump", &GekkoDaemon::on_trace_dump_);
  bind(RpcId::flight_dump, "flight_dump", &GekkoDaemon::on_flight_dump_);
  bind(RpcId::heartbeat, "heartbeat", &GekkoDaemon::on_heartbeat_);
  bind(RpcId::metric_history, "metric_history",
       &GekkoDaemon::on_metric_history_);
}

namespace {
std::string_view payload_view(const net::Message& msg) {
  return std::string_view(reinterpret_cast<const char*>(msg.payload.data()),
                          msg.payload.size());
}
}  // namespace

Result<std::vector<std::uint8_t>> GekkoDaemon::on_create_(
    const net::Message& msg) {
  auto req = proto::CreateRequest::decode(payload_view(msg));
  if (!req) return req.status();
  proto::Metadata md;
  md.type = static_cast<proto::FileType>(req->type);
  md.mode = req->mode;
  md.ctime_ns = md.mtime_ns = req->ctime_ns;
  GEKKO_RETURN_IF_ERROR(metadata_->create(req->path, md));
  return std::vector<std::uint8_t>{};
}

Result<std::vector<std::uint8_t>> GekkoDaemon::on_stat_(
    const net::Message& msg) {
  auto req = proto::PathRequest::decode(payload_view(msg));
  if (!req) return req.status();
  auto md = metadata_->get(req->path);
  if (!md) return md.status();
  return proto::StatResponse{*md}.encode();
}

Result<std::vector<std::uint8_t>> GekkoDaemon::on_remove_metadata_(
    const net::Message& msg) {
  auto req = proto::PathRequest::decode(payload_view(msg));
  if (!req) return req.status();
  auto md = metadata_->remove(req->path);
  if (!md) return md.status();
  return proto::StatResponse{*md}.encode();
}

Result<std::vector<std::uint8_t>> GekkoDaemon::on_remove_data_(
    const net::Message& msg) {
  auto req = proto::PathRequest::decode(payload_view(msg));
  if (!req) return req.status();
  GEKKO_RETURN_IF_ERROR(data_->remove_all(req->path));
  return std::vector<std::uint8_t>{};
}

Result<std::vector<std::uint8_t>> GekkoDaemon::on_update_size_(
    const net::Message& msg) {
  auto req = proto::UpdateSizeRequest::decode(payload_view(msg));
  if (!req) return req.status();
  GEKKO_RETURN_IF_ERROR(
      metadata_->update_size(req->path, req->observed_size, req->mtime_ns));
  return std::vector<std::uint8_t>{};
}

Result<std::vector<std::uint8_t>> GekkoDaemon::on_truncate_metadata_(
    const net::Message& msg) {
  auto req = proto::TruncateRequest::decode(payload_view(msg));
  if (!req) return req.status();
  // Verify existence first: truncate of a missing file must ENOENT,
  // and a size-set merge would otherwise resurrect it.
  auto md = metadata_->get(req->path);
  if (!md) return md.status();
  if (md->is_directory()) return Errc::is_directory;
  GEKKO_RETURN_IF_ERROR(metadata_->set_size(req->path, req->new_size));
  return std::vector<std::uint8_t>{};
}

Result<std::vector<std::uint8_t>> GekkoDaemon::on_truncate_data_(
    const net::Message& msg) {
  auto req = proto::TruncateRequest::decode(payload_view(msg));
  if (!req) return req.status();
  const std::uint32_t cs = options_.chunk_size;
  const std::uint64_t last_chunk = req->new_size / cs;
  const auto last_bytes = static_cast<std::uint32_t>(req->new_size % cs);
  GEKKO_RETURN_IF_ERROR(data_->truncate(req->path, last_chunk, last_bytes));
  return std::vector<std::uint8_t>{};
}

Result<std::vector<std::uint8_t>> GekkoDaemon::on_write_chunks_(
    const net::Message& msg) {
  return chunk_io_(msg, /*is_write=*/true);
}

Result<std::vector<std::uint8_t>> GekkoDaemon::on_read_chunks_(
    const net::Message& msg) {
  return chunk_io_(msg, /*is_write=*/false);
}

Status GekkoDaemon::slice_io_(const proto::ChunkIoRequest& req,
                              const proto::ChunkSlice& slice,
                              const net::Message& msg, bool is_write,
                              IoStageNs& stages) {
  // Grow-only bounce buffer, reused across slices AND requests on this
  // worker. make_unique_for_overwrite skips value-initialization — every
  // byte is overwritten by the bulk pull / chunk read before use
  // (read_chunk zero-fills sparse tails itself).
  thread_local std::unique_ptr<std::uint8_t[]> buf;
  thread_local std::size_t buf_cap = 0;
  if (buf_cap < slice.length) {
    buf = std::make_unique_for_overwrite<std::uint8_t[]>(slice.length);
    buf_cap = slice.length;
  }
  const std::span<std::uint8_t> span(buf.get(), slice.length);

  // Black-box markers around the slice: a daemon that dies mid-io
  // shows an unmatched io_begin for the exact chunk in its postmortem.
  flight::record(flight::Subsys::daemon, flight::ev::daemon_io_begin,
                 slice.chunk_id, static_cast<std::uint32_t>(slice.length));

  std::uint64_t t = metrics::now_ns();
  // Stage accounting: `bulk` is time moving bytes across the fabric
  // (pull/push), `io` is time against the chunk store plus any modeled
  // device wait. Accumulated per request for the slow-op breakdown.
  if (is_write) {
    // One-sided pull from the client's exposed region (RDMA read).
    GEKKO_RETURN_IF_ERROR(fabric_->bulk_pull(msg.bulk, slice.bulk_offset,
                                             span));
    std::uint64_t now = metrics::now_ns();
    stages.bulk.fetch_add(now - t, std::memory_order_relaxed);
    t = now;
    GEKKO_RETURN_IF_ERROR(data_->write_chunk(
        req.path, slice.chunk_id, slice.offset_in_chunk,
        std::span<const std::uint8_t>(span)));
  } else {
    GEKKO_RETURN_IF_ERROR(data_->read_chunk(req.path, slice.chunk_id,
                                            slice.offset_in_chunk, span)
                              .status());
  }

  if (options_.device_model != nullptr) {
    // Hardware substitution (DESIGN §1): charge the modeled SSD service
    // time for this op. Sub-chunk slices pay the random-access penalty.
    const bool random = slice.offset_in_chunk != 0 ||
                        slice.length != options_.chunk_size;
    const double secs =
        is_write ? options_.device_model->write_time(slice.length, random)
                 : options_.device_model->read_time(slice.length, random);
    std::this_thread::sleep_for(std::chrono::duration<double>(secs));
  }
  {
    const std::uint64_t now = metrics::now_ns();
    stages.io.fetch_add(now - t, std::memory_order_relaxed);
    t = now;
  }

  if (!is_write) {
    // One-sided push into the client's buffer (RDMA write).
    GEKKO_RETURN_IF_ERROR(fabric_->bulk_push(
        msg.bulk, slice.bulk_offset, std::span<const std::uint8_t>(span)));
    stages.bulk.fetch_add(metrics::now_ns() - t, std::memory_order_relaxed);
  }
  flight::record(flight::Subsys::daemon, flight::ev::daemon_io_end,
                 slice.chunk_id, static_cast<std::uint32_t>(slice.length));
  return Status::ok();
}

Result<std::vector<std::uint8_t>> GekkoDaemon::chunk_io_(
    const net::Message& msg, bool is_write) {
  auto req = proto::ChunkIoRequest::decode(payload_view(msg));
  if (!req) return req.status();

  // Validate every slice against the chunk geometry BEFORE any buffer
  // is sized from a wire-supplied length.
  const std::uint64_t cs = options_.chunk_size;
  for (const auto& slice : req->slices) {
    if (slice.length > cs ||
        static_cast<std::uint64_t>(slice.offset_in_chunk) + slice.length >
            cs) {
      return Status{Errc::invalid_argument, "slice crosses chunk boundary"};
    }
  }

  // The handler thread's span context (the RPC service span): io
  // tasks run on OTHER threads, so each captures it by value and
  // re-installs it — every slice becomes a child span of the service
  // span, carrying the parent RPC's trace id across the pool boundary.
  const trace::SpanContext ctx = trace::current();
  IoStageNs stages;

  std::uint64_t total = 0;
  if (io_pool_ == nullptr || req->slices.size() < 2) {
    // Serial path: no pool (io_threads=0) or nothing to overlap.
    for (const auto& slice : req->slices) {
      const std::uint64_t t0 = metrics::now_ns();
      Status st = slice_io_(*req, slice, msg, is_write, stages);
      if (ctx.active()) {
        engine_->tracer().record("daemon.io.slice", ctx.trace_id,
                                 trace::new_span_id(), ctx.span_id,
                                 msg.rpc_id, 0, t0, metrics::now_ns() - t0);
      }
      GEKKO_RETURN_IF_ERROR(st);
      total += slice.length;
    }
    trace::stage_add("io", stages.io.load(std::memory_order_relaxed));
    trace::stage_add("bulk", stages.bulk.load(std::memory_order_relaxed));
    return proto::ChunkIoResponse{total}.encode();
  }

  // Fan out: one task per slice (the paper's one-ULT-per-chunk-op
  // model). The handler blocks on the eventuals, so req/msg/stages
  // outlive every task — ALL eventuals must be awaited even after an
  // error.
  std::vector<task::Eventual<Status>> done(req->slices.size());
  for (std::size_t i = 0; i < req->slices.size(); ++i) {
    const std::uint64_t posted_ns = metrics::now_ns();
    auto ev = done[i];
    const bool queued = io_pool_->post([this, &r = *req, &msg, &stages, i,
                                        is_write, posted_ns, ctx, ev] {
      io_queue_->record(metrics::now_ns() - posted_ns);
      const std::uint64_t t0 = metrics::now_ns();
      trace::ContextGuard guard(ctx);
      Status st = slice_io_(r, r.slices[i], msg, is_write, stages);
      const std::uint64_t t1 = metrics::now_ns();
      if (ctx.active()) {
        engine_->tracer().record("daemon.io.slice", ctx.trace_id,
                                 trace::new_span_id(), ctx.span_id,
                                 msg.rpc_id, 0, t0, t1 - t0);
      }
      // Record before set(): once the last eventual fires the
      // handler may respond, and a caller snapshotting the registry
      // right after the RPC must already see every sample.
      io_service_->record(t1 - t0);
      ev.set(std::move(st));
    });
    if (!queued) ev.set(Status{Errc::again, "io pool shut down"});
  }

  Status first = Status::ok();
  for (std::size_t i = 0; i < done.size(); ++i) {
    Status s = done[i].wait();
    if (first.is_ok() && !s.is_ok()) first = std::move(s);
  }
  // Fold the per-request io/bulk totals into this handler thread's
  // stage pad: the engine's slow-op line then shows queue/service/io/
  // bulk for this op without any cross-thread logging.
  trace::stage_add("io", stages.io.load(std::memory_order_relaxed));
  trace::stage_add("bulk", stages.bulk.load(std::memory_order_relaxed));
  GEKKO_RETURN_IF_ERROR(first);
  for (const auto& slice : req->slices) total += slice.length;
  return proto::ChunkIoResponse{total}.encode();
}

Result<std::vector<std::uint8_t>> GekkoDaemon::on_get_dirents_(
    const net::Message& msg) {
  auto req = proto::DirentsRequest::decode(payload_view(msg));
  if (!req) return req.status();
  auto entries = metadata_->dirents(req->dir_path);
  if (!entries) return entries.status();
  proto::DirentsResponse resp;
  resp.entries = std::move(*entries);
  return resp.encode();
}

Result<std::vector<std::uint8_t>> GekkoDaemon::on_batch_create_(
    const net::Message& msg) {
  auto req = proto::BatchCreateRequest::decode(payload_view(msg));
  if (!req) return req.status();
  std::vector<std::pair<std::string, proto::Metadata>> entries;
  entries.reserve(req->entries.size());
  for (auto& e : req->entries) {
    proto::Metadata md;
    md.type = static_cast<proto::FileType>(e.type);
    md.mode = e.mode;
    md.ctime_ns = md.mtime_ns = e.ctime_ns;
    entries.emplace_back(std::move(e.path), md);
  }
  std::vector<Errc> out;
  GEKKO_RETURN_IF_ERROR(metadata_->create_batch(entries, &out));
  proto::BatchCreateResponse resp;
  resp.statuses.reserve(out.size());
  for (const Errc e : out) {
    resp.statuses.push_back(proto::batch_status_from_errc(e));
  }
  return resp.encode();
}

Result<std::vector<std::uint8_t>> GekkoDaemon::on_batch_stat_(
    const net::Message& msg) {
  auto req = proto::BatchPathRequest::decode(payload_view(msg));
  if (!req) return req.status();
  std::vector<Errc> out;
  std::vector<proto::Metadata> mds;
  GEKKO_RETURN_IF_ERROR(metadata_->stat_batch(req->paths, &out, &mds));
  proto::BatchStatResponse resp;
  resp.entries.reserve(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    proto::BatchStatResponse::Entry e;
    e.status = proto::batch_status_from_errc(out[i]);
    if (out[i] == Errc::ok) e.metadata = std::move(mds[i]);
    resp.entries.push_back(std::move(e));
  }
  return resp.encode();
}

Result<std::vector<std::uint8_t>> GekkoDaemon::on_batch_remove_(
    const net::Message& msg) {
  auto req = proto::BatchPathRequest::decode(payload_view(msg));
  if (!req) return req.status();
  std::vector<Errc> out;
  std::vector<proto::Metadata> old_mds;
  GEKKO_RETURN_IF_ERROR(metadata_->remove_batch(req->paths, &out, &old_mds));
  proto::BatchRemoveResponse resp;
  resp.entries.reserve(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    proto::BatchRemoveResponse::Entry e;
    e.status = proto::batch_status_from_errc(out[i]);
    if (out[i] == Errc::ok) {
      e.old_size = old_mds[i].size;
      e.was_directory = old_mds[i].is_directory() ? 1 : 0;
    }
    resp.entries.push_back(e);
  }
  return resp.encode();
}

Result<std::vector<std::uint8_t>> GekkoDaemon::on_daemon_stat_(
    const net::Message& msg) {
  (void)msg;
  proto::DaemonStatResponse resp;
  auto count = metadata_->entry_count();
  if (!count) return count.status();
  resp.metadata_entries = *count;
  const auto cs = data_->stats();
  resp.chunks_written = cs.chunks_written;
  resp.chunks_read = cs.chunks_read;
  resp.bytes_written = cs.bytes_written;
  resp.bytes_read = cs.bytes_read;
  resp.metrics_json = metrics_json();
  return resp.encode();
}

Result<std::vector<std::uint8_t>> GekkoDaemon::on_trace_dump_(
    const net::Message& msg) {
  (void)msg;
  proto::TraceDumpResponse resp;
  metrics::Tracer& tracer = engine_->tracer();
  resp.node_id = static_cast<std::uint32_t>(engine_->endpoint());
  resp.capture_ns = metrics::now_ns();
  resp.recorded = tracer.recorded();
  resp.capacity = tracer.capacity();
  const std::vector<metrics::TraceSpan> spans = tracer.dump();
  resp.spans.reserve(spans.size());
  for (const metrics::TraceSpan& s : spans) {
    resp.spans.push_back(trace::to_span(s));
  }
  return resp.encode();
}

Result<std::vector<std::uint8_t>> GekkoDaemon::on_flight_dump_(
    const net::Message& msg) {
  (void)msg;
  proto::FlightDumpResponse resp;
  resp.node_id = static_cast<std::uint32_t>(engine_->endpoint());
  resp.capture_ns = metrics::now_ns();
  flight::RingStats stats;
  resp.events = flight::snapshot(&stats);
  resp.recorded = stats.recorded;
  resp.capacity = stats.capacity;
  return resp.encode();
}

Result<std::vector<std::uint8_t>> GekkoDaemon::on_heartbeat_(
    const net::Message& msg) {
  (void)msg;
  proto::HeartbeatResponse resp;
  resp.node_id = static_cast<std::uint32_t>(engine_->endpoint());
  resp.capture_ns = metrics::now_ns();
  resp.requests_handled = engine_->requests_handled();
  return resp.encode();
}

Result<std::vector<std::uint8_t>> GekkoDaemon::on_metric_history_(
    const net::Message& msg) {
  auto req = proto::MetricHistoryRequest::decode(payload_view(msg));
  if (!req) return req.status();
  proto::MetricHistoryResponse resp;
  resp.node_id = static_cast<std::uint32_t>(engine_->endpoint());
  resp.captured_ns = metrics::now_ns();
  resp.interval_ms = sampler_ ? sampler_->interval_ms() : 0;
  if (sampler_) {
    const auto views = sampler_->history().families(req->prefix);
    resp.families.reserve(views.size());
    for (const auto& [name, view] : views) {
      proto::MetricFamilyHistory f;
      f.name = name;
      f.recorded = view.recorded;
      f.capacity = view.capacity;
      f.samples.reserve(view.samples.size());
      for (const metrics::SamplePoint& p : view.samples) {
        f.samples.emplace_back(p.captured_ns, p.value);
      }
      resp.families.push_back(std::move(f));
    }
  }
  return resp.encode();
}

void GekkoDaemon::publish_backend_metrics_() {
  const auto cs = data_->stats();
  registry_->gauge("storage.chunks_written").set(
      static_cast<std::int64_t>(cs.chunks_written));
  registry_->gauge("storage.chunks_read").set(
      static_cast<std::int64_t>(cs.chunks_read));
  registry_->gauge("storage.bytes_written").set(
      static_cast<std::int64_t>(cs.bytes_written));
  registry_->gauge("storage.bytes_read").set(
      static_cast<std::int64_t>(cs.bytes_read));
  registry_->gauge("storage.chunks_removed").set(
      static_cast<std::int64_t>(cs.chunks_removed));
  registry_->gauge("storage.fd_cache.hits").set(
      static_cast<std::int64_t>(cs.fd_cache_hits));
  registry_->gauge("storage.fd_cache.misses").set(
      static_cast<std::int64_t>(cs.fd_cache_misses));
  registry_->gauge("storage.fd_cache.evictions").set(
      static_cast<std::int64_t>(cs.fd_cache_evictions));
  registry_->gauge("storage.fd_cache.open").set(
      static_cast<std::int64_t>(data_->fd_cache_open()));

  const auto ks = metadata_->db().stats();
  registry_->gauge("kv.puts").set(static_cast<std::int64_t>(ks.puts));
  registry_->gauge("kv.gets").set(static_cast<std::int64_t>(ks.gets));
  registry_->gauge("kv.deletes").set(static_cast<std::int64_t>(ks.deletes));
  registry_->gauge("kv.merges").set(static_cast<std::int64_t>(ks.merges));
  registry_->gauge("kv.flushes").set(static_cast<std::int64_t>(ks.flushes));
  registry_->gauge("kv.compactions").set(
      static_cast<std::int64_t>(ks.compactions));
  registry_->gauge("kv.wal_appends").set(
      static_cast<std::int64_t>(ks.wal_appends));
  registry_->gauge("kv.wal_syncs").set(
      static_cast<std::int64_t>(ks.wal_syncs));
  // Non-zero recovered_records = this daemon came up from a dirty
  // shutdown; tail_corruptions = WALs whose torn tail was discarded.
  // Surfaced so gkfs-mon/Prometheus can flag dirty restarts per node.
  registry_->gauge("kv.wal.recovered_records").set(
      static_cast<std::int64_t>(ks.wal_recovered_records));
  registry_->gauge("kv.wal.tail_corruptions").set(
      static_cast<std::int64_t>(ks.wal_tail_corruptions));
  registry_->gauge("kv.memtable_bytes").set(
      static_cast<std::int64_t>(ks.memtable_bytes));
  registry_->gauge("kv.imm.memtables").set(
      static_cast<std::int64_t>(ks.immutable_memtables));
  registry_->gauge("kv.compact.running").set(
      static_cast<std::int64_t>(ks.compactions_running));
  registry_->gauge("kv.compact.bytes_in").set(
      static_cast<std::int64_t>(ks.compact_bytes_in));
  registry_->gauge("kv.compact.bytes_out").set(
      static_cast<std::int64_t>(ks.compact_bytes_out));
  registry_->gauge("kv.stall.stops").set(
      static_cast<std::int64_t>(ks.stall_stops));
  registry_->gauge("kv.stall.foreground_ms").set(
      static_cast<std::int64_t>(ks.stall_foreground_ms));
  registry_->gauge("kv.stall.slowdowns").set(
      static_cast<std::int64_t>(ks.stall_slowdowns));
  registry_->gauge("kv.stall.slowdown_ms").set(
      static_cast<std::int64_t>(ks.stall_slowdown_ms));

  if (const auto& cache = metadata_->db().options().block_cache) {
    registry_->gauge("kv.cache.hits").set(
        static_cast<std::int64_t>(cache->hits()));
    registry_->gauge("kv.cache.misses").set(
        static_cast<std::int64_t>(cache->misses()));
    registry_->gauge("kv.cache.bytes_used").set(
        static_cast<std::int64_t>(cache->bytes_used()));
  }
}

std::string GekkoDaemon::metrics_json() {
  publish_backend_metrics_();
  metrics::Snapshot snap = registry_->snapshot();
  // Provenance stamp: which daemon produced this snapshot (offline
  // merges of several daemons' dumps stay attributable).
  snap.node_id = static_cast<std::uint32_t>(engine_->endpoint());
  return snap.to_json();
}

}  // namespace gekko::daemon
