// The GekkoFS daemon (paper §III.B.b): one per node, owning
//  1) a key-value store for metadata (MetadataBackend over gekko::kv),
//  2) an I/O persistence layer (ChunkStorage, one file per chunk),
//  3) an RPC communication layer (rpc::Engine over the fabric).
//
// Daemons are completely independent: no daemon-to-daemon
// communication, no shared state — each processes the operations for
// the keys/chunks that hash to it and responds to the client.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>

#include "common/metrics_history.h"
#include "common/result.h"
#include "daemon/metadata_backend.h"
#include "net/http_exporter.h"
#include "kv/options.h"
#include "net/fabric.h"
#include "rpc/engine.h"
#include "storage/chunk_storage.h"
#include "storage/ssd_model.h"
#include "task/pool.h"

namespace gekko::proto {
struct ChunkIoRequest;
struct ChunkSlice;
}  // namespace gekko::proto

namespace gekko::daemon {

struct DaemonOptions {
  std::uint32_t chunk_size = 512 * 1024;  // paper §IV: 512 KiB
  std::size_t handler_threads = 2;
  /// Dedicated chunk-I/O pool ("iostreams", after Margo's xstream
  /// split): write_chunks/read_chunks fan each slice out as its own
  /// task, the paper's one-ULT-per-chunk-operation model (§III.B.b).
  /// 0 keeps the serial in-handler path.
  std::size_t io_threads = 4;
  /// Open-descriptor cache size for the chunk store (0 disables).
  std::size_t fd_cache_capacity = 256;
  /// Optional SSD performance model: when set, every chunk task also
  /// waits the modeled device service time (DESIGN §1 hardware
  /// substitution — lets the bench expose I/O parallelism on hosts
  /// whose page cache absorbs the real device latency).
  const storage::SsdModel* device_model = nullptr;
  kv::Options kv_options;
  rpc::EngineOptions rpc_options;
  /// Metric sink for this daemon (per-op service latencies, kv and
  /// storage internals). nullptr = metrics::Registry::global().
  metrics::Registry* registry = nullptr;
  /// Telemetry sampler period. Unset = GEKKO_SAMPLE_MS (default
  /// 1000 ms); 0 disables periodic sampling (the history stays empty
  /// except for the shutdown sample).
  std::optional<std::uint32_t> sample_interval_ms;
  /// Per-family sample-ring capacity (the metric_history window).
  std::size_t sample_retention = 128;
  /// Prometheus /metrics HTTP port: -1 = no exporter (default),
  /// 0 = ephemeral (read back via metrics_http_port()), >0 = fixed.
  int metrics_http_port = -1;
};

class GekkoDaemon {
 public:
  /// Boot a daemon: open KV + chunk store under `root`, register all
  /// RPC handlers on the fabric. Ready to serve when this returns
  /// (the paper's "<20 s for 512 nodes" bootstrap is this, per node).
  static Result<std::unique_ptr<GekkoDaemon>> start(
      net::Fabric& fabric, const std::filesystem::path& root,
      DaemonOptions options = {});

  ~GekkoDaemon();

  GekkoDaemon(const GekkoDaemon&) = delete;
  GekkoDaemon& operator=(const GekkoDaemon&) = delete;

  void shutdown();

  [[nodiscard]] net::EndpointId endpoint() const {
    return engine_->endpoint();
  }
  [[nodiscard]] std::uint32_t chunk_size() const noexcept {
    return options_.chunk_size;
  }
  [[nodiscard]] MetadataBackend& metadata() noexcept { return *metadata_; }
  [[nodiscard]] storage::ChunkStorage& data() noexcept { return *data_; }
  [[nodiscard]] rpc::Engine& engine() noexcept { return *engine_; }

  /// Refresh storage/kv gauges and serialize the registry snapshot.
  /// This is the payload of the daemon_stat telemetry RPC and of the
  /// gkfsd SIGUSR1/exit dumps.
  [[nodiscard]] std::string metrics_json();

  /// The telemetry sampler (always constructed; idle when the interval
  /// is 0). Its History backs the metric_history RPC.
  [[nodiscard]] metrics::Sampler& sampler() noexcept { return *sampler_; }
  /// Bound /metrics port, or -1 when the exporter is disabled.
  [[nodiscard]] int metrics_http_port() const noexcept {
    return http_ ? static_cast<int>(http_->port()) : -1;
  }

 private:
  GekkoDaemon(DaemonOptions options) : options_(std::move(options)) {}

  void register_handlers_();
  /// Republish point-in-time absolutes (storage counters, kv stats,
  /// block-cache hit/miss) as gauges so snapshots carry them.
  void publish_backend_metrics_();

  // One handler per RpcId; each runs on the engine's handler pool.
  Result<std::vector<std::uint8_t>> on_create_(const net::Message& msg);
  Result<std::vector<std::uint8_t>> on_stat_(const net::Message& msg);
  Result<std::vector<std::uint8_t>> on_remove_metadata_(
      const net::Message& msg);
  Result<std::vector<std::uint8_t>> on_remove_data_(const net::Message& msg);
  Result<std::vector<std::uint8_t>> on_update_size_(const net::Message& msg);
  Result<std::vector<std::uint8_t>> on_truncate_metadata_(
      const net::Message& msg);
  Result<std::vector<std::uint8_t>> on_truncate_data_(
      const net::Message& msg);
  Result<std::vector<std::uint8_t>> on_write_chunks_(const net::Message& msg);
  Result<std::vector<std::uint8_t>> on_read_chunks_(const net::Message& msg);
  /// Shared body of the two chunk handlers: validates slices, fans them
  /// out on io_pool_ (or runs serially when io_threads == 0 / single
  /// slice), joins, and aggregates bytes/first-error in slice order.
  Result<std::vector<std::uint8_t>> chunk_io_(const net::Message& msg,
                                              bool is_write);
  /// Per-request io/bulk time, accumulated across slice tasks (atomics:
  /// slices run on parallel io workers) and folded into the handler
  /// thread's slow-op stage pad after the join.
  struct IoStageNs {
    std::atomic<std::uint64_t> io{0};
    std::atomic<std::uint64_t> bulk{0};
  };
  /// One slice: bulk_pull→write_chunk or read_chunk→bulk_push through a
  /// grow-only thread-local bounce buffer.
  Status slice_io_(const proto::ChunkIoRequest& req,
                   const proto::ChunkSlice& slice, const net::Message& msg,
                   bool is_write, IoStageNs& stages);
  Result<std::vector<std::uint8_t>> on_get_dirents_(const net::Message& msg);
  /// Batched metadata ops: one message, many entries, per-entry status.
  Result<std::vector<std::uint8_t>> on_batch_create_(const net::Message& msg);
  Result<std::vector<std::uint8_t>> on_batch_stat_(const net::Message& msg);
  Result<std::vector<std::uint8_t>> on_batch_remove_(const net::Message& msg);
  Result<std::vector<std::uint8_t>> on_daemon_stat_(const net::Message& msg);
  /// Drain the span ring for the cross-node trace collector.
  Result<std::vector<std::uint8_t>> on_trace_dump_(const net::Message& msg);
  Result<std::vector<std::uint8_t>> on_flight_dump_(const net::Message& msg);
  /// Liveness probe: fixed-size response, no KV/storage touched.
  Result<std::vector<std::uint8_t>> on_heartbeat_(const net::Message& msg);
  /// Drain the sampler's ring history (optionally prefix-filtered).
  Result<std::vector<std::uint8_t>> on_metric_history_(
      const net::Message& msg);

  DaemonOptions options_;
  metrics::Registry* registry_ = nullptr;  // resolved in start()
  std::unique_ptr<MetadataBackend> metadata_;
  std::unique_ptr<storage::ChunkStorage> data_;
  std::unique_ptr<rpc::Engine> engine_;
  /// Chunk I/O workers. Handlers block on Eventuals while these run,
  /// so the pool is separate from the engine's handler pool (a shared
  /// pool would deadlock once every worker waits on its own slices).
  std::unique_ptr<task::Pool> io_pool_;
  metrics::Histogram* io_queue_ = nullptr;    // post → task start
  metrics::Histogram* io_service_ = nullptr;  // task body duration
  net::Fabric* fabric_ = nullptr;
  /// Periodic Registry → History pump (telemetry time series).
  std::unique_ptr<metrics::Sampler> sampler_;
  /// Prometheus /metrics endpoint (options_.metrics_http_port >= 0).
  std::unique_ptr<net::HttpExporter> http_;
  std::atomic<bool> stopped_{false};
};

}  // namespace gekko::daemon
