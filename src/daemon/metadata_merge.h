// Merge operator folding size updates into packed Metadata records.
//
// GekkoFS stores one Metadata record per path in RocksDB and updates
// file sizes with a merge operand instead of read-modify-write, so
// concurrent writers to one file never serialize on a get+put cycle
// (the contention the paper measures on shared files, §IV.B).
//
// Operand format: [op u8][size u64][mtime i64]
//   op 0: size = max(size, operand.size)        (write at offset)
//   op 1: size = operand.size                   (truncate)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/codec.h"
#include "kv/options.h"
#include "proto/metadata.h"

namespace gekko::daemon {

enum class SizeOp : std::uint8_t { grow_to = 0, set_to = 1 };

inline std::string encode_size_operand(SizeOp op, std::uint64_t size,
                                       std::int64_t mtime_ns) {
  std::vector<std::uint8_t> buf;
  gekko::Encoder enc(&buf);
  enc.u8(static_cast<std::uint8_t>(op));
  enc.u64(size);
  enc.i64(mtime_ns);
  return std::string(buf.begin(), buf.end());
}

class MetadataMergeOperator final : public kv::MergeOperator {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "gekkofs_metadata";
  }

  [[nodiscard]] std::string merge(std::string_view /*key*/,
                                  const std::string* existing,
                                  std::string_view operand) const override {
    proto::Metadata md;
    if (existing != nullptr) {
      if (auto decoded = proto::Metadata::decode(*existing)) {
        md = *decoded;
      }
      // A corrupt base degrades to a default record rather than
      // erroring: merge operators cannot fail mid-compaction.
    }

    gekko::Decoder dec(operand);
    auto op = dec.u8();
    auto size = dec.u64();
    auto mtime = dec.i64();
    if (!op || !size || !mtime) return existing ? *existing : md.encode();

    switch (static_cast<SizeOp>(*op)) {
      case SizeOp::grow_to:
        if (*size > md.size) md.size = *size;
        break;
      case SizeOp::set_to:
        md.size = *size;
        break;
    }
    if (*mtime > md.mtime_ns) md.mtime_ns = *mtime;
    return md.encode();
  }
};

}  // namespace gekko::daemon
