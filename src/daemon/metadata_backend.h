// Daemon-side metadata service over the local KV store.
//
// Keys are normalized absolute paths; values are packed Metadata
// records. The flat keyspace *is* the namespace: creating a million
// files in one directory touches a million independent keys spread
// over all daemons — no directory inode, no lock (paper §II).
#pragma once

#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "kv/db.h"
#include "proto/metadata.h"

namespace gekko::daemon {

class MetadataBackend {
 public:
  static Result<std::unique_ptr<MetadataBackend>> open(
      const std::filesystem::path& dir, kv::Options options = {});

  /// Create a metadata record; Errc::exists if the path already exists.
  Status create(std::string_view path, const proto::Metadata& md);

  Result<proto::Metadata> get(std::string_view path);

  /// Remove and return the old record (the client uses its size to
  /// decide whether chunk cleanup RPCs are needed). Errc::not_found if
  /// absent.
  Result<proto::Metadata> remove(std::string_view path);

  /// Batched create: ONE KV lock acquisition and WAL commit for the
  /// whole batch. Per-entry outcome (ok / exists) lands in `out` in
  /// request order; a non-ok return means the shared commit failed and
  /// nothing was applied.
  Status create_batch(
      const std::vector<std::pair<std::string, proto::Metadata>>& entries,
      std::vector<Errc>* out);

  /// Batched stat. Reads are already lock-free against the KV store, so
  /// this is a loop — the win is the single RPC, not the KV access.
  /// mds[i] is valid iff (*out)[i] == Errc::ok.
  Status stat_batch(const std::vector<std::string>& paths,
                    std::vector<Errc>* out,
                    std::vector<proto::Metadata>* mds);

  /// Batched remove-if-present; old records (for chunk cleanup
  /// decisions) land in `old_mds`, valid iff the entry's Errc is ok.
  Status remove_batch(const std::vector<std::string>& paths,
                      std::vector<Errc>* out,
                      std::vector<proto::Metadata>* old_mds);

  /// Contention-free size fold (merge operand, see metadata_merge.h).
  Status update_size(std::string_view path, std::uint64_t observed_size,
                     std::int64_t mtime_ns);

  /// Set exact size (truncate). Read-modify-write is acceptable here;
  /// truncate is rare in HPC workloads.
  Status set_size(std::string_view path, std::uint64_t new_size);

  /// Direct children of `dir` stored on THIS daemon (one shard of the
  /// eventual-consistency readdir broadcast).
  Result<std::vector<proto::Dirent>> dirents(std::string_view dir);

  Result<std::uint64_t> entry_count();

  [[nodiscard]] kv::DB& db() noexcept { return *db_; }

 private:
  explicit MetadataBackend(std::unique_ptr<kv::DB> db)
      : db_(std::move(db)) {}

  std::unique_ptr<kv::DB> db_;
};

}  // namespace gekko::daemon
