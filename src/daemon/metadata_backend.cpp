#include "daemon/metadata_backend.h"

#include "common/path.h"
#include "daemon/metadata_merge.h"

namespace gekko::daemon {

Result<std::unique_ptr<MetadataBackend>> MetadataBackend::open(
    const std::filesystem::path& dir, kv::Options options) {
  if (!options.merge_operator) {
    options.merge_operator = std::make_shared<MetadataMergeOperator>();
  }
  auto db = kv::DB::open(dir, std::move(options));
  if (!db) return db.status();
  return std::unique_ptr<MetadataBackend>(
      new MetadataBackend(std::move(*db)));
}

Status MetadataBackend::create(std::string_view path,
                               const proto::Metadata& md) {
  return db_->insert(path, md.encode());
}

Result<proto::Metadata> MetadataBackend::get(std::string_view path) {
  auto value = db_->get(path);
  if (!value) return value.status();
  return proto::Metadata::decode(*value);
}

Result<proto::Metadata> MetadataBackend::remove(std::string_view path) {
  auto value = db_->get(path);
  if (!value) return value.status();
  auto md = proto::Metadata::decode(*value);
  if (!md) return md.status();
  GEKKO_RETURN_IF_ERROR(db_->remove_existing(path));
  return md;
}

Status MetadataBackend::create_batch(
    const std::vector<std::pair<std::string, proto::Metadata>>& entries,
    std::vector<Errc>* out) {
  std::vector<std::pair<std::string, std::string>> kvs;
  kvs.reserve(entries.size());
  for (const auto& [path, md] : entries) {
    kvs.emplace_back(path, md.encode());
  }
  return db_->insert_many(kvs, out);
}

Status MetadataBackend::stat_batch(const std::vector<std::string>& paths,
                                   std::vector<Errc>* out,
                                   std::vector<proto::Metadata>* mds) {
  out->assign(paths.size(), Errc::ok);
  mds->assign(paths.size(), proto::Metadata{});
  for (std::size_t i = 0; i < paths.size(); ++i) {
    auto md = get(paths[i]);
    if (md) {
      (*mds)[i] = std::move(*md);
    } else {
      (*out)[i] = md.code();
    }
  }
  return Status::ok();
}

Status MetadataBackend::remove_batch(const std::vector<std::string>& paths,
                                     std::vector<Errc>* out,
                                     std::vector<proto::Metadata>* old_mds) {
  std::vector<std::string> old_values;
  GEKKO_RETURN_IF_ERROR(db_->remove_many(paths, out, &old_values));
  old_mds->assign(paths.size(), proto::Metadata{});
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if ((*out)[i] != Errc::ok) continue;
    auto md = proto::Metadata::decode(old_values[i]);
    if (!md) {
      (*out)[i] = md.code();
      continue;
    }
    (*old_mds)[i] = std::move(*md);
  }
  return Status::ok();
}

Status MetadataBackend::update_size(std::string_view path,
                                    std::uint64_t observed_size,
                                    std::int64_t mtime_ns) {
  return db_->merge(
      path, encode_size_operand(SizeOp::grow_to, observed_size, mtime_ns));
}

Status MetadataBackend::set_size(std::string_view path,
                                 std::uint64_t new_size) {
  return db_->merge(path, encode_size_operand(SizeOp::set_to, new_size, 0));
}

Result<std::vector<proto::Dirent>> MetadataBackend::dirents(
    std::string_view dir) {
  std::string prefix{dir};
  if (prefix.back() != '/') prefix += '/';

  std::vector<proto::Dirent> out;
  Status scan_error = Status::ok();
  GEKKO_RETURN_IF_ERROR(db_->scan_prefix(
      prefix, [&](std::string_view key, std::string_view value) {
        if (!path::is_direct_child(key, dir)) return true;  // grandchild
        auto md = proto::Metadata::decode(value);
        if (!md) {
          scan_error = md.status();
          return false;
        }
        out.push_back(proto::Dirent{std::string(path::basename(key)),
                                    md->type});
        return true;
      }));
  GEKKO_RETURN_IF_ERROR(scan_error);
  return out;
}

Result<std::uint64_t> MetadataBackend::entry_count() {
  return db_->count_range("", "");
}

}  // namespace gekko::daemon
