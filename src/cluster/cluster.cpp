#include "cluster/cluster.h"

#include "common/fileio.h"
#include "common/logging.h"

namespace gekko::cluster {

Result<std::unique_ptr<Cluster>> Cluster::start(ClusterOptions options) {
  if (options.nodes == 0) {
    return Status{Errc::invalid_argument, "cluster needs at least one node"};
  }
  if (options.root.empty()) {
    return Status{Errc::invalid_argument, "cluster root directory required"};
  }
  std::unique_ptr<Cluster> c(new Cluster(std::move(options)));
  GEKKO_RETURN_IF_ERROR(io::ensure_dir(c->options_.root));

  const auto t0 = std::chrono::steady_clock::now();
  c->daemons_.resize(c->options_.nodes);
  for (std::uint32_t i = 0; i < c->options_.nodes; ++i) {
    const auto node_root =
        c->options_.root / ("node" + std::to_string(i));
    auto daemon = daemon::GekkoDaemon::start(c->fabric_, node_root,
                                             c->options_.daemon_options);
    if (!daemon) return daemon.status();
    c->daemons_[i] = std::move(*daemon);
  }
  c->bootstrap_time_ = std::chrono::steady_clock::now() - t0;
  GEKKO_INFO("cluster") << c->options_.nodes << " daemons up in "
                        << c->bootstrap_time_.count() / 1e6 << " ms";
  return c;
}

Cluster::~Cluster() {
  for (auto& d : daemons_) {
    if (d) d->shutdown();
  }
}

std::vector<net::EndpointId> Cluster::daemon_endpoints() const {
  std::vector<net::EndpointId> out;
  out.reserve(daemons_.size());
  for (const auto& d : daemons_) {
    out.push_back(d ? d->endpoint() : net::kInvalidEndpoint);
  }
  return out;
}

std::unique_ptr<fs::Mount> Cluster::mount(
    client::ClientOptions client_options) {
  client_options.chunk_size = options_.daemon_options.chunk_size;
  return std::make_unique<fs::Mount>(fabric_, daemon_endpoints(),
                                     std::move(client_options));
}

void Cluster::stop_daemon(std::uint32_t daemon_id) {
  if (daemon_id < daemons_.size() && daemons_[daemon_id]) {
    daemons_[daemon_id]->shutdown();
    daemons_[daemon_id].reset();
  }
}

Status Cluster::restart_daemon(std::uint32_t daemon_id) {
  if (daemon_id >= daemons_.size()) return Errc::invalid_argument;
  if (daemons_[daemon_id]) {
    daemons_[daemon_id]->shutdown();
    daemons_[daemon_id].reset();
  }
  const auto node_root =
      options_.root / ("node" + std::to_string(daemon_id));
  auto daemon = daemon::GekkoDaemon::start(fabric_, node_root,
                                           options_.daemon_options);
  if (!daemon) return daemon.status();
  daemons_[daemon_id] = std::move(*daemon);
  return Status::ok();
}

}  // namespace gekko::cluster
