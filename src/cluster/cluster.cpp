#include "cluster/cluster.h"

#include "common/fileio.h"
#include "common/logging.h"
#include "net/socket_fabric.h"
#include "net/tcp_fabric.h"

namespace gekko::cluster {

Result<std::unique_ptr<net::HostedFabric>> Cluster::make_daemon_fabric_(
    std::uint32_t daemon_id) {
  net::MakeFabricOptions fopts;
  fopts.self_id = daemon_id;
  return net::make_fabric(hostfile_, fopts);
}

Result<std::unique_ptr<Cluster>> Cluster::start(ClusterOptions options) {
  if (options.nodes == 0) {
    return Status{Errc::invalid_argument, "cluster needs at least one node"};
  }
  if (options.root.empty()) {
    return Status{Errc::invalid_argument, "cluster root directory required"};
  }
  std::unique_ptr<Cluster> c(new Cluster(std::move(options)));
  GEKKO_RETURN_IF_ERROR(io::ensure_dir(c->options_.root));

  // Hosted transports: write the hostfile first (the address is what
  // selects the transport from here on).
  if (c->options_.transport == ClusterTransport::uds) {
    auto hostfile = net::SocketFabric::write_hostfile(
        c->options_.root / "net", c->options_.nodes);
    if (!hostfile) return hostfile.status();
    c->hostfile_ = std::move(*hostfile);
  } else if (c->options_.transport == ClusterTransport::tcp) {
    auto hostfile = net::TcpFabric::write_hostfile(c->options_.root / "net",
                                                   c->options_.nodes);
    if (!hostfile) return hostfile.status();
    c->hostfile_ = std::move(*hostfile);
  }

  const auto t0 = std::chrono::steady_clock::now();
  c->daemons_.resize(c->options_.nodes);
  c->daemon_fabrics_.resize(c->options_.nodes);
  for (std::uint32_t i = 0; i < c->options_.nodes; ++i) {
    const auto node_root =
        c->options_.root / ("node" + std::to_string(i));
    net::Fabric* fabric = &c->fabric_;
    if (c->options_.transport != ClusterTransport::loopback) {
      auto hosted = c->make_daemon_fabric_(i);
      if (!hosted) return hosted.status();
      c->daemon_fabrics_[i] = std::move(*hosted);
      fabric = c->daemon_fabrics_[i].get();
    }
    auto daemon = daemon::GekkoDaemon::start(*fabric, node_root,
                                             c->options_.daemon_options);
    if (!daemon) return daemon.status();
    c->daemons_[i] = std::move(*daemon);
  }
  c->bootstrap_time_ = std::chrono::steady_clock::now() - t0;
  GEKKO_INFO("cluster") << c->options_.nodes << " daemons up in "
                        << c->bootstrap_time_.count() / 1e6 << " ms";
  return c;
}

Cluster::~Cluster() {
  for (auto& d : daemons_) {
    if (d) d->shutdown();
  }
}

std::vector<net::EndpointId> Cluster::daemon_endpoints() const {
  std::vector<net::EndpointId> out;
  out.reserve(daemons_.size());
  for (const auto& d : daemons_) {
    out.push_back(d ? d->endpoint() : net::kInvalidEndpoint);
  }
  return out;
}

std::unique_ptr<fs::Mount> Cluster::mount(
    client::ClientOptions client_options) {
  client_options.chunk_size = options_.daemon_options.chunk_size;
  if (options_.transport == ClusterTransport::loopback) {
    return std::make_unique<fs::Mount>(fabric_, daemon_endpoints(),
                                       std::move(client_options));
  }
  auto client_fabric = net::make_fabric(hostfile_, {});
  if (!client_fabric) {
    GEKKO_ERROR("cluster") << "client fabric: "
                           << client_fabric.status().to_string();
    return nullptr;
  }
  client_fabrics_.push_back(std::move(*client_fabric));
  // Hosted daemons always answer on their hostfile ids 0..n-1, even
  // across restarts — address by id, not by live endpoint.
  std::vector<net::EndpointId> daemons(options_.nodes);
  for (std::uint32_t i = 0; i < options_.nodes; ++i) daemons[i] = i;
  return std::make_unique<fs::Mount>(*client_fabrics_.back(),
                                     std::move(daemons),
                                     std::move(client_options));
}

void Cluster::stop_daemon(std::uint32_t daemon_id) {
  if (daemon_id < daemons_.size() && daemons_[daemon_id]) {
    daemons_[daemon_id]->shutdown();
    daemons_[daemon_id].reset();
    if (daemon_id < daemon_fabrics_.size()) {
      // Release the listener (port / socket path) so a restart can
      // re-bind the same hostfile address.
      daemon_fabrics_[daemon_id].reset();
    }
  }
}

Status Cluster::restart_daemon(std::uint32_t daemon_id) {
  if (daemon_id >= daemons_.size()) return Errc::invalid_argument;
  if (daemons_[daemon_id]) stop_daemon(daemon_id);
  const auto node_root =
      options_.root / ("node" + std::to_string(daemon_id));
  net::Fabric* fabric = &fabric_;
  if (options_.transport != ClusterTransport::loopback) {
    auto hosted = make_daemon_fabric_(daemon_id);
    if (!hosted) return hosted.status();
    daemon_fabrics_[daemon_id] = std::move(*hosted);
    fabric = daemon_fabrics_[daemon_id].get();
  }
  auto daemon = daemon::GekkoDaemon::start(*fabric, node_root,
                                           options_.daemon_options);
  if (!daemon) return daemon.status();
  daemons_[daemon_id] = std::move(*daemon);
  return Status::ok();
}

}  // namespace gekko::cluster
