// In-process GekkoFS deployment harness.
//
// Stands in for the job-startup script of a real deployment: boots one
// GekkoFS daemon per "node" over a shared fabric, hands out client
// mounts, and measures bootstrap time (the paper quotes < 20 s for 512
// nodes; we report per-daemon and total boot time at our scale).
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <vector>

#include "common/result.h"
#include "daemon/daemon.h"
#include "fs/mount.h"
#include "net/fabric.h"

namespace gekko::cluster {

struct ClusterOptions {
  std::uint32_t nodes = 4;
  std::filesystem::path root;  // one subdir per daemon is created
  daemon::DaemonOptions daemon_options;
};

class Cluster {
 public:
  static Result<std::unique_ptr<Cluster>> start(ClusterOptions options);

  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Create a client mount; `client_options.chunk_size` is forced to
  /// the daemons' chunk size.
  std::unique_ptr<fs::Mount> mount(client::ClientOptions client_options = {});

  /// Stop one daemon (simulates node loss; its keys become unreachable).
  void stop_daemon(std::uint32_t daemon_id);

  /// Restart a previously stopped daemon over its persisted state.
  /// Note: the restarted daemon gets a NEW endpoint; existing mounts
  /// keep addressing the dead one (create fresh mounts after restart).
  Status restart_daemon(std::uint32_t daemon_id);

  [[nodiscard]] net::LoopbackFabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] std::uint32_t node_count() const noexcept {
    return static_cast<std::uint32_t>(daemons_.size());
  }
  [[nodiscard]] std::vector<net::EndpointId> daemon_endpoints() const;
  [[nodiscard]] daemon::GekkoDaemon& daemon(std::uint32_t id) {
    return *daemons_[id];
  }
  [[nodiscard]] std::chrono::nanoseconds bootstrap_time() const noexcept {
    return bootstrap_time_;
  }

 private:
  explicit Cluster(ClusterOptions options) : options_(std::move(options)) {}

  ClusterOptions options_;
  net::LoopbackFabric fabric_;
  std::vector<std::unique_ptr<daemon::GekkoDaemon>> daemons_;
  std::chrono::nanoseconds bootstrap_time_{0};
};

}  // namespace gekko::cluster
