// In-process GekkoFS deployment harness.
//
// Stands in for the job-startup script of a real deployment: boots one
// GekkoFS daemon per "node" over a shared fabric, hands out client
// mounts, and measures bootstrap time (the paper quotes < 20 s for 512
// nodes; we report per-daemon and total boot time at our scale).
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <vector>

#include "common/result.h"
#include "daemon/daemon.h"
#include "fs/mount.h"
#include "net/fabric.h"
#include "net/transport.h"

namespace gekko::cluster {

/// What the cluster's daemons and mounts talk over.
enum class ClusterTransport {
  loopback,  // one shared in-process LoopbackFabric (the default)
  uds,       // one SocketFabric per daemon/mount over Unix sockets
  tcp,       // one TcpFabric per daemon/mount over real TCP + epoll
};

struct ClusterOptions {
  std::uint32_t nodes = 4;
  std::filesystem::path root;  // one subdir per daemon is created
  daemon::DaemonOptions daemon_options;
  /// Hosted transports write a hostfile under root/"net" and give each
  /// daemon and each mount its own fabric instance — the whole stack
  /// runs over real sockets while staying in one process.
  ClusterTransport transport = ClusterTransport::loopback;
};

class Cluster {
 public:
  static Result<std::unique_ptr<Cluster>> start(ClusterOptions options);

  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Create a client mount; `client_options.chunk_size` is forced to
  /// the daemons' chunk size.
  std::unique_ptr<fs::Mount> mount(client::ClientOptions client_options = {});

  /// Stop one daemon (simulates node loss; its keys become unreachable).
  void stop_daemon(std::uint32_t daemon_id);

  /// Restart a previously stopped daemon over its persisted state.
  /// Loopback: the restarted daemon gets a NEW endpoint; existing
  /// mounts keep addressing the dead one (create fresh mounts after
  /// restart). Hosted transports: the daemon re-binds its hostfile
  /// address, so existing mounts recover by redialing.
  Status restart_daemon(std::uint32_t daemon_id);

  /// The shared in-process fabric (fault plans/injectors hang off it).
  /// Meaningful only for ClusterTransport::loopback; hosted transports
  /// give every daemon and mount its own fabric.
  [[nodiscard]] net::LoopbackFabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] std::uint32_t node_count() const noexcept {
    return static_cast<std::uint32_t>(daemons_.size());
  }
  [[nodiscard]] std::vector<net::EndpointId> daemon_endpoints() const;
  [[nodiscard]] daemon::GekkoDaemon& daemon(std::uint32_t id) {
    return *daemons_[id];
  }
  [[nodiscard]] std::chrono::nanoseconds bootstrap_time() const noexcept {
    return bootstrap_time_;
  }

 private:
  explicit Cluster(ClusterOptions options) : options_(std::move(options)) {}

  Result<std::unique_ptr<net::HostedFabric>> make_daemon_fabric_(
      std::uint32_t daemon_id);

  ClusterOptions options_;
  net::LoopbackFabric fabric_;
  std::filesystem::path hostfile_;  // hosted transports only
  /// Hosted transports: daemon_fabrics_[i] carries daemon i, and each
  /// mount() gets its own client fabric (one endpoint per hosted
  /// fabric). Both are cluster-owned: mounts must not outlive the
  /// cluster, same contract as the loopback fabric_.
  std::vector<std::unique_ptr<net::HostedFabric>> daemon_fabrics_;
  std::vector<std::unique_ptr<net::HostedFabric>> client_fabrics_;
  std::vector<std::unique_ptr<daemon::GekkoDaemon>> daemons_;
  std::chrono::nanoseconds bootstrap_time_{0};
};

}  // namespace gekko::cluster
