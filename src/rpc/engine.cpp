// relaxed-ok: see engine.h — counters and metrics slot pointers only.
#include "rpc/engine.h"

#include <algorithm>
#include <thread>

#include "common/flight_recorder.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "common/trace.h"

namespace gekko::rpc {
namespace {

/// Outcomes worth re-sending an idempotent rpc for: the request may
/// never have reached the daemon, or the daemon may be back already.
bool transient(Errc code) {
  return code == Errc::timed_out || code == Errc::disconnected ||
         code == Errc::again;
}

}  // namespace

Engine::Engine(net::Fabric& fabric, EngineOptions options)
    : fabric_(fabric),
      options_(std::move(options)),
      registry_(options_.registry ? options_.registry
                                  : &metrics::Registry::global()),
      tracer_(options_.tracer ? options_.tracer : &metrics::Tracer::global()),
      self_(net::kInvalidEndpoint),
      handler_pool_(options_.handler_threads, options_.name + "-handlers"),
      agg_sent_(&registry_->counter("rpc.requests_sent")),
      agg_handled_(&registry_->counter("rpc.requests_handled")),
      agg_retries_(&registry_->counter("rpc.retries")),
      agg_timeouts_(&registry_->counter("rpc.timeouts")) {
  auto [id, inbox] = fabric_.register_endpoint();
  self_ = id;
  inbox_ = std::move(inbox);
  // The process's first engine names the node for trace spans (a
  // daemon's daemon id, a client's salted endpoint id).
  tracer_->set_node_id_if_unset(static_cast<std::uint32_t>(self_));
  if (!options_.start_paused) {
    progress_ = std::thread([this] { progress_loop_(); });
  }
}

void Engine::start() {
  if (stopped_.load() || progress_.joinable()) return;
  progress_ = std::thread([this] { progress_loop_(); });
}

Engine::~Engine() { shutdown(); }

void Engine::shutdown() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) {
    if (progress_.joinable()) progress_.join();
    return;
  }
  fabric_.deregister(self_);  // closes the inbox, unblocking progress
  if (progress_.joinable()) progress_.join();
  handler_pool_.shutdown();
  // Fail any still-pending forwards.
  LockGuard lock(pending_mutex_);
  for (auto& [seq, eventual] : pending_) {
    eventual.set(Status{Errc::disconnected, "engine shutdown"});
  }
  pending_.clear();
}

void Engine::register_rpc(std::uint16_t rpc_id, std::string name,
                          Handler handler) {
  auto hm = std::make_shared<HandlerMetrics>();
  const std::string base = "rpc.handler." + name + ".";
  hm->handled = &registry_->counter(base + "handled");
  hm->errors = &registry_->counter(base + "errors");
  hm->latency = &registry_->histogram(base + "latency");
  hm->queue = &registry_->histogram(base + "queue");
  hm->inflight = &registry_->gauge(base + "inflight");
  LockGuard lock(rpc_mutex_);
  rpcs_[rpc_id] = RpcEntry{std::move(name), std::move(handler), std::move(hm)};
}

std::string Engine::rpc_name_(std::uint16_t rpc_id) const {
  if (options_.rpc_name) {
    std::string name = options_.rpc_name(rpc_id);
    if (!name.empty()) return name;
  }
  return "id" + std::to_string(rpc_id);
}

Engine::CallerMetrics* Engine::caller_metrics_for_(std::uint16_t rpc_id) {
  const std::size_t slot =
      std::min<std::size_t>(rpc_id, kCallerSlots - 1);
  CallerMetrics* m = caller_slots_[slot].load(std::memory_order_acquire);
  if (m != nullptr) return m;
  LockGuard lock(metrics_mutex_);
  m = caller_slots_[slot].load(std::memory_order_relaxed);
  if (m != nullptr) return m;
  const std::string base = "rpc.caller." + rpc_name_(rpc_id) + ".";
  auto owned = std::make_unique<CallerMetrics>();
  owned->sent = &registry_->counter(base + "sent");
  owned->ok = &registry_->counter(base + "ok");
  owned->errors = &registry_->counter(base + "errors");
  owned->retries = &registry_->counter(base + "retries");
  owned->timeouts = &registry_->counter(base + "timeouts");
  owned->latency = &registry_->histogram(base + "latency");
  owned->inflight = &registry_->gauge(base + "inflight");
  m = owned.get();
  caller_owned_.push_back(std::move(owned));
  caller_slots_[slot].store(m, std::memory_order_release);
  return m;
}

Result<std::vector<std::uint8_t>> Engine::forward(
    net::EndpointId dest, std::uint16_t rpc_id,
    std::vector<std::uint8_t> payload, net::BulkRegion bulk,
    std::chrono::milliseconds timeout) {
  const auto per_attempt =
      timeout.count() > 0 ? timeout : options_.rpc_timeout;
  const std::uint32_t attempts =
      (options_.max_attempts > 1 && options_.retryable &&
       options_.retryable(rpc_id))
          ? options_.max_attempts
          : 1;
  std::chrono::milliseconds backoff = options_.retry_backoff;
  // All attempts of one logical call share one trace id (from the
  // caller's context if a client op span is active, else minted by the
  // first begin); each re-send is a fresh caller span tagged attempt=N
  // so assembled trees show the retries instead of orphan traces.
  const trace::SpanContext ctx = trace::current();
  std::uint64_t trace_id = ctx.trace_id;
  for (std::uint32_t attempt = 0;; ++attempt) {
    const bool last = attempt + 1 >= attempts;
    std::vector<std::uint8_t> body;
    if (last) {
      body = std::move(payload);
    } else {
      body = payload;  // keep a copy while retries remain
    }
    PendingCall call = begin_forward_traced_(dest, rpc_id, std::move(body),
                                             bulk, trace_id, ctx.span_id,
                                             attempt);
    trace_id = call.trace_id;
    auto result = finish(call, per_attempt);
    if (result.is_ok() || last || !transient(result.code())) return result;
    retries_.fetch_add(1, std::memory_order_relaxed);
    agg_retries_->inc();
    caller_metrics_for_(rpc_id)->retries->inc();
    flight::record_traced(flight::Subsys::engine, flight::ev::engine_retry,
                          call.trace_id, attempt + 1, rpc_id);
    GEKKO_WARN("rpc") << options_.name << ": rpc " << rpc_id << " to "
                      << dest << " " << errc_name(result.code())
                      << ", retry " << (attempt + 1) << "/" << (attempts - 1)
                      << " after backoff";
    std::this_thread::sleep_for(jittered_(backoff, call.seq));  // blocking-ok: retry backoff runs on the blocked caller's thread, never on progress/handler threads
    backoff = std::min(backoff * 2, options_.retry_backoff_max);
  }
}

std::chrono::milliseconds Engine::jittered_(std::chrono::milliseconds base,
                                            std::uint64_t seed) const {
  if (base.count() <= 0) return base;
  // Deterministic jitter in [base/2, base]: decorrelates a burst of
  // clients retrying against the same recovering daemon, while keeping
  // test runs replayable.
  SplitMix64 sm(seed ^ (static_cast<std::uint64_t>(self_) << 32));
  const auto half = base.count() / 2;
  const auto span = static_cast<std::uint64_t>(base.count() - half + 1);
  return std::chrono::milliseconds(
      half + static_cast<std::int64_t>(sm.next() % span));
}

Engine::PendingCall Engine::begin_forward(net::EndpointId dest,
                                          std::uint16_t rpc_id,
                                          std::vector<std::uint8_t> payload,
                                          net::BulkRegion bulk) {
  // Continue the calling thread's trace when one is active (client op
  // fan-out: every per-daemon call shares the op's trace id and
  // parents under its span).
  const trace::SpanContext ctx = trace::current();
  return begin_forward_traced_(dest, rpc_id, std::move(payload),
                               std::move(bulk), ctx.trace_id, ctx.span_id,
                               /*attempt=*/0);
}

Engine::PendingCall Engine::begin_forward_traced_(
    net::EndpointId dest, std::uint16_t rpc_id,
    std::vector<std::uint8_t> payload, net::BulkRegion bulk,
    std::uint64_t trace_id, std::uint64_t parent_span_id,
    std::uint32_t attempt) {
  PendingCall call;
  call.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  call.rpc_id = rpc_id;
  if (trace_id != 0) {
    call.trace_id = trace_id;
  } else {
    // Fresh trace: unique per call (seq is engine-unique, self_ makes
    // it process-unique on a shared fabric). Forced non-zero: 0 =
    // untraced.
    call.trace_id =
        mix64((static_cast<std::uint64_t>(self_) << 32) ^ call.seq);
    if (call.trace_id == 0) call.trace_id = 1;
  }
  call.span_id = trace::new_span_id();
  call.parent_span_id = parent_span_id;
  call.attempt = attempt;
  call.start_ns = metrics::now_ns();
  call.metrics = caller_metrics_for_(rpc_id);
  call.metrics->sent->inc();
  call.metrics->inflight->add(1);
  agg_sent_->inc();
  {
    LockGuard lock(pending_mutex_);
    pending_.emplace(call.seq, call.eventual);
  }
  // Crash-visible shadow of pending_: the fatal-signal handler walks
  // this table where it cannot take pending_mutex_.
  flight::inflight_begin(call.seq, rpc_id, dest, call.trace_id);

  net::Message msg;
  msg.kind = net::MessageKind::request;
  msg.rpc_id = rpc_id;
  msg.seq = call.seq;
  msg.trace_id = call.trace_id;
  msg.parent_span = call.span_id;  // serving-side spans parent here
  msg.source = self_;
  msg.payload = std::move(payload);
  msg.bulk = bulk;

  if (Status st = fabric_.send(dest, std::move(msg)); !st.is_ok()) {
    LockGuard lock(pending_mutex_);
    pending_.erase(call.seq);
    flight::inflight_end(call.seq);
    call.send_status = st;
    call.metrics->inflight->sub(1);
    call.metrics->errors->inc();
    call.metrics = nullptr;  // settled here; finish() must not re-count
  }
  return call;
}

Result<std::vector<std::uint8_t>> Engine::finish(PendingCall& call) {
  return finish(call, options_.rpc_timeout);
}

Result<std::vector<std::uint8_t>> Engine::finish(
    PendingCall& call, std::chrono::milliseconds timeout) {
  if (!call.send_status.is_ok()) return call.send_status;
  auto result = call.eventual.wait_for(timeout);
  {
    LockGuard lock(pending_mutex_);
    pending_.erase(call.seq);
  }
  flight::inflight_end(call.seq);
  // Settle caller-side accounting exactly once (metrics is nulled
  // below; a double finish() records nothing further).
  CallerMetrics* cm = call.metrics;
  call.metrics = nullptr;
  if (cm != nullptr) {
    const std::uint64_t dur = metrics::now_ns() - call.start_ns;
    cm->inflight->sub(1);
    cm->latency->record(dur);
    tracer_->record("rpc.caller", call.trace_id, call.span_id,
                    call.parent_span_id, call.rpc_id, call.attempt,
                    call.start_ns, dur);
    if (!result.has_value()) {
      cm->timeouts->inc();
      cm->errors->inc();
      agg_timeouts_->inc();
    } else if (result->is_ok()) {
      cm->ok->inc();
    } else {
      cm->errors->inc();
    }
  }
  if (!result.has_value()) {
    flight::record_traced(flight::Subsys::engine, flight::ev::engine_timeout,
                          call.trace_id, call.seq, call.rpc_id);
    // Deadline passed: revoke the transport's claim on any writable
    // bulk region BEFORE returning, so a late response cannot scribble
    // into a buffer the caller is about to reuse.
    fabric_.cancel(call.seq);
    return Status{Errc::timed_out,
                  "rpc seq " + std::to_string(call.seq) + " timed out"};
  }
  return std::move(*result);
}

void Engine::progress_loop_() {
  while (auto msg = inbox_->receive()) {
    if (msg->kind == net::MessageKind::request) {
      dispatch_request_(std::move(*msg));
    } else {
      complete_response_(std::move(*msg));
    }
  }
}

void Engine::dispatch_request_(net::Message msg) {
  // Progress thread: the message's trace, not this thread's context.
  flight::record_traced(flight::Subsys::engine, flight::ev::engine_dispatch,
                        msg.trace_id, msg.seq, msg.rpc_id);
  Handler handler;
  std::shared_ptr<HandlerMetrics> hm;
  std::string rpc_label;
  {
    LockGuard lock(rpc_mutex_);
    auto it = rpcs_.find(msg.rpc_id);
    if (it != rpcs_.end()) {
      handler = it->second.handler;
      hm = it->second.metrics;
      rpc_label = it->second.name;
    }
  }
  if (!handler) {
    GEKKO_WARN("rpc") << options_.name << ": no handler for rpc id "
                      << msg.rpc_id;
    net::Message resp;
    resp.kind = net::MessageKind::response;
    resp.seq = msg.seq;
    resp.trace_id = msg.trace_id;
    resp.source = self_;
    resp.payload = frame_error(Errc::not_supported);
    // status-ignored-ok: best-effort error reply; the caller times out regardless
    (void)fabric_.send(msg.source, std::move(resp));
    return;
  }

  const std::uint64_t t_enq = metrics::now_ns();
  auto shared_msg = std::make_shared<net::Message>(std::move(msg));
  const bool posted = handler_pool_.post([this, handler = std::move(handler),
                                          hm, t_enq, shared_msg,
                                          rpc_label = std::move(rpc_label)] {
    // Attribute queueing (progress thread → handler pool pickup) and
    // service time separately: a slow op whose queue span dominates is
    // starved for handler threads, not slow to serve.
    const std::uint64_t t_start = metrics::now_ns();
    hm->queue->record(t_start - t_enq);
    hm->inflight->add(1);
    // The service span is minted before the handler runs so the
    // handler's own child spans (io slices, storage, WAL) can parent
    // under it via the thread-local context. Handlers that fan work to
    // other threads deposit per-stage times for the watchdog line.
    const std::uint64_t service_span = trace::new_span_id();
    trace::stages_reset();
    trace::stage_add("queue", t_start - t_enq);
    Result<std::vector<std::uint8_t>> result = [&] {
      trace::ContextGuard guard(
          trace::enabled()
              ? trace::SpanContext{shared_msg->trace_id, service_span}
              : trace::SpanContext{});
      return handler(*shared_msg);
    }();
    const std::uint64_t t_done = metrics::now_ns();
    hm->inflight->sub(1);
    hm->latency->record(t_done - t_start);
    hm->handled->inc();
    if (!result.is_ok()) hm->errors->inc();
    tracer_->record("rpc.queue", shared_msg->trace_id, trace::new_span_id(),
                    shared_msg->parent_span, shared_msg->rpc_id, 0, t_enq,
                    t_start - t_enq);
    tracer_->record("rpc.service", shared_msg->trace_id, service_span,
                    shared_msg->parent_span, shared_msg->rpc_id, 0, t_start,
                    t_done - t_start);
    // Serving-side slow-op watchdog: one line with the queue/service
    // split plus whatever stages the handler deposited (io, bulk).
    const std::uint64_t threshold = trace::slow_op_threshold_ns();
    if (threshold != 0 && t_done - t_enq > threshold) {
      trace::log_slow_op(options_.name.c_str(),
                         rpc_label.empty() ? rpc_name_(shared_msg->rpc_id)
                                           : rpc_label,
                         shared_msg->trace_id, t_done - t_enq,
                         {{"service", t_done - t_start}});
    }
    net::Message resp;
    resp.kind = net::MessageKind::response;
    resp.seq = shared_msg->seq;
    resp.trace_id = shared_msg->trace_id;
    resp.source = self_;
    resp.payload = result.is_ok() ? frame_ok(std::move(*result))
                                  : frame_error(result.code());
    handled_.fetch_add(1, std::memory_order_relaxed);
    agg_handled_->inc();
    // status-ignored-ok: best-effort error reply; the caller times out regardless
    (void)fabric_.send(shared_msg->source, std::move(resp));
  });
  if (!posted) {
    net::Message resp;
    resp.kind = net::MessageKind::response;
    resp.seq = shared_msg->seq;
    resp.trace_id = shared_msg->trace_id;
    resp.source = self_;
    resp.payload = frame_error(Errc::disconnected);
    // status-ignored-ok: best-effort error reply; the caller times out regardless
    (void)fabric_.send(shared_msg->source, std::move(resp));
  }
}

void Engine::complete_response_(net::Message msg) {
  task::Eventual<Result<std::vector<std::uint8_t>>> eventual;
  {
    LockGuard lock(pending_mutex_);
    auto it = pending_.find(msg.seq);
    if (it == pending_.end()) return;  // late response after timeout
    eventual = it->second;
    pending_.erase(it);
  }
  if (msg.payload.empty()) {
    eventual.set(Status{Errc::corruption, "empty response frame"});
    return;
  }
  const auto code = static_cast<Errc>(msg.payload[0]);
  if (code != Errc::ok) {
    eventual.set(Status{code});
    return;
  }
  msg.payload.erase(msg.payload.begin());
  eventual.set(std::move(msg.payload));
}

}  // namespace gekko::rpc
