// RPC engine standing in for Mercury+Margo.
//
// Each GekkoFS daemon and each client owns an Engine. The engine:
//  - registers an endpoint on the shared Fabric,
//  - runs a progress thread that drains the inbox (Margo progress ULT),
//  - dispatches incoming requests onto a handler Pool (Margo handler
//    xstreams),
//  - implements blocking forward() with sequence-matched responses and
//    timeouts (margo_forward + margo_wait).
//
// Handlers receive the raw request (including any exposed bulk region)
// and return a serialized response payload or an error code, which is
// delivered to the caller as the first byte of the response.
#pragma once

// relaxed-ok: sequence/handled/retry counters and the caller-metrics
// slot pointers are independent scalars; slot fill is protected by
// metrics_mutex_ and the pointed-to metrics are themselves atomic.
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "net/fabric.h"
#include "task/future.h"
#include "task/pool.h"

namespace gekko::rpc {

/// A handler consumes the request and produces a response payload.
/// It runs on the engine's handler pool. It may perform bulk transfers
/// through the engine's fabric against msg.bulk.
using Handler =
    std::function<Result<std::vector<std::uint8_t>>(const net::Message&)>;

struct EngineOptions {
  /// Handler pool width (Margo: number of handler xstreams).
  std::size_t handler_threads = 2;
  /// Per-attempt forward() deadline (margo_forward_timed analog).
  std::chrono::milliseconds rpc_timeout{5000};
  /// Total attempts for retryable RPCs (1 = never retry). Only rpc ids
  /// the `retryable` predicate approves are ever re-sent, and only
  /// after a transient outcome (timed_out / disconnected / again) —
  /// a retried create or remove could double-apply, a retried stat
  /// cannot.
  std::uint32_t max_attempts = 1;
  /// First retry backoff; doubles per attempt (with jitter) up to
  /// `retry_backoff_max`.
  std::chrono::milliseconds retry_backoff{10};
  std::chrono::milliseconds retry_backoff_max{1000};
  /// Idempotency predicate over rpc ids. Unset = nothing retries.
  std::function<bool(std::uint16_t)> retryable;
  std::string name = "engine";
  /// Metric sink. nullptr = the process-wide Registry::global().
  /// Tests pass their own registry to isolate counters.
  metrics::Registry* registry = nullptr;
  /// Span sink for request tracing. nullptr = Tracer::global().
  metrics::Tracer* tracer = nullptr;
  /// Human name for an rpc id, used in caller-side metric names
  /// (`rpc.caller.<name>.sent` etc.). Unset = "id<N>". The handler
  /// side gets its names from register_rpc().
  std::function<std::string(std::uint16_t)> rpc_name;
  /// Bind the endpoint in the constructor but hold back dispatch until
  /// start(). Servers that register_rpc() after construction use this
  /// to close the accept-before-handlers window: without it a client
  /// that connects the moment the listener appears can have a valid
  /// request bounced with not_supported. Early frames queue in the
  /// fabric inbox and dispatch on start().
  bool start_paused = false;
};

class Engine {
 public:
  Engine(net::Fabric& fabric, EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Register a handler for an RPC id. Must happen before requests for
  /// that id arrive; re-registration replaces (single-threaded setup).
  void register_rpc(std::uint16_t rpc_id, std::string name, Handler handler);

  /// Begin dispatching when constructed with start_paused. Call once
  /// from the constructing thread after registration; no-op when the
  /// engine already runs or has shut down.
  void start();

  /// Send a request and block for the response payload.
  /// Errc::timed_out if no response within the deadline;
  /// Errc::disconnected if the destination is gone.
  ///
  /// If the options allow retries and `retryable(rpc_id)` holds,
  /// transient outcomes are retried with exponential backoff + jitter
  /// (fresh seq per attempt). `timeout` overrides the per-attempt
  /// deadline; zero means options.rpc_timeout.
  Result<std::vector<std::uint8_t>> forward(
      net::EndpointId dest, std::uint16_t rpc_id,
      std::vector<std::uint8_t> payload, net::BulkRegion bulk = {},
      std::chrono::milliseconds timeout = std::chrono::milliseconds{0});

  /// Per-rpc-id caller-side metrics (cached registry references).
  struct CallerMetrics;

  /// In-flight request handle (margo_request analog). Obtain with
  /// begin_forward(), complete with finish(). Movable, not copyable
  /// across finishes — finish() must be called exactly once.
  struct PendingCall {
    std::uint64_t seq = 0;
    task::Eventual<Result<std::vector<std::uint8_t>>> eventual;
    Status send_status = Status::ok();
    /// Trace id stamped on the request (and echoed by the response).
    /// Inherited from the calling thread's trace::current() when one is
    /// active (so a client op's fan-out shares one trace); fresh
    /// otherwise. Retries reuse it (attempt tags the re-sends).
    std::uint64_t trace_id = 0;
    /// This call's caller-span id; shipped as Message::parent_span so
    /// serving-side spans parent under it.
    std::uint64_t span_id = 0;
    /// Span the caller span itself parents under (the client op span),
    /// 0 for a root.
    std::uint64_t parent_span_id = 0;
    /// Retry generation (0 = first send).
    std::uint32_t attempt = 0;
    std::uint16_t rpc_id = 0;
    std::uint64_t start_ns = 0;
    /// Non-null while the call is accountable: begin_forward() bumps
    /// inflight, finish() settles latency/outcome and nulls this so a
    /// call is never double-counted.
    CallerMetrics* metrics = nullptr;
  };

  /// Fire a request without blocking; lets a client issue one RPC per
  /// daemon concurrently (wide-striped writes/reads, readdir broadcast).
  PendingCall begin_forward(net::EndpointId dest, std::uint16_t rpc_id,
                            std::vector<std::uint8_t> payload,
                            net::BulkRegion bulk = {});

  /// Wait for a pending call (engine timeout applies). On timeout the
  /// call is cancelled on the fabric: any writable bulk region tied to
  /// it is unregistered BEFORE returning, so a late response can never
  /// scribble into a buffer the caller has already reclaimed.
  Result<std::vector<std::uint8_t>> finish(PendingCall& call);
  /// Same, with a per-call deadline.
  Result<std::vector<std::uint8_t>> finish(PendingCall& call,
                                           std::chrono::milliseconds timeout);

  /// Stop the progress thread and handler pool. Idempotent.
  void shutdown();

  [[nodiscard]] net::EndpointId endpoint() const noexcept { return self_; }
  [[nodiscard]] net::Fabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] const std::string& name() const noexcept {
    return options_.name;
  }
  [[nodiscard]] std::uint64_t requests_handled() const noexcept {
    return handled_.load(std::memory_order_relaxed);
  }
  /// Re-sends performed by forward() after transient failures.
  [[nodiscard]] std::uint64_t retries() const noexcept {
    return retries_.load(std::memory_order_relaxed);
  }
  /// True if the configured policy may re-send this rpc id.
  [[nodiscard]] bool is_retryable(std::uint16_t rpc_id) const {
    return options_.max_attempts > 1 && options_.retryable &&
           options_.retryable(rpc_id);
  }

  /// The metric sink this engine records into (options.registry, or
  /// the global registry when unset).
  [[nodiscard]] metrics::Registry& registry() noexcept { return *registry_; }
  /// The span sink (options.tracer, or Tracer::global() when unset).
  [[nodiscard]] metrics::Tracer& tracer() noexcept { return *tracer_; }

  struct CallerMetrics {
    metrics::Counter* sent;
    metrics::Counter* ok;
    metrics::Counter* errors;
    metrics::Counter* retries;
    metrics::Counter* timeouts;
    metrics::Histogram* latency;  // send → outcome, nanoseconds
    metrics::Gauge* inflight;
  };

 private:
  struct HandlerMetrics {
    metrics::Counter* handled;
    metrics::Counter* errors;
    metrics::Histogram* latency;  // handler service time, ns
    metrics::Histogram* queue;    // progress-thread enqueue → start, ns
    metrics::Gauge* inflight;
  };

  void progress_loop_();
  [[nodiscard]] std::chrono::milliseconds jittered_(
      std::chrono::milliseconds base, std::uint64_t seed) const;
  /// begin_forward with explicit trace lineage: `trace_id` 0 mints a
  /// fresh one; non-zero continues an existing trace (retries, fan-out
  /// under a client op span).
  PendingCall begin_forward_traced_(net::EndpointId dest,
                                    std::uint16_t rpc_id,
                                    std::vector<std::uint8_t> payload,
                                    net::BulkRegion bulk,
                                    std::uint64_t trace_id,
                                    std::uint64_t parent_span_id,
                                    std::uint32_t attempt);
  void dispatch_request_(net::Message msg);
  void complete_response_(net::Message msg);
  CallerMetrics* caller_metrics_for_(std::uint16_t rpc_id);
  [[nodiscard]] std::string rpc_name_(std::uint16_t rpc_id) const;

  net::Fabric& fabric_;
  EngineOptions options_;
  metrics::Registry* registry_;  // resolved from options_, never null
  metrics::Tracer* tracer_;      // resolved from options_, never null
  net::EndpointId self_;
  std::shared_ptr<net::Inbox> inbox_;
  task::Pool handler_pool_;
  std::thread progress_;

  Mutex rpc_mutex_{"rpc.engine.table", lockdep::rank::kEngineRpcTable};
  struct RpcEntry {
    std::string name;
    Handler handler;
    std::shared_ptr<HandlerMetrics> metrics;
  };
  std::unordered_map<std::uint16_t, RpcEntry> rpcs_
      GEKKO_GUARDED_BY(rpc_mutex_);

  /// Caller metrics per rpc id: lock-free lookup via an atomic slot
  /// array (ids beyond the table share the last slot, labelled by the
  /// first id that lands there). Slots are created lazily under
  /// metrics_mutex_ — once, per id, per engine.
  static constexpr std::size_t kCallerSlots = 64;
  Mutex metrics_mutex_{"rpc.engine.metrics", lockdep::rank::kEngineMetrics};
  /// Slots are read lock-free; filled (once per id) under
  /// metrics_mutex_, which also guards the ownership vector.
  std::array<std::atomic<CallerMetrics*>, kCallerSlots> caller_slots_{};
  std::vector<std::unique_ptr<CallerMetrics>> caller_owned_
      GEKKO_GUARDED_BY(metrics_mutex_);

  // Aggregates across all rpc ids (what gkfs-top reads).
  metrics::Counter* agg_sent_;
  metrics::Counter* agg_handled_;
  metrics::Counter* agg_retries_;
  metrics::Counter* agg_timeouts_;

  Mutex pending_mutex_{"rpc.engine.pending", lockdep::rank::kEnginePending};
  std::unordered_map<std::uint64_t,
                     task::Eventual<Result<std::vector<std::uint8_t>>>>
      pending_ GEKKO_GUARDED_BY(pending_mutex_);
  std::atomic<std::uint64_t> next_seq_{1};
  std::atomic<std::uint64_t> handled_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<bool> stopped_{false};
};

/// Response payload framing: [status u8][body...]. Helpers shared by
/// client and daemon sides.
inline std::vector<std::uint8_t> frame_ok(std::vector<std::uint8_t> body) {
  std::vector<std::uint8_t> out;
  out.reserve(body.size() + 1);
  out.push_back(static_cast<std::uint8_t>(Errc::ok));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

inline std::vector<std::uint8_t> frame_error(Errc code) {
  return {static_cast<std::uint8_t>(code)};
}

}  // namespace gekko::rpc
