// rpc::HeartbeatMonitor — active liveness probing over the Engine.
//
// Sends the `heartbeat` RPC (proto::RpcId::heartbeat, an empty request
// answered with a fixed-size HeartbeatResponse) to a set of daemons,
// either on demand (probe_now(), one synchronous concurrent round —
// what gkfs-mon drives so miss counts are deterministic) or from a
// background thread (start(), period GEKKO_HEARTBEAT_MS). Outcomes
// feed a health::Tracker: the alive → suspect → dead state machine,
// its transition counters, and the per-state gauges all live there —
// this class only decides ok/miss per probe.
//
// A probe is a MISS when the forward fails (timeout, disconnected) or
// the response fails to decode; it is OK on any well-formed response.
// The transport redials transparently, so a daemon restart shows up as
// misses followed by a successful probe — exactly the recovery edge
// the Tracker models.
//
// Locking: mutex_ (rank kHeartbeat, BELOW every engine lock) guards
// only lifecycle state and the last-response cache. It is NEVER held
// across engine calls — probes run unlocked off an immutable target
// list, which is what makes the low rank safe.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <thread>
#include <vector>

#include "common/health.h"
#include "common/metrics.h"
#include "common/thread_annotations.h"
#include "proto/messages.h"
#include "rpc/engine.h"

namespace gekko::rpc {

/// GEKKO_HEARTBEAT_MS, or `fallback` when unset/garbage. 0 disables
/// the background prober (probe_now() still works).
[[nodiscard]] std::uint32_t heartbeat_interval_ms_from_env(
    std::uint32_t fallback) noexcept;

struct HeartbeatOptions {
  /// Background probe period; 0 = no background thread.
  std::uint32_t interval_ms = 500;
  /// Per-probe deadline. Short on purpose: a heartbeat that needs
  /// seconds IS the bad news.
  std::chrono::milliseconds probe_timeout{250};
  health::Thresholds thresholds{};
};

class HeartbeatMonitor {
 public:
  /// Probes `targets` through `engine`. The engine must outlive the
  /// monitor; targets are fixed at construction.
  HeartbeatMonitor(Engine& engine, std::vector<net::EndpointId> targets,
                   HeartbeatOptions options = {});
  ~HeartbeatMonitor();

  HeartbeatMonitor(const HeartbeatMonitor&) = delete;
  HeartbeatMonitor& operator=(const HeartbeatMonitor&) = delete;

  /// Launch the background prober (no-op when interval_ms == 0 or
  /// already running).
  void start();
  /// Stop and join. Idempotent.
  void stop();

  /// One synchronous probe round: all targets concurrently, block for
  /// every outcome, feed the tracker. Returns how many answered OK.
  std::size_t probe_now();

  [[nodiscard]] health::Tracker& tracker() noexcept { return tracker_; }
  [[nodiscard]] const health::Tracker& tracker() const noexcept {
    return tracker_;
  }
  [[nodiscard]] const std::vector<net::EndpointId>& targets() const noexcept {
    return targets_;
  }
  /// Most recent successful response from `target`, if any ever.
  [[nodiscard]] std::optional<proto::HeartbeatResponse> last_response(
      net::EndpointId target) const;
  /// Probe rounds completed (probe_now() calls, from any driver).
  [[nodiscard]] std::uint64_t rounds() const;

 private:
  void loop_();

  Engine& engine_;
  std::vector<net::EndpointId> targets_;
  HeartbeatOptions options_;
  health::Tracker tracker_;

  // rpc.heartbeat.* (engine registry; cached, bumped lock-free).
  metrics::Counter* probes_;
  metrics::Counter* misses_;
  metrics::Histogram* rtt_;  // successful-probe round trip, ns

  mutable Mutex mutex_{"rpc.heartbeat", lockdep::rank::kHeartbeat};
  CondVar cv_;
  bool stop_ GEKKO_GUARDED_BY(mutex_) = false;
  bool running_ GEKKO_GUARDED_BY(mutex_) = false;
  std::uint64_t rounds_ GEKKO_GUARDED_BY(mutex_) = 0;
  std::map<net::EndpointId, proto::HeartbeatResponse> last_
      GEKKO_GUARDED_BY(mutex_);
  std::thread thread_;
};

}  // namespace gekko::rpc
