#include "rpc/heartbeat.h"

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "common/logging.h"
#include "common/thread_annotations.h"

namespace gekko::rpc {

std::uint32_t heartbeat_interval_ms_from_env(std::uint32_t fallback) noexcept {
  const char* env = std::getenv("GEKKO_HEARTBEAT_MS");
  if (env == nullptr || *env == '\0') return fallback;
  std::uint32_t v = 0;
  const char* last = env + std::strlen(env);
  const auto [ptr, ec] = std::from_chars(env, last, v);
  if (ec != std::errc() || ptr != last) return fallback;
  return v;
}

HeartbeatMonitor::HeartbeatMonitor(Engine& engine,
                                   std::vector<net::EndpointId> targets,
                                   HeartbeatOptions options)
    : engine_(engine),
      targets_(std::move(targets)),
      options_(options),
      tracker_(options.thresholds, &engine.registry()),
      probes_(&engine.registry().counter("rpc.heartbeat.probes")),
      misses_(&engine.registry().counter("rpc.heartbeat.misses")),
      rtt_(&engine.registry().histogram("rpc.heartbeat.rtt")) {
  for (const net::EndpointId t : targets_) tracker_.track(t);
}

HeartbeatMonitor::~HeartbeatMonitor() { stop(); }

void HeartbeatMonitor::start() {
  if (options_.interval_ms == 0) return;
  {
    LockGuard lock(mutex_);
    if (running_) return;
    running_ = true;
    stop_ = false;
  }
  thread_ = std::thread([this] { loop_(); });
}

void HeartbeatMonitor::stop() {
  {
    UniqueLock lock(mutex_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  LockGuard lock(mutex_);
  running_ = false;
}

std::size_t HeartbeatMonitor::probe_now() {
  // Fire every probe before waiting on any: one slow/dead daemon must
  // not serialize the round. NO monitor lock is held anywhere near the
  // engine — mutex_ ranks below the engine's internal locks.
  struct Probe {
    net::EndpointId target;
    Engine::PendingCall call;
    std::uint64_t sent_ns;
  };
  std::vector<Probe> inflight;
  inflight.reserve(targets_.size());
  for (const net::EndpointId t : targets_) {
    const std::uint64_t sent = metrics::now_ns();
    inflight.push_back(
        Probe{t,
              engine_.begin_forward(t, proto::to_wire(proto::RpcId::heartbeat),
                                    {}),
              sent});
  }

  std::size_t ok = 0;
  for (Probe& p : inflight) {
    probes_->inc();
    auto r = engine_.finish(p.call, options_.probe_timeout);
    std::optional<proto::HeartbeatResponse> resp;
    if (r.is_ok()) {
      auto decoded = proto::HeartbeatResponse::decode(std::string_view(
          reinterpret_cast<const char*>(r->data()), r->size()));
      if (decoded.is_ok()) resp = *decoded;
    }
    if (resp.has_value()) {
      ++ok;
      rtt_->record(metrics::now_ns() - p.sent_ns);
      tracker_.record_ok(p.target);
      LockGuard lock(mutex_);
      last_[p.target] = *resp;
    } else {
      misses_->inc();
      tracker_.record_miss(p.target);
    }
  }
  LockGuard lock(mutex_);
  ++rounds_;
  return ok;
}

std::optional<proto::HeartbeatResponse> HeartbeatMonitor::last_response(
    net::EndpointId target) const {
  LockGuard lock(mutex_);
  auto it = last_.find(target);
  if (it == last_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t HeartbeatMonitor::rounds() const {
  LockGuard lock(mutex_);
  return rounds_;
}

void HeartbeatMonitor::loop_() {
  for (;;) {
    probe_now();
    UniqueLock lock(mutex_);
    const bool stopping = cv_.wait_for(
        lock, std::chrono::milliseconds(options_.interval_ms),
        [this]() GEKKO_REQUIRES(mutex_) { return stop_; });
    if (stopping) return;
  }
}

}  // namespace gekko::rpc
