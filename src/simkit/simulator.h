// Discrete-event simulation kernel.
//
// Time is double seconds. Events are closures ordered by (time,
// insertion sequence) — FIFO among simultaneous events, which keeps
// runs fully deterministic for a fixed seed.
//
// This kernel plus the Resource abstractions (resource.h) carries the
// multi-node experiments: 512 nodes x 16 processes are simulated
// processes, not threads, so the paper's scaling grid runs on one core.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace gekko::simkit {

using SimTime = double;  // seconds

class Simulator {
 public:
  using EventFn = std::function<void()>;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  void schedule(SimTime delay, EventFn fn) {
    queue_.push(Event{now_ + (delay > 0 ? delay : 0), seq_++, std::move(fn)});
  }

  /// Schedule at an absolute time (>= now).
  void schedule_at(SimTime when, EventFn fn) {
    queue_.push(Event{when >= now_ ? when : now_, seq_++, std::move(fn)});
  }

  /// Run until the queue drains. Returns number of events processed.
  std::uint64_t run() {
    std::uint64_t n = 0;
    while (!queue_.empty()) {
      step_();
      ++n;
    }
    return n;
  }

  /// Run until the queue drains or sim time reaches `deadline`.
  std::uint64_t run_until(SimTime deadline) {
    std::uint64_t n = 0;
    while (!queue_.empty() && queue_.top().when <= deadline) {
      step_();
      ++n;
    }
    if (now_ < deadline && queue_.empty()) now_ = deadline;
    return n;
  }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void step_() {
    // priority_queue::top() is const; move out via const_cast is UB-free
    // here because we pop immediately after.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.when;
    ev.fn();
  }

  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace gekko::simkit
