// Queueing resources for the cluster model.
//
// Resource: a FCFS multi-server station (G/G/c). acquire() enqueues a
// job with a service time; the completion callback fires when a server
// finishes it. Models daemon CPU, the KV store write path, SSDs, NICs
// and the Lustre MDS.
//
// Implementation: each of the c servers holds a "free at" timestamp;
// an arriving job is assigned to the earliest-free server:
//   start  = max(now, earliest_free)
//   finish = start + service
// This is exact for FCFS multi-server queues with immediate dispatch.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "simkit/simulator.h"

namespace gekko::simkit {

class Resource {
 public:
  Resource(Simulator& sim, std::size_t servers, std::string name = "res")
      : sim_(sim), free_at_(servers > 0 ? servers : 1, 0.0),
        name_(std::move(name)) {}

  /// Enqueue a job with the given service time; `done` fires at
  /// completion (sim time). Returns the predicted completion time.
  SimTime acquire(SimTime service, std::function<void()> done) {
    auto it = std::min_element(free_at_.begin(), free_at_.end());
    const SimTime start = std::max(sim_.now(), *it);
    const SimTime finish = start + service;
    *it = finish;
    busy_time_ += service;
    wait_time_ += start - sim_.now();
    ++jobs_;
    sim_.schedule_at(finish, std::move(done));
    return finish;
  }

  /// Utilization in [0,1] relative to elapsed sim time (call after run).
  [[nodiscard]] double utilization() const noexcept {
    const double elapsed = sim_.now() * static_cast<double>(free_at_.size());
    return elapsed > 0 ? busy_time_ / elapsed : 0.0;
  }
  [[nodiscard]] double mean_wait() const noexcept {
    return jobs_ > 0 ? wait_time_ / static_cast<double>(jobs_) : 0.0;
  }
  [[nodiscard]] std::uint64_t jobs() const noexcept { return jobs_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  Simulator& sim_;
  std::vector<SimTime> free_at_;
  std::string name_;
  double busy_time_ = 0;
  double wait_time_ = 0;
  std::uint64_t jobs_ = 0;
};

/// Join barrier: fires `done` after `count` completions (fan-out RPCs).
class Join {
 public:
  Join(std::size_t count, std::function<void()> done)
      : remaining_(count), done_(std::move(done)) {
    if (remaining_ == 0) done_();
  }

  void arrive() {
    if (--remaining_ == 0) done_();
  }

 private:
  std::size_t remaining_;
  std::function<void()> done_;
};

}  // namespace gekko::simkit
