// Performance model of the node-local SSD (Intel DC S3700 class),
// used by the discrete-event simulator and by the "SSD peak" reference
// line in Fig. 3 of the paper.
//
// The model is a simple saturating server: each request costs
//   service_time = base_latency + bytes / bandwidth, and
//   iops are additionally capped (small requests are IOPS-bound,
//   large requests bandwidth-bound) — the behaviour that makes the
//   8 KiB curves sit far below the 64 MiB curves in Fig. 3.
#pragma once

#include <algorithm>
#include <cstdint>

namespace gekko::storage {

struct SsdProfile {
  // Intel DC S3700 800 GB datasheet class numbers.
  double read_bw_bytes_per_s = 500.0e6;
  double write_bw_bytes_per_s = 460.0e6;
  double read_iops = 75000.0;
  double write_iops = 36000.0;
  double read_latency_s = 50e-6;
  double write_latency_s = 65e-6;
  /// Random-access penalty multiplier for sub-chunk accesses (seek/
  /// read-modify overheads observed as the −33%/−60% random-I/O drop
  /// in paper §IV.B).
  double random_read_penalty = 2.5;
  double random_write_penalty = 1.5;
};

class SsdModel {
 public:
  explicit SsdModel(SsdProfile profile = {}) : profile_(profile) {}

  /// Service time in seconds for one read of `bytes`.
  [[nodiscard]] double read_time(std::uint64_t bytes, bool random = false)
      const noexcept {
    const double bw_time =
        static_cast<double>(bytes) / profile_.read_bw_bytes_per_s;
    const double iops_time = 1.0 / profile_.read_iops;
    double t = profile_.read_latency_s + std::max(bw_time, iops_time);
    if (random) t *= profile_.random_read_penalty;
    return t;
  }

  [[nodiscard]] double write_time(std::uint64_t bytes, bool random = false)
      const noexcept {
    const double bw_time =
        static_cast<double>(bytes) / profile_.write_bw_bytes_per_s;
    const double iops_time = 1.0 / profile_.write_iops;
    double t = profile_.write_latency_s + std::max(bw_time, iops_time);
    if (random) t *= profile_.random_write_penalty;
    return t;
  }

  /// Sustained sequential throughput for a stream of `request_bytes`
  /// requests (bytes/s) — the per-node "SSD peak" reference.
  [[nodiscard]] double peak_read_bw(std::uint64_t request_bytes)
      const noexcept {
    return static_cast<double>(request_bytes) / read_time(request_bytes);
  }
  [[nodiscard]] double peak_write_bw(std::uint64_t request_bytes)
      const noexcept {
    return static_cast<double>(request_bytes) / write_time(request_bytes);
  }

  [[nodiscard]] const SsdProfile& profile() const noexcept {
    return profile_;
  }

 private:
  SsdProfile profile_;
};

}  // namespace gekko::storage
