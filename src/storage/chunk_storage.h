// Node-local data persistence: one file per chunk (paper §III.B.b,
// "I/O persistence layer ... one file per chunk").
//
// Chunk files live under <root>/<hash-prefix>/<path-digest>_<chunk_id>
// on the node-local file system (the paper's XFS-formatted SSD). Chunk
// content is addressed by (normalized file path, chunk index); the
// digest keeps names short and directory fan-out flat, matching how
// GekkoFS avoids deep host-FS hierarchies.
//
// Sparse semantics: a missing chunk file reads as zeroes within the
// file's logical size; a short chunk file reads as data followed by
// zeroes. Truncate removes whole chunks past the boundary and shortens
// the boundary chunk.
//
// Concurrency: a ChunkStorage is safe to call from many threads at
// once (the daemon dispatches each chunk slice as its own I/O task,
// after the paper's one-ULT-per-chunk-operation model). Steady-state
// chunk I/O goes through a sharded LRU cache of open file descriptors,
// so a hot chunk costs a single pwrite/pread instead of
// open+pwrite+close. Cached descriptors are shared handles: an eviction
// or invalidation never closes an fd another thread is actively using
// (the last holder closes it). remove_all() and truncate() invalidate
// every cached descriptor of the file first, so no writer can revive
// an unlinked inode through a stale fd.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"

namespace gekko::storage {

struct ChunkStorageStats {
  std::uint64_t chunks_written = 0;
  std::uint64_t chunks_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t chunks_removed = 0;
  std::uint64_t fd_cache_hits = 0;
  std::uint64_t fd_cache_misses = 0;
  std::uint64_t fd_cache_evictions = 0;
};

struct ChunkStorageOptions {
  /// Upper bound on cached open chunk descriptors across all shards.
  /// 0 disables the cache (every op pays open+close, the pre-cache
  /// behaviour). Sized well below RLIMIT_NOFILE defaults.
  std::size_t fd_cache_capacity = 256;
};

class ChunkStorage {
 public:
  /// `root` is created if missing. `chunk_size` must be a power of two.
  static Result<ChunkStorage> open(std::filesystem::path root,
                                   std::uint32_t chunk_size,
                                   ChunkStorageOptions options = {});

  ChunkStorage(ChunkStorage&&) = default;
  ChunkStorage& operator=(ChunkStorage&&) = default;

  /// Write `data` into chunk `chunk_id` of `path` at `offset` within the
  /// chunk. Creates or extends the chunk file as needed.
  Status write_chunk(std::string_view path, std::uint64_t chunk_id,
                     std::uint32_t offset, std::span<const std::uint8_t> data);

  /// Read up to out.size() bytes from chunk `chunk_id` at `offset`.
  /// Missing file/short data is zero-filled; returns bytes that came
  /// from disk (the rest of `out` is zeroed).
  Result<std::size_t> read_chunk(std::string_view path,
                                 std::uint64_t chunk_id, std::uint32_t offset,
                                 std::span<std::uint8_t> out) const;

  /// Remove every chunk belonging to `path` (unlink data path).
  Status remove_all(std::string_view path);

  /// Remove chunks strictly beyond `last_chunk`, and shorten
  /// `last_chunk` itself to `last_chunk_bytes` (0 removes it too).
  Status truncate(std::string_view path, std::uint64_t last_chunk,
                  std::uint32_t last_chunk_bytes);

  [[nodiscard]] std::uint32_t chunk_size() const noexcept {
    return chunk_size_;
  }
  [[nodiscard]] const std::filesystem::path& root() const noexcept {
    return root_;
  }
  [[nodiscard]] ChunkStorageStats stats() const noexcept;

  /// Number of chunk files currently stored for `path`.
  Result<std::size_t> chunk_count(std::string_view path) const;

  /// Descriptors currently held by the fd cache (tests, telemetry).
  [[nodiscard]] std::size_t fd_cache_open() const;

 private:
  /// A cached descriptor. Shared: the cache holds one reference and
  /// every in-flight op holds another, so eviction only drops the
  /// cache's reference — the close happens when the last user is done.
  struct FdHandle {
    int fd = -1;
    ~FdHandle();
  };
  using FdRef = std::shared_ptr<FdHandle>;

  struct Shard {
    /// Shards are leaves acquired one at a time; they share a lockdep
    /// name/rank (chunk file I/O happens OUTSIDE the shard lock).
    Mutex mutex{"storage.fd_cache.shard", lockdep::rank::kFdCacheShard};
    struct Slot {
      FdRef fd;
      std::uint64_t tick = 0;  // last-use stamp for LRU eviction
    };
    // (path digest, chunk id) -> slot. Bounded small (capacity/shards),
    // so LRU eviction scans instead of maintaining an intrusive list.
    std::map<std::pair<std::uint64_t, std::uint64_t>, Slot> slots
        GEKKO_GUARDED_BY(mutex);
    std::uint64_t tick GEKKO_GUARDED_BY(mutex) = 0;
  };
  static constexpr std::size_t kShards = 16;

  /// All mutable state lives behind one allocation so the storage
  /// stays movable (atomics and mutexes are not).
  struct State {
    std::array<Shard, kShards> shards;
    std::atomic<std::uint64_t> chunks_written{0};
    std::atomic<std::uint64_t> chunks_read{0};
    std::atomic<std::uint64_t> bytes_written{0};
    std::atomic<std::uint64_t> bytes_read{0};
    std::atomic<std::uint64_t> chunks_removed{0};
    std::atomic<std::uint64_t> fd_cache_hits{0};
    std::atomic<std::uint64_t> fd_cache_misses{0};
    std::atomic<std::uint64_t> fd_cache_evictions{0};
  };

  ChunkStorage(std::filesystem::path root, std::uint32_t chunk_size,
               ChunkStorageOptions options)
      : root_(std::move(root)),
        chunk_size_(chunk_size),
        options_(options),
        state_(std::make_unique<State>()) {}

  [[nodiscard]] std::filesystem::path chunk_dir_(std::string_view path) const;
  [[nodiscard]] std::filesystem::path chunk_file_(std::string_view path,
                                                  std::uint64_t chunk_id)
      const;

  /// Fetch (or open and cache) the descriptor for one chunk file.
  /// `create` opens O_RDWR|O_CREAT (write path); without it a missing
  /// file surfaces Errc::not_found (read path: sparse hole).
  Result<FdRef> acquire_fd_(std::string_view path, std::uint64_t chunk_id,
                            bool create) const;
  /// Drop every cached descriptor belonging to `path` (all chunks).
  void invalidate_path_(std::string_view path) const;
  /// Drop one cached descriptor (after an I/O error on it).
  void invalidate_chunk_(std::string_view path, std::uint64_t chunk_id)
      const;

  std::filesystem::path root_;
  std::uint32_t chunk_size_;
  ChunkStorageOptions options_;
  std::unique_ptr<State> state_;
};

}  // namespace gekko::storage
