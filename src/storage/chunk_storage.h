// Node-local data persistence: one file per chunk (paper §III.B.b,
// "I/O persistence layer ... one file per chunk").
//
// Chunk files live under <root>/<hash-prefix>/<path-digest>_<chunk_id>
// on the node-local file system (the paper's XFS-formatted SSD). Chunk
// content is addressed by (normalized file path, chunk index); the
// digest keeps names short and directory fan-out flat, matching how
// GekkoFS avoids deep host-FS hierarchies.
//
// Sparse semantics: a missing chunk file reads as zeroes within the
// file's logical size; a short chunk file reads as data followed by
// zeroes. Truncate removes whole chunks past the boundary and shortens
// the boundary chunk.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace gekko::storage {

struct ChunkStorageStats {
  std::uint64_t chunks_written = 0;
  std::uint64_t chunks_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t chunks_removed = 0;
};

class ChunkStorage {
 public:
  /// `root` is created if missing. `chunk_size` must be a power of two.
  static Result<ChunkStorage> open(std::filesystem::path root,
                                   std::uint32_t chunk_size);

  ChunkStorage(ChunkStorage&&) = default;
  ChunkStorage& operator=(ChunkStorage&&) = default;

  /// Write `data` into chunk `chunk_id` of `path` at `offset` within the
  /// chunk. Creates or extends the chunk file as needed.
  Status write_chunk(std::string_view path, std::uint64_t chunk_id,
                     std::uint32_t offset, std::span<const std::uint8_t> data);

  /// Read up to out.size() bytes from chunk `chunk_id` at `offset`.
  /// Missing file/short data is zero-filled; returns bytes that came
  /// from disk (the rest of `out` is zeroed).
  Result<std::size_t> read_chunk(std::string_view path,
                                 std::uint64_t chunk_id, std::uint32_t offset,
                                 std::span<std::uint8_t> out) const;

  /// Remove every chunk belonging to `path` (unlink data path).
  Status remove_all(std::string_view path);

  /// Remove chunks strictly beyond `last_chunk`, and shorten
  /// `last_chunk` itself to `last_chunk_bytes` (0 removes it too).
  Status truncate(std::string_view path, std::uint64_t last_chunk,
                  std::uint32_t last_chunk_bytes);

  [[nodiscard]] std::uint32_t chunk_size() const noexcept {
    return chunk_size_;
  }
  [[nodiscard]] const std::filesystem::path& root() const noexcept {
    return root_;
  }
  [[nodiscard]] ChunkStorageStats stats() const noexcept { return stats_; }

  /// Number of chunk files currently stored for `path`.
  Result<std::size_t> chunk_count(std::string_view path) const;

 private:
  ChunkStorage(std::filesystem::path root, std::uint32_t chunk_size)
      : root_(std::move(root)), chunk_size_(chunk_size) {}

  [[nodiscard]] std::filesystem::path chunk_dir_(std::string_view path) const;
  [[nodiscard]] std::filesystem::path chunk_file_(std::string_view path,
                                                  std::uint64_t chunk_id)
      const;

  std::filesystem::path root_;
  std::uint32_t chunk_size_;
  mutable ChunkStorageStats stats_{};
};

}  // namespace gekko::storage
