// relaxed-ok: ChunkStorage stats are standalone byte/op tallies (the PR 3
// ChunkStorageStats race fix made them atomic); no data is published
// through them.
#include "storage/chunk_storage.h"
#include "common/thread_annotations.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/fileio.h"
#include "common/hash.h"
#include "common/trace.h"

namespace gekko::storage {
namespace {

bool is_power_of_two(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

constexpr std::memory_order kRelaxed = std::memory_order_relaxed;

}  // namespace

ChunkStorage::FdHandle::~FdHandle() {
  if (fd >= 0) ::close(fd);
}

Result<ChunkStorage> ChunkStorage::open(std::filesystem::path root,
                                        std::uint32_t chunk_size,
                                        ChunkStorageOptions options) {
  if (!is_power_of_two(chunk_size)) {
    return Status{Errc::invalid_argument, "chunk size must be a power of two"};
  }
  GEKKO_RETURN_IF_ERROR(io::ensure_dir(root));
  return ChunkStorage{std::move(root), chunk_size, options};
}

std::filesystem::path ChunkStorage::chunk_dir_(std::string_view path) const {
  const std::uint64_t digest = xxhash64(path);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%02x/%016" PRIx64,
                static_cast<unsigned>(digest & 0xff), digest);
  return root_ / buf;
}

std::filesystem::path ChunkStorage::chunk_file_(std::string_view path,
                                                std::uint64_t chunk_id) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, chunk_id);
  return chunk_dir_(path) / buf;
}

Result<ChunkStorage::FdRef> ChunkStorage::acquire_fd_(
    std::string_view path, std::uint64_t chunk_id, bool create) const {
  const std::uint64_t digest = xxhash64(path);
  const auto key = std::make_pair(digest, chunk_id);
  Shard* shard = nullptr;
  if (options_.fd_cache_capacity > 0) {
    shard = &state_->shards[mix64(digest ^ chunk_id) % kShards];
    LockGuard lock(shard->mutex);
    auto it = shard->slots.find(key);
    if (it != shard->slots.end()) {
      it->second.tick = ++shard->tick;
      state_->fd_cache_hits.fetch_add(1, kRelaxed);
      return it->second.fd;
    }
  }
  state_->fd_cache_misses.fetch_add(1, kRelaxed);

  // Open outside any shard lock: the open/ensure_dir syscalls are the
  // slow part the cache exists to amortize.
  if (create) {
    GEKKO_RETURN_IF_ERROR(io::ensure_dir(chunk_dir_(path)));
  }
  const auto file = chunk_file_(path, chunk_id);
  const int flags = create ? (O_RDWR | O_CREAT) : O_RDWR;
  const int fd = ::open(file.c_str(), flags, 0644);
  if (fd < 0) {
    if (!create && errno == ENOENT) return Errc::not_found;  // sparse hole
    return Status{Errc::io_error,
                  "open chunk: " + std::string(std::strerror(errno))};
  }
  auto handle = std::make_shared<FdHandle>();
  handle->fd = fd;
  if (shard == nullptr) return handle;  // cache disabled

  LockGuard lock(shard->mutex);
  auto [it, inserted] = shard->slots.try_emplace(key);
  if (!inserted) {
    // Lost an open race; keep the established descriptor (ours closes
    // when `handle` goes out of scope).
    it->second.tick = ++shard->tick;
    return it->second.fd;
  }
  it->second.fd = handle;
  it->second.tick = ++shard->tick;
  const std::size_t per_shard =
      std::max<std::size_t>(1, options_.fd_cache_capacity / kShards);
  while (shard->slots.size() > per_shard) {
    auto victim = shard->slots.begin();
    for (auto cand = shard->slots.begin(); cand != shard->slots.end();
         ++cand) {
      if (cand->second.tick < victim->second.tick) victim = cand;
    }
    shard->slots.erase(victim);  // last user closes the fd
    state_->fd_cache_evictions.fetch_add(1, kRelaxed);
  }
  return handle;
}

void ChunkStorage::invalidate_path_(std::string_view path) const {
  if (options_.fd_cache_capacity == 0) return;
  const std::uint64_t digest = xxhash64(path);
  // Chunk ids of one file spread across shards; sweep them all.
  for (auto& shard : state_->shards) {
    LockGuard lock(shard.mutex);
    std::erase_if(shard.slots, [digest](const auto& kv) {
      return kv.first.first == digest;
    });
  }
}

void ChunkStorage::invalidate_chunk_(std::string_view path,
                                     std::uint64_t chunk_id) const {
  if (options_.fd_cache_capacity == 0) return;
  const std::uint64_t digest = xxhash64(path);
  auto& shard = state_->shards[mix64(digest ^ chunk_id) % kShards];
  LockGuard lock(shard.mutex);
  shard.slots.erase(std::make_pair(digest, chunk_id));
}

std::size_t ChunkStorage::fd_cache_open() const {
  std::size_t n = 0;
  for (auto& shard : state_->shards) {
    LockGuard lock(shard.mutex);
    n += shard.slots.size();
  }
  return n;
}

ChunkStorageStats ChunkStorage::stats() const noexcept {
  ChunkStorageStats s;
  s.chunks_written = state_->chunks_written.load(kRelaxed);
  s.chunks_read = state_->chunks_read.load(kRelaxed);
  s.bytes_written = state_->bytes_written.load(kRelaxed);
  s.bytes_read = state_->bytes_read.load(kRelaxed);
  s.chunks_removed = state_->chunks_removed.load(kRelaxed);
  s.fd_cache_hits = state_->fd_cache_hits.load(kRelaxed);
  s.fd_cache_misses = state_->fd_cache_misses.load(kRelaxed);
  s.fd_cache_evictions = state_->fd_cache_evictions.load(kRelaxed);
  return s;
}

Status ChunkStorage::write_chunk(std::string_view path,
                                 std::uint64_t chunk_id, std::uint32_t offset,
                                 std::span<const std::uint8_t> data) {
  if (offset + data.size() > chunk_size_) {
    return Status{Errc::invalid_argument, "write crosses chunk boundary"};
  }
  trace::ScopedSpan span(metrics::Tracer::global(), "storage.write_chunk");
  auto fd = acquire_fd_(path, chunk_id, /*create=*/true);
  if (!fd) return fd.status();
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::pwrite((*fd)->fd, data.data() + done,
                               data.size() - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      invalidate_chunk_(path, chunk_id);
      return Status{err == ENOSPC ? Errc::no_space : Errc::io_error,
                    "pwrite chunk: " + std::string(std::strerror(err))};
    }
    done += static_cast<std::size_t>(n);
  }
  state_->chunks_written.fetch_add(1, kRelaxed);
  state_->bytes_written.fetch_add(data.size(), kRelaxed);
  return Status::ok();
}

Result<std::size_t> ChunkStorage::read_chunk(std::string_view path,
                                             std::uint64_t chunk_id,
                                             std::uint32_t offset,
                                             std::span<std::uint8_t> out)
    const {
  if (offset + out.size() > chunk_size_) {
    return Status{Errc::invalid_argument, "read crosses chunk boundary"};
  }
  trace::ScopedSpan span(metrics::Tracer::global(), "storage.read_chunk");
  std::memset(out.data(), 0, out.size());

  auto fd = acquire_fd_(path, chunk_id, /*create=*/false);
  if (!fd) {
    if (fd.code() == Errc::not_found) {
      state_->chunks_read.fetch_add(1, kRelaxed);  // sparse hole: zeroes
      return std::size_t{0};
    }
    return fd.status();
  }
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::pread((*fd)->fd, out.data() + done,
                              out.size() - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      invalidate_chunk_(path, chunk_id);
      return Status{Errc::io_error,
                    "pread chunk: " + std::string(std::strerror(err))};
    }
    if (n == 0) break;  // short chunk; remainder stays zeroed
    done += static_cast<std::size_t>(n);
  }
  state_->chunks_read.fetch_add(1, kRelaxed);
  state_->bytes_read.fetch_add(done, kRelaxed);
  return done;
}

Status ChunkStorage::remove_all(std::string_view path) {
  // Invalidate BEFORE unlinking: a cached fd on an unlinked inode would
  // let a concurrent writer scribble into (and a reader revive) data
  // that is supposed to be gone.
  invalidate_path_(path);
  const auto dir = chunk_dir_(path);
  std::error_code ec;
  const auto removed = std::filesystem::remove_all(dir, ec);
  if (ec) return Status{Errc::io_error, "remove_all: " + ec.message()};
  state_->chunks_removed.fetch_add(
      removed > 0 ? static_cast<std::uint64_t>(removed) : 0, kRelaxed);
  return Status::ok();
}

Status ChunkStorage::truncate(std::string_view path, std::uint64_t last_chunk,
                              std::uint32_t last_chunk_bytes) {
  invalidate_path_(path);
  const auto dir = chunk_dir_(path);
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) return Status::ok();

  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::uint64_t id = 0;
    const std::string name = entry.path().filename();
    if (std::sscanf(name.c_str(), "%" SCNu64, &id) != 1) continue;
    if (id > last_chunk || (id == last_chunk && last_chunk_bytes == 0)) {
      std::error_code rec;
      std::filesystem::remove(entry.path(), rec);
      if (!rec) state_->chunks_removed.fetch_add(1, kRelaxed);
    }
  }
  if (ec) return Status{Errc::io_error, "truncate scan: " + ec.message()};

  if (last_chunk_bytes > 0) {
    const auto boundary = chunk_file_(path, last_chunk);
    if (std::filesystem::exists(boundary, ec)) {
      std::filesystem::resize_file(boundary, last_chunk_bytes, ec);
      if (ec) {
        return Status{Errc::io_error, "truncate boundary: " + ec.message()};
      }
    }
  }
  return Status::ok();
}

Result<std::size_t> ChunkStorage::chunk_count(std::string_view path) const {
  const auto dir = chunk_dir_(path);
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) return std::size_t{0};
  std::size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    (void)entry;
    ++n;
  }
  if (ec) return Status{Errc::io_error, "chunk_count: " + ec.message()};
  return n;
}

}  // namespace gekko::storage
