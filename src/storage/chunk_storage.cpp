#include "storage/chunk_storage.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/fileio.h"
#include "common/hash.h"

namespace gekko::storage {
namespace {

bool is_power_of_two(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

Result<ChunkStorage> ChunkStorage::open(std::filesystem::path root,
                                        std::uint32_t chunk_size) {
  if (!is_power_of_two(chunk_size)) {
    return Status{Errc::invalid_argument, "chunk size must be a power of two"};
  }
  GEKKO_RETURN_IF_ERROR(io::ensure_dir(root));
  return ChunkStorage{std::move(root), chunk_size};
}

std::filesystem::path ChunkStorage::chunk_dir_(std::string_view path) const {
  const std::uint64_t digest = xxhash64(path);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%02x/%016" PRIx64,
                static_cast<unsigned>(digest & 0xff), digest);
  return root_ / buf;
}

std::filesystem::path ChunkStorage::chunk_file_(std::string_view path,
                                                std::uint64_t chunk_id) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, chunk_id);
  return chunk_dir_(path) / buf;
}

Status ChunkStorage::write_chunk(std::string_view path,
                                 std::uint64_t chunk_id, std::uint32_t offset,
                                 std::span<const std::uint8_t> data) {
  if (offset + data.size() > chunk_size_) {
    return Status{Errc::invalid_argument, "write crosses chunk boundary"};
  }
  const auto dir = chunk_dir_(path);
  GEKKO_RETURN_IF_ERROR(io::ensure_dir(dir));
  const auto file = chunk_file_(path, chunk_id);

  const int fd = ::open(file.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) {
    return Status{Errc::io_error,
                  "open chunk: " + std::string(std::strerror(errno))};
  }
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::pwrite(fd, data.data() + done, data.size() - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return Status{err == ENOSPC ? Errc::no_space : Errc::io_error,
                    "pwrite chunk: " + std::string(std::strerror(err))};
    }
    done += static_cast<std::size_t>(n);
  }
  ::close(fd);
  ++stats_.chunks_written;
  stats_.bytes_written += data.size();
  return Status::ok();
}

Result<std::size_t> ChunkStorage::read_chunk(std::string_view path,
                                             std::uint64_t chunk_id,
                                             std::uint32_t offset,
                                             std::span<std::uint8_t> out)
    const {
  if (offset + out.size() > chunk_size_) {
    return Status{Errc::invalid_argument, "read crosses chunk boundary"};
  }
  std::memset(out.data(), 0, out.size());

  const auto file = chunk_file_(path, chunk_id);
  const int fd = ::open(file.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      ++stats_.chunks_read;  // sparse hole: all zeroes
      return std::size_t{0};
    }
    return Status{Errc::io_error,
                  "open chunk: " + std::string(std::strerror(errno))};
  }
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::pread(fd, out.data() + done, out.size() - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return Status{Errc::io_error,
                    "pread chunk: " + std::string(std::strerror(err))};
    }
    if (n == 0) break;  // short chunk; remainder stays zeroed
    done += static_cast<std::size_t>(n);
  }
  ::close(fd);
  ++stats_.chunks_read;
  stats_.bytes_read += done;
  return done;
}

Status ChunkStorage::remove_all(std::string_view path) {
  const auto dir = chunk_dir_(path);
  std::error_code ec;
  const auto removed = std::filesystem::remove_all(dir, ec);
  if (ec) return Status{Errc::io_error, "remove_all: " + ec.message()};
  stats_.chunks_removed += removed > 0 ? static_cast<std::uint64_t>(removed)
                                       : 0;
  return Status::ok();
}

Status ChunkStorage::truncate(std::string_view path, std::uint64_t last_chunk,
                              std::uint32_t last_chunk_bytes) {
  const auto dir = chunk_dir_(path);
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) return Status::ok();

  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::uint64_t id = 0;
    const std::string name = entry.path().filename();
    if (std::sscanf(name.c_str(), "%" SCNu64, &id) != 1) continue;
    if (id > last_chunk || (id == last_chunk && last_chunk_bytes == 0)) {
      std::error_code rec;
      std::filesystem::remove(entry.path(), rec);
      if (!rec) ++stats_.chunks_removed;
    }
  }
  if (ec) return Status{Errc::io_error, "truncate scan: " + ec.message()};

  if (last_chunk_bytes > 0) {
    const auto boundary = chunk_file_(path, last_chunk);
    if (std::filesystem::exists(boundary, ec)) {
      std::filesystem::resize_file(boundary, last_chunk_bytes, ec);
      if (ec) {
        return Status{Errc::io_error, "truncate boundary: " + ec.message()};
      }
    }
  }
  return Status::ok();
}

Result<std::size_t> ChunkStorage::chunk_count(std::string_view path) const {
  const auto dir = chunk_dir_(path);
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) return std::size_t{0};
  std::size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    (void)entry;
    ++n;
  }
  if (ec) return Status{Errc::io_error, "chunk_count: " + ec.message()};
  return n;
}

}  // namespace gekko::storage
