// Fabric message and RDMA-like bulk-region descriptors.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "net/address.h"

namespace gekko::net {

/// An exposed memory region for one-sided transfer. The client registers
/// a span of its buffer; the daemon pulls (for writes) or pushes (for
/// reads) directly, without the payload travelling inside the message —
/// mirroring Mercury bulk handles over RDMA (paper §III.B.a).
///
/// Lifetime: the region aliases caller memory. The caller must keep the
/// buffer alive until the RPC completes (same contract as real RDMA
/// registration).
class BulkRegion {
 public:
  BulkRegion() = default;

  static BulkRegion expose_read(std::span<const std::uint8_t> data) {
    BulkRegion r;
    r.read_ptr_ = data.data();
    r.size_ = data.size();
    return r;
  }

  static BulkRegion expose_write(std::span<std::uint8_t> data) {
    BulkRegion r;
    r.read_ptr_ = data.data();
    r.write_ptr_ = data.data();
    r.size_ = data.size();
    return r;
  }

  /// An owned region: the bytes travel WITH the message (the socket
  /// transport's inline-bulk mode — Mercury's send/recv fallback).
  /// `writable` regions start zeroed at `size` and carry pushes back
  /// to the requester with the response.
  static BulkRegion adopt(std::vector<std::uint8_t> data, bool writable) {
    BulkRegion r;
    r.owned_ = std::make_shared<std::vector<std::uint8_t>>(std::move(data));
    r.read_ptr_ = r.owned_->data();
    if (writable) {
      r.write_ptr_ = r.owned_->data();
      // Writable owned regions track which byte ranges were pushed so
      // the transport ships back only written data — several daemons
      // may fill DISJOINT parts of one client buffer concurrently.
      r.dirty_ = std::make_shared<std::vector<std::pair<std::uint64_t,
                                                        std::uint64_t>>>();
    }
    r.size_ = r.owned_->size();
    return r;
  }

  void record_push(std::uint64_t offset, std::uint64_t len) const {
    if (dirty_) dirty_->emplace_back(offset, len);
  }
  [[nodiscard]] const std::vector<std::pair<std::uint64_t, std::uint64_t>>*
  dirty_ranges() const noexcept {
    return dirty_.get();
  }

  [[nodiscard]] bool valid() const noexcept { return read_ptr_ != nullptr; }
  [[nodiscard]] bool writable() const noexcept { return write_ptr_ != nullptr; }
  [[nodiscard]] bool owned() const noexcept { return owned_ != nullptr; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  [[nodiscard]] const std::uint8_t* read_ptr() const noexcept {
    return read_ptr_;
  }
  [[nodiscard]] std::uint8_t* write_ptr() const noexcept { return write_ptr_; }
  [[nodiscard]] const std::vector<std::uint8_t>* owned_bytes() const noexcept {
    return owned_.get();
  }
  /// Shared ownership handle (socket transport keeps the buffer alive
  /// until the response carries it back).
  [[nodiscard]] std::shared_ptr<std::vector<std::uint8_t>> owned_handle()
      const noexcept {
    return owned_;
  }

 private:
  const std::uint8_t* read_ptr_ = nullptr;
  std::uint8_t* write_ptr_ = nullptr;
  std::size_t size_ = 0;
  std::shared_ptr<std::vector<std::uint8_t>> owned_;
  std::shared_ptr<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      dirty_;
};

enum class MessageKind : std::uint8_t { request = 0, response = 1 };

struct Message {
  MessageKind kind = MessageKind::request;
  std::uint16_t rpc_id = 0;    // registered RPC id (requests only)
  std::uint64_t seq = 0;       // correlates response to request
  EndpointId source = kInvalidEndpoint;
  std::vector<std::uint8_t> payload;  // serialized header/args
  BulkRegion bulk;             // optional one-sided region (requests)
};

}  // namespace gekko::net
