// net::HttpExporter — minimal HTTP/1.1 server for telemetry scrapes.
//
// One serve thread, poll()-gated accepts, one request per connection
// (Connection: close). This is deliberately NOT a general web server:
// it exists so Prometheus (and gkfs-mon, and curl) can GET /metrics
// off a daemon without dragging an HTTP library into the build. The
// request path never touches fabric or engine threads, so a stuck or
// malicious scraper can at worst stall its own connection (reads are
// bounded by a poll timeout and an 8 KiB header cap).
//
// Lifecycle: create() binds + listens + starts the serve thread (port
// 0 picks an ephemeral port; port() reports the bound one). stop() —
// also run by the destructor — flips the stop flag and joins; the
// poll timeout bounds the join latency.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "common/metrics.h"
#include "common/result.h"

namespace gekko::net {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
};

struct HttpExporterOptions {
  /// TCP port to bind; 0 = pick an ephemeral port (see port()).
  std::uint16_t port = 0;
  /// Bind address. Telemetry defaults to loopback; clusters that
  /// scrape remotely opt into 0.0.0.0 explicitly.
  std::string bind_address = "127.0.0.1";
  int listen_backlog = 16;
  /// Registry for net.http.* counters (nullptr = global).
  metrics::Registry* registry = nullptr;
};

class HttpExporter {
 public:
  /// Maps a request path ("/metrics") to a response. Runs on the serve
  /// thread; must not block indefinitely.
  using Handler = std::function<HttpResponse(const std::string& path)>;

  static Result<std::unique_ptr<HttpExporter>> create(
      HttpExporterOptions options, Handler handler);

  ~HttpExporter();
  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// The actually-bound TCP port (resolves port 0 requests).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Idempotent; joins the serve thread.
  void stop();

 private:
  HttpExporter(HttpExporterOptions options, Handler handler);

  void serve_loop_();
  void serve_one_(int fd);

  HttpExporterOptions options_;
  Handler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;

  // net.http.* counters (cached; bumped lock-free on the serve thread).
  metrics::Counter* requests_;
  metrics::Counter* errors_;
  metrics::Counter* bytes_out_;
};

}  // namespace gekko::net
