// Multi-process fabric over Unix-domain sockets.
//
// This is the transport that turns the in-process system into a REAL
// deployment: `gkfsd` daemon processes listen on sockets enumerated in
// a hostfile (the role the shared hosts file plays for real GekkoFS),
// and client processes connect on demand. The Engine/daemon/client
// code is identical to the loopback case — only the Fabric differs.
//
// Bulk transfer uses Mercury's send/recv fallback shape: bulk data is
// inlined into frames (read-exposed regions travel with the request;
// writable regions come back with the response). True one-sided RDMA
// needs NIC support that a Unix socket cannot express.
//
// Hostfile format: one "<endpoint-id> <socket-path>" per line.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "net/fabric.h"
#include "net/frame_codec.h"
#include "net/transport.h"

namespace gekko::net {

struct SocketFabricOptions {
  /// Daemon role: serve on the hostfile entry for `self_id`.
  /// Client role (self_id == kInvalidEndpoint): connect-only.
  EndpointId self_id = kInvalidEndpoint;
  /// Upper bound for one wire frame, enforced on BOTH sides: the
  /// sender fails oversized frames with Errc::overflow before any
  /// bytes hit the wire (instead of silently killing the peer's
  /// connection), and the receiver drops connections that announce a
  /// larger frame. All processes sharing a hostfile must agree.
  std::uint32_t max_frame_bytes = 1u << 30;
};

class SocketFabric final : public HostedFabric {
 public:
  /// Parse a hostfile and construct a fabric for one process.
  static Result<std::unique_ptr<SocketFabric>> create(
      const std::filesystem::path& hostfile, SocketFabricOptions options);

  ~SocketFabric() override;
  SocketFabric(const SocketFabric&) = delete;
  SocketFabric& operator=(const SocketFabric&) = delete;

  /// One endpoint per process (one Engine). Daemon role: starts the
  /// listener on its hostfile socket. Client role: connect-only id.
  std::pair<EndpointId, std::shared_ptr<Inbox>> register_endpoint() override;

  Status send(EndpointId dest, Message msg) override;
  void deregister(EndpointId id) override;

  /// Unregister the writable bulk region for `seq`. Synchronizes with
  /// the reader threads: once this returns, no late kBulkResponseData
  /// frame can write into the caller's buffer.
  void cancel(std::uint64_t seq) override;

  Status bulk_pull(const BulkRegion& region, std::size_t offset,
                   std::span<std::uint8_t> out) override;
  Status bulk_push(const BulkRegion& region, std::size_t offset,
                   std::span<const std::uint8_t> data) override;

  [[nodiscard]] TrafficStats stats() const override;

  /// Endpoint ids of all daemons listed in the hostfile, ascending.
  [[nodiscard]] std::vector<EndpointId> daemon_ids() const override {
    std::vector<EndpointId> out;
    out.reserve(hosts_.size());
    for (const auto& [id, path] : hosts_) out.push_back(id);
    return out;
  }

  /// Write a hostfile for `n` daemons with sockets under `dir`.
  static Result<std::filesystem::path> write_hostfile(
      const std::filesystem::path& dir, std::uint32_t n);

 private:
  explicit SocketFabric(SocketFabricOptions options);

  struct Connection {
    int fd = -1;
    /// Dialed daemon id (outgoing only; accepted conns stay invalid).
    EndpointId peer = kInvalidEndpoint;
    /// Set when the reader loop exits or a write fails: the link is
    /// unusable and the next send() to `peer` must redial.
    std::atomic<bool> dead{false};
    /// Serializes whole frames onto the socket (one writer at a time);
    /// the fd itself is only written under it.
    Mutex write_mutex{"net.socket.write", lockdep::rank::kSocketWrite};
    std::thread reader;
  };

  Status start_listener_();
  void accept_loop_(int listen_fd);
  void reader_loop_(std::shared_ptr<Connection> conn);
  /// Route one decoded frame: apply response bulk (killing the
  /// connection on out-of-range ranges), stash the reply route, push
  /// to the inbox. False = connection must die.
  bool deliver_frame_(const std::shared_ptr<Connection>& conn,
                      wire::DecodedFrame decoded);
  Result<std::shared_ptr<Connection>> connect_to_(EndpointId dest);
  Status write_frame_(Connection& conn, const Message& msg,
                      const BulkRegion* bulk_out);
  /// Remove a dead connection from the routing maps, fail every
  /// in-flight entry tied to it, and park it for joining. Safe from
  /// any thread, including the connection's own reader.
  void evict_(const std::shared_ptr<Connection>& conn);
  void park_zombie_locked_(const std::shared_ptr<Connection>& conn);
  void kill_connection_(EndpointId dest, const Message& msg);
  void shutdown_();

  SocketFabricOptions options_;
  std::map<EndpointId, std::string> hosts_;  // daemon id -> socket path
  EndpointId self_ = kInvalidEndpoint;
  std::shared_ptr<Inbox> inbox_;

  int listen_fd_ = -1;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};

  Mutex conn_mutex_{"net.socket.conn", lockdep::rank::kSocketConn};
  std::map<EndpointId, std::shared_ptr<Connection>> outgoing_
      GEKKO_GUARDED_BY(conn_mutex_);
  std::vector<std::shared_ptr<Connection>> incoming_
      GEKKO_GUARDED_BY(conn_mutex_);
  /// Evicted connections whose reader threads still need joining
  /// (a thread cannot join itself); reaped in shutdown_().
  std::vector<std::shared_ptr<Connection>> zombies_
      GEKKO_GUARDED_BY(conn_mutex_);

  // Request context on the serving side: the response for a request
  // goes back over the connection it arrived on, carrying the
  // (possibly written) owned bulk buffer. Keyed by (requester id, seq)
  // — seq alone collides across client processes, which each count
  // sequences from 1.
  struct PendingReply {
    std::shared_ptr<Connection> conn;
    BulkRegion writable_bulk;  // owned region, if the request had one
  };
  using ReplyKey = std::pair<EndpointId, std::uint64_t>;
  Mutex reply_mutex_{"net.socket.reply", lockdep::rank::kSocketReply};
  std::map<ReplyKey, PendingReply> pending_replies_
      GEKKO_GUARDED_BY(reply_mutex_);

  // Requesting side: writable regions waiting for response bulk,
  // tied to the connection the request left on so a dead link fails
  // them instead of leaking them.
  struct PendingWritable {
    BulkRegion region;
    std::shared_ptr<Connection> conn;
  };
  Mutex bulk_mutex_{"net.socket.bulk", lockdep::rank::kSocketBulk};
  std::map<std::uint64_t, PendingWritable> pending_writable_
      GEKKO_GUARDED_BY(bulk_mutex_);

  mutable Mutex stats_mutex_{"net.socket.stats", lockdep::rank::kSocketStats};
  TrafficStats stats_ GEKKO_GUARDED_BY(stats_mutex_){};

  // Transport-level telemetry (global registry, cached at construction;
  // incremented lock-free on the data path).
  struct SocketMetrics {
    metrics::Counter* frames_out;
    metrics::Counter* frames_in;
    metrics::Counter* bytes_out;
    metrics::Counter* bytes_in;
    metrics::Counter* dials;
    metrics::Counter* redials;
    metrics::Counter* evictions;
    /// Bulk payload segments gathered zero-copy by sendmsg (counts
    /// external iovec entries, not scratch/header pieces).
    metrics::Counter* writev_segments;
  };
  SocketMetrics m_;
};

}  // namespace gekko::net
