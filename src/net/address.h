// Endpoint addressing for the in-process fabric.
//
// Mercury addresses are opaque strings resolved per transport; here an
// address is a dense integer id handed out by the Fabric at registration
// time. Daemons occupy the low ids [0, n_daemons) so the client-side
// distributor can compute `hash % n_daemons` directly, exactly like
// GekkoFS resolves responsible daemons without a directory service.
#pragma once

#include <cstdint>
#include <limits>

namespace gekko::net {

using EndpointId = std::uint32_t;

inline constexpr EndpointId kInvalidEndpoint =
    std::numeric_limits<EndpointId>::max();

// Id-space split (socket transport)
// ---------------------------------
//   [0, kClientEndpointBase)              daemon ids: dense hostfile
//       ids, low so `hash % n_daemons` addresses them directly.
//   [kClientEndpointBase, kInvalidEndpoint)  client ids: bit 30 set,
//       low 30 bits derived from the process pid mixed with a
//       per-process random salt (pids alone are only 22–24 bits wide
//       and recycle, so two client processes could otherwise collide;
//       see client_endpoint_id() in socket_fabric.cpp).
//   kInvalidEndpoint (all ones)           never a valid address.
//
// Daemons route replies by (requester id, seq), so a client-id
// collision would cross-deliver responses — the salt makes that
// probability ~2^-30 instead of certain under pid reuse.
inline constexpr EndpointId kClientEndpointBase = 0x40000000u;
inline constexpr EndpointId kClientEndpointMask = kClientEndpointBase - 1;

}  // namespace gekko::net
