// Endpoint addressing for the in-process fabric.
//
// Mercury addresses are opaque strings resolved per transport; here an
// address is a dense integer id handed out by the Fabric at registration
// time. Daemons occupy the low ids [0, n_daemons) so the client-side
// distributor can compute `hash % n_daemons` directly, exactly like
// GekkoFS resolves responsible daemons without a directory service.
#pragma once

#include <cstdint>
#include <limits>

namespace gekko::net {

using EndpointId = std::uint32_t;

inline constexpr EndpointId kInvalidEndpoint =
    std::numeric_limits<EndpointId>::max();

}  // namespace gekko::net
