// Fabric interface + the in-process loopback implementation.
//
// A Fabric is what Mercury's transport layer is to GekkoFS: endpoints
// register, messages are delivered reliably to inboxes, and bulk
// regions support one-sided-style transfers. Two implementations:
//  - LoopbackFabric (here): all endpoints in one process; bulk ops are
//    memcpys. Used by tests, benches, and the in-process cluster.
//  - SocketFabric (socket_fabric.h): endpoints across PROCESSES over
//    Unix-domain sockets with a hostfile, for real `gkfsd` daemons.
//    Bulk data is inlined into frames (Mercury's send/recv fallback
//    path when RDMA is unavailable).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/metrics.h"
#include "common/queue.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "net/message.h"

namespace gekko::net {

/// Traffic counters, per endpoint and global.
struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t bulk_bytes_pulled = 0;
  std::uint64_t bulk_bytes_pushed = 0;
};

/// Fault plan evaluated on every send. Used by tests and failure-injection
/// benches. All fields default to "healthy network".
struct FaultPlan {
  /// Drop every message towards this endpoint (daemon crash).
  EndpointId blackhole = kInvalidEndpoint;
  /// Drop 1 in `drop_one_in` messages (0 = never).
  std::uint64_t drop_one_in = 0;
};

/// One-shot fault decision for a single send(). Fields combine: e.g.
/// kill_connection + drop simulates a daemon dying mid-RPC (the link is
/// severed AND the in-flight message is lost).
struct FaultAction {
  /// Message vanishes; the sender still observes success (a real lossy
  /// fabric cannot report loss either).
  bool drop = false;
  /// Deliver the message twice (retransmission race).
  bool duplicate = false;
  /// Sever the transport link the message would travel over BEFORE
  /// transmitting. SocketFabric shuts the connection down (the next
  /// send redials); the loopback fabric has no connections and treats
  /// this as dropping the message.
  bool kill_connection = false;
  /// Sleep this long on the sender's thread before transmitting.
  std::chrono::milliseconds delay{0};
};

/// Deterministic fault hook consulted on every send(). Richer than
/// FaultPlan: tests script per-message drops, delays, duplicates, and
/// connection kills — the lifecycle events libfabric surfaces to
/// Mercury, reproduced without a flaky network.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  virtual FaultAction on_send(EndpointId dest, const Message& msg) = 0;
};

/// Wraps a callable as an injector (test shorthand).
class CallbackFaultInjector final : public FaultInjector {
 public:
  using Fn = std::function<FaultAction(EndpointId, const Message&)>;
  explicit CallbackFaultInjector(Fn fn) : fn_(std::move(fn)) {}
  FaultAction on_send(EndpointId dest, const Message& msg) override {
    return fn_(dest, msg);
  }

 private:
  Fn fn_;
};

class Inbox;

/// Abstract transport. All methods are thread-safe.
class Fabric {
 public:
  virtual ~Fabric() = default;

  /// Register a new endpoint; returns its id and inbox.
  virtual std::pair<EndpointId, std::shared_ptr<Inbox>>
  register_endpoint() = 0;

  /// Deliver a message to `dest`'s inbox.
  virtual Status send(EndpointId dest, Message msg) = 0;

  /// Remove an endpoint; its inbox closes.
  virtual void deregister(EndpointId id) = 0;

  /// One-sided-style transfer out of an exposed region.
  virtual Status bulk_pull(const BulkRegion& region, std::size_t offset,
                           std::span<std::uint8_t> out) = 0;

  /// One-sided-style transfer into an exposed writable region.
  virtual Status bulk_push(const BulkRegion& region, std::size_t offset,
                           std::span<const std::uint8_t> data) = 0;

  /// Abandon interest in the response to request `seq`: unregister any
  /// writable bulk region tied to it so a late response can no longer
  /// write into caller memory. Guarantees that once cancel() returns,
  /// no further transport-side write to that region happens (any write
  /// already in progress completes first). Unknown seqs are a no-op.
  virtual void cancel(std::uint64_t seq) { (void)seq; }

  /// Install (nullptr = clear) a fault hook consulted on every send.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector);

  [[nodiscard]] virtual TrafficStats stats() const = 0;

 protected:
  Fabric();

  /// Healthy action when no injector is installed. Thread-safe.
  /// Non-trivial actions bump the `net.fault_injector.fires` counter.
  FaultAction consult_injector_(EndpointId dest, const Message& msg);

 private:
  mutable Mutex injector_mutex_{"net.fault_injector",
                                lockdep::rank::kFabricInjector};
  std::shared_ptr<FaultInjector> injector_ GEKKO_GUARDED_BY(injector_mutex_);
  metrics::Counter* fault_fires_;  // global registry, cached
};

/// An endpoint's receive queue.
class Inbox {
 public:
  std::optional<Message> receive() { return queue_.pop(); }
  std::optional<Message> try_receive() { return queue_.try_pop(); }
  void close() { queue_.close(); }
  bool push(Message msg) { return queue_.push(std::move(msg)); }

 private:
  BlockingQueue<Message> queue_;
};

/// All endpoints in one process; delivery is a queue push.
class LoopbackFabric final : public Fabric {
 public:
  LoopbackFabric();
  LoopbackFabric(const LoopbackFabric&) = delete;
  LoopbackFabric& operator=(const LoopbackFabric&) = delete;

  std::pair<EndpointId, std::shared_ptr<Inbox>> register_endpoint() override;

  /// Dropped-by-fault messages report success (like a real lossy
  /// fabric — the sender can't tell).
  Status send(EndpointId dest, Message msg) override;

  void deregister(EndpointId id) override;

  void set_fault_plan(FaultPlan plan);
  [[nodiscard]] FaultPlan fault_plan() const;

  Status bulk_pull(const BulkRegion& region, std::size_t offset,
                   std::span<std::uint8_t> out) override;
  Status bulk_push(const BulkRegion& region, std::size_t offset,
                   std::span<const std::uint8_t> data) override;

  [[nodiscard]] TrafficStats stats() const override;
  [[nodiscard]] std::size_t endpoint_count() const;

 private:
  mutable Mutex mutex_{"net.loopback", lockdep::rank::kLoopback};
  std::vector<std::shared_ptr<Inbox>> inboxes_
      GEKKO_GUARDED_BY(mutex_);  // index == EndpointId
  FaultPlan fault_plan_ GEKKO_GUARDED_BY(mutex_){};
  std::uint64_t send_counter_ GEKKO_GUARDED_BY(mutex_) = 0;
  TrafficStats stats_ GEKKO_GUARDED_BY(mutex_){};
  std::atomic<std::uint64_t> bulk_pulled_{0};
  std::atomic<std::uint64_t> bulk_pushed_{0};
  // Registry mirrors of TrafficStats (global registry, cached).
  struct LoopbackMetrics {
    metrics::Counter* messages;
    metrics::Counter* bytes;
    metrics::Counter* drops;
    metrics::Counter* bulk_pulled_bytes;
    metrics::Counter* bulk_pushed_bytes;
  };
  LoopbackMetrics m_;
};

}  // namespace gekko::net
