#include "net/socket_fabric.h"
#include "common/flight_recorder.h"
#include "common/thread_annotations.h"

#include <limits.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "common/fileio.h"
#include "common/logging.h"

namespace gekko::net {
namespace {

#ifndef IOV_MAX
#define IOV_MAX 1024
#endif

/// Gathered send of every iovec in order, batching at IOV_MAX and
/// advancing across partial writes. Consumes `iov` (bases/lengths are
/// adjusted in place). MSG_NOSIGNAL so a dead peer surfaces as an
/// error instead of SIGPIPE.
Status writev_all(int fd, std::vector<iovec>& iov) {
  std::size_t idx = 0;
  while (idx < iov.size()) {
    if (iov[idx].iov_len == 0) {
      ++idx;
      continue;
    }
    msghdr mh{};
    mh.msg_iov = iov.data() + idx;
    mh.msg_iovlen = std::min<std::size_t>(iov.size() - idx, IOV_MAX);
    const ssize_t n = ::sendmsg(fd, &mh, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status{Errc::disconnected,
                    std::string("sendmsg: ") + std::strerror(errno)};
    }
    auto advanced = static_cast<std::size_t>(n);
    while (idx < iov.size() && advanced >= iov[idx].iov_len) {
      advanced -= iov[idx].iov_len;
      ++idx;
    }
    if (idx < iov.size() && advanced > 0) {
      iov[idx].iov_base =
          static_cast<std::uint8_t*>(iov[idx].iov_base) + advanced;
      iov[idx].iov_len -= advanced;
    }
  }
  return Status::ok();
}

Status read_all(int fd, std::uint8_t* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::recv(fd, data + done, len - done, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status{Errc::disconnected,
                    std::string("recv: ") + std::strerror(errno)};
    }
    if (n == 0) return Errc::disconnected;  // EOF
    done += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

}  // namespace

SocketFabric::SocketFabric(SocketFabricOptions options) : options_(options) {
  auto& reg = metrics::Registry::global();
  m_.frames_out = &reg.counter("net.socket.frames_out");
  m_.frames_in = &reg.counter("net.socket.frames_in");
  m_.bytes_out = &reg.counter("net.socket.bytes_out");
  m_.bytes_in = &reg.counter("net.socket.bytes_in");
  m_.dials = &reg.counter("net.socket.dials");
  m_.redials = &reg.counter("net.socket.redials");
  m_.evictions = &reg.counter("net.socket.evictions");
  m_.writev_segments = &reg.counter("fabric.writev_segments");
}

Result<std::unique_ptr<SocketFabric>> SocketFabric::create(
    const std::filesystem::path& hostfile, SocketFabricOptions options) {
  auto content = io::read_file(hostfile);
  if (!content) return content.status();

  std::unique_ptr<SocketFabric> fabric(new SocketFabric(options));
  auto hosts = parse_hostfile(*content);
  if (!hosts) return hosts.status();
  fabric->hosts_ = std::move(*hosts);
  if (options.self_id != kInvalidEndpoint &&
      !fabric->hosts_.contains(options.self_id)) {
    return Status{Errc::invalid_argument, "self_id not in hostfile"};
  }
  return fabric;
}

Result<std::filesystem::path> SocketFabric::write_hostfile(
    const std::filesystem::path& dir, std::uint32_t n) {
  GEKKO_RETURN_IF_ERROR(io::ensure_dir(dir));
  std::string content;
  for (std::uint32_t i = 0; i < n; ++i) {
    content += std::to_string(i) + " " +
               (dir / ("gkfsd." + std::to_string(i) + ".sock")).string() +
               "\n";
  }
  const auto path = dir / "hosts.txt";
  GEKKO_RETURN_IF_ERROR(io::write_file_atomic(path, content));
  return path;
}

SocketFabric::~SocketFabric() { shutdown_(); }

std::pair<EndpointId, std::shared_ptr<Inbox>>
SocketFabric::register_endpoint() {
  // One endpoint per process; repeat registration is a programming
  // error in this transport.
  if (inbox_ != nullptr) {
    GEKKO_ERROR("net.socket") << "second endpoint on a socket fabric";
    return {kInvalidEndpoint, nullptr};
  }
  inbox_ = std::make_shared<Inbox>();
  if (options_.self_id != kInvalidEndpoint) {
    self_ = options_.self_id;
    if (Status st = start_listener_(); !st.is_ok()) {
      GEKKO_ERROR("net.socket") << "listener failed: " << st.to_string();
      // Roll the registration back entirely: a retry after the caller
      // fixes the cause (stale socket dir, permissions) must see the
      // real error again, not the "second endpoint" guard tripping on
      // the inbox this failed attempt left behind.
      inbox_.reset();
      self_ = kInvalidEndpoint;
      return {kInvalidEndpoint, nullptr};
    }
  } else {
    self_ = wire::derive_client_endpoint_id();
  }
  return {self_, inbox_};
}

Status SocketFabric::start_listener_() {
  const std::string& path = hosts_.at(self_);
  (void)::unlink(path.c_str());

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status{Errc::io_error, "socket()"};
  // Failure must not leak the fd nor leave listen_fd_ pointing at a
  // half-configured socket a later shutdown_() would close again.
  const auto fail = [this](Status st) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  };

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return fail(Status{Errc::invalid_argument, "socket path too long: " + path});
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail(Status{Errc::io_error,
                       "bind " + path + ": " + std::strerror(errno)});
  }
  if (::listen(listen_fd_, 64) != 0) {
    return fail(Status{Errc::io_error, "listen()"});
  }
  // The fd is captured by value: shutdown_() closes and overwrites
  // listen_fd_ concurrently, so the loop must never read the member.
  acceptor_ = std::thread([this, fd = listen_fd_] { accept_loop_(fd); });
  return Status::ok();
}

void SocketFabric::accept_loop_(int listen_fd) {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      // The reader thread is assigned BEFORE the connection becomes
      // visible in incoming_, and both happen under conn_mutex_: a
      // concurrent shutdown_() that snapshots the maps either sees
      // the connection with a joinable reader, or does not see it yet
      // (and then the acceptor join covers it). Publishing first let
      // shutdown_() skip the join and free the fabric under a reader
      // that was still starting.
      LockGuard lock(conn_mutex_);
      conn->reader = std::thread([this, conn] { reader_loop_(conn); });
      incoming_.push_back(conn);
    }
  }
}

void SocketFabric::reader_loop_(std::shared_ptr<Connection> conn) {
  for (;;) {
    std::uint8_t len_buf[wire::kLenPrefixBytes];
    if (!read_all(conn->fd, len_buf, sizeof(len_buf)).is_ok()) break;
    std::uint32_t frame_len;
    std::memcpy(&frame_len, len_buf, sizeof(len_buf));
    if (frame_len < wire::kMinFrameBytes ||
        frame_len > options_.max_frame_bytes) {
      break;
    }

    std::vector<std::uint8_t> frame(frame_len);
    if (!read_all(conn->fd, frame.data(), frame.size()).is_ok()) break;
    m_.frames_in->inc();
    m_.bytes_in->inc(wire::kLenPrefixBytes + frame.size());

    wire::DecodedFrame decoded;
    if (!wire::decode_frame(frame, options_.max_frame_bytes, &decoded)
             .is_ok()) {
      break;
    }
    if (!deliver_frame_(conn, std::move(decoded))) break;
  }
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->dead.store(true, std::memory_order_release);
  evict_(conn);
}

bool SocketFabric::deliver_frame_(const std::shared_ptr<Connection>& conn,
                                  wire::DecodedFrame decoded) {
  Message msg = std::move(decoded.msg);
  BulkRegion writable_bulk;
  if (decoded.bulk_mode == wire::kBulkWritableSize) writable_bulk = msg.bulk;

  if (decoded.bulk_mode == wire::kBulkResponseData) {
    // Response carrying dirty ranges for one of OUR pending writable
    // regions: apply them before delivery. Fan-out reads have SEVERAL
    // responses filling disjoint parts of one region, so only written
    // ranges travel.
    //
    // bulk_mutex_ held across the whole application: cancel(seq) also
    // takes it, so once a cancel returns no byte of this response can
    // land in the caller's buffer.
    LockGuard lock(bulk_mutex_);
    auto it = pending_writable_.find(msg.seq);
    if (it != pending_writable_.end()) {
      if (!wire::apply_response_ranges(it->second.region, decoded.ranges)
               .is_ok()) {
        // A range outside the region it was handed is a corrupt or
        // hostile peer: kill the connection instead of silently
        // skipping the range (the caller would read stale bytes and
        // never learn).
        return false;
      }
      pending_writable_.erase(it);
    }
    // No pending entry (cancelled or timed out): ranges are dropped —
    // the caller already reclaimed the buffer.
  }

  if (msg.kind == MessageKind::request) {
    // Stash the reply route (and the adopted writable buffer, whose
    // contents must travel back).
    PendingReply reply;
    reply.conn = conn;
    reply.writable_bulk = std::move(writable_bulk);
    LockGuard lock(reply_mutex_);
    pending_replies_[ReplyKey{msg.source, msg.seq}] = std::move(reply);
  } else {
    // Clean any stale pending-writable entry (response w/o bulk).
    LockGuard lock(bulk_mutex_);
    pending_writable_.erase(msg.seq);
  }

  return inbox_ && inbox_->push(std::move(msg));
}

void SocketFabric::park_zombie_locked_(
    const std::shared_ptr<Connection>& conn) {
  if (std::find(zombies_.begin(), zombies_.end(), conn) == zombies_.end()) {
    zombies_.push_back(conn);
  }
}

void SocketFabric::evict_(const std::shared_ptr<Connection>& conn) {
  // During teardown shutdown_() owns all cleanup (and joins us).
  if (stopping_.load(std::memory_order_acquire)) return;
  m_.evictions->inc();
  flight::record(flight::Subsys::fabric, flight::ev::fabric_evict,
                 conn->peer);
  {
    LockGuard lock(conn_mutex_);
    if (conn->peer != kInvalidEndpoint) {
      auto it = outgoing_.find(conn->peer);
      if (it != outgoing_.end() && it->second == conn) outgoing_.erase(it);
    }
    std::erase(incoming_, conn);
    park_zombie_locked_(conn);
  }
  // Serving side: reply routes over this link can never be used.
  {
    LockGuard lock(reply_mutex_);
    std::erase_if(pending_replies_, [&](const auto& kv) {
      return kv.second.conn == conn;
    });
  }
  // Requesting side: responses for these regions can never arrive;
  // drop them instead of leaking them (the caller's forward() will
  // time out or already has).
  {
    LockGuard lock(bulk_mutex_);
    std::erase_if(pending_writable_, [&](const auto& kv) {
      return kv.second.conn == conn;
    });
  }
}

void SocketFabric::kill_connection_(EndpointId dest, const Message& msg) {
  flight::record(flight::Subsys::fabric, flight::ev::fabric_kill, dest,
                 static_cast<std::uint32_t>(msg.seq));
  std::shared_ptr<Connection> victim;
  if (msg.kind == MessageKind::response) {
    LockGuard lock(reply_mutex_);
    auto it = pending_replies_.find(ReplyKey{dest, msg.seq});
    if (it != pending_replies_.end()) victim = it->second.conn;
  } else {
    LockGuard lock(conn_mutex_);
    auto it = outgoing_.find(dest);
    if (it != outgoing_.end()) victim = it->second;
  }
  if (!victim) return;
  victim->dead.store(true, std::memory_order_release);
  ::shutdown(victim->fd, SHUT_RDWR);
  evict_(victim);
}

void SocketFabric::cancel(std::uint64_t seq) {
  LockGuard lock(bulk_mutex_);
  pending_writable_.erase(seq);
}

Status SocketFabric::write_frame_(Connection& conn, const Message& msg,
                                  const BulkRegion* bulk_out) {
  // Zero-copy framing (wire::encode_frame): only header/metadata bytes
  // are built in the scratch buffer; bulk payload bytes are gathered
  // straight out of the exposed region by sendmsg, so an N-MiB
  // transfer never transits a temporary frame.
  auto frame = wire::encode_frame(msg, bulk_out, self_,
                                  options_.max_frame_bytes);
  if (!frame) return frame.status();

  std::vector<iovec> iov;
  iov.reserve(frame->segment_count() * 2 + 2);
  frame->append_iov(&iov);

  LockGuard lock(conn.write_mutex);
  Status st = writev_all(conn.fd, iov);
  if (st.is_ok()) {
    m_.frames_out->inc();
    m_.bytes_out->inc(frame->wire_bytes());
    m_.writev_segments->inc(frame->segment_count());
  }
  return st;
}

Result<std::shared_ptr<SocketFabric::Connection>> SocketFabric::connect_to_(
    EndpointId dest) {
  {
    LockGuard lock(conn_mutex_);
    auto it = outgoing_.find(dest);
    if (it != outgoing_.end() &&
        !it->second->dead.load(std::memory_order_acquire)) {
      return it->second;
    }
  }
  auto host = hosts_.find(dest);
  if (host == hosts_.end()) {
    return Status{Errc::disconnected, "unknown endpoint id"};
  }

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  // Same length check as the listener side: silently truncating would
  // dial a wrong (likely nonexistent) socket and report the confusing
  // connect error instead of the actual misconfiguration.
  if (host->second.size() >= sizeof(addr.sun_path)) {
    return Status{Errc::invalid_argument,
                  "socket path too long: " + host->second};
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status{Errc::io_error, "socket()"};
  std::strncpy(addr.sun_path, host->second.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status{Errc::disconnected,
                  "connect " + host->second + ": " + std::strerror(errno)};
  }
  m_.dials->inc();
  flight::record(flight::Subsys::fabric, flight::ev::fabric_connect, dest);

  LockGuard lock(conn_mutex_);
  auto it = outgoing_.find(dest);
  if (it != outgoing_.end()) {
    if (!it->second->dead.load(std::memory_order_acquire)) {
      // Lost a connect race; keep the established link.
      ::close(fd);
      return it->second;
    }
    // Replace a dead cached connection; its reader will evict itself,
    // park it here so shutdown_() can join the thread.
    m_.redials->inc();
    flight::record(flight::Subsys::fabric, flight::ev::fabric_redial, dest);
    park_zombie_locked_(it->second);
    outgoing_.erase(it);
  }
  auto conn = std::make_shared<Connection>();
  conn->fd = fd;
  conn->peer = dest;
  conn->reader = std::thread([this, conn] { reader_loop_(conn); });
  outgoing_[dest] = conn;
  return conn;
}

Status SocketFabric::send(EndpointId dest, Message msg) {
  {
    LockGuard lock(stats_mutex_);
    ++stats_.messages_sent;
    stats_.payload_bytes += msg.payload.size();
  }
  const FaultAction fault = consult_injector_(dest, msg);
  if (fault.kill_connection) kill_connection_(dest, msg);
  if (fault.delay.count() > 0) {
    std::this_thread::sleep_for(fault.delay);  // blocking-ok: scripted fault delay runs on the injecting sender's thread by design
  }
  if (fault.drop) {
    LockGuard lock(stats_mutex_);
    ++stats_.messages_dropped;
    return Status::ok();  // silent loss, sender can't observe it
  }

  if (msg.kind == MessageKind::response) {
    // Route back over the originating connection with any written bulk.
    PendingReply reply;
    {
      LockGuard lock(reply_mutex_);
      auto it = pending_replies_.find(ReplyKey{dest, msg.seq});
      if (it == pending_replies_.end()) {
        return Status{Errc::disconnected, "no reply route for seq"};
      }
      reply = std::move(it->second);
      pending_replies_.erase(it);
    }
    const BulkRegion* bulk_out =
        reply.writable_bulk.valid() ? &reply.writable_bulk : nullptr;
    Status st = write_frame_(*reply.conn, msg, bulk_out);
    if (st.is_ok() && fault.duplicate) {
      // status-ignored-ok: best-effort reply; a dead peer is caught by its reader
      (void)write_frame_(*reply.conn, msg, bulk_out);
    }
    return st;
  }

  // Request path. A cached connection may have died since the last
  // send (daemon restart): if the write fails, evict the link and
  // redial once, transparently.
  Status last = Status::ok();
  for (int attempt = 0; attempt < 2; ++attempt) {
    auto conn = connect_to_(dest);
    if (!conn) return conn.status();
    // Register writable regions so the response can fill them, tied to
    // this connection so its death fails them.
    if (msg.bulk.valid() && msg.bulk.writable() && !msg.bulk.owned()) {
      LockGuard lock(bulk_mutex_);
      pending_writable_[msg.seq] = PendingWritable{msg.bulk, *conn};
    }
    last = write_frame_(**conn, msg, nullptr);
    if (last.is_ok()) {
      // status-ignored-ok: injected duplicate send
      if (fault.duplicate) (void)write_frame_(**conn, msg, nullptr);
      return last;
    }
    {
      LockGuard lock(bulk_mutex_);
      pending_writable_.erase(msg.seq);
    }
    if (last.code() != Errc::disconnected) return last;  // e.g. overflow
    (*conn)->dead.store(true, std::memory_order_release);
    ::shutdown((*conn)->fd, SHUT_RDWR);
    evict_(*conn);
  }
  return last;
}

void SocketFabric::deregister(EndpointId id) {
  (void)id;
  shutdown_();
}

void SocketFabric::shutdown_() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (acceptor_.joinable()) acceptor_.join();

  std::vector<std::shared_ptr<Connection>> conns;
  {
    LockGuard lock(conn_mutex_);
    for (auto& [id, c] : outgoing_) conns.push_back(c);
    conns.insert(conns.end(), incoming_.begin(), incoming_.end());
    conns.insert(conns.end(), zombies_.begin(), zombies_.end());
    outgoing_.clear();
    incoming_.clear();
    zombies_.clear();
  }
  // A connection can sit in a routing map AND the zombie list for a
  // moment around eviction; join each exactly once.
  std::sort(conns.begin(), conns.end());
  conns.erase(std::unique(conns.begin(), conns.end()), conns.end());
  for (auto& c : conns) {
    ::shutdown(c->fd, SHUT_RDWR);
  }
  for (auto& c : conns) {
    if (c->reader.joinable()) c->reader.join();
    ::close(c->fd);
  }
  {
    LockGuard lock(reply_mutex_);
    pending_replies_.clear();
  }
  {
    LockGuard lock(bulk_mutex_);
    pending_writable_.clear();
  }
  if (inbox_) inbox_->close();
  if (self_ != kInvalidEndpoint && hosts_.contains(self_)) {
    (void)::unlink(hosts_.at(self_).c_str());
  }
}

Status SocketFabric::bulk_pull(const BulkRegion& region, std::size_t offset,
                               std::span<std::uint8_t> out) {
  if (!region.valid()) return Status{Errc::invalid_argument, "invalid bulk"};
  if (offset + out.size() > region.size()) {
    return Status{Errc::overflow, "bulk pull out of range"};
  }
  std::memcpy(out.data(), region.read_ptr() + offset, out.size());
  LockGuard lock(stats_mutex_);
  stats_.bulk_bytes_pulled += out.size();
  return Status::ok();
}

Status SocketFabric::bulk_push(const BulkRegion& region, std::size_t offset,
                               std::span<const std::uint8_t> data) {
  if (!region.valid() || !region.writable()) {
    return Status{Errc::invalid_argument, "bulk region not writable"};
  }
  if (offset + data.size() > region.size()) {
    return Status{Errc::overflow, "bulk push out of range"};
  }
  std::memcpy(region.write_ptr() + offset, data.data(), data.size());
  region.record_push(offset, data.size());
  LockGuard lock(stats_mutex_);
  stats_.bulk_bytes_pushed += data.size();
  return Status::ok();
}

TrafficStats SocketFabric::stats() const {
  LockGuard lock(stats_mutex_);
  return stats_;
}

}  // namespace gekko::net
