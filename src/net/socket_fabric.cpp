#include "net/socket_fabric.h"
#include "common/thread_annotations.h"

#include <limits.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <random>
#include <thread>

#include "common/codec.h"
#include "common/fileio.h"
#include "common/hash.h"
#include "common/logging.h"

namespace gekko::net {
namespace {

constexpr std::uint8_t kBulkNone = 0;
constexpr std::uint8_t kBulkReadData = 1;
constexpr std::uint8_t kBulkWritableSize = 2;
constexpr std::uint8_t kBulkResponseData = 3;

/// Client endpoint ids live in the high half of the id space (see
/// address.h). The pid is mixed with a per-process random salt: bare
/// pids fit in ~22 bits and recycle, so two client processes (or one
/// client restarted) could otherwise claim the same id and have the
/// daemon cross-route their replies.
EndpointId client_endpoint_id() {
  static const std::uint32_t salt = [] {
    std::random_device rd;
    return static_cast<std::uint32_t>(rd());
  }();
  const auto mixed = static_cast<std::uint32_t>(
      mix64((static_cast<std::uint64_t>(salt) << 32) |
            static_cast<std::uint32_t>(::getpid())));
  return kClientEndpointBase | (mixed & kClientEndpointMask);
}

#ifndef IOV_MAX
#define IOV_MAX 1024
#endif

/// Gathered send of every iovec in order, batching at IOV_MAX and
/// advancing across partial writes. Consumes `iov` (bases/lengths are
/// adjusted in place). MSG_NOSIGNAL so a dead peer surfaces as an
/// error instead of SIGPIPE.
Status writev_all(int fd, std::vector<iovec>& iov) {
  std::size_t idx = 0;
  while (idx < iov.size()) {
    if (iov[idx].iov_len == 0) {
      ++idx;
      continue;
    }
    msghdr mh{};
    mh.msg_iov = iov.data() + idx;
    mh.msg_iovlen = std::min<std::size_t>(iov.size() - idx, IOV_MAX);
    const ssize_t n = ::sendmsg(fd, &mh, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status{Errc::disconnected,
                    std::string("sendmsg: ") + std::strerror(errno)};
    }
    auto advanced = static_cast<std::size_t>(n);
    while (idx < iov.size() && advanced >= iov[idx].iov_len) {
      advanced -= iov[idx].iov_len;
      ++idx;
    }
    if (idx < iov.size() && advanced > 0) {
      iov[idx].iov_base =
          static_cast<std::uint8_t*>(iov[idx].iov_base) + advanced;
      iov[idx].iov_len -= advanced;
    }
  }
  return Status::ok();
}

Status read_all(int fd, std::uint8_t* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::recv(fd, data + done, len - done, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status{Errc::disconnected,
                    std::string("recv: ") + std::strerror(errno)};
    }
    if (n == 0) return Errc::disconnected;  // EOF
    done += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

}  // namespace

SocketFabric::SocketFabric(SocketFabricOptions options) : options_(options) {
  auto& reg = metrics::Registry::global();
  m_.frames_out = &reg.counter("net.socket.frames_out");
  m_.frames_in = &reg.counter("net.socket.frames_in");
  m_.bytes_out = &reg.counter("net.socket.bytes_out");
  m_.bytes_in = &reg.counter("net.socket.bytes_in");
  m_.dials = &reg.counter("net.socket.dials");
  m_.redials = &reg.counter("net.socket.redials");
  m_.evictions = &reg.counter("net.socket.evictions");
  m_.writev_segments = &reg.counter("fabric.writev_segments");
}

Result<std::unique_ptr<SocketFabric>> SocketFabric::create(
    const std::filesystem::path& hostfile, SocketFabricOptions options) {
  auto content = io::read_file(hostfile);
  if (!content) return content.status();

  std::unique_ptr<SocketFabric> fabric(new SocketFabric(options));
  std::size_t pos = 0;
  while (pos < content->size()) {
    std::size_t eol = content->find('\n', pos);
    if (eol == std::string::npos) eol = content->size();
    const std::string line = content->substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const auto space = line.find(' ');
    if (space == std::string::npos) {
      return Status{Errc::invalid_argument, "bad hostfile line: " + line};
    }
    // from_chars, not stoul: a Result-returning factory must not throw
    // on garbage or out-of-range ids.
    EndpointId id = 0;
    const char* first = line.data();
    const char* last = first + space;
    const auto [ptr, ec] = std::from_chars(first, last, id);
    if (ec != std::errc() || ptr != last) {
      return Status{Errc::invalid_argument, "bad hostfile id: " + line};
    }
    if (id >= kClientEndpointBase) {
      return Status{Errc::invalid_argument,
                    "hostfile id in client id-space: " + line};
    }
    fabric->hosts_[id] = line.substr(space + 1);
  }
  if (fabric->hosts_.empty()) {
    return Status{Errc::invalid_argument, "empty hostfile"};
  }
  if (options.self_id != kInvalidEndpoint &&
      !fabric->hosts_.contains(options.self_id)) {
    return Status{Errc::invalid_argument, "self_id not in hostfile"};
  }
  return fabric;
}

Result<std::filesystem::path> SocketFabric::write_hostfile(
    const std::filesystem::path& dir, std::uint32_t n) {
  GEKKO_RETURN_IF_ERROR(io::ensure_dir(dir));
  std::string content;
  for (std::uint32_t i = 0; i < n; ++i) {
    content += std::to_string(i) + " " +
               (dir / ("gkfsd." + std::to_string(i) + ".sock")).string() +
               "\n";
  }
  const auto path = dir / "hosts.txt";
  GEKKO_RETURN_IF_ERROR(io::write_file_atomic(path, content));
  return path;
}

SocketFabric::~SocketFabric() { shutdown_(); }

std::pair<EndpointId, std::shared_ptr<Inbox>>
SocketFabric::register_endpoint() {
  // One endpoint per process; repeat registration is a programming
  // error in this transport.
  if (inbox_ != nullptr) {
    GEKKO_ERROR("net.socket") << "second endpoint on a socket fabric";
    return {kInvalidEndpoint, nullptr};
  }
  inbox_ = std::make_shared<Inbox>();
  if (options_.self_id != kInvalidEndpoint) {
    self_ = options_.self_id;
    if (Status st = start_listener_(); !st.is_ok()) {
      GEKKO_ERROR("net.socket") << "listener failed: " << st.to_string();
      return {kInvalidEndpoint, nullptr};
    }
  } else {
    self_ = client_endpoint_id();
  }
  return {self_, inbox_};
}

Status SocketFabric::start_listener_() {
  const std::string& path = hosts_.at(self_);
  (void)::unlink(path.c_str());

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status{Errc::io_error, "socket()"};

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status{Errc::invalid_argument, "socket path too long: " + path};
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status{Errc::io_error,
                  "bind " + path + ": " + std::strerror(errno)};
  }
  if (::listen(listen_fd_, 64) != 0) {
    return Status{Errc::io_error, "listen()"};
  }
  // The fd is captured by value: shutdown_() closes and overwrites
  // listen_fd_ concurrently, so the loop must never read the member.
  acceptor_ = std::thread([this, fd = listen_fd_] { accept_loop_(fd); });
  return Status::ok();
}

void SocketFabric::accept_loop_(int listen_fd) {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      LockGuard lock(conn_mutex_);
      incoming_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { reader_loop_(conn); });
  }
}

void SocketFabric::reader_loop_(std::shared_ptr<Connection> conn) {
  for (;;) {
    std::uint8_t len_buf[4];
    if (!read_all(conn->fd, len_buf, 4).is_ok()) break;
    std::uint32_t frame_len;
    std::memcpy(&frame_len, len_buf, 4);
    // min: empty payload, no bulk (kind+rpc_id+seq+source+trace_id+
    // parent_span+str-len+bulk_mode = 1+2+8+4+8+8+1+1 = 33)
    if (frame_len < 33 || frame_len > options_.max_frame_bytes) break;

    std::vector<std::uint8_t> frame(frame_len);
    if (!read_all(conn->fd, frame.data(), frame.size()).is_ok()) break;
    m_.frames_in->inc();
    m_.bytes_in->inc(4 + frame.size());

    Decoder dec(frame);
    auto kind = dec.u8();
    auto rpc_id = dec.u16();
    auto seq = dec.u64();
    auto source = dec.u32();
    auto trace_id = dec.u64();
    auto parent_span = dec.u64();
    auto payload = dec.str();
    auto bulk_mode = dec.u8();
    if (!kind || !rpc_id || !seq || !source || !trace_id || !parent_span ||
        !payload || !bulk_mode) {
      break;
    }

    Message msg;
    msg.kind = static_cast<MessageKind>(*kind);
    msg.rpc_id = *rpc_id;
    msg.seq = *seq;
    msg.source = *source;
    msg.trace_id = *trace_id;
    msg.parent_span = *parent_span;
    msg.payload.assign(payload->begin(), payload->end());

    BulkRegion writable_bulk;
    switch (*bulk_mode) {
      case kBulkNone:
        break;
      case kBulkReadData: {
        auto bytes = dec.str();
        if (!bytes) goto done;
        msg.bulk = BulkRegion::adopt(
            std::vector<std::uint8_t>(bytes->begin(), bytes->end()),
            /*writable=*/false);
        break;
      }
      case kBulkWritableSize: {
        auto size = dec.u64();
        if (!size || *size > options_.max_frame_bytes) goto done;
        msg.bulk = BulkRegion::adopt(
            std::vector<std::uint8_t>(static_cast<std::size_t>(*size), 0),
            /*writable=*/true);
        writable_bulk = msg.bulk;
        break;
      }
      case kBulkResponseData: {
        // Response carrying dirty ranges for one of OUR pending
        // writable regions: apply them before delivery. Fan-out reads
        // have SEVERAL responses filling disjoint parts of one region,
        // so only written ranges travel.
        auto count = dec.varint();
        if (!count) goto done;
        // bulk_mutex_ held across the whole application: cancel(seq)
        // also takes it, so once a cancel returns no byte of this
        // response can land in the caller's buffer.
        LockGuard lock(bulk_mutex_);
        auto it = pending_writable_.find(msg.seq);
        for (std::uint64_t r = 0; r < *count; ++r) {
          auto off = dec.u64();
          auto bytes = dec.str();
          if (!off || !bytes) goto done;
          if (it != pending_writable_.end() &&
              *off + bytes->size() <= it->second.region.size()) {
            std::memcpy(it->second.region.write_ptr() + *off, bytes->data(),
                        bytes->size());
          }
        }
        if (it != pending_writable_.end()) pending_writable_.erase(it);
        break;
      }
      default:
        goto done;
    }

    if (msg.kind == MessageKind::request) {
      // Stash the reply route (and the adopted writable buffer, whose
      // contents must travel back).
      PendingReply reply;
      reply.conn = conn;
      reply.writable_bulk = std::move(writable_bulk);
      LockGuard lock(reply_mutex_);
      pending_replies_[ReplyKey{msg.source, msg.seq}] = std::move(reply);
    } else {
      // Clean any stale pending-writable entry (response w/o bulk).
      LockGuard lock(bulk_mutex_);
      pending_writable_.erase(msg.seq);
    }

    if (!inbox_ || !inbox_->push(std::move(msg))) break;
  }
done:
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->dead.store(true, std::memory_order_release);
  evict_(conn);
}

void SocketFabric::park_zombie_locked_(
    const std::shared_ptr<Connection>& conn) {
  if (std::find(zombies_.begin(), zombies_.end(), conn) == zombies_.end()) {
    zombies_.push_back(conn);
  }
}

void SocketFabric::evict_(const std::shared_ptr<Connection>& conn) {
  // During teardown shutdown_() owns all cleanup (and joins us).
  if (stopping_.load(std::memory_order_acquire)) return;
  m_.evictions->inc();
  {
    LockGuard lock(conn_mutex_);
    if (conn->peer != kInvalidEndpoint) {
      auto it = outgoing_.find(conn->peer);
      if (it != outgoing_.end() && it->second == conn) outgoing_.erase(it);
    }
    std::erase(incoming_, conn);
    park_zombie_locked_(conn);
  }
  // Serving side: reply routes over this link can never be used.
  {
    LockGuard lock(reply_mutex_);
    std::erase_if(pending_replies_, [&](const auto& kv) {
      return kv.second.conn == conn;
    });
  }
  // Requesting side: responses for these regions can never arrive;
  // drop them instead of leaking them (the caller's forward() will
  // time out or already has).
  {
    LockGuard lock(bulk_mutex_);
    std::erase_if(pending_writable_, [&](const auto& kv) {
      return kv.second.conn == conn;
    });
  }
}

void SocketFabric::kill_connection_(EndpointId dest, const Message& msg) {
  std::shared_ptr<Connection> victim;
  if (msg.kind == MessageKind::response) {
    LockGuard lock(reply_mutex_);
    auto it = pending_replies_.find(ReplyKey{dest, msg.seq});
    if (it != pending_replies_.end()) victim = it->second.conn;
  } else {
    LockGuard lock(conn_mutex_);
    auto it = outgoing_.find(dest);
    if (it != outgoing_.end()) victim = it->second;
  }
  if (!victim) return;
  victim->dead.store(true, std::memory_order_release);
  ::shutdown(victim->fd, SHUT_RDWR);
  evict_(victim);
}

void SocketFabric::cancel(std::uint64_t seq) {
  LockGuard lock(bulk_mutex_);
  pending_writable_.erase(seq);
}

Status SocketFabric::write_frame_(Connection& conn, const Message& msg,
                                  const BulkRegion* bulk_out) {
  // Zero-copy framing: only header/metadata bytes (including the varint
  // length prefixes of bulk strings) are built in the scratch buffer.
  // Bulk payload bytes are gathered straight out of the exposed region
  // by sendmsg, so an N-MiB transfer never transits a temporary frame.
  // The byte stream is identical to what a single flat encode produces
  // — the receiver is unchanged.
  std::vector<std::uint8_t> scratch;
  Encoder enc(&scratch);

  // External (not-copied) payload segments, spliced into the stream
  // after the first `after` scratch bytes. Recorded as offsets because
  // scratch may reallocate while encoding continues.
  struct ExtSegment {
    std::size_t after;
    const std::uint8_t* ptr;
    std::size_t len;
  };
  std::vector<ExtSegment> ext;
  std::size_t ext_bytes = 0;
  auto emit_bulk = [&](const std::uint8_t* ptr, std::size_t len) {
    enc.varint(len);  // str framing: the length prefix stays in scratch
    if (len > 0) {
      ext.push_back({scratch.size(), ptr, len});
      ext_bytes += len;
    }
  };

  enc.u8(static_cast<std::uint8_t>(msg.kind));
  enc.u16(msg.rpc_id);
  enc.u64(msg.seq);
  enc.u32(self_);
  enc.u64(msg.trace_id);
  enc.u64(msg.parent_span);
  enc.str(std::string_view(reinterpret_cast<const char*>(msg.payload.data()),
                           msg.payload.size()));

  if (bulk_out != nullptr && bulk_out->valid()) {
    enc.u8(kBulkResponseData);
    const auto* ranges = bulk_out->dirty_ranges();
    enc.varint(ranges != nullptr ? ranges->size() : 0);
    if (ranges != nullptr) {
      for (const auto& [off, len] : *ranges) {
        enc.u64(off);
        emit_bulk(bulk_out->read_ptr() + off, static_cast<std::size_t>(len));
      }
    }
  } else if (msg.bulk.valid() && msg.bulk.writable()) {
    enc.u8(kBulkWritableSize);
    enc.u64(msg.bulk.size());
  } else if (msg.bulk.valid()) {
    enc.u8(kBulkReadData);
    emit_bulk(msg.bulk.read_ptr(), msg.bulk.size());
  } else {
    enc.u8(kBulkNone);
  }

  // Validate on the send side: an oversized frame must fail HERE with
  // overflow, not trip the receiver's limit and silently kill the
  // peer's view of this connection. The check covers the total on-wire
  // frame size, scratch plus gathered bulk.
  const std::size_t frame_len = scratch.size() + ext_bytes;
  if (frame_len > options_.max_frame_bytes) {
    return Status{Errc::overflow,
                  "frame of " + std::to_string(frame_len) +
                      " bytes exceeds max_frame_bytes " +
                      std::to_string(options_.max_frame_bytes)};
  }

  std::uint8_t len_buf[4];
  const auto frame_len32 = static_cast<std::uint32_t>(frame_len);
  std::memcpy(len_buf, &frame_len32, 4);

  // Materialize the iovec list only now: scratch's storage is stable
  // once encoding is complete.
  std::vector<iovec> iov;
  iov.reserve(ext.size() * 2 + 2);
  iov.push_back({len_buf, 4});
  std::size_t pos = 0;
  for (const auto& seg : ext) {
    if (seg.after > pos) {
      iov.push_back({scratch.data() + pos, seg.after - pos});
      pos = seg.after;
    }
    iov.push_back({const_cast<std::uint8_t*>(seg.ptr), seg.len});
  }
  if (pos < scratch.size()) {
    iov.push_back({scratch.data() + pos, scratch.size() - pos});
  }

  LockGuard lock(conn.write_mutex);
  Status st = writev_all(conn.fd, iov);
  if (st.is_ok()) {
    m_.frames_out->inc();
    m_.bytes_out->inc(4 + frame_len);
    m_.writev_segments->inc(ext.size());
  }
  return st;
}

Result<std::shared_ptr<SocketFabric::Connection>> SocketFabric::connect_to_(
    EndpointId dest) {
  {
    LockGuard lock(conn_mutex_);
    auto it = outgoing_.find(dest);
    if (it != outgoing_.end() &&
        !it->second->dead.load(std::memory_order_acquire)) {
      return it->second;
    }
  }
  auto host = hosts_.find(dest);
  if (host == hosts_.end()) {
    return Status{Errc::disconnected, "unknown endpoint id"};
  }

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status{Errc::io_error, "socket()"};
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, host->second.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status{Errc::disconnected,
                  "connect " + host->second + ": " + std::strerror(errno)};
  }
  m_.dials->inc();

  LockGuard lock(conn_mutex_);
  auto it = outgoing_.find(dest);
  if (it != outgoing_.end()) {
    if (!it->second->dead.load(std::memory_order_acquire)) {
      // Lost a connect race; keep the established link.
      ::close(fd);
      return it->second;
    }
    // Replace a dead cached connection; its reader will evict itself,
    // park it here so shutdown_() can join the thread.
    m_.redials->inc();
    park_zombie_locked_(it->second);
    outgoing_.erase(it);
  }
  auto conn = std::make_shared<Connection>();
  conn->fd = fd;
  conn->peer = dest;
  conn->reader = std::thread([this, conn] { reader_loop_(conn); });
  outgoing_[dest] = conn;
  return conn;
}

Status SocketFabric::send(EndpointId dest, Message msg) {
  {
    LockGuard lock(stats_mutex_);
    ++stats_.messages_sent;
    stats_.payload_bytes += msg.payload.size();
  }
  const FaultAction fault = consult_injector_(dest, msg);
  if (fault.kill_connection) kill_connection_(dest, msg);
  if (fault.delay.count() > 0) {
    std::this_thread::sleep_for(fault.delay);  // blocking-ok: scripted fault delay runs on the injecting sender's thread by design
  }
  if (fault.drop) {
    LockGuard lock(stats_mutex_);
    ++stats_.messages_dropped;
    return Status::ok();  // silent loss, sender can't observe it
  }

  if (msg.kind == MessageKind::response) {
    // Route back over the originating connection with any written bulk.
    PendingReply reply;
    {
      LockGuard lock(reply_mutex_);
      auto it = pending_replies_.find(ReplyKey{dest, msg.seq});
      if (it == pending_replies_.end()) {
        return Status{Errc::disconnected, "no reply route for seq"};
      }
      reply = std::move(it->second);
      pending_replies_.erase(it);
    }
    const BulkRegion* bulk_out =
        reply.writable_bulk.valid() ? &reply.writable_bulk : nullptr;
    Status st = write_frame_(*reply.conn, msg, bulk_out);
    if (st.is_ok() && fault.duplicate) {
      (void)write_frame_(*reply.conn, msg, bulk_out);
    }
    return st;
  }

  // Request path. A cached connection may have died since the last
  // send (daemon restart): if the write fails, evict the link and
  // redial once, transparently.
  Status last = Status::ok();
  for (int attempt = 0; attempt < 2; ++attempt) {
    auto conn = connect_to_(dest);
    if (!conn) return conn.status();
    // Register writable regions so the response can fill them, tied to
    // this connection so its death fails them.
    if (msg.bulk.valid() && msg.bulk.writable() && !msg.bulk.owned()) {
      LockGuard lock(bulk_mutex_);
      pending_writable_[msg.seq] = PendingWritable{msg.bulk, *conn};
    }
    last = write_frame_(**conn, msg, nullptr);
    if (last.is_ok()) {
      if (fault.duplicate) (void)write_frame_(**conn, msg, nullptr);
      return last;
    }
    {
      LockGuard lock(bulk_mutex_);
      pending_writable_.erase(msg.seq);
    }
    if (last.code() != Errc::disconnected) return last;  // e.g. overflow
    (*conn)->dead.store(true, std::memory_order_release);
    ::shutdown((*conn)->fd, SHUT_RDWR);
    evict_(*conn);
  }
  return last;
}

void SocketFabric::deregister(EndpointId id) {
  (void)id;
  shutdown_();
}

void SocketFabric::shutdown_() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (acceptor_.joinable()) acceptor_.join();

  std::vector<std::shared_ptr<Connection>> conns;
  {
    LockGuard lock(conn_mutex_);
    for (auto& [id, c] : outgoing_) conns.push_back(c);
    conns.insert(conns.end(), incoming_.begin(), incoming_.end());
    conns.insert(conns.end(), zombies_.begin(), zombies_.end());
    outgoing_.clear();
    incoming_.clear();
    zombies_.clear();
  }
  // A connection can sit in a routing map AND the zombie list for a
  // moment around eviction; join each exactly once.
  std::sort(conns.begin(), conns.end());
  conns.erase(std::unique(conns.begin(), conns.end()), conns.end());
  for (auto& c : conns) {
    ::shutdown(c->fd, SHUT_RDWR);
  }
  for (auto& c : conns) {
    if (c->reader.joinable()) c->reader.join();
    ::close(c->fd);
  }
  {
    LockGuard lock(reply_mutex_);
    pending_replies_.clear();
  }
  {
    LockGuard lock(bulk_mutex_);
    pending_writable_.clear();
  }
  if (inbox_) inbox_->close();
  if (self_ != kInvalidEndpoint && hosts_.contains(self_)) {
    (void)::unlink(hosts_.at(self_).c_str());
  }
}

Status SocketFabric::bulk_pull(const BulkRegion& region, std::size_t offset,
                               std::span<std::uint8_t> out) {
  if (!region.valid()) return Status{Errc::invalid_argument, "invalid bulk"};
  if (offset + out.size() > region.size()) {
    return Status{Errc::overflow, "bulk pull out of range"};
  }
  std::memcpy(out.data(), region.read_ptr() + offset, out.size());
  LockGuard lock(stats_mutex_);
  stats_.bulk_bytes_pulled += out.size();
  return Status::ok();
}

Status SocketFabric::bulk_push(const BulkRegion& region, std::size_t offset,
                               std::span<const std::uint8_t> data) {
  if (!region.valid() || !region.writable()) {
    return Status{Errc::invalid_argument, "bulk region not writable"};
  }
  if (offset + data.size() > region.size()) {
    return Status{Errc::overflow, "bulk push out of range"};
  }
  std::memcpy(region.write_ptr() + offset, data.data(), data.size());
  region.record_push(offset, data.size());
  LockGuard lock(stats_mutex_);
  stats_.bulk_bytes_pushed += data.size();
  return Status::ok();
}

TrafficStats SocketFabric::stats() const {
  LockGuard lock(stats_mutex_);
  return stats_;
}

}  // namespace gekko::net
