// Multi-process fabric over TCP with an epoll readiness loop.
//
// Where SocketFabric (socket_fabric.h) runs one blocking reader thread
// per connection — fine for a handful of local processes, fatal for
// thousands of clients — TcpFabric multiplexes every connection onto a
// small pool of event-loop threads, the Mercury design point for
// extreme-scale services ("RPC Approach for Extreme-scale Services",
// PAPERS.md):
//
//  - nonblocking sockets registered with one epoll instance per loop
//    thread; each connection is owned by exactly one loop,
//  - per-connection read buffers with partial-frame reassembly (a
//    frame may arrive across any number of readiness events),
//  - per-connection send queues: when the socket is idle a frame is
//    written inline from the sender's thread (zero-copy iovec gather);
//    when it is backed up, frames are flattened onto the queue and the
//    event loop coalesces the whole backlog into single sendmsg
//    calls (net.tcp.coalesced_frames counts frames that shared one
//    flush with others).
//
// The wire format is byte-identical to SocketFabric's (shared
// wire::frame codec, 33-byte minimum frame), so everything above the
// transport — redial/eviction, FaultInjector, trace-id propagation —
// behaves the same. Hostfile lines carry "host:port" addresses:
//
//   0 127.0.0.1:9230
//   1 10.0.0.7:9230
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "net/fabric.h"
#include "net/frame_codec.h"
#include "net/transport.h"

namespace gekko::net {

struct TcpFabricOptions {
  /// Daemon role: serve on the hostfile entry for `self_id`.
  /// Client role (self_id == kInvalidEndpoint): connect-only.
  EndpointId self_id = kInvalidEndpoint;
  /// Upper bound for one wire frame, enforced on both sides (see
  /// SocketFabricOptions::max_frame_bytes).
  std::uint32_t max_frame_bytes = 1u << 30;
  /// Event-loop threads multiplexing all connections (0 = 2). Two
  /// suffice for a node: loops are readiness dispatchers, the actual
  /// RPC work runs on the engine's handler pool.
  std::size_t event_loops = 2;
  int listen_backlog = 128;
};

class TcpFabric final : public HostedFabric {
 public:
  /// Parse a hostfile of "<id> <host>:<port>" lines and construct a
  /// fabric for one process. Event loops start immediately.
  static Result<std::unique_ptr<TcpFabric>> create(
      const std::filesystem::path& hostfile, TcpFabricOptions options);

  ~TcpFabric() override;
  TcpFabric(const TcpFabric&) = delete;
  TcpFabric& operator=(const TcpFabric&) = delete;

  std::pair<EndpointId, std::shared_ptr<Inbox>> register_endpoint() override;
  Status send(EndpointId dest, Message msg) override;
  void deregister(EndpointId id) override;
  void cancel(std::uint64_t seq) override;
  Status bulk_pull(const BulkRegion& region, std::size_t offset,
                   std::span<std::uint8_t> out) override;
  Status bulk_push(const BulkRegion& region, std::size_t offset,
                   std::span<const std::uint8_t> data) override;
  [[nodiscard]] TrafficStats stats() const override;

  [[nodiscard]] std::vector<EndpointId> daemon_ids() const override {
    std::vector<EndpointId> out;
    out.reserve(hosts_.size());
    for (const auto& [id, addr] : hosts_) out.push_back(id);
    return out;
  }

  /// Write a hostfile for `n` daemons on 127.0.0.1, picking currently
  /// free ports (each probed by binding port 0). Ports are released
  /// before this returns, so a well-timed other process could steal
  /// one — fine for tests and single-node benches, real deployments
  /// write their own hostfile with administered ports.
  static Result<std::filesystem::path> write_hostfile(
      const std::filesystem::path& dir, std::uint32_t n);

 private:
  class EventLoop;

  struct Conn {
    ~Conn();
    int fd = -1;
    /// Dialed daemon id (outgoing only; accepted conns stay invalid).
    EndpointId peer = kInvalidEndpoint;
    /// Set when the link is unusable; the next send() to `peer`
    /// redials.
    std::atomic<bool> dead{false};
    /// The loop that owns readiness for this fd.
    EventLoop* loop = nullptr;

    // Read-side reassembly state. Touched ONLY by the owning loop
    // thread (each fd lives in exactly one epoll set), so it needs no
    // lock.
    std::vector<std::uint8_t> rd;
    std::size_t rd_pos = 0;

    // Send queue. Senders append (or write inline when empty); the
    // event loop drains on EPOLLOUT.
    Mutex out_mutex{"net.tcp.out", lockdep::rank::kTcpOut};
    std::vector<std::uint8_t> out GEKKO_GUARDED_BY(out_mutex);
    std::size_t out_pos GEKKO_GUARDED_BY(out_mutex) = 0;
    /// Frames currently queued (feeds the coalescing metric).
    std::uint64_t out_frames GEKKO_GUARDED_BY(out_mutex) = 0;
    bool epollout_armed GEKKO_GUARDED_BY(out_mutex) = false;
  };

  explicit TcpFabric(TcpFabricOptions options);

  Status start_loops_();
  Status start_listener_();
  /// Loop-thread callbacks.
  void accept_ready_();
  void on_readable_(const std::shared_ptr<Conn>& conn);
  void on_writable_(const std::shared_ptr<Conn>& conn);
  /// Parse every complete frame out of conn->rd; false = corrupt
  /// stream, kill the connection.
  bool drain_frames_(const std::shared_ptr<Conn>& conn);
  bool deliver_frame_(const std::shared_ptr<Conn>& conn,
                      wire::DecodedFrame decoded);

  Result<std::shared_ptr<Conn>> connect_to_(EndpointId dest);
  /// Queue or inline-write one encoded frame.
  Status send_frame_(Conn& conn, const wire::EncodedFrame& frame);
  EventLoop* pick_loop_();

  /// Sever + deregister + fail everything tied to this connection.
  /// Safe from any thread, including loop threads.
  void kill_conn_(const std::shared_ptr<Conn>& conn);
  void evict_(const std::shared_ptr<Conn>& conn);
  void kill_connection_(EndpointId dest, const Message& msg);
  void shutdown_();

  [[nodiscard]] bool stopping_now_() const noexcept {
    return stopping_.load(std::memory_order_acquire);
  }

  TcpFabricOptions options_;
  std::map<EndpointId, std::string> hosts_;  // daemon id -> host:port
  EndpointId self_ = kInvalidEndpoint;
  std::shared_ptr<Inbox> inbox_;

  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::atomic<std::size_t> next_loop_{0};

  Mutex conn_mutex_{"net.tcp.conn", lockdep::rank::kTcpConn};
  std::map<EndpointId, std::shared_ptr<Conn>> outgoing_
      GEKKO_GUARDED_BY(conn_mutex_);
  std::vector<std::shared_ptr<Conn>> incoming_ GEKKO_GUARDED_BY(conn_mutex_);

  // Serving side: response routes (see socket_fabric.h — identical
  // contract, keyed by (requester id, seq)).
  struct PendingReply {
    std::shared_ptr<Conn> conn;
    BulkRegion writable_bulk;
  };
  using ReplyKey = std::pair<EndpointId, std::uint64_t>;
  Mutex reply_mutex_{"net.tcp.reply", lockdep::rank::kTcpReply};
  std::map<ReplyKey, PendingReply> pending_replies_
      GEKKO_GUARDED_BY(reply_mutex_);

  // Requesting side: writable regions awaiting response bulk.
  struct PendingWritable {
    BulkRegion region;
    std::shared_ptr<Conn> conn;
  };
  Mutex bulk_mutex_{"net.tcp.bulk", lockdep::rank::kTcpBulk};
  std::map<std::uint64_t, PendingWritable> pending_writable_
      GEKKO_GUARDED_BY(bulk_mutex_);

  mutable Mutex stats_mutex_{"net.tcp.stats", lockdep::rank::kTcpStats};
  TrafficStats stats_ GEKKO_GUARDED_BY(stats_mutex_){};

  // net.tcp.* families mirror net.socket.* (global registry, cached at
  // construction; incremented lock-free on the data path).
  struct TcpMetrics {
    metrics::Counter* frames_out;
    metrics::Counter* frames_in;
    metrics::Counter* bytes_out;
    metrics::Counter* bytes_in;
    metrics::Counter* dials;
    metrics::Counter* redials;
    metrics::Counter* evictions;
    /// Bulk payload segments gathered zero-copy by inline sendmsg.
    metrics::Counter* writev_segments;
    /// Event-loop queue flushes, and frames that went out sharing a
    /// flush with at least one other frame (write coalescing).
    metrics::Counter* flushes;
    metrics::Counter* coalesced_frames;
  };
  TcpMetrics m_;
};

}  // namespace gekko::net
