// Transport selection for hostfile-based fabrics.
//
// A deployment picks its transport through the hostfile: each line is
// "<endpoint-id> <address>", where the address is either a Unix-domain
// socket path (starts with '/' or '.') or a TCP "host:port". All lines
// of one hostfile must use the same address family — daemons and
// clients sharing a hostfile must land on the same transport.
//
// make_fabric() sniffs the hostfile (or honors an explicit Transport)
// and constructs the matching fabric. Everything above the transport —
// the rpc::Engine, redial/eviction/FaultInjector machinery, trace-id
// propagation — is keyed off net::Fabric and works unchanged on both.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "net/fabric.h"

namespace gekko::net {

/// A Fabric whose peers come from a hostfile: daemon ids are dense
/// [0, n) and enumerable without a directory service. SocketFabric
/// (UDS) and TcpFabric both implement this.
class HostedFabric : public Fabric {
 public:
  /// Endpoint ids of all daemons listed in the hostfile, ascending.
  [[nodiscard]] virtual std::vector<EndpointId> daemon_ids() const = 0;
};

enum class Transport {
  autodetect,  // sniff from the hostfile's address syntax
  uds,         // Unix-domain sockets (SocketFabric)
  tcp,         // TCP with an epoll event loop (TcpFabric)
};

/// "auto" | "uds" | "tcp" (what gkfsd's --transport flag accepts).
Result<Transport> parse_transport(std::string_view name);
[[nodiscard]] const char* transport_name(Transport t) noexcept;

/// True if `address` reads as "host:port" (a numeric port after the
/// last ':', no '/' anywhere) rather than a filesystem socket path.
[[nodiscard]] bool looks_like_tcp_address(std::string_view address);

/// Parse hostfile content into id -> address. Rejects ids that are
/// garbage, out of range, or inside the client id-space, and lines
/// without an address. Blank lines and '#' comments are skipped.
Result<std::map<EndpointId, std::string>> parse_hostfile(
    const std::string& content);

struct MakeFabricOptions {
  /// Daemon role: serve on the hostfile entry for `self_id`.
  /// Client role (kInvalidEndpoint): connect-only.
  EndpointId self_id = kInvalidEndpoint;
  /// See SocketFabricOptions::max_frame_bytes.
  std::uint32_t max_frame_bytes = 1u << 30;
  Transport transport = Transport::autodetect;
  /// TCP only: epoll event-loop threads (0 = default).
  std::size_t tcp_event_loops = 0;
};

/// Read + parse the hostfile and construct the matching fabric.
/// Transport::autodetect picks TCP when every address looks like
/// "host:port", UDS otherwise; an explicit transport that contradicts
/// the hostfile's addresses fails here with invalid_argument naming
/// the offending address.
Result<std::unique_ptr<HostedFabric>> make_fabric(
    const std::filesystem::path& hostfile, const MakeFabricOptions& options);

}  // namespace gekko::net
