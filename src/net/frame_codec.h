// Wire-frame codec shared by every stream transport (SocketFabric
// over Unix-domain sockets, TcpFabric over TCP). One frame on the
// wire is:
//
//   [u32 frame_len][kind u8][rpc_id u16][seq u64][source u32]
//   [trace_id u64][parent_span u64][payload str][bulk_mode u8]
//   [bulk section...]
//
// frame_len counts everything AFTER the 4-byte length prefix. The
// minimum frame (empty payload, no bulk) is kMinFrameBytes = 33.
// Bulk sections by mode:
//   kBulkNone          (nothing)
//   kBulkReadData      [bytes str] — request carrying an exposed read
//                      region inline (Mercury send/recv fallback).
//   kBulkWritableSize  [size u64] — request announcing a writable
//                      region; the server adopts a zeroed buffer of
//                      that size and pushes into it.
//   kBulkResponseData  [count varint] then count * ([off u64]
//                      [bytes str]) — response carrying the dirty
//                      ranges of one of the requester's pending
//                      writable regions.
//
// Encoding is zero-copy: only header/metadata bytes are materialized
// in the scratch buffer; bulk payload is recorded as external
// segments gathered by sendmsg (or flattened into a send queue for
// buffered transports). The byte stream is identical either way.
//
// Decoding is defensive: every length and offset comes off the wire
// from a peer that may be buggy, truncated mid-frame, or hostile.
// Violations surface as Errc::corruption and the transport MUST kill
// the connection — a frame boundary can no longer be trusted.
#pragma once

#include <sys/uio.h>

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "net/message.h"

namespace gekko::net::wire {

inline constexpr std::uint8_t kBulkNone = 0;
inline constexpr std::uint8_t kBulkReadData = 1;
inline constexpr std::uint8_t kBulkWritableSize = 2;
inline constexpr std::uint8_t kBulkResponseData = 3;

/// kind + rpc_id + seq + source + trace_id + parent_span + empty
/// payload str + bulk_mode = 1+2+8+4+8+8+1+1.
inline constexpr std::uint32_t kMinFrameBytes = 33;
/// The u32 frame-length prefix preceding every frame.
inline constexpr std::size_t kLenPrefixBytes = 4;

/// Overflow-safe bounds check for a [offset, offset+len) range against
/// a region of `size` bytes. Written as subtraction so a hostile u64
/// offset near 2^64 cannot wrap `offset + len` around and pass.
[[nodiscard]] inline bool range_in_bounds(std::uint64_t offset,
                                          std::uint64_t len,
                                          std::uint64_t size) noexcept {
  return offset <= size && len <= size - offset;
}

/// An encoded frame: scratch header bytes plus zero-copy external
/// segments (bulk payload gathered straight from the exposed region).
/// The external pointers alias caller memory — the frame must be
/// written (or flattened) before that memory is reclaimed, which the
/// send paths guarantee by holding the message alive across the send.
struct EncodedFrame {
  struct Ext {
    std::size_t after;  // splice point: scratch offset this precedes
    const std::uint8_t* ptr;
    std::size_t len;
  };

  std::vector<std::uint8_t> scratch;
  std::vector<Ext> ext;
  std::size_t frame_len = 0;  // scratch + ext bytes, excl. len prefix
  std::uint8_t len_buf[kLenPrefixBytes] = {0, 0, 0, 0};

  [[nodiscard]] std::size_t wire_bytes() const noexcept {
    return kLenPrefixBytes + frame_len;
  }
  /// External (gathered, not copied) segment count — the
  /// fabric.writev_segments metric counts these.
  [[nodiscard]] std::size_t segment_count() const noexcept {
    return ext.size();
  }

  /// Append the full wire image (length prefix + interleaved scratch /
  /// external segments) as iovecs. Pointers reference this object —
  /// it must outlive the write.
  void append_iov(std::vector<iovec>* iov) const;

  /// Copy the full wire image onto `out` (buffered transports queue
  /// frames this way; appending to a non-empty queue is exactly the
  /// write coalescing the event loop flushes in one sendmsg).
  void flatten_into(std::vector<std::uint8_t>* out) const;
};

/// Encode `msg` from endpoint `self`. `bulk_out`, when non-null, is a
/// served writable region whose dirty ranges ride back with this
/// response (kBulkResponseData). Fails with Errc::overflow if the
/// total frame exceeds `max_frame_bytes` — the sender must fail
/// loudly, not trip the receiver's limit and kill the connection.
Result<EncodedFrame> encode_frame(const Message& msg,
                                  const BulkRegion* bulk_out,
                                  EndpointId self,
                                  std::uint32_t max_frame_bytes);

/// One dirty range of a kBulkResponseData frame; `data` views into the
/// decoded frame buffer (valid only while that buffer lives).
struct ResponseRange {
  std::uint64_t offset = 0;
  const std::uint8_t* data = nullptr;
  std::size_t len = 0;
};

struct DecodedFrame {
  Message msg;
  std::uint8_t bulk_mode = kBulkNone;
  /// kBulkResponseData only: parsed ranges for the requester's pending
  /// writable region keyed by msg.seq. The transport applies them
  /// under its bulk lock via apply_response_ranges().
  std::vector<ResponseRange> ranges;
};

/// Decode one complete frame body (the bytes after the length prefix).
/// Returns Errc::corruption on any malformed, truncated, or
/// limit-violating content; the caller must treat that as fatal for
/// the connection.
Status decode_frame(std::span<const std::uint8_t> frame,
                    std::uint32_t max_frame_bytes, DecodedFrame* out);

/// Copy decoded response ranges into the pending writable region.
/// Bounds are re-checked overflow-safely against the ACTUAL region
/// size; any out-of-range range returns Errc::corruption without
/// writing a byte of it (the transport kills the connection — a peer
/// that aims outside the region it was handed is corrupt or hostile).
/// Caller holds whatever lock guards the region registry.
Status apply_response_ranges(const BulkRegion& region,
                             const std::vector<ResponseRange>& ranges);

/// Client endpoint ids live in the high half of the id space (see
/// address.h). The pid is mixed with a per-process random salt: bare
/// pids fit in ~22 bits and recycle, so two client processes (or one
/// client restarted) could otherwise claim the same id and have the
/// daemon cross-route their replies. Every CALL also returns a fresh
/// id, so several client fabrics in one process stay distinct.
[[nodiscard]] EndpointId derive_client_endpoint_id();

}  // namespace gekko::net::wire
