// relaxed-ok: the per-call instance counter only needs uniqueness,
// not ordering — each fetch_add returns a distinct value regardless
// of which thread observes it first.
#include "net/frame_codec.h"

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <random>

#include "common/codec.h"
#include "common/hash.h"

namespace gekko::net::wire {

void EncodedFrame::append_iov(std::vector<iovec>* iov) const {
  iov->push_back({const_cast<std::uint8_t*>(len_buf), kLenPrefixBytes});
  std::size_t pos = 0;
  for (const auto& seg : ext) {
    if (seg.after > pos) {
      iov->push_back({const_cast<std::uint8_t*>(scratch.data() + pos),
                      seg.after - pos});
      pos = seg.after;
    }
    iov->push_back({const_cast<std::uint8_t*>(seg.ptr), seg.len});
  }
  if (pos < scratch.size()) {
    iov->push_back(
        {const_cast<std::uint8_t*>(scratch.data() + pos), scratch.size() - pos});
  }
}

void EncodedFrame::flatten_into(std::vector<std::uint8_t>* out) const {
  out->reserve(out->size() + wire_bytes());
  out->insert(out->end(), len_buf, len_buf + kLenPrefixBytes);
  std::size_t pos = 0;
  for (const auto& seg : ext) {
    if (seg.after > pos) {
      out->insert(out->end(), scratch.data() + pos, scratch.data() + seg.after);
      pos = seg.after;
    }
    out->insert(out->end(), seg.ptr, seg.ptr + seg.len);
  }
  out->insert(out->end(), scratch.data() + pos,
              scratch.data() + scratch.size());
}

Result<EncodedFrame> encode_frame(const Message& msg,
                                  const BulkRegion* bulk_out,
                                  EndpointId self,
                                  std::uint32_t max_frame_bytes) {
  EncodedFrame f;
  Encoder enc(&f.scratch);

  // External (not-copied) payload segments, spliced into the stream
  // after the first `after` scratch bytes. Recorded as offsets because
  // scratch may reallocate while encoding continues.
  std::size_t ext_bytes = 0;
  auto emit_bulk = [&](const std::uint8_t* ptr, std::size_t len) {
    enc.varint(len);  // str framing: the length prefix stays in scratch
    if (len > 0) {
      f.ext.push_back({f.scratch.size(), ptr, len});
      ext_bytes += len;
    }
  };

  enc.u8(static_cast<std::uint8_t>(msg.kind));
  enc.u16(msg.rpc_id);
  enc.u64(msg.seq);
  enc.u32(self);
  enc.u64(msg.trace_id);
  enc.u64(msg.parent_span);
  enc.str(std::string_view(reinterpret_cast<const char*>(msg.payload.data()),
                           msg.payload.size()));

  if (bulk_out != nullptr && bulk_out->valid()) {
    enc.u8(kBulkResponseData);
    const auto* ranges = bulk_out->dirty_ranges();
    enc.varint(ranges != nullptr ? ranges->size() : 0);
    if (ranges != nullptr) {
      for (const auto& [off, len] : *ranges) {
        enc.u64(off);
        emit_bulk(bulk_out->read_ptr() + off, static_cast<std::size_t>(len));
      }
    }
  } else if (msg.bulk.valid() && msg.bulk.writable()) {
    enc.u8(kBulkWritableSize);
    enc.u64(msg.bulk.size());
  } else if (msg.bulk.valid()) {
    enc.u8(kBulkReadData);
    emit_bulk(msg.bulk.read_ptr(), msg.bulk.size());
  } else {
    enc.u8(kBulkNone);
  }

  // Validate on the send side: an oversized frame must fail HERE with
  // overflow, not trip the receiver's limit and silently kill the
  // peer's view of this connection. The check covers the total on-wire
  // frame size, scratch plus gathered bulk.
  f.frame_len = f.scratch.size() + ext_bytes;
  if (f.frame_len > max_frame_bytes) {
    return Status{Errc::overflow,
                  "frame of " + std::to_string(f.frame_len) +
                      " bytes exceeds max_frame_bytes " +
                      std::to_string(max_frame_bytes)};
  }
  const auto frame_len32 = static_cast<std::uint32_t>(f.frame_len);
  std::memcpy(f.len_buf, &frame_len32, kLenPrefixBytes);
  return f;
}

Status decode_frame(std::span<const std::uint8_t> frame,
                    std::uint32_t max_frame_bytes, DecodedFrame* out) {
  Decoder dec(frame.data(), frame.size());
  auto kind = dec.u8();
  auto rpc_id = dec.u16();
  auto seq = dec.u64();
  auto source = dec.u32();
  auto trace_id = dec.u64();
  auto parent_span = dec.u64();
  auto payload = dec.str();
  auto bulk_mode = dec.u8();
  if (!kind || !rpc_id || !seq || !source || !trace_id || !parent_span ||
      !payload || !bulk_mode) {
    return Status{Errc::corruption, "truncated frame header"};
  }
  // The kind byte feeds switch/if dispatch all over the engine and the
  // transports; an out-of-range value would silently fall through
  // whichever branch happens to be the default. Reject it at the wire.
  if (*kind > static_cast<std::uint8_t>(MessageKind::response)) {
    return Status{Errc::corruption, "unknown message kind"};
  }

  Message& msg = out->msg;
  msg.kind = static_cast<MessageKind>(*kind);
  msg.rpc_id = *rpc_id;
  msg.seq = *seq;
  msg.source = *source;
  msg.trace_id = *trace_id;
  msg.parent_span = *parent_span;
  msg.payload.assign(payload->begin(), payload->end());

  out->bulk_mode = *bulk_mode;
  out->ranges.clear();
  switch (*bulk_mode) {
    case kBulkNone:
      break;
    case kBulkReadData: {
      auto bytes = dec.str();
      if (!bytes) return Status{Errc::corruption, "truncated bulk data"};
      msg.bulk = BulkRegion::adopt(
          std::vector<std::uint8_t>(bytes->begin(), bytes->end()),
          /*writable=*/false);
      break;
    }
    case kBulkWritableSize: {
      auto size = dec.u64();
      if (!size) return Status{Errc::corruption, "truncated writable size"};
      // The announced size allocates a buffer on OUR side; a hostile
      // peer must not be able to demand more than a frame may carry.
      if (*size > max_frame_bytes) {
        return Status{Errc::corruption, "oversized writable-bulk size"};
      }
      msg.bulk = BulkRegion::adopt(
          std::vector<std::uint8_t>(static_cast<std::size_t>(*size), 0),
          /*writable=*/true);
      break;
    }
    case kBulkResponseData: {
      auto count = dec.varint();
      if (!count) return Status{Errc::corruption, "truncated range count"};
      // Each range costs >= 2 wire bytes; a count beyond what the
      // frame could possibly hold is rejected before reserving.
      if (*count > frame.size()) {
        return Status{Errc::corruption, "range count exceeds frame"};
      }
      out->ranges.reserve(static_cast<std::size_t>(*count));
      for (std::uint64_t r = 0; r < *count; ++r) {
        auto off = dec.u64();
        auto bytes = dec.str();
        if (!off || !bytes) {
          return Status{Errc::corruption, "truncated response range"};
        }
        out->ranges.push_back(
            {*off, reinterpret_cast<const std::uint8_t*>(bytes->data()),
             bytes->size()});
      }
      break;
    }
    default:
      return Status{Errc::corruption, "unknown bulk mode"};
  }
  // A frame must account for every one of its bytes. Trailing garbage
  // means the peer's framing disagrees with ours — the stream position
  // can no longer be trusted, so treat it like any other corruption.
  if (!dec.done()) {
    return Status{Errc::corruption, "trailing bytes after frame body"};
  }
  return Status::ok();
}

Status apply_response_ranges(const BulkRegion& region,
                             const std::vector<ResponseRange>& ranges) {
  // Validate EVERY range before writing any byte: a response that is
  // even partially out of bounds is corrupt and must not leave a
  // half-applied region behind.
  for (const auto& r : ranges) {
    if (!range_in_bounds(r.offset, r.len, region.size())) {
      return Status{Errc::corruption, "response range out of bounds"};
    }
  }
  for (const auto& r : ranges) {
    std::memcpy(region.write_ptr() + r.offset, r.data, r.len);
  }
  return Status::ok();
}

EndpointId derive_client_endpoint_id() {
  static const std::uint32_t salt = [] {
    std::random_device rd;
    return static_cast<std::uint32_t>(rd());
  }();
  // Per-call counter: several client fabrics in ONE process (bench
  // harnesses, fan-in tests) must not share an endpoint id, or the
  // daemon's (source, seq) reply keys collide and responses cross-route
  // between them. salt+pid alone is only unique per process.
  static std::atomic<std::uint32_t> instance{0};
  const std::uint32_t n = instance.fetch_add(1, std::memory_order_relaxed);
  const auto mixed = static_cast<std::uint32_t>(
      mix64((static_cast<std::uint64_t>(salt ^ n) << 32) |
            static_cast<std::uint32_t>(::getpid())));
  return kClientEndpointBase | (mixed & kClientEndpointMask);
}

}  // namespace gekko::net::wire
