// relaxed-ok: next_loop_ is a round-robin ticket counter; any
// interleaving yields a valid loop assignment.
#include "net/tcp_fabric.h"
#include "common/flight_recorder.h"
#include "common/thread_annotations.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <limits.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <thread>

#include "common/fileio.h"
#include "common/logging.h"

namespace gekko::net {
namespace {

#ifndef IOV_MAX
#define IOV_MAX 1024
#endif

/// Split "host:port" at the LAST colon (leaves room for IPv6 hosts in
/// brackets later) and resolve to an IPv4 socket address.
Result<sockaddr_in> resolve_ipv4(const std::string& hostport) {
  const auto colon = hostport.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == hostport.size()) {
    return Status{Errc::invalid_argument, "bad tcp address: " + hostport};
  }
  const std::string host = hostport.substr(0, colon);
  const std::string_view port_sv{hostport.data() + colon + 1,
                                 hostport.size() - colon - 1};
  std::uint16_t port = 0;
  auto [end, ec] =
      std::from_chars(port_sv.data(), port_sv.data() + port_sv.size(), port);
  if (ec != std::errc{} || end != port_sv.data() + port_sv.size()) {
    return Status{Errc::invalid_argument, "bad tcp port: " + hostport};
  }

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) == 1) return sa;

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 ||
      res == nullptr) {
    return Status{Errc::disconnected, "cannot resolve host: " + host};
  }
  sa.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  ::freeaddrinfo(res);
  return sa;
}

void set_nodelay(int fd) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

enum class WriteRc { done, again, error };

/// Nonblocking gathered send: advances `iov`/`idx` across partial
/// writes, returns `again` the moment the socket buffer fills.
WriteRc try_writev(int fd, std::vector<iovec>& iov, std::size_t& idx) {
  while (idx < iov.size()) {
    if (iov[idx].iov_len == 0) {
      ++idx;
      continue;
    }
    msghdr mh{};
    mh.msg_iov = iov.data() + idx;
    mh.msg_iovlen = std::min<std::size_t>(iov.size() - idx, IOV_MAX);
    const ssize_t n = ::sendmsg(fd, &mh, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return WriteRc::again;
      return WriteRc::error;
    }
    auto advanced = static_cast<std::size_t>(n);
    while (idx < iov.size() && advanced >= iov[idx].iov_len) {
      advanced -= iov[idx].iov_len;
      ++idx;
    }
    if (idx < iov.size() && advanced > 0) {
      iov[idx].iov_base =
          static_cast<std::uint8_t*>(iov[idx].iov_base) + advanced;
      iov[idx].iov_len -= advanced;
    }
  }
  return WriteRc::done;
}

}  // namespace

TcpFabric::Conn::~Conn() {
  if (fd >= 0) ::close(fd);
}

// ---------------------------------------------------------------------------
// EventLoop: one epoll instance + one thread, owning readiness for a
// subset of connections. Connections are looked up by fd under the
// loop lock, then dispatched WITHOUT it — handlers take fabric locks
// (conn/reply/bulk) and per-conn out locks freely.
// ---------------------------------------------------------------------------
class TcpFabric::EventLoop {
 public:
  explicit EventLoop(TcpFabric* owner) : owner_(owner) {}

  ~EventLoop() {
    stop();
    if (wake_fd_ >= 0) ::close(wake_fd_);
    if (epfd_ >= 0) ::close(epfd_);
  }

  Status init() {
    epfd_ = ::epoll_create1(0);
    if (epfd_ < 0) return Status{Errc::io_error, "epoll_create1()"};
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
    if (wake_fd_ < 0) return Status{Errc::io_error, "eventfd()"};
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
      return Status{Errc::io_error, "epoll_ctl(wake)"};
    }
    thread_ = std::thread([this] { run_(); });
    return Status::ok();
  }

  Status set_listener(int fd) {
    listen_fd_.store(fd, std::memory_order_release);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      listen_fd_.store(-1, std::memory_order_release);
      return Status{Errc::io_error, "epoll_ctl(listen)"};
    }
    return Status::ok();
  }

  Status add_conn(const std::shared_ptr<Conn>& conn) {
    LockGuard lock(mutex_);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn->fd;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, conn->fd, &ev) != 0) {
      return Status{Errc::io_error,
                    std::string("epoll_ctl(add): ") + std::strerror(errno)};
    }
    conns_[conn->fd] = conn;
    return Status::ok();
  }

  void remove_conn(int fd) {
    LockGuard lock(mutex_);
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    (void)::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
    conns_.erase(it);
  }

  /// Toggle EPOLLOUT interest (EPOLLIN stays on). Callers hold the
  /// connection's out lock, which serializes arm/disarm decisions.
  void arm_write(int fd, bool enable) {
    epoll_event ev{};
    ev.events = EPOLLIN | (enable ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    (void)::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
  }

  void stop() {
    if (!thread_.joinable()) return;
    stop_.store(true, std::memory_order_release);
    const std::uint64_t one = 1;
    (void)::write(wake_fd_, &one, sizeof(one));
    thread_.join();
  }

  /// Drop every connection reference (shutdown: after the thread is
  /// joined, so nothing dispatches anymore).
  void clear_conns() {
    LockGuard lock(mutex_);
    conns_.clear();
  }

 private:
  void run_() {
    std::array<epoll_event, 64> evs;
    while (!stop_.load(std::memory_order_acquire)) {
      const int n = ::epoll_wait(epfd_, evs.data(),
                                 static_cast<int>(evs.size()), -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        return;
      }
      for (int i = 0; i < n; ++i) {
        const int fd = evs[i].data.fd;
        if (fd == wake_fd_) {
          std::uint64_t drained = 0;
          (void)::read(wake_fd_, &drained, sizeof(drained));
          continue;
        }
        if (fd == listen_fd_.load(std::memory_order_acquire)) {
          owner_->accept_ready_();
          continue;
        }
        std::shared_ptr<Conn> conn;
        {
          LockGuard lock(mutex_);
          auto it = conns_.find(fd);
          if (it != conns_.end()) conn = it->second;
        }
        if (!conn) continue;  // killed while the event was in flight
        if (evs[i].events & EPOLLIN) owner_->on_readable_(conn);
        if (conn->dead.load(std::memory_order_acquire)) continue;
        if (evs[i].events & EPOLLOUT) owner_->on_writable_(conn);
        if ((evs[i].events & (EPOLLERR | EPOLLHUP)) &&
            !(evs[i].events & EPOLLIN)) {
          owner_->kill_conn_(conn);
        }
      }
    }
  }

  TcpFabric* owner_;
  int epfd_ = -1;
  int wake_fd_ = -1;
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> stop_{false};
  Mutex mutex_{"net.tcp.loop", lockdep::rank::kTcpLoop};
  std::map<int, std::shared_ptr<Conn>> conns_ GEKKO_GUARDED_BY(mutex_);
  std::thread thread_;
};

// ---------------------------------------------------------------------------
// TcpFabric
// ---------------------------------------------------------------------------

TcpFabric::TcpFabric(TcpFabricOptions options) : options_(options) {
  if (options_.event_loops == 0) options_.event_loops = 2;
  auto& reg = metrics::Registry::global();
  m_.frames_out = &reg.counter("net.tcp.frames_out");
  m_.frames_in = &reg.counter("net.tcp.frames_in");
  m_.bytes_out = &reg.counter("net.tcp.bytes_out");
  m_.bytes_in = &reg.counter("net.tcp.bytes_in");
  m_.dials = &reg.counter("net.tcp.dials");
  m_.redials = &reg.counter("net.tcp.redials");
  m_.evictions = &reg.counter("net.tcp.evictions");
  m_.writev_segments = &reg.counter("net.tcp.writev_segments");
  m_.flushes = &reg.counter("net.tcp.flushes");
  m_.coalesced_frames = &reg.counter("net.tcp.coalesced_frames");
}

Result<std::unique_ptr<TcpFabric>> TcpFabric::create(
    const std::filesystem::path& hostfile, TcpFabricOptions options) {
  auto content = io::read_file(hostfile);
  if (!content) return content.status();

  std::unique_ptr<TcpFabric> fabric(new TcpFabric(options));
  auto hosts = parse_hostfile(*content);
  if (!hosts) return hosts.status();
  fabric->hosts_ = std::move(*hosts);
  if (options.self_id != kInvalidEndpoint &&
      !fabric->hosts_.contains(options.self_id)) {
    return Status{Errc::invalid_argument, "self_id not in hostfile"};
  }
  GEKKO_RETURN_IF_ERROR(fabric->start_loops_());
  return fabric;
}

Result<std::filesystem::path> TcpFabric::write_hostfile(
    const std::filesystem::path& dir, std::uint32_t n) {
  GEKKO_RETURN_IF_ERROR(io::ensure_dir(dir));
  // Probe n free ports by binding port 0; every probe socket stays
  // open until ALL ports are picked so the kernel cannot hand the same
  // port out twice.
  std::vector<int> probes;
  std::string content;
  Status st = Status::ok();
  for (std::uint32_t i = 0; i < n && st.is_ok(); ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      st = Status{Errc::io_error, "socket()"};
      break;
    }
    probes.push_back(fd);
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sa.sin_port = 0;
    socklen_t len = sizeof(sa);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
        ::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
      st = Status{Errc::io_error,
                  std::string("port probe: ") + std::strerror(errno)};
      break;
    }
    content += std::to_string(i) + " 127.0.0.1:" +
               std::to_string(ntohs(sa.sin_port)) + "\n";
  }
  for (const int fd : probes) ::close(fd);
  GEKKO_RETURN_IF_ERROR(st);

  const auto path = dir / "tcp_hosts.txt";
  GEKKO_RETURN_IF_ERROR(io::write_file_atomic(path, content));
  return path;
}

TcpFabric::~TcpFabric() { shutdown_(); }

Status TcpFabric::start_loops_() {
  for (std::size_t i = 0; i < options_.event_loops; ++i) {
    auto loop = std::make_unique<EventLoop>(this);
    GEKKO_RETURN_IF_ERROR(loop->init());
    loops_.push_back(std::move(loop));
  }
  return Status::ok();
}

TcpFabric::EventLoop* TcpFabric::pick_loop_() {
  const std::size_t i =
      next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
  return loops_[i].get();
}

std::pair<EndpointId, std::shared_ptr<Inbox>> TcpFabric::register_endpoint() {
  if (inbox_ != nullptr) {
    GEKKO_ERROR("net.tcp") << "second endpoint on a tcp fabric";
    return {kInvalidEndpoint, nullptr};
  }
  inbox_ = std::make_shared<Inbox>();
  if (options_.self_id != kInvalidEndpoint) {
    self_ = options_.self_id;
    if (Status st = start_listener_(); !st.is_ok()) {
      GEKKO_ERROR("net.tcp") << "listener failed: " << st.to_string();
      // Same rollback as SocketFabric: a retry must see the real error
      // again, not the "second endpoint" guard.
      inbox_.reset();
      self_ = kInvalidEndpoint;
      return {kInvalidEndpoint, nullptr};
    }
  } else {
    self_ = wire::derive_client_endpoint_id();
  }
  return {self_, inbox_};
}

Status TcpFabric::start_listener_() {
  auto sa = resolve_ipv4(hosts_.at(self_));
  if (!sa) return sa.status();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status{Errc::io_error, "socket()"};
  const auto fail = [this](Status st) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  };

  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&*sa), sizeof(*sa)) !=
      0) {
    return fail(Status{Errc::io_error, "bind " + hosts_.at(self_) + ": " +
                                           std::strerror(errno)});
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0) {
    return fail(Status{Errc::io_error, "listen()"});
  }
  // The listener lives in loop 0; there is no acceptor thread at all —
  // accepts are just another readiness event.
  if (Status st = loops_[0]->set_listener(listen_fd_); !st.is_ok()) {
    return fail(std::move(st));
  }
  return Status::ok();
}

void TcpFabric::accept_ready_() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained the backlog) or listener closed
    }
    set_nodelay(fd);
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->loop = pick_loop_();
    // Publish and register atomically w.r.t. kill/shutdown (kTcpLoop
    // ranks under kTcpConn for exactly this nesting).
    LockGuard lock(conn_mutex_);
    if (stopping_now_()) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
      conn->fd = -1;
      return;
    }
    incoming_.push_back(conn);
    if (!conn->loop->add_conn(conn).is_ok()) {
      std::erase(incoming_, conn);
      ::shutdown(fd, SHUT_RDWR);
    }
  }
}

void TcpFabric::on_readable_(const std::shared_ptr<Conn>& conn) {
  // rd / rd_pos are loop-thread-private (one loop owns each fd).
  bool eof = false;
  bool fatal = false;
  std::uint8_t buf[64 * 1024];
  // Read until EAGAIN; level-triggered epoll re-arms if the peer keeps
  // sending, so a hard iteration cap only bounds single-conn latency.
  for (int round = 0; round < 16; ++round) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      conn->rd.insert(conn->rd.end(), buf, buf + n);
      m_.bytes_in->inc(static_cast<std::uint64_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    fatal = true;
    break;
  }
  if (!drain_frames_(conn)) fatal = true;
  if (eof || fatal) kill_conn_(conn);
}

bool TcpFabric::drain_frames_(const std::shared_ptr<Conn>& conn) {
  auto& rd = conn->rd;
  while (rd.size() - conn->rd_pos >= wire::kLenPrefixBytes) {
    std::uint32_t frame_len = 0;
    std::memcpy(&frame_len, rd.data() + conn->rd_pos, sizeof(frame_len));
    if (frame_len < wire::kMinFrameBytes ||
        frame_len > options_.max_frame_bytes) {
      return false;  // stream framing is broken; nothing is trustable
    }
    const std::size_t total = wire::kLenPrefixBytes + frame_len;
    if (rd.size() - conn->rd_pos < total) break;  // partial frame

    const std::span<const std::uint8_t> frame{
        rd.data() + conn->rd_pos + wire::kLenPrefixBytes, frame_len};
    m_.frames_in->inc();
    wire::DecodedFrame decoded;
    if (!wire::decode_frame(frame, options_.max_frame_bytes, &decoded)
             .is_ok()) {
      return false;
    }
    if (!deliver_frame_(conn, std::move(decoded))) return false;
    conn->rd_pos += total;
  }
  // Compact the consumed prefix so the buffer tracks the partial
  // remainder, not the whole session's history.
  if (conn->rd_pos == rd.size()) {
    rd.clear();
    conn->rd_pos = 0;
  } else if (conn->rd_pos > 0) {
    rd.erase(rd.begin(),
             rd.begin() + static_cast<std::ptrdiff_t>(conn->rd_pos));
    conn->rd_pos = 0;
  }
  return true;
}

bool TcpFabric::deliver_frame_(const std::shared_ptr<Conn>& conn,
                               wire::DecodedFrame decoded) {
  Message msg = std::move(decoded.msg);
  BulkRegion writable_bulk;
  if (decoded.bulk_mode == wire::kBulkWritableSize) writable_bulk = msg.bulk;

  if (decoded.bulk_mode == wire::kBulkResponseData) {
    // Same contract as SocketFabric::deliver_frame_: apply under
    // bulk_mutex_ (cancel() synchronizes on it), kill the connection
    // on any out-of-range range, tolerate a missing entry (cancelled).
    LockGuard lock(bulk_mutex_);
    auto it = pending_writable_.find(msg.seq);
    if (it != pending_writable_.end()) {
      if (!wire::apply_response_ranges(it->second.region, decoded.ranges)
               .is_ok()) {
        return false;
      }
      pending_writable_.erase(it);
    }
  }

  if (msg.kind == MessageKind::request) {
    PendingReply reply;
    reply.conn = conn;
    reply.writable_bulk = std::move(writable_bulk);
    LockGuard lock(reply_mutex_);
    pending_replies_[ReplyKey{msg.source, msg.seq}] = std::move(reply);
  } else {
    LockGuard lock(bulk_mutex_);
    pending_writable_.erase(msg.seq);
  }

  return inbox_ && inbox_->push(std::move(msg));
}

Status TcpFabric::send_frame_(Conn& conn, const wire::EncodedFrame& frame) {
  if (conn.dead.load(std::memory_order_acquire)) {
    return Status{Errc::disconnected, "connection dead"};
  }
  bool queued_behind = false;
  {
    LockGuard lock(conn.out_mutex);
    if (conn.out.empty() && !conn.epollout_armed) {
      // Socket idle: write inline, zero-copy, from this thread.
      std::vector<iovec> iov;
      iov.reserve(frame.segment_count() * 2 + 2);
      frame.append_iov(&iov);
      std::size_t idx = 0;
      switch (try_writev(conn.fd, iov, idx)) {
        case WriteRc::done:
          m_.writev_segments->inc(frame.segment_count());
          break;
        case WriteRc::again:
          // Socket buffer full mid-frame: park the unsent tail on the
          // queue and let the event loop finish it.
          for (std::size_t j = idx; j < iov.size(); ++j) {
            const auto* base = static_cast<const std::uint8_t*>(
                iov[j].iov_base);
            conn.out.insert(conn.out.end(), base, base + iov[j].iov_len);
          }
          conn.out_frames = 1;
          conn.epollout_armed = true;
          conn.loop->arm_write(conn.fd, true);
          break;
        case WriteRc::error:
          return Status{Errc::disconnected,
                        std::string("sendmsg: ") + std::strerror(errno)};
      }
    } else {
      // Socket backed up: flatten behind the queued bytes. The event
      // loop will flush the whole backlog in single sendmsg calls —
      // this queue-append IS the write coalescing.
      frame.flatten_into(&conn.out);
      ++conn.out_frames;
      queued_behind = true;
      if (!conn.epollout_armed) {
        conn.epollout_armed = true;
        conn.loop->arm_write(conn.fd, true);
      }
    }
  }
  (void)queued_behind;
  m_.frames_out->inc();
  m_.bytes_out->inc(frame.wire_bytes());
  return Status::ok();
}

void TcpFabric::on_writable_(const std::shared_ptr<Conn>& conn) {
  bool broken = false;
  {
    LockGuard lock(conn->out_mutex);
    while (conn->out_pos < conn->out.size()) {
      const ssize_t n =
          ::send(conn->fd, conn->out.data() + conn->out_pos,
                 conn->out.size() - conn->out_pos, MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        broken = true;
        break;
      }
      conn->out_pos += static_cast<std::size_t>(n);
    }
    if (!broken && conn->out_pos == conn->out.size()) {
      m_.flushes->inc();
      if (conn->out_frames > 1) m_.coalesced_frames->inc(conn->out_frames);
      conn->out.clear();
      conn->out_pos = 0;
      conn->out_frames = 0;
      conn->epollout_armed = false;
      conn->loop->arm_write(conn->fd, false);
    }
  }
  if (broken) kill_conn_(conn);
}

Result<std::shared_ptr<TcpFabric::Conn>> TcpFabric::connect_to_(
    EndpointId dest) {
  {
    LockGuard lock(conn_mutex_);
    auto it = outgoing_.find(dest);
    if (it != outgoing_.end() &&
        !it->second->dead.load(std::memory_order_acquire)) {
      return it->second;
    }
  }
  auto host = hosts_.find(dest);
  if (host == hosts_.end()) {
    return Status{Errc::disconnected, "unknown endpoint id"};
  }
  auto sa = resolve_ipv4(host->second);
  if (!sa) return sa.status();

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status{Errc::io_error, "socket()"};
  // Blocking connect (the dialer wants the result synchronously), then
  // nonblocking for the event loop.
  if (::connect(fd, reinterpret_cast<sockaddr*>(&*sa), sizeof(*sa)) != 0) {
    ::close(fd);
    return Status{Errc::disconnected,
                  "connect " + host->second + ": " + std::strerror(errno)};
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  set_nodelay(fd);
  m_.dials->inc();
  flight::record(flight::Subsys::fabric, flight::ev::fabric_connect, dest);

  LockGuard lock(conn_mutex_);
  auto it = outgoing_.find(dest);
  if (it != outgoing_.end()) {
    if (!it->second->dead.load(std::memory_order_acquire)) {
      // Lost a connect race; keep the established link.
      ::close(fd);
      return it->second;
    }
    // Replace a dead cached connection (kill_conn_ already pulled it
    // out of its event loop; the shared_ptr drop closes the fd).
    m_.redials->inc();
    flight::record(flight::Subsys::fabric, flight::ev::fabric_redial, dest);
    outgoing_.erase(it);
  }
  auto conn = std::make_shared<Conn>();
  conn->fd = fd;
  conn->peer = dest;
  conn->loop = pick_loop_();
  if (Status st = conn->loop->add_conn(conn); !st.is_ok()) return st;
  outgoing_[dest] = conn;
  return conn;
}

void TcpFabric::kill_conn_(const std::shared_ptr<Conn>& conn) {
  const bool already = conn->dead.exchange(true, std::memory_order_acq_rel);
  ::shutdown(conn->fd, SHUT_RDWR);
  if (stopping_now_()) return;  // shutdown_() owns all cleanup
  if (!already) {
    m_.evictions->inc();
    flight::record(flight::Subsys::fabric, flight::ev::fabric_evict,
                   conn->peer);
  }
  if (conn->loop != nullptr) conn->loop->remove_conn(conn->fd);
  evict_(conn);
}

void TcpFabric::evict_(const std::shared_ptr<Conn>& conn) {
  {
    LockGuard lock(conn_mutex_);
    if (conn->peer != kInvalidEndpoint) {
      auto it = outgoing_.find(conn->peer);
      if (it != outgoing_.end() && it->second == conn) outgoing_.erase(it);
    }
    std::erase(incoming_, conn);
  }
  {
    LockGuard lock(reply_mutex_);
    std::erase_if(pending_replies_,
                  [&](const auto& kv) { return kv.second.conn == conn; });
  }
  {
    LockGuard lock(bulk_mutex_);
    std::erase_if(pending_writable_,
                  [&](const auto& kv) { return kv.second.conn == conn; });
  }
}

void TcpFabric::kill_connection_(EndpointId dest, const Message& msg) {
  flight::record(flight::Subsys::fabric, flight::ev::fabric_kill, dest,
                 static_cast<std::uint32_t>(msg.seq));
  std::shared_ptr<Conn> victim;
  if (msg.kind == MessageKind::response) {
    LockGuard lock(reply_mutex_);
    auto it = pending_replies_.find(ReplyKey{dest, msg.seq});
    if (it != pending_replies_.end()) victim = it->second.conn;
  } else {
    LockGuard lock(conn_mutex_);
    auto it = outgoing_.find(dest);
    if (it != outgoing_.end()) victim = it->second;
  }
  if (victim) kill_conn_(victim);
}

void TcpFabric::cancel(std::uint64_t seq) {
  LockGuard lock(bulk_mutex_);
  pending_writable_.erase(seq);
}

Status TcpFabric::send(EndpointId dest, Message msg) {
  {
    LockGuard lock(stats_mutex_);
    ++stats_.messages_sent;
    stats_.payload_bytes += msg.payload.size();
  }
  const FaultAction fault = consult_injector_(dest, msg);
  if (fault.kill_connection) kill_connection_(dest, msg);
  if (fault.delay.count() > 0) {
    std::this_thread::sleep_for(fault.delay);  // blocking-ok: scripted fault delay runs on the injecting sender's thread by design
  }
  if (fault.drop) {
    LockGuard lock(stats_mutex_);
    ++stats_.messages_dropped;
    return Status::ok();  // silent loss, sender can't observe it
  }

  if (msg.kind == MessageKind::response) {
    PendingReply reply;
    {
      LockGuard lock(reply_mutex_);
      auto it = pending_replies_.find(ReplyKey{dest, msg.seq});
      if (it == pending_replies_.end()) {
        return Status{Errc::disconnected, "no reply route for seq"};
      }
      reply = std::move(it->second);
      pending_replies_.erase(it);
    }
    const BulkRegion* bulk_out =
        reply.writable_bulk.valid() ? &reply.writable_bulk : nullptr;
    auto frame =
        wire::encode_frame(msg, bulk_out, self_, options_.max_frame_bytes);
    if (!frame) return frame.status();
    Status st = send_frame_(*reply.conn, *frame);
    if (st.is_ok() && fault.duplicate) {
      // status-ignored-ok: best-effort reply; a dead peer is caught by its reader
      (void)send_frame_(*reply.conn, *frame);
    }
    return st;
  }

  // Request path with one transparent redial, like SocketFabric.
  auto frame = wire::encode_frame(msg, nullptr, self_, options_.max_frame_bytes);
  if (!frame) return frame.status();
  Status last = Status::ok();
  for (int attempt = 0; attempt < 2; ++attempt) {
    auto conn = connect_to_(dest);
    if (!conn) return conn.status();
    if (msg.bulk.valid() && msg.bulk.writable() && !msg.bulk.owned()) {
      LockGuard lock(bulk_mutex_);
      pending_writable_[msg.seq] = PendingWritable{msg.bulk, *conn};
    }
    last = send_frame_(**conn, *frame);
    if (last.is_ok()) {
      // status-ignored-ok: injected duplicate send
      if (fault.duplicate) (void)send_frame_(**conn, *frame);
      return last;
    }
    {
      LockGuard lock(bulk_mutex_);
      pending_writable_.erase(msg.seq);
    }
    if (last.code() != Errc::disconnected) return last;  // e.g. overflow
    kill_conn_(*conn);
  }
  return last;
}

void TcpFabric::deregister(EndpointId id) {
  (void)id;
  shutdown_();
}

void TcpFabric::shutdown_() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    return;
  }
  // Stop the loops FIRST: after the joins nothing dispatches, so the
  // rest of teardown owns every connection exclusively.
  for (auto& loop : loops_) loop->stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::shared_ptr<Conn>> conns;
  {
    LockGuard lock(conn_mutex_);
    for (auto& [id, c] : outgoing_) conns.push_back(c);
    conns.insert(conns.end(), incoming_.begin(), incoming_.end());
    outgoing_.clear();
    incoming_.clear();
  }
  for (auto& c : conns) {
    ::shutdown(c->fd, SHUT_RDWR);
  }
  for (auto& loop : loops_) loop->clear_conns();
  {
    LockGuard lock(reply_mutex_);
    pending_replies_.clear();
  }
  {
    LockGuard lock(bulk_mutex_);
    pending_writable_.clear();
  }
  if (inbox_) inbox_->close();
}

Status TcpFabric::bulk_pull(const BulkRegion& region, std::size_t offset,
                            std::span<std::uint8_t> out) {
  if (!region.valid()) return Status{Errc::invalid_argument, "invalid bulk"};
  if (!wire::range_in_bounds(offset, out.size(), region.size())) {
    return Status{Errc::overflow, "bulk pull out of range"};
  }
  std::memcpy(out.data(), region.read_ptr() + offset, out.size());
  LockGuard lock(stats_mutex_);
  stats_.bulk_bytes_pulled += out.size();
  return Status::ok();
}

Status TcpFabric::bulk_push(const BulkRegion& region, std::size_t offset,
                            std::span<const std::uint8_t> data) {
  if (!region.valid() || !region.writable()) {
    return Status{Errc::invalid_argument, "bulk region not writable"};
  }
  if (!wire::range_in_bounds(offset, data.size(), region.size())) {
    return Status{Errc::overflow, "bulk push out of range"};
  }
  std::memcpy(region.write_ptr() + offset, data.data(), data.size());
  region.record_push(offset, data.size());
  LockGuard lock(stats_mutex_);
  stats_.bulk_bytes_pushed += data.size();
  return Status::ok();
}

TrafficStats TcpFabric::stats() const {
  LockGuard lock(stats_mutex_);
  return stats_;
}

}  // namespace gekko::net
