// relaxed-ok: bulk_pulled_/bulk_pushed_ are standalone byte counters
// mirrored into TrafficStats; no other data is published through them.
#include "net/fabric.h"

#include <cstring>
#include <thread>

#include "common/logging.h"
#include "common/thread_annotations.h"

namespace gekko::net {

Fabric::Fabric()
    : fault_fires_(
          &metrics::Registry::global().counter("net.fault_injector.fires")) {}

void Fabric::set_fault_injector(std::shared_ptr<FaultInjector> injector) {
  LockGuard lock(injector_mutex_);
  injector_ = std::move(injector);
}

FaultAction Fabric::consult_injector_(EndpointId dest, const Message& msg) {
  std::shared_ptr<FaultInjector> injector;
  {
    LockGuard lock(injector_mutex_);
    injector = injector_;
  }
  if (!injector) return {};
  FaultAction action = injector->on_send(dest, msg);
  if (action.drop || action.duplicate || action.kill_connection ||
      action.delay.count() > 0) {
    fault_fires_->inc();
  }
  return action;
}

LoopbackFabric::LoopbackFabric() {
  auto& reg = metrics::Registry::global();
  m_.messages = &reg.counter("net.loopback.messages");
  m_.bytes = &reg.counter("net.loopback.payload_bytes");
  m_.drops = &reg.counter("net.loopback.drops");
  m_.bulk_pulled_bytes = &reg.counter("net.loopback.bulk_pulled_bytes");
  m_.bulk_pushed_bytes = &reg.counter("net.loopback.bulk_pushed_bytes");
}

std::pair<EndpointId, std::shared_ptr<Inbox>>
LoopbackFabric::register_endpoint() {
  LockGuard lock(mutex_);
  auto inbox = std::make_shared<Inbox>();
  inboxes_.push_back(inbox);
  return {static_cast<EndpointId>(inboxes_.size() - 1), inbox};
}

Status LoopbackFabric::send(EndpointId dest, Message msg) {
  const FaultAction fault = consult_injector_(dest, msg);
  if (fault.delay.count() > 0) {
    std::this_thread::sleep_for(fault.delay);  // blocking-ok: scripted fault delay runs on the injecting sender's thread by design
  }
  std::shared_ptr<Inbox> inbox;
  {
    LockGuard lock(mutex_);
    ++send_counter_;
    if (dest >= inboxes_.size() || !inboxes_[dest]) {
      return Status{Errc::disconnected, "unknown endpoint"};
    }
    const bool blackholed = fault_plan_.blackhole == dest;
    const bool dropped =
        fault_plan_.drop_one_in != 0 &&
        (send_counter_ % fault_plan_.drop_one_in) == 0;
    // Loopback has no connections; kill_connection degrades to losing
    // the message (the closest observable effect).
    if (blackholed || dropped || fault.drop || fault.kill_connection) {
      ++stats_.messages_dropped;
      m_.drops->inc();
      return Status::ok();  // silent loss, sender can't observe it
    }
    ++stats_.messages_sent;
    stats_.payload_bytes += msg.payload.size();
    m_.messages->inc();
    m_.bytes->inc(msg.payload.size());
    inbox = inboxes_[dest];
  }
  // status-ignored-ok: injected duplicate; dropping it on a full inbox is fine
  if (fault.duplicate) (void)inbox->push(msg);
  if (!inbox->push(std::move(msg))) {
    return Status{Errc::disconnected, "endpoint shutting down"};
  }
  return Status::ok();
}

void LoopbackFabric::deregister(EndpointId id) {
  std::shared_ptr<Inbox> inbox;
  {
    LockGuard lock(mutex_);
    if (id >= inboxes_.size()) return;
    inbox = std::move(inboxes_[id]);
    inboxes_[id] = nullptr;
  }
  if (inbox) inbox->close();
}

void LoopbackFabric::set_fault_plan(FaultPlan plan) {
  LockGuard lock(mutex_);
  fault_plan_ = plan;
}

FaultPlan LoopbackFabric::fault_plan() const {
  LockGuard lock(mutex_);
  return fault_plan_;
}

Status LoopbackFabric::bulk_pull(const BulkRegion& region, std::size_t offset,
                         std::span<std::uint8_t> out) {
  if (!region.valid()) return Status{Errc::invalid_argument, "invalid bulk"};
  if (offset + out.size() > region.size()) {
    return Status{Errc::overflow, "bulk pull out of range"};
  }
  std::memcpy(out.data(), region.read_ptr() + offset, out.size());
  bulk_pulled_.fetch_add(out.size(), std::memory_order_relaxed);
  m_.bulk_pulled_bytes->inc(out.size());
  return Status::ok();
}

Status LoopbackFabric::bulk_push(const BulkRegion& region, std::size_t offset,
                         std::span<const std::uint8_t> data) {
  if (!region.valid() || !region.writable()) {
    return Status{Errc::invalid_argument, "bulk region not writable"};
  }
  if (offset + data.size() > region.size()) {
    return Status{Errc::overflow, "bulk push out of range"};
  }
  std::memcpy(region.write_ptr() + offset, data.data(), data.size());
  bulk_pushed_.fetch_add(data.size(), std::memory_order_relaxed);
  m_.bulk_pushed_bytes->inc(data.size());
  return Status::ok();
}

TrafficStats LoopbackFabric::stats() const {
  LockGuard lock(mutex_);
  TrafficStats s = stats_;
  s.bulk_bytes_pulled = bulk_pulled_.load(std::memory_order_relaxed);
  s.bulk_bytes_pushed = bulk_pushed_.load(std::memory_order_relaxed);
  return s;
}

std::size_t LoopbackFabric::endpoint_count() const {
  LockGuard lock(mutex_);
  std::size_t n = 0;
  for (const auto& p : inboxes_) {
    if (p) ++n;
  }
  return n;
}

}  // namespace gekko::net
