#include "net/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"

namespace gekko::net {
namespace {

/// Header cap: a GET for /metrics fits in a fraction of this; anything
/// larger is a confused or hostile client.
constexpr std::size_t kMaxHeaderBytes = 8 * 1024;
/// Per-poll wait on the accept loop; bounds stop() join latency.
constexpr int kAcceptPollMs = 200;
/// Total budget for reading one request's headers.
constexpr int kRequestReadMs = 2000;

const char* status_text(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Error";
  }
}

}  // namespace

Result<std::unique_ptr<HttpExporter>> HttpExporter::create(
    HttpExporterOptions options, Handler handler) {
  if (!handler) return Status{Errc::invalid_argument, "http: null handler"};
  auto exporter = std::unique_ptr<HttpExporter>(
      new HttpExporter(std::move(options), std::move(handler)));

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status{Errc::io_error,
                  std::string("http: socket: ") + std::strerror(errno)};
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(exporter->options_.port);
  if (::inet_pton(AF_INET, exporter->options_.bind_address.c_str(),
                  &addr.sin_addr) != 1) {
    ::close(fd);
    return Status{Errc::invalid_argument,
                  "http: bad bind address " + exporter->options_.bind_address};
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status{Errc::io_error,
                  std::string("http: bind: ") + std::strerror(err)};
  }
  if (::listen(fd, exporter->options_.listen_backlog) != 0) {
    const int err = errno;
    ::close(fd);
    return Status{Errc::io_error,
                  std::string("http: listen: ") + std::strerror(err)};
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int err = errno;
    ::close(fd);
    return Status{Errc::io_error,
                  std::string("http: getsockname: ") + std::strerror(err)};
  }
  exporter->listen_fd_ = fd;
  exporter->port_ = ntohs(bound.sin_port);
  exporter->thread_ = std::thread([e = exporter.get()] { e->serve_loop_(); });
  GEKKO_INFO("http") << "metrics exporter listening on "
                     << exporter->options_.bind_address << ":"
                     << exporter->port_;
  return exporter;
}

HttpExporter::HttpExporter(HttpExporterOptions options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {
  metrics::Registry& reg =
      options_.registry != nullptr ? *options_.registry
                                   : metrics::Registry::global();
  requests_ = &reg.counter("net.http.requests");
  errors_ = &reg.counter("net.http.errors");
  bytes_out_ = &reg.counter("net.http.bytes_out");
}

HttpExporter::~HttpExporter() { stop(); }

void HttpExporter::stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpExporter::serve_loop_() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int n = ::poll(&pfd, 1, kAcceptPollMs);
    if (n <= 0) continue;  // timeout or EINTR: re-check stopping
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    serve_one_(fd);
    ::close(fd);
  }
}

void HttpExporter::serve_one_(int fd) {
  // Read until the blank line ending the headers (we ignore bodies:
  // telemetry is GET-only).
  std::string req;
  int budget_ms = kRequestReadMs;
  while (req.find("\r\n\r\n") == std::string::npos &&
         req.find("\n\n") == std::string::npos) {
    if (req.size() > kMaxHeaderBytes || budget_ms <= 0) {
      errors_->inc();
      return;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int n = ::poll(&pfd, 1, kAcceptPollMs);
    budget_ms -= kAcceptPollMs;
    if (n < 0) {
      errors_->inc();
      return;
    }
    if (n == 0) continue;
    char buf[2048];
    const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
    if (got <= 0) {
      errors_->inc();
      return;
    }
    req.append(buf, static_cast<std::size_t>(got));
  }
  requests_->inc();

  // Request line: METHOD SP PATH SP VERSION.
  HttpResponse resp;
  const std::size_t line_end = req.find_first_of("\r\n");
  std::string line = req.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    resp = HttpResponse{400, "text/plain", "bad request\n"};
  } else {
    const std::string method = line.substr(0, sp1);
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    if (method != "GET" && method != "HEAD") {
      resp = HttpResponse{405, "text/plain", "method not allowed\n"};
    } else {
      resp = handler_(path);
      if (method == "HEAD") resp.body.clear();
    }
  }
  if (resp.status != 200) errors_->inc();

  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    status_text(resp.status) +
                    "\r\nContent-Type: " + resp.content_type +
                    "\r\nContent-Length: " + std::to_string(resp.body.size()) +
                    "\r\nConnection: close\r\n\r\n" + resp.body;
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EAGAIN || errno == EINTR)) continue;
      errors_->inc();
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
  bytes_out_->inc(out.size());
}

}  // namespace gekko::net
