#include "net/transport.h"

#include <charconv>

#include "common/fileio.h"
#include "net/address.h"
#include "net/socket_fabric.h"
#include "net/tcp_fabric.h"

namespace gekko::net {

Result<Transport> parse_transport(std::string_view name) {
  if (name == "auto") return Transport::autodetect;
  if (name == "uds") return Transport::uds;
  if (name == "tcp") return Transport::tcp;
  return Status{Errc::invalid_argument,
                "unknown transport (want auto|uds|tcp): " + std::string(name)};
}

const char* transport_name(Transport t) noexcept {
  switch (t) {
    case Transport::autodetect:
      return "auto";
    case Transport::uds:
      return "uds";
    case Transport::tcp:
      return "tcp";
  }
  return "?";
}

bool looks_like_tcp_address(std::string_view address) {
  if (address.find('/') != std::string_view::npos) return false;
  const auto colon = address.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == address.size()) {
    return false;
  }
  const std::string_view port = address.substr(colon + 1);
  std::uint16_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(port.data(), port.data() + port.size(), value);
  return ec == std::errc{} && ptr == port.data() + port.size();
}

Result<std::map<EndpointId, std::string>> parse_hostfile(
    const std::string& content) {
  std::map<EndpointId, std::string> hosts;
  std::size_t pos = 0;
  while (pos < content.size()) {
    std::size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = content.size();
    const std::string line = content.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const auto space = line.find(' ');
    if (space == std::string::npos) {
      return Status{Errc::invalid_argument, "bad hostfile line: " + line};
    }
    // from_chars, not stoul: a Result-returning factory must not throw
    // on garbage or out-of-range ids.
    EndpointId id = 0;
    const char* first = line.data();
    const char* last = first + space;
    const auto [ptr, ec] = std::from_chars(first, last, id);
    if (ec != std::errc() || ptr != last) {
      return Status{Errc::invalid_argument, "bad hostfile id: " + line};
    }
    if (id >= kClientEndpointBase) {
      return Status{Errc::invalid_argument,
                    "hostfile id in client id-space: " + line};
    }
    hosts[id] = line.substr(space + 1);
  }
  if (hosts.empty()) {
    return Status{Errc::invalid_argument, "empty hostfile"};
  }
  return hosts;
}

Result<std::unique_ptr<HostedFabric>> make_fabric(
    const std::filesystem::path& hostfile, const MakeFabricOptions& options) {
  auto content = io::read_file(hostfile);
  if (!content) return content.status();
  auto hosts = parse_hostfile(*content);
  if (!hosts) return hosts.status();

  Transport transport = options.transport;
  if (transport == Transport::autodetect) {
    // TCP only when EVERY address reads as host:port; a mixed hostfile
    // lands on UDS and fails loudly at the first socket-path connect.
    transport = Transport::tcp;
    for (const auto& [id, address] : *hosts) {
      if (!looks_like_tcp_address(address)) {
        transport = Transport::uds;
        break;
      }
    }
  } else {
    // An explicit transport that contradicts the hostfile is a
    // misconfiguration; fail it here with the offending address rather
    // than at connect time with a confusing resolve/ENOENT error.
    for (const auto& [id, address] : *hosts) {
      const bool is_tcp = looks_like_tcp_address(address);
      if (transport == Transport::tcp && !is_tcp) {
        return Status{Errc::invalid_argument,
                      "hostfile address is not host:port: " + address};
      }
      if (transport == Transport::uds && is_tcp) {
        return Status{Errc::invalid_argument,
                      "hostfile address is not a socket path: " + address};
      }
    }
  }

  if (transport == Transport::tcp) {
    TcpFabricOptions topt;
    topt.self_id = options.self_id;
    topt.max_frame_bytes = options.max_frame_bytes;
    if (options.tcp_event_loops != 0) {
      topt.event_loops = options.tcp_event_loops;
    }
    auto fabric = TcpFabric::create(hostfile, topt);
    if (!fabric) return fabric.status();
    return std::unique_ptr<HostedFabric>(std::move(*fabric));
  }
  SocketFabricOptions sopt;
  sopt.self_id = options.self_id;
  sopt.max_frame_bytes = options.max_frame_bytes;
  auto fabric = SocketFabric::create(hostfile, sopt);
  if (!fabric) return fabric.status();
  return std::unique_ptr<HostedFabric>(std::move(*fabric));
}

}  // namespace gekko::net
