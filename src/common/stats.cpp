#include "common/stats.h"

namespace gekko {

std::uint64_t LatencyHistogram::upper_bound_of(std::size_t idx) noexcept {
  if (idx < kSub) return static_cast<std::uint64_t>(idx);
  const std::size_t bucket = idx / kSub;
  const std::size_t sub = idx % kSub;
  const int msb = static_cast<int>(bucket) + 3;
  const std::uint64_t base = 1ULL << msb;
  const std::uint64_t step = 1ULL << (msb - 4);
  return base + step * static_cast<std::uint64_t>(sub + 1) - 1;
}

std::uint64_t LatencyHistogram::lower_bound_of(std::size_t idx) noexcept {
  if (idx < kSub) return static_cast<std::uint64_t>(idx);
  const std::size_t bucket = idx / kSub;
  const std::size_t sub = idx % kSub;
  const int msb = static_cast<int>(bucket) + 3;
  const std::uint64_t base = 1ULL << msb;
  const std::uint64_t step = 1ULL << (msb - 4);
  return base + step * static_cast<std::uint64_t>(sub);
}

std::uint64_t LatencyHistogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0;

  if (q <= 0.0) {
    // Minimum recorded value's bucket; exact in the linear range.
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (buckets_[i] != 0) return lower_bound_of(i);
    }
    return 0;  // unreachable with count_ > 0
  }
  if (q >= 1.0) {
    // Maximum recorded value's bucket upper bound.
    for (std::size_t i = kBuckets; i-- > 0;) {
      if (buckets_[i] != 0) return upper_bound_of(i);
    }
    return 0;  // unreachable with count_ > 0
  }

  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > target) {
      // Linear range: the bucket index IS the recorded value.
      return i < kSub ? static_cast<std::uint64_t>(i) : upper_bound_of(i);
    }
  }
  return upper_bound_of(kBuckets - 1);
}

}  // namespace gekko
