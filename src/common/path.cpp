#include "common/path.h"

#include <algorithm>

namespace gekko::path {

Result<std::string> normalize(std::string_view raw) {
  if (raw.empty()) return Status{Errc::invalid_argument, "empty path"};
  if (raw.front() != '/')
    return Status{Errc::invalid_argument, "path must be absolute"};
  if (raw.size() > kMaxPath) return Errc::name_too_long;
  if (raw.find('\0') != std::string_view::npos)
    return Status{Errc::invalid_argument, "embedded NUL in path"};

  std::vector<std::string_view> stack;
  std::size_t i = 0;
  while (i < raw.size()) {
    while (i < raw.size() && raw[i] == '/') ++i;
    std::size_t start = i;
    while (i < raw.size() && raw[i] != '/') ++i;
    std::string_view comp = raw.substr(start, i - start);
    if (comp.empty() || comp == ".") continue;
    if (comp == "..") {
      if (!stack.empty()) stack.pop_back();
      continue;
    }
    if (comp.size() > kMaxName) return Errc::name_too_long;
    stack.push_back(comp);
  }

  std::string out;
  out.reserve(raw.size());
  if (stack.empty()) return std::string{"/"};
  for (auto comp : stack) {
    out += '/';
    out += comp;
  }
  return out;
}

bool is_normalized(std::string_view p) noexcept {
  if (p.empty() || p.front() != '/') return false;
  if (p == "/") return true;
  if (p.back() == '/') return false;
  // No empty, ".", ".." components.
  std::size_t i = 1;
  while (i <= p.size()) {
    std::size_t next = p.find('/', i);
    if (next == std::string_view::npos) next = p.size();
    std::string_view comp = p.substr(i, next - i);
    if (comp.empty() || comp == "." || comp == "..") return false;
    if (comp.size() > kMaxName) return false;
    i = next + 1;
  }
  return p.size() <= kMaxPath;
}

std::string_view parent(std::string_view normalized) noexcept {
  if (normalized == "/") return normalized;
  auto pos = normalized.rfind('/');
  if (pos == 0) return normalized.substr(0, 1);
  return normalized.substr(0, pos);
}

std::string_view basename(std::string_view normalized) noexcept {
  if (normalized == "/") return {};
  auto pos = normalized.rfind('/');
  return normalized.substr(pos + 1);
}

std::vector<std::string_view> components(std::string_view normalized) {
  std::vector<std::string_view> out;
  if (normalized == "/") return out;
  std::size_t i = 1;
  while (i <= normalized.size()) {
    std::size_t next = normalized.find('/', i);
    if (next == std::string_view::npos) next = normalized.size();
    out.push_back(normalized.substr(i, next - i));
    i = next + 1;
  }
  return out;
}

std::size_t depth(std::string_view normalized) noexcept {
  if (normalized == "/") return 0;
  return static_cast<std::size_t>(
      std::count(normalized.begin(), normalized.end(), '/'));
}

bool is_inside(std::string_view p, std::string_view dir) noexcept {
  if (dir == "/") return p != "/";
  return p.size() > dir.size() + 1 && p.starts_with(dir) &&
         p[dir.size()] == '/';
}

bool is_direct_child(std::string_view p, std::string_view dir) noexcept {
  if (!is_inside(p, dir)) return false;
  std::size_t start = (dir == "/") ? 1 : dir.size() + 1;
  return p.find('/', start) == std::string_view::npos;
}

std::string join(std::string_view dir, std::string_view name) {
  std::string out{dir};
  if (out.back() != '/') out += '/';
  out += name;
  return out;
}

}  // namespace gekko::path
