// Clang Thread Safety Analysis annotations + the project's lock types.
//
// Build with -DGEKKO_THREAD_SAFETY=ON (clang only) and every
// `GEKKO_GUARDED_BY(mutex_)` member becomes a compile-time contract:
// touching it without holding `mutex_` is a -Werror. On GCC (and any
// compiler without the capability attributes) the macros expand to
// nothing and the wrappers degrade to the plain std primitives — zero
// overhead, zero behaviour change.
//
// The wrappers are also the lockdep instrumentation point (lockdep.h):
// a `gekko::Mutex("kv.db", lockdep::rank::kKvDb)` participates in
// runtime acquisition-order checking when GEKKO_LOCKDEP is enabled; a
// default-constructed Mutex gets only the re-entrancy check.
//
// Project rule (enforced by tools/gekko-lint.py, ctest label `lint`):
// no bare std::mutex / std::lock_guard / std::unique_lock /
// std::condition_variable outside this header and lockdep.cpp. Use:
//   gekko::Mutex mu_;                 + gekko::LockGuard lock(mu_);
//   gekko::Mutex mu_;                 + gekko::UniqueLock lock(mu_);
//                                       gekko::CondVar cv_; cv_.wait(lock);
//   gekko::SharedMutex mu_;          + gekko::SharedLockGuard lock(mu_);
#pragma once

#include <chrono>
#include <condition_variable>  // lint-ok: bare-mutex — wrapped here, nowhere else
#include <mutex>               // lint-ok: bare-mutex — wrapped here, nowhere else
#include <shared_mutex>        // lint-ok: bare-mutex — wrapped here, nowhere else

#include "common/lockdep.h"

#if defined(__clang__)
#define GEKKO_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define GEKKO_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op outside clang
#endif

/// Declares a type to be a lockable capability ("mutex").
#define GEKKO_CAPABILITY(x) GEKKO_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))
/// Declares an RAII type that acquires on construction, releases on
/// destruction.
#define GEKKO_SCOPED_CAPABILITY \
  GEKKO_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)
/// Member may only be read or written while holding `x`.
#define GEKKO_GUARDED_BY(x) GEKKO_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))
/// Pointee may only be accessed while holding `x`.
#define GEKKO_PT_GUARDED_BY(x) \
  GEKKO_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))
/// Function requires the capability held on entry (and does not
/// release it).
#define GEKKO_REQUIRES(...) \
  GEKKO_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))
#define GEKKO_REQUIRES_SHARED(...) \
  GEKKO_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))
/// Function acquires the capability (held on return, not on entry).
#define GEKKO_ACQUIRE(...) \
  GEKKO_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define GEKKO_ACQUIRE_SHARED(...) \
  GEKKO_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))
/// Function releases the capability (held on entry, not on return).
#define GEKKO_RELEASE(...) \
  GEKKO_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define GEKKO_RELEASE_SHARED(...) \
  GEKKO_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))
/// Function must NOT be called with the capability held (deadlock
/// guard for self-locking public APIs).
#define GEKKO_EXCLUDES(...) \
  GEKKO_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))
/// try_lock-style: acquires only when returning `b`.
#define GEKKO_TRY_ACQUIRE(...) \
  GEKKO_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))
/// Returns a reference to the given capability.
#define GEKKO_RETURN_CAPABILITY(x) \
  GEKKO_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))
/// Opt a function out of analysis (init/teardown single-threaded code
/// whose locking is deliberately irregular).
#define GEKKO_NO_THREAD_SAFETY_ANALYSIS \
  GEKKO_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

namespace gekko {

/// std::mutex with a capability annotation and lockdep instrumentation.
/// Name + rank opt the instance into acquisition-order checking; the
/// rank table is lockdep::rank (DESIGN.md §11).
class GEKKO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const char* name, int rank) : name_(name), rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GEKKO_ACQUIRE() {
    lockdep::on_acquire(this, name_, rank_);
    m_.lock();
  }
  bool try_lock() GEKKO_TRY_ACQUIRE(true) {
    if (!m_.try_lock()) return false;
    lockdep::on_try_acquire(this, name_, rank_);
    return true;
  }
  void unlock() GEKKO_RELEASE() {
    m_.unlock();
    lockdep::on_release(this);
  }

  [[nodiscard]] const char* name() const noexcept { return name_; }
  [[nodiscard]] int rank() const noexcept { return rank_; }

 private:
  friend class CondVar;
  std::mutex m_;
  const char* name_ = nullptr;
  int rank_ = lockdep::kNoRank;
};

/// std::shared_mutex counterpart. Shared acquisitions participate in
/// the same ordering checks as exclusive ones (a reader can deadlock a
/// writer just as well).
class GEKKO_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const char* name, int rank) : name_(name), rank_(rank) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() GEKKO_ACQUIRE() {
    lockdep::on_acquire(this, name_, rank_);
    m_.lock();
  }
  void unlock() GEKKO_RELEASE() {
    m_.unlock();
    lockdep::on_release(this);
  }
  void lock_shared() GEKKO_ACQUIRE_SHARED() {
    lockdep::on_acquire(this, name_, rank_);
    m_.lock_shared();
  }
  void unlock_shared() GEKKO_RELEASE_SHARED() {
    m_.unlock_shared();
    lockdep::on_release(this);
  }

 private:
  std::shared_mutex m_;
  const char* name_ = nullptr;
  int rank_ = lockdep::kNoRank;
};

/// RAII exclusive lock (std::lock_guard analog).
class GEKKO_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) GEKKO_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~LockGuard() GEKKO_RELEASE() { m_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

/// RAII exclusive lock over a SharedMutex (writer side).
class GEKKO_SCOPED_CAPABILITY WriteLockGuard {
 public:
  explicit WriteLockGuard(SharedMutex& m) GEKKO_ACQUIRE(m) : m_(m) {
    m_.lock();
  }
  ~WriteLockGuard() GEKKO_RELEASE() { m_.unlock(); }
  WriteLockGuard(const WriteLockGuard&) = delete;
  WriteLockGuard& operator=(const WriteLockGuard&) = delete;

 private:
  SharedMutex& m_;
};

/// RAII shared lock (reader side of a SharedMutex).
class GEKKO_SCOPED_CAPABILITY SharedLockGuard {
 public:
  explicit SharedLockGuard(SharedMutex& m) GEKKO_ACQUIRE_SHARED(m) : m_(m) {
    m_.lock_shared();
  }
  ~SharedLockGuard() GEKKO_RELEASE() { m_.unlock_shared(); }
  SharedLockGuard(const SharedLockGuard&) = delete;
  SharedLockGuard& operator=(const SharedLockGuard&) = delete;

 private:
  SharedMutex& m_;
};

/// Movable-ownership lock for condition-variable waits and
/// pass-the-lock helper APIs (std::unique_lock analog).
class GEKKO_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) GEKKO_ACQUIRE(m) : m_(&m) {
    m_->lock();
    owns_ = true;
  }
  ~UniqueLock() GEKKO_RELEASE() {
    if (owns_) m_->unlock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() GEKKO_ACQUIRE() {
    m_->lock();
    owns_ = true;
  }
  void unlock() GEKKO_RELEASE() {
    m_->unlock();
    owns_ = false;
  }
  [[nodiscard]] bool owns_lock() const noexcept { return owns_; }
  [[nodiscard]] Mutex* mutex() const noexcept { return m_; }

 private:
  friend class CondVar;
  Mutex* m_;
  bool owns_ = false;
};

/// Condition variable working with UniqueLock<gekko::Mutex>. The wait
/// adopts the underlying std::mutex for the duration of the blocking
/// call and releases it back, so lockdep's view (the capability stays
/// logically held across the wait, as in clang's model) is preserved.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(UniqueLock& lk) {
    std::unique_lock<std::mutex> native(lk.m_->m_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  template <typename Pred>
  void wait(UniqueLock& lk, Pred pred) {
    std::unique_lock<std::mutex> native(lk.m_->m_, std::adopt_lock);
    cv_.wait(native, std::move(pred));
    native.release();
  }

  template <typename Rep, typename Period, typename Pred>
  bool wait_for(UniqueLock& lk,
                const std::chrono::duration<Rep, Period>& timeout,
                Pred pred) {
    std::unique_lock<std::mutex> native(lk.m_->m_, std::adopt_lock);
    const bool ok = cv_.wait_for(native, timeout, std::move(pred));
    native.release();
    return ok;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace gekko
