// Path handling for the GekkoFS flat namespace.
//
// GekkoFS keeps a *flat* keyspace: the normalized absolute path is the
// metadata key (paper §II, "replaces directory entries by objects").
// Normalization must be strictly canonical so that the same file always
// hashes to the same daemon from every client.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace gekko::path {

/// Maximum path length accepted by the client (mirrors PATH_MAX spirit).
inline constexpr std::size_t kMaxPath = 4096;
/// Maximum single component length (NAME_MAX spirit).
inline constexpr std::size_t kMaxName = 255;

/// Normalize an absolute path: collapse "//" and "/./", resolve "..",
/// strip trailing slash (except root). Fails on relative paths, empty
/// input, over-long paths/components, or embedded NUL.
Result<std::string> normalize(std::string_view raw);

/// True if `p` is already in normalized form.
bool is_normalized(std::string_view p) noexcept;

/// Parent directory of a normalized path ("/a/b" -> "/a", "/a" -> "/").
/// Root's parent is root.
std::string_view parent(std::string_view normalized) noexcept;

/// Final component ("/a/b" -> "b"). Root yields "".
std::string_view basename(std::string_view normalized) noexcept;

/// Split into components ("/a/b" -> {"a","b"}). Root yields {}.
std::vector<std::string_view> components(std::string_view normalized);

/// Number of components; root is depth 0.
std::size_t depth(std::string_view normalized) noexcept;

/// True if `p` lies strictly inside directory `dir` (both normalized).
/// is_inside("/a/b", "/a") == true; is_inside("/ab", "/a") == false.
bool is_inside(std::string_view p, std::string_view dir) noexcept;

/// True if `p` is a *direct* child of `dir`.
bool is_direct_child(std::string_view p, std::string_view dir) noexcept;

/// Join a normalized directory and a single component.
std::string join(std::string_view dir, std::string_view name);

}  // namespace gekko::path
