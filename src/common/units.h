// Byte-size literals and human-readable formatting helpers.
#pragma once

#include <cstdint>
#include <string>

namespace gekko {

inline namespace literals {
constexpr std::uint64_t operator""_KiB(unsigned long long v) {
  return v * 1024ULL;
}
constexpr std::uint64_t operator""_MiB(unsigned long long v) {
  return v * 1024ULL * 1024ULL;
}
constexpr std::uint64_t operator""_GiB(unsigned long long v) {
  return v * 1024ULL * 1024ULL * 1024ULL;
}
}  // namespace literals

/// "512 KiB", "1.5 MiB", "17 B" — for logs and benchmark tables.
std::string format_bytes(std::uint64_t bytes);

/// "1.23 M", "456.7 k" — for ops/s style numbers.
std::string format_count(double v);

}  // namespace gekko
