#include "common/fileio.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

namespace gekko::io {
namespace {

constexpr std::size_t kWriteBufferSize = 64 * 1024;

Status errno_status(const char* what, const std::filesystem::path& p) {
  Errc code = Errc::io_error;
  switch (errno) {
    case ENOENT: code = Errc::not_found; break;
    case EEXIST: code = Errc::exists; break;
    case EACCES: code = Errc::permission; break;
    case ENOSPC: code = Errc::no_space; break;
    case EISDIR: code = Errc::is_directory; break;
    default: break;
  }
  return Status{code, std::string(what) + " " + p.string() + ": " +
                          std::strerror(errno)};
}

}  // namespace

// ---------- WritableFile ----------

WritableFile::~WritableFile() {
  (void)close();  // status-ignored-ok: destructors cannot report; call close() to observe errors
}

WritableFile::WritableFile(WritableFile&& other) noexcept
    : fd_(other.fd_), offset_(other.offset_),
      buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
  other.offset_ = 0;
}

WritableFile& WritableFile::operator=(WritableFile&& other) noexcept {
  if (this != &other) {
    // status-ignored-ok: move-assign overwrites this file; explicit close() observes errors
    (void)close();
    fd_ = other.fd_;
    offset_ = other.offset_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
    other.offset_ = 0;
  }
  return *this;
}

Result<WritableFile> WritableFile::create(const std::filesystem::path& p) {
  const int fd = ::open(p.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return errno_status("create", p);
  WritableFile f;
  f.fd_ = fd;
  f.buffer_.reserve(kWriteBufferSize);
  return f;
}

Result<WritableFile> WritableFile::open_append(
    const std::filesystem::path& p) {
  const int fd = ::open(p.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return errno_status("open_append", p);
  const off_t end = ::lseek(fd, 0, SEEK_END);
  WritableFile f;
  f.fd_ = fd;
  f.offset_ = end > 0 ? static_cast<std::uint64_t>(end) : 0;
  f.buffer_.reserve(kWriteBufferSize);
  return f;
}

Status WritableFile::append(std::span<const std::uint8_t> data) {
  if (fd_ < 0) return Status{Errc::bad_fd, "append on closed file"};
  buffer_.insert(buffer_.end(), data.begin(), data.end());
  offset_ += data.size();
  if (buffer_.size() >= kWriteBufferSize) return flush();
  return Status::ok();
}

Status WritableFile::flush() {
  if (fd_ < 0) return Status{Errc::bad_fd, "flush on closed file"};
  std::size_t written = 0;
  while (written < buffer_.size()) {
    const ssize_t n =
        ::write(fd_, buffer_.data() + written, buffer_.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("write", "<open fd>");
    }
    written += static_cast<std::size_t>(n);
  }
  buffer_.clear();
  return Status::ok();
}

Status WritableFile::sync() {
  GEKKO_RETURN_IF_ERROR(flush());
  if (::fdatasync(fd_) != 0) return errno_status("fdatasync", "<open fd>");
  return Status::ok();
}

Status WritableFile::close() {
  if (fd_ < 0) return Status::ok();
  Status st = flush();
  if (::close(fd_) != 0 && st.is_ok()) {
    st = errno_status("close", "<open fd>");
  }
  fd_ = -1;
  return st;
}

// ---------- RandomAccessFile ----------

RandomAccessFile::~RandomAccessFile() {
  if (fd_ >= 0) ::close(fd_);
}

RandomAccessFile::RandomAccessFile(RandomAccessFile&& other) noexcept
    : fd_(other.fd_), size_(other.size_) {
  other.fd_ = -1;
  other.size_ = 0;
}

RandomAccessFile& RandomAccessFile::operator=(
    RandomAccessFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    size_ = other.size_;
    other.fd_ = -1;
    other.size_ = 0;
  }
  return *this;
}

Result<RandomAccessFile> RandomAccessFile::open(
    const std::filesystem::path& p) {
  const int fd = ::open(p.c_str(), O_RDONLY);
  if (fd < 0) return errno_status("open", p);
  const off_t end = ::lseek(fd, 0, SEEK_END);
  RandomAccessFile f;
  f.fd_ = fd;
  f.size_ = end > 0 ? static_cast<std::uint64_t>(end) : 0;
  return f;
}

Status RandomAccessFile::read_exact(std::uint64_t offset,
                                    std::span<std::uint8_t> out) const {
  auto r = read(offset, out);
  if (!r) return r.status();
  if (*r != out.size()) {
    return Status{Errc::io_error, "short read"};
  }
  return Status::ok();
}

Result<std::size_t> RandomAccessFile::read(
    std::uint64_t offset, std::span<std::uint8_t> out) const {
  if (fd_ < 0) return Status{Errc::bad_fd, "read on closed file"};
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::pread(fd_, out.data() + done, out.size() - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("pread", "<open fd>");
    }
    if (n == 0) break;  // EOF
    done += static_cast<std::size_t>(n);
  }
  return done;
}

// ---------- helpers ----------

Result<std::string> read_file(const std::filesystem::path& p) {
  auto file = RandomAccessFile::open(p);
  if (!file) return file.status();
  std::string out(file->size(), '\0');
  if (!out.empty()) {
    GEKKO_RETURN_IF_ERROR(file->read_exact(
        0, std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(out.data()),
                                   out.size())));
  }
  return out;
}

Status write_file_atomic(const std::filesystem::path& p,
                         std::string_view content) {
  const std::filesystem::path tmp = p.string() + ".tmp";
  {
    auto f = WritableFile::create(tmp);
    if (!f) return f.status();
    GEKKO_RETURN_IF_ERROR(f->append(content));
    GEKKO_RETURN_IF_ERROR(f->sync());
    GEKKO_RETURN_IF_ERROR(f->close());
  }
  std::error_code ec;
  std::filesystem::rename(tmp, p, ec);
  if (ec) return Status{Errc::io_error, "rename: " + ec.message()};
  return Status::ok();
}

Result<std::vector<std::string>> list_dir(const std::filesystem::path& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) names.push_back(entry.path().filename());
  }
  if (ec) return Status{Errc::io_error, "list_dir: " + ec.message()};
  return names;
}

Status remove_file(const std::filesystem::path& p) {
  std::error_code ec;
  if (!std::filesystem::remove(p, ec) || ec) {
    if (ec) return Status{Errc::io_error, "remove: " + ec.message()};
    return Errc::not_found;
  }
  return Status::ok();
}

Status ensure_dir(const std::filesystem::path& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status{Errc::io_error, "create_directories: " + ec.message()};
  return Status::ok();
}

}  // namespace gekko::io
