// Runtime lock-order validator (Linux lockdep, scaled to this repo).
//
// Every gekko::Mutex/SharedMutex (thread_annotations.h) may carry a
// NAME and a RANK. Ranks define the global acquisition order: while a
// thread holds a ranked lock, it may only acquire locks of STRICTLY
// GREATER rank. Violations abort the process with the offending
// thread's full acquisition sequence — turning a potential deadlock
// that strikes once a month at 512 nodes into a deterministic failure
// in the first test that exercises the path.
//
// Three checks run on every instrumented acquisition:
//  1. re-entrancy: acquiring a mutex already held by this thread
//     (std::mutex deadlocks or UBs on this; we abort with the stack);
//  2. rank order: acquiring rank r while holding any rank >= r;
//  3. observed-order inversion: the first time lock B is taken while A
//     is held, the edge A->B (with the thread's acquisition sequence)
//     is recorded; a later acquisition of A while B is held aborts and
//     prints BOTH sequences — the current one and the recorded one
//     that established the opposite order.
//
// Cost model: one relaxed atomic load when disabled (the default in
// release runs); thread-local vector ops plus one global map lookup
// per NAMED acquisition when enabled. Enable with GEKKO_LOCKDEP=1 in
// the environment or lockdep::set_enabled(true) (tests do the latter).
//
// The canonical rank table lives in lockdep::rank below and is
// documented in DESIGN.md §11. Anonymous (default-constructed) mutexes
// only get the re-entrancy check.
#pragma once

#include <string>
#include <vector>

namespace gekko::lockdep {

inline constexpr int kNoRank = -1;

/// Global lock ranks, outermost (acquired first) to innermost. Gaps
/// leave room for future locks without renumbering. A lock may only be
/// acquired while every held rank is strictly smaller.
namespace rank {
// -- application / client layer (outermost) --
inline constexpr int kFsAdapter = 100;      // workload FsAdapter handles
inline constexpr int kFileMap = 120;        // client file map
inline constexpr int kStatCache = 130;      // client stat cache
inline constexpr int kSizeCache = 135;      // client size-update cache
inline constexpr int kClientStats = 140;    // client op counters
inline constexpr int kClientBatcher = 150;  // metadata-RPC coalescing queues
                                            // (flushes forward with it
                                            // DROPPED — rpc ranks are higher)
// -- rpc engine --
inline constexpr int kEngineRpcTable = 200; // handler registration table
inline constexpr int kEngineMetrics = 210;  // caller-metrics slot fill
inline constexpr int kEnginePending = 220;  // in-flight forward map
inline constexpr int kHeartbeat = 250;      // heartbeat monitor lifecycle
                                            // (probes run with it DROPPED)
// -- fabric / transport --
inline constexpr int kFabricInjector = 300; // fault-injector slot
inline constexpr int kLoopback = 310;       // loopback inbox table
inline constexpr int kSocketConn = 320;     // socket routing maps
inline constexpr int kTcpConn = 322;        // tcp routing maps
inline constexpr int kTcpLoop = 326;        // tcp event-loop conn registry
                                            // (acquired under kTcpConn when
                                            // a dial adopts the new conn)
inline constexpr int kSocketReply = 330;    // pending reply routes
inline constexpr int kTcpReply = 332;       // tcp pending reply routes
inline constexpr int kSocketBulk = 340;     // pending writable regions
inline constexpr int kTcpBulk = 342;        // tcp pending writable regions
inline constexpr int kSocketWrite = 350;    // per-connection write lock
inline constexpr int kTcpOut = 352;         // tcp per-connection send queue
inline constexpr int kSocketStats = 360;    // traffic counters
inline constexpr int kTcpStats = 362;       // tcp traffic counters
inline constexpr int kHttpExporter = 366;   // /metrics http listener state
inline constexpr int kBulkDirty = 370;      // BulkRegion dirty ranges
// -- baseline --
inline constexpr int kPfsMds = 400;         // baseline PFS namespace
// -- storage / kv --
inline constexpr int kKvDb = 500;           // DB-wide LSM lock
inline constexpr int kKvCacheShard = 510;   // block-cache shard (under kKvDb)
inline constexpr int kFdCacheShard = 520;   // chunk fd-cache shard
// -- leaf synchronization primitives --
inline constexpr int kQueue = 800;          // BlockingQueue
inline constexpr int kEventual = 810;       // Eventual one-shot cells
inline constexpr int kLatch = 820;          // fan-out latches
// preload.alias looks like an application-layer lock but is entered
// through libc interposition from ARBITRARY call stacks — including
// daemon internals already holding kv.db (the LSM does file I/O, the
// shim sees it). It guards only a map lookup and acquires nothing
// inside, so it must rank as a leaf. Lockdep caught the original
// rank-110 placement aborting under preload_test.
inline constexpr int kPreloadAlias = 830;   // preload fd-alias table (leaf)
inline constexpr int kHealth = 860;         // health tracker state machine
                                            // (logs + bumps cached metrics
                                            // under it; acquires kLog only)
inline constexpr int kMetricsSampler = 870; // sampler stop/tick state
inline constexpr int kMetricsHistory = 880; // per-family sample rings
inline constexpr int kMetricsRegistry = 900;// metric name interning
inline constexpr int kLog = 950;            // log line emission (leaf)
}  // namespace rank

/// Cheap global switch; defaults to the GEKKO_LOCKDEP environment
/// variable ("1"/"true"), read once on first check.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Called by the mutex wrappers BEFORE blocking on the underlying
/// lock, so an ordering violation is reported instead of deadlocking.
void on_acquire(const void* m, const char* name, int rank);
/// `true` result of a try_lock: the lock is held, record it (ordering
/// is not checked — try_lock cannot deadlock).
void on_try_acquire(const void* m, const char* name, int rank);
void on_release(const void* m) noexcept;

/// Registered rank for `name`; kNoRank if never seen. Registration is
/// keyed by name (many instances share one name, e.g. cache shards)
/// and validated: re-registering a name with a DIFFERENT rank aborts.
[[nodiscard]] int rank_of(const std::string& name);

/// Names currently held by the calling thread, outermost first (tests).
[[nodiscard]] std::vector<std::string> held_names();

/// Async-signal-safe: write EVERY thread's current held-lock stack to
/// `fd` as "lock t<thread> <name> rank=<rank>" lines (the postmortem
/// [locks] section). Reads other threads' stacks without their
/// cooperation — a stack mutating concurrently may yield one torn or
/// stale line, which crash forensics accepts. Only meaningful when
/// lockdep is enabled (stacks are only maintained then).
void crash_dump(int fd) noexcept;

/// Drop recorded edges + name registry (tests only; not thread-safe
/// against concurrent instrumented acquisitions).
void reset_for_test();

}  // namespace gekko::lockdep
