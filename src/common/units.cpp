#include "common/units.h"

#include <array>
#include <cstdio>

namespace gekko {

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 6> kUnits = {"B",   "KiB", "MiB",
                                                        "GiB", "TiB", "PiB"};
  double v = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (v >= 1024.0 && unit + 1 < kUnits.size()) {
    v /= 1024.0;
    ++unit;
  }
  char buf[48];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string format_count(double v) {
  char buf[48];
  if (v >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f G", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f M", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f k", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
  }
  return buf;
}

}  // namespace gekko
