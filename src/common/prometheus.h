// gekko::prom — Prometheus text exposition (render + strict parse).
//
// The daemon's /metrics endpoint (net::HttpExporter) serves render():
// every Registry counter, gauge, and histogram in the Prometheus
// text format, version 0.0.4. Internal metric names are dot-separated
// (`rpc.caller.stat.sent`); Prometheus requires `[a-zA-Z_:][a-zA-Z0-9_:]*`,
// so mangle() rewrites dots to underscores and prepends `gekko_`
// (`gekko_rpc_caller_stat_sent`). Histograms export the full
// LatencyHistogram bucket resolution as CUMULATIVE `_bucket{le="..."}`
// series (only occupied buckets, plus the mandatory `le="+Inf"`),
// followed by `_sum` and `_count` — the shape every Prometheus server
// and histogram_quantile() expects.
//
// parse() is the strict inverse used by gkfs-mon and the round-trip
// tests. It validates, not just tokenizes:
//  - every sample's family must be declared by a preceding # TYPE line,
//  - one # TYPE per family, with a known type,
//  - histogram buckets are cumulative (non-decreasing in `le` order)
//    and end with `le="+Inf"` whose value equals the `_count` sample,
//  - label syntax is well-formed (quoted values, \\ \" \n escapes).
// Anything else is Errc::corruption with a line-numbered context, so a
// drifting exporter fails loudly in CI instead of skewing dashboards.
//
// This header is the ONLY place `_bucket` strings may appear outside
// tests (enforced by gekko-lint's metric-name rule): histogram series
// must go through render(), never hand-rolled.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"

namespace gekko::prom {

/// `rpc.caller.stat.sent` -> `gekko_rpc_caller_stat_sent`. Characters
/// outside [a-zA-Z0-9_] become '_'. Names already starting with
/// `gekko_` are not double-prefixed.
[[nodiscard]] std::string mangle(std::string_view name);

struct RenderOptions {
  /// Labels attached to every sample, e.g. {{"node","3"}}. Rendered
  /// sorted by key; values are escaped.
  std::map<std::string, std::string> labels;
};

/// Render the registry in Prometheus text format. Deterministic output
/// (families and labels sorted) so tests can compare exactly.
[[nodiscard]] std::string render(const metrics::Registry& registry,
                                 const RenderOptions& opts = {});

enum class FamilyType : std::uint8_t { counter, gauge, histogram, untyped };

[[nodiscard]] std::string_view family_type_name(FamilyType t) noexcept;

struct Sample {
  /// Full sample name as written (`gekko_x`, `gekko_x_bucket`, ...).
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

struct Family {
  std::string name;  // base family name from the # TYPE line
  FamilyType type = FamilyType::untyped;
  std::vector<Sample> samples;  // in document order
};

struct Exposition {
  /// Keyed by base family name. Histogram `_bucket`/`_sum`/`_count`
  /// samples live under their base family.
  std::map<std::string, Family> families;

  [[nodiscard]] const Family* find(std::string_view family) const {
    auto it = families.find(std::string(family));
    return it == families.end() ? nullptr : &it->second;
  }

  /// First sample value of `family` whose name is exactly the family
  /// name (counters/gauges). fallback if absent.
  [[nodiscard]] double value_or(std::string_view family,
                                double fallback = 0.0) const;
};

/// Strict parse; Errc::corruption with "line N: ..." context on any
/// violation of the format or of histogram cumulativity.
[[nodiscard]] Result<Exposition> parse(std::string_view text);

}  // namespace gekko::prom
