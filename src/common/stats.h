// Online statistics and latency histograms for benchmark reporting.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace gekko {

/// Welford online mean/variance. Single-threaded; merge() combines shards.
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  void merge(const OnlineStats& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double total = static_cast<double>(n_ + o.n_);
    const double d = o.mean_ - mean_;
    m2_ += o.m2_ + d * d * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / total;
    mean_ = (mean_ * static_cast<double>(n_) +
             o.mean_ * static_cast<double>(o.n_)) /
            total;
    n_ += o.n_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Relative stddev in percent of mean (the paper reports "<3.5%").
  [[nodiscard]] double rel_stddev_pct() const noexcept {
    return mean_ != 0.0 ? 100.0 * stddev() / mean_ : 0.0;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Log-scaled latency histogram: 64 buckets of power-of-two boundaries
/// with 16 linear sub-buckets each; values in arbitrary units (we use ns).
class LatencyHistogram {
 public:
  static constexpr std::size_t kSub = 16;
  static constexpr std::size_t kBuckets = 64 * kSub;

  void add(std::uint64_t v) noexcept {
    ++count_;
    sum_ += v;
    buckets_[index_of(v)] += 1;
  }

  void merge(const LatencyHistogram& o) noexcept {
    count_ += o.count_;
    sum_ += o.sum_;
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Approximate quantile (q in [0,1]); returns bucket upper bound.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

 private:
  static std::size_t index_of(std::uint64_t v) noexcept {
    if (v < kSub) return static_cast<std::size_t>(v);
    const int msb = 63 - __builtin_clzll(v);
    const auto bucket = static_cast<std::size_t>(msb - 3);
    const std::size_t sub = (v >> (msb - 4)) & (kSub - 1);
    std::size_t idx = bucket * kSub + sub;
    return idx < kBuckets ? idx : kBuckets - 1;
  }
  static std::uint64_t upper_bound_of(std::size_t idx) noexcept;

  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

}  // namespace gekko
