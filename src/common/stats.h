// Online statistics and latency histograms for benchmark reporting.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace gekko {

/// Welford online mean/variance. Single-threaded; merge() combines shards.
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  void merge(const OnlineStats& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      // Adopt o wholesale: our default-constructed min_/max_ of 0.0
      // are sentinels, not samples, and must never survive a merge
      // with real (e.g. all-positive) data.
      *this = o;
      return;
    }
    const double total = static_cast<double>(n_ + o.n_);
    const double d = o.mean_ - mean_;
    m2_ += o.m2_ + d * d * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / total;
    mean_ = (mean_ * static_cast<double>(n_) +
             o.mean_ * static_cast<double>(o.n_)) /
            total;
    n_ += o.n_;
    // Both sides hold real samples here; plain min/max is safe.
    min_ = o.min_ < min_ ? o.min_ : min_;
    max_ = o.max_ > max_ ? o.max_ : max_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Relative stddev in percent of mean (the paper reports "<3.5%").
  [[nodiscard]] double rel_stddev_pct() const noexcept {
    return mean_ != 0.0 ? 100.0 * stddev() / mean_ : 0.0;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Log-scaled latency histogram: 64 buckets of power-of-two boundaries
/// with 16 linear sub-buckets each; values in arbitrary units (we use ns).
class LatencyHistogram {
 public:
  static constexpr std::size_t kSub = 16;
  static constexpr std::size_t kBuckets = 64 * kSub;

  void add(std::uint64_t v) noexcept {
    ++count_;
    sum_ += v;
    buckets_[index_of(v)] += 1;
  }

  void merge(const LatencyHistogram& o) noexcept {
    count_ += o.count_;
    sum_ += o.sum_;
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  /// Raw count of one bucket (Prometheus exposition walks these).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t idx) const noexcept {
    return idx < kBuckets ? buckets_[idx] : 0;
  }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Quantile with explicit edge semantics:
  ///  - empty histogram: 0 for any q,
  ///  - q <= 0: lower bound of the first occupied bucket (the exact
  ///    smallest value for the linear sub-kSub range),
  ///  - q >= 1: upper bound of the last occupied bucket,
  ///  - otherwise: the exact value for the linear range (bucket index
  ///    IS the value there), the bucket upper bound beyond it.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  /// Replace contents from raw bucket counts (metrics::Histogram
  /// snapshots its atomic buckets through this).
  void load(const std::array<std::uint64_t, kBuckets>& buckets,
            std::uint64_t sum) noexcept {
    buckets_ = buckets;
    sum_ = sum;
    count_ = 0;
    for (const auto b : buckets_) count_ += b;
  }

  /// Bucket index for a value: values < kSub map 1:1 (exact), larger
  /// values to power-of-two buckets with kSub linear sub-buckets.
  static std::size_t index_of(std::uint64_t v) noexcept {
    if (v < kSub) return static_cast<std::size_t>(v);
    const int msb = 63 - __builtin_clzll(v);
    const auto bucket = static_cast<std::size_t>(msb - 3);
    const std::size_t sub = (v >> (msb - 4)) & (kSub - 1);
    std::size_t idx = bucket * kSub + sub;
    return idx < kBuckets ? idx : kBuckets - 1;
  }
  static std::uint64_t upper_bound_of(std::size_t idx) noexcept;
  static std::uint64_t lower_bound_of(std::size_t idx) noexcept;

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

}  // namespace gekko
