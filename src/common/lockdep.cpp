// relaxed-ok: g_enabled is an isolated on/off flag; the state it gates
// is guarded by g_mutex or thread-local.
#include "common/lockdep.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>  // lint-ok: bare-mutex — lockdep is the instrumentation layer and must not instrument itself
#include <utility>

#include "common/flight_recorder.h"
#include "common/logging.h"

#if defined(__SANITIZE_ADDRESS__)
#include <sanitizer/lsan_interface.h>
#endif

namespace gekko::lockdep {
namespace {

/// One lock currently held by a thread.
struct Held {
  const void* m = nullptr;
  const char* name = nullptr;  // nullptr = anonymous
  int rank = kNoRank;
};

/// Per-thread acquisition stack, outermost first.
thread_local std::vector<Held>* t_held = nullptr;

/// Crash-visible registry of every thread's stack, release-published
/// so the fatal-signal handler can walk all stacks without locks. The
/// stacks are leaked (below), so a registered pointer never dangles.
constexpr std::size_t kMaxStacks = 256;
struct StackSlot {
  unsigned thread = 0;  // written before the release store of `stack`
  std::atomic<const std::vector<Held>*> stack{nullptr};
};
StackSlot g_stacks[kMaxStacks];
std::atomic<std::size_t> g_stack_count{0};

std::vector<Held>& held_stack() {
  if (t_held == nullptr) {
    t_held = new std::vector<Held>();  // leaked at exit by design: thread
                                       // exit order vs. lock release order
                                       // is not knowable here
#if defined(__SANITIZE_ADDRESS__)
    __lsan_ignore_object(t_held);  // treat as a live root so LeakSanitizer
                                   // does not fail every multi-threaded test
#endif
    const auto idx = g_stack_count.fetch_add(1, std::memory_order_relaxed);
    if (idx < kMaxStacks) {
      g_stacks[idx].thread = log::thread_number();
      g_stacks[idx].stack.store(t_held, std::memory_order_release);
    }
  }
  return *t_held;
}

/// Global state: name->rank registry and the observed-order edge map.
/// Guarded by a raw std::mutex — the instrumentation layer cannot use
/// the instrumented wrappers without recursing into itself.
std::mutex g_mutex;
std::map<std::string, int>* g_ranks = nullptr;
struct Edge {
  std::vector<std::string> sequence;  // full held-stack at first sight
};
std::map<std::pair<std::string, std::string>, Edge>* g_edges = nullptr;

std::atomic<int> g_enabled{-1};  // -1 unresolved, 0 off, 1 on

bool resolve_env_enabled() {
  const char* v = std::getenv("GEKKO_LOCKDEP");
  return v != nullptr &&
         (std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0);
}

std::vector<std::string> sequence_of(const std::vector<Held>& held,
                                     const char* acquiring) {
  std::vector<std::string> seq;
  seq.reserve(held.size() + 1);
  for (const Held& h : held) {
    seq.emplace_back(h.name != nullptr ? h.name : "<anon>");
  }
  if (acquiring != nullptr) seq.emplace_back(acquiring);
  return seq;
}

void print_sequence(const char* label, const std::vector<std::string>& seq) {
  std::fprintf(stderr, "lockdep:   %s:", label);
  for (const auto& n : seq) std::fprintf(stderr, " -> %s", n.c_str());
  std::fputc('\n', stderr);
}

[[noreturn]] void die(const char* what, const std::vector<std::string>& now,
                      const std::vector<std::string>* recorded) {
  std::fprintf(stderr, "lockdep: FATAL: %s\n", what);
  print_sequence("this thread's acquisition sequence", now);
  if (recorded != nullptr) {
    print_sequence("previously recorded sequence", *recorded);
  }
  std::fflush(stderr);
  std::abort();
}

void record_and_check(const std::vector<Held>& held, const char* name,
                      int rank) {
  // Rank discipline: strictly increasing among ranked locks.
  if (rank != kNoRank) {
    for (const Held& h : held) {
      if (h.rank != kNoRank && h.rank >= rank) {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "lock rank order violated: acquiring '%s' (rank %d) "
                      "while holding '%s' (rank %d)",
                      name, rank, h.name != nullptr ? h.name : "<anon>",
                      h.rank);
        die(buf, sequence_of(held, name), nullptr);
      }
    }
  }
  // Observed-order inversions among named locks (catches unranked
  // pairs and same-rank mistakes the static table misses).
  if (name == nullptr) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_edges == nullptr) {
    g_edges = new std::map<std::pair<std::string, std::string>, Edge>();
  }
  for (const Held& h : held) {
    if (h.name == nullptr || std::strcmp(h.name, name) == 0) continue;
    const auto fwd = std::make_pair(std::string(h.name), std::string(name));
    const auto rev = std::make_pair(fwd.second, fwd.first);
    if (auto it = g_edges->find(rev); it != g_edges->end()) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "lock order inverted: acquiring '%s' while holding "
                    "'%s', but the opposite order was already observed",
                    name, h.name);
      die(buf, sequence_of(held, name), &it->second.sequence);
    }
    g_edges->try_emplace(fwd, Edge{sequence_of(held, name)});
  }
}

void register_name(const char* name, int rank) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_ranks == nullptr) g_ranks = new std::map<std::string, int>();
  auto [it, inserted] = g_ranks->try_emplace(name, rank);
  if (!inserted && it->second != rank) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "conflicting rank registration for '%s': %d vs %d", name,
                  it->second, rank);
    die(buf, sequence_of(held_stack(), name), nullptr);
  }
}

}  // namespace

bool enabled() noexcept {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    v = resolve_env_enabled() ? 1 : 0;
    int expected = -1;
    if (!g_enabled.compare_exchange_strong(expected, v,
                                           std::memory_order_relaxed)) {
      v = expected;
    }
  }
  return v == 1;
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

void on_acquire(const void* m, const char* name, int rank) {
  if (!enabled()) return;
  auto& held = held_stack();
  for (const Held& h : held) {
    if (h.m == m) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "re-entrant acquisition of '%s' (already held by this "
                    "thread)",
                    name != nullptr ? name : "<anon>");
      die(buf, sequence_of(held, name), nullptr);
    }
  }
  if (name != nullptr) register_name(name, rank);
  record_and_check(held, name, rank);
  held.push_back(Held{m, name, rank});
}

void on_try_acquire(const void* m, const char* name, int rank) {
  if (!enabled()) return;
  if (name != nullptr) register_name(name, rank);
  held_stack().push_back(Held{m, name, rank});
}

void on_release(const void* m) noexcept {
  if (!enabled()) return;
  auto& held = held_stack();
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->m == m) {
      held.erase(std::next(it).base());
      return;
    }
  }
}

int rank_of(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_ranks == nullptr) return kNoRank;
  auto it = g_ranks->find(name);
  return it == g_ranks->end() ? kNoRank : it->second;
}

std::vector<std::string> held_names() {
  if (!enabled()) return {};
  return sequence_of(held_stack(), nullptr);
}

void crash_dump(int fd) noexcept {
  namespace sfmt = flight::sfmt;
  const auto count =
      std::min(g_stack_count.load(std::memory_order_relaxed), kMaxStacks);
  for (std::size_t i = 0; i < count; ++i) {
    const auto* stack = g_stacks[i].stack.load(std::memory_order_acquire);
    if (stack == nullptr) continue;  // mid-registration
    // Racy read of another thread's vector: capture (data, size) once;
    // a concurrent push_back may reallocate, but the old block is only
    // freed by that same push_back, so in practice the window is one
    // realloc — acceptable for forensics, never for accounting.
    const Held* data = stack->data();
    const std::size_t n = stack->size();
    if (data == nullptr) continue;
    for (std::size_t j = 0; j < n && j < 64; ++j) {
      const Held& h = data[j];
      sfmt::write_str(fd, "lock t");
      sfmt::write_dec(fd, g_stacks[i].thread);
      sfmt::write_str(fd, " ");
      sfmt::write_str(fd, h.name != nullptr ? h.name : "<anon>");
      sfmt::write_str(fd, " rank=");
      sfmt::write_dec(fd, h.rank == kNoRank
                              ? 0
                              : static_cast<std::uint64_t>(h.rank));
      sfmt::write_str(fd, "\n");
    }
  }
}

void reset_for_test() {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_ranks != nullptr) g_ranks->clear();
  if (g_edges != nullptr) g_edges->clear();
}

}  // namespace gekko::lockdep
