// Blocking MPMC queues used by the fabric and task pools.
#pragma once

#include <deque>
#include <optional>
#include <utility>

#include "common/thread_annotations.h"

namespace gekko {

/// Unbounded blocking multi-producer/multi-consumer queue with close().
/// After close(), pushes are rejected and pops drain remaining items,
/// then return nullopt.
template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Returns false if the queue is closed.
  bool push(T item) GEKKO_EXCLUDES(mutex_) {
    {
      LockGuard lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  std::optional<T> pop() GEKKO_EXCLUDES(mutex_) {
    UniqueLock lock(mutex_);
    cv_.wait(lock, [&]() GEKKO_REQUIRES(mutex_) {
      return !items_.empty() || closed_;
    });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() GEKKO_EXCLUDES(mutex_) {
    LockGuard lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() GEKKO_EXCLUDES(mutex_) {
    {
      LockGuard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const GEKKO_EXCLUDES(mutex_) {
    LockGuard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const GEKKO_EXCLUDES(mutex_) {
    LockGuard lock(mutex_);
    return items_.size();
  }

 private:
  mutable Mutex mutex_{"queue", lockdep::rank::kQueue};
  CondVar cv_;
  std::deque<T> items_ GEKKO_GUARDED_BY(mutex_);
  bool closed_ GEKKO_GUARDED_BY(mutex_) = false;
};

}  // namespace gekko
