// Hash functions used for wide-striping (path -> daemon, chunk -> daemon).
//
// GekkoFS distributes metadata and data with a pseudo-random hash of the
// file path (paper §III.B.a). We implement xxHash64 from scratch (the
// production GekkoFS choice) plus FNV-1a as a cheap fallback and for
// bloom-filter double hashing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gekko {

/// xxHash64 over an arbitrary byte range. Deterministic across platforms.
/// Named distinctly from the string_view overload: with a shared name,
/// a string literal converts to const void* BEFORE std::string_view and
/// silently reinterprets the seed as a length.
std::uint64_t xxhash64_bytes(const void* data, std::size_t len,
                             std::uint64_t seed = 0) noexcept;

inline std::uint64_t xxhash64(std::string_view s,
                              std::uint64_t seed = 0) noexcept {
  return xxhash64_bytes(s.data(), s.size(), seed);
}

/// FNV-1a 64-bit.
constexpr std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Finalizer for integer keys (splitmix64-style avalanche).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace gekko
