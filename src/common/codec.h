// Binary wire codec shared by the RPC layer, the FS protocol, the KV
// store's record formats, and on-disk metadata.
//
// Little-endian fixed-width integers, LEB128 varints, and
// length-prefixed strings over a growable byte buffer. Decoding is
// bounds-checked and never throws: failures surface as Errc::corruption.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace gekko {

/// Append-only encoder.
class Encoder {
 public:
  explicit Encoder(std::vector<std::uint8_t>* out) : out_(out) {}

  void u8(std::uint8_t v) { out_->push_back(v); }

  void u16(std::uint16_t v) { fixed_(v); }
  void u32(std::uint32_t v) { fixed_(v); }
  void u64(std::uint64_t v) { fixed_(v); }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  /// LEB128 varint (unsigned).
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      out_->push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out_->push_back(static_cast<std::uint8_t>(v));
  }

  void bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    out_->insert(out_->end(), p, p + len);
  }

  /// varint length prefix + raw bytes.
  void str(std::string_view s) {
    varint(s.size());
    bytes(s.data(), s.size());
  }

  [[nodiscard]] std::size_t size() const { return out_->size(); }

 private:
  template <typename T>
  void fixed_(T v) {
    std::uint8_t buf[sizeof(T)];
    std::memcpy(buf, &v, sizeof(T));  // little-endian host assumed
    bytes(buf, sizeof(T));
  }

  std::vector<std::uint8_t>* out_;
};

/// Bounds-checked decoder over a fixed byte range.
class Decoder {
 public:
  Decoder(const void* data, std::size_t len)
      : p_(static_cast<const std::uint8_t*>(data)), end_(p_ + len) {}
  explicit Decoder(std::string_view s) : Decoder(s.data(), s.size()) {}
  explicit Decoder(const std::vector<std::uint8_t>& v)
      : Decoder(v.data(), v.size()) {}

  [[nodiscard]] std::size_t remaining() const {
    return static_cast<std::size_t>(end_ - p_);
  }
  [[nodiscard]] bool done() const { return p_ == end_; }

  Result<std::uint8_t> u8() {
    if (remaining() < 1) return Errc::corruption;
    return *p_++;
  }
  Result<std::uint16_t> u16() { return fixed_<std::uint16_t>(); }
  Result<std::uint32_t> u32() { return fixed_<std::uint32_t>(); }
  Result<std::uint64_t> u64() { return fixed_<std::uint64_t>(); }

  Result<std::int64_t> i64() {
    auto r = u64();
    if (!r) return r.status();
    return static_cast<std::int64_t>(*r);
  }

  Result<double> f64() {
    auto r = u64();
    if (!r) return r.status();
    double v;
    std::uint64_t bits = *r;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Result<std::uint64_t> varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (p_ < end_) {
      const std::uint8_t b = *p_++;
      if (shift >= 63 && (b >> (70 - shift)) != 0) return Errc::corruption;
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
      if (shift > 63) return Errc::corruption;
    }
    return Errc::corruption;  // truncated
  }

  /// Read `len` raw bytes as a view into the buffer.
  Result<std::string_view> bytes(std::size_t len) {
    if (remaining() < len) return Errc::corruption;
    std::string_view v(reinterpret_cast<const char*>(p_), len);
    p_ += len;
    return v;
  }

  /// varint length prefix + raw bytes (view).
  Result<std::string_view> str() {
    auto len = varint();
    if (!len) return len.status();
    return bytes(static_cast<std::size_t>(*len));
  }

 private:
  template <typename T>
  Result<T> fixed_() {
    if (remaining() < sizeof(T)) return Errc::corruption;
    T v;
    std::memcpy(&v, p_, sizeof(T));
    p_ += sizeof(T);
    return v;
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

}  // namespace gekko
