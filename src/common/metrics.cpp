// relaxed-ok: see metrics.h — telemetry scalars with no dependent
// non-atomic data; the tracer seq publication uses release/acquire.
#include "common/metrics.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <functional>
#include <limits>

#include "common/logging.h"
#include "common/thread_annotations.h"

namespace gekko::metrics {

// ---------- Registry ----------

Counter& Registry::counter(std::string_view name) {
  LockGuard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  LockGuard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  LockGuard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

Snapshot Registry::snapshot() const {
  LockGuard lock(mutex_);
  Snapshot s;
  s.captured_ns = now_ns();
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    const LatencyHistogram lh = h->materialize();
    HistogramStats hs;
    hs.count = lh.count();
    hs.sum = h->sum();
    hs.p50 = lh.quantile(0.5);
    hs.p90 = lh.quantile(0.9);
    hs.p99 = lh.quantile(0.99);
    hs.max = lh.quantile(1.0);
    s.histograms[name] = hs;
  }
  return s;
}

std::map<std::string, LatencyHistogram> Registry::histograms_full() const {
  LockGuard lock(mutex_);
  std::map<std::string, LatencyHistogram> out;
  for (const auto& [name, h] : histograms_) out[name] = h->materialize();
  return out;
}

Registry& Registry::global() {
  static Registry* g = new Registry();  // never destroyed: recorders may
                                        // outlive static teardown order
  return *g;
}

// ---------- Snapshot JSON ----------

namespace {

void append_json_string(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out->push_back('?');  // metric names never contain control chars
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

/// Minimal recursive-descent parser for the snapshot subset: objects,
/// strings (no escapes beyond \" and \\), and integer numbers.
class JsonParser {
 public:
  explicit JsonParser(std::string_view in) : in_(in) {}

  bool consume(char c) {
    skip_ws_();
    if (pos_ >= in_.size() || in_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool peek(char c) {
    skip_ws_();
    return pos_ < in_.size() && in_[pos_] == c;
  }

  bool string(std::string* out) {
    skip_ws_();
    if (pos_ >= in_.size() || in_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < in_.size() && in_[pos_] != '"') {
      char c = in_[pos_++];
      if (c == '\\' && pos_ < in_.size()) c = in_[pos_++];
      out->push_back(c);
    }
    if (pos_ >= in_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  // Digit accumulation is bounds-checked: a hostile snapshot can spell
  // any digit string, and v * 10 + d is UB (signed) or a silent wrap
  // (unsigned) once the value leaves the target type's range. Both
  // overloads reject out-of-range numbers instead.

  bool integer(std::int64_t* out) {
    skip_ws_();
    const std::size_t start = pos_;
    if (pos_ < in_.size() && in_[pos_] == '-') ++pos_;
    while (pos_ < in_.size() &&
           std::isdigit(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start || (in_[start] == '-' && pos_ == start + 1)) {
      return false;
    }
    // Negative range runs one past positive (2^63), so the bound
    // depends on the sign.
    const bool neg = in_[start] == '-';
    const std::uint64_t limit =
        neg ? (std::uint64_t{1} << 63)
            : static_cast<std::uint64_t>(
                  std::numeric_limits<std::int64_t>::max());
    std::uint64_t v = 0;
    for (std::size_t i = start + (neg ? 1 : 0); i < pos_; ++i) {
      const std::uint64_t digit = static_cast<std::uint64_t>(in_[i] - '0');
      if (v > (limit - digit) / 10) return false;  // out of int64 range
      v = v * 10 + digit;
    }
    // 0 - v in uint64 then cast: well-defined two's-complement wrap,
    // covers INT64_MIN (v == 2^63) where -int64(v) would be UB.
    *out = neg ? static_cast<std::int64_t>(std::uint64_t{0} - v)
               : static_cast<std::int64_t>(v);
    return true;
  }

  bool unsigned_integer(std::uint64_t* out) {
    skip_ws_();
    const std::size_t start = pos_;
    while (pos_ < in_.size() &&
           std::isdigit(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return false;
    constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t v = 0;
    for (std::size_t i = start; i < pos_; ++i) {
      const std::uint64_t digit = static_cast<std::uint64_t>(in_[i] - '0');
      if (v > (kMax - digit) / 10) return false;  // out of uint64 range
      v = v * 10 + digit;
    }
    *out = v;
    return true;
  }

  bool at_end() {
    skip_ws_();
    return pos_ >= in_.size();
  }

 private:
  void skip_ws_() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view in_;
  std::size_t pos_ = 0;
};

/// Parse {"name":int,...} into fn(name, value). Empty object ok.
bool parse_int_object(JsonParser& p,
                      const std::function<void(std::string, std::int64_t)>&
                          fn) {
  if (!p.consume('{')) return false;
  if (p.consume('}')) return true;
  for (;;) {
    std::string key;
    std::int64_t value = 0;
    if (!p.string(&key) || !p.consume(':') || !p.integer(&value)) {
      return false;
    }
    fn(std::move(key), value);
    if (p.consume('}')) return true;
    if (!p.consume(',')) return false;
  }
}

/// Unsigned variant for counter/histogram maps: their values are
/// uint64 on the wire (to_json emits the full range), so parsing them
/// through int64 would reject the top half and let "-2" wrap to 2^64-2.
bool parse_uint_object(JsonParser& p,
                       const std::function<void(std::string, std::uint64_t)>&
                           fn) {
  if (!p.consume('{')) return false;
  if (p.consume('}')) return true;
  for (;;) {
    std::string key;
    std::uint64_t value = 0;
    if (!p.string(&key) || !p.consume(':') || !p.unsigned_integer(&value)) {
      return false;
    }
    fn(std::move(key), value);
    if (p.consume('}')) return true;
    if (!p.consume(',')) return false;
  }
}

}  // namespace

std::string Snapshot::to_json() const {
  std::string out;
  out.reserve(256 + 48 * (counters.size() + gauges.size()) +
              96 * histograms.size());
  out += "{\"node_id\":" + std::to_string(node_id) +
         ",\"captured_ns\":" + std::to_string(captured_ns) +
         ",\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ',';
    first = false;
    append_json_string(&out, name);
    out += ':';
    out += std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ',';
    first = false;
    append_json_string(&out, name);
    out += ':';
    out += std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ',';
    first = false;
    append_json_string(&out, name);
    out += ":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) +
           ",\"p50\":" + std::to_string(h.p50) +
           ",\"p90\":" + std::to_string(h.p90) +
           ",\"p99\":" + std::to_string(h.p99) +
           ",\"max\":" + std::to_string(h.max) + "}";
  }
  out += "}}";
  return out;
}

Result<Snapshot> Snapshot::from_json(std::string_view json) {
  JsonParser p(json);
  Snapshot s;
  std::string key;
  if (!p.consume('{')) return Errc::corruption;

  if (!p.string(&key)) return Errc::corruption;

  // Optional provenance stamp ("node_id","captured_ns") before
  // "counters"; absent in pre-stamp JSON, so tolerate either shape.
  if (key == "node_id") {
    std::uint64_t v = 0;
    if (!p.consume(':') || !p.unsigned_integer(&v) || !p.consume(',') ||
        !p.string(&key) ||
        v > std::numeric_limits<std::uint32_t>::max()) {
      return Errc::corruption;
    }
    s.node_id = static_cast<std::uint32_t>(v);
  }
  if (key == "captured_ns") {
    std::uint64_t v = 0;
    if (!p.consume(':') || !p.unsigned_integer(&v) || !p.consume(',') ||
        !p.string(&key)) {
      return Errc::corruption;
    }
    s.captured_ns = v;
  }

  // "counters"
  if (key != "counters" || !p.consume(':')) {
    return Errc::corruption;
  }
  if (!parse_uint_object(p, [&](std::string name, std::uint64_t v) {
        s.counters[std::move(name)] = v;
      })) {
    return Errc::corruption;
  }

  // "gauges"
  if (!p.consume(',') || !p.string(&key) || key != "gauges" ||
      !p.consume(':')) {
    return Errc::corruption;
  }
  if (!parse_int_object(p, [&](std::string name, std::int64_t v) {
        s.gauges[std::move(name)] = v;
      })) {
    return Errc::corruption;
  }

  // "histograms"
  if (!p.consume(',') || !p.string(&key) || key != "histograms" ||
      !p.consume(':') || !p.consume('{')) {
    return Errc::corruption;
  }
  if (!p.consume('}')) {
    for (;;) {
      std::string name;
      if (!p.string(&name) || !p.consume(':')) return Errc::corruption;
      HistogramStats hs;
      bool ok = parse_uint_object(p, [&](std::string field, std::uint64_t v) {
        const auto u = v;
        if (field == "count") hs.count = u;
        else if (field == "sum") hs.sum = u;
        else if (field == "p50") hs.p50 = u;
        else if (field == "p90") hs.p90 = u;
        else if (field == "p99") hs.p99 = u;
        else if (field == "max") hs.max = u;
      });
      if (!ok) return Errc::corruption;
      s.histograms[std::move(name)] = hs;
      if (p.consume('}')) break;
      if (!p.consume(',')) return Errc::corruption;
    }
  }
  if (!p.consume('}')) return Errc::corruption;
  return s;
}

// ---------- Tracer ----------

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

Tracer::Tracer(std::size_t capacity)
    : slots_(round_up_pow2(capacity)), mask_(slots_.size() - 1) {}

void Tracer::record(const char* name, std::uint64_t trace_id,
                    std::uint64_t span_id, std::uint64_t parent_span_id,
                    std::uint16_t rpc_id, std::uint32_t attempt,
                    std::uint64_t start_ns,
                    std::uint64_t duration_ns) noexcept {
  const std::uint64_t idx = cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[idx & mask_];
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  slot.span_id.store(span_id, std::memory_order_relaxed);
  slot.parent_span_id.store(parent_span_id, std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  slot.rpc_id.store(rpc_id, std::memory_order_relaxed);
  slot.attempt.store(attempt, std::memory_order_relaxed);
  slot.thread.store(log::thread_number(), std::memory_order_relaxed);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.duration_ns.store(duration_ns, std::memory_order_relaxed);
  // Publish last: a dump observing this seq sees plausible fields (a
  // concurrent overwrite can still mix spans — accepted, see header).
  slot.seq.store(idx + 1, std::memory_order_release);
}

std::vector<TraceSpan> Tracer::dump() const {
  struct Numbered {
    std::uint64_t seq;
    TraceSpan span;
  };
  std::vector<Numbered> present;
  present.reserve(slots_.size());
  const std::uint32_t node = node_id();
  for (const Slot& slot : slots_) {
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq == 0) continue;  // never written
    TraceSpan span;
    span.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    span.span_id = slot.span_id.load(std::memory_order_relaxed);
    span.parent_span_id =
        slot.parent_span_id.load(std::memory_order_relaxed);
    span.node_id = node;
    span.name = slot.name.load(std::memory_order_relaxed);
    span.rpc_id = static_cast<std::uint16_t>(
        slot.rpc_id.load(std::memory_order_relaxed));
    span.attempt = slot.attempt.load(std::memory_order_relaxed);
    span.thread = slot.thread.load(std::memory_order_relaxed);
    span.start_ns = slot.start_ns.load(std::memory_order_relaxed);
    span.duration_ns = slot.duration_ns.load(std::memory_order_relaxed);
    present.push_back(Numbered{seq, span});
  }
  std::sort(present.begin(), present.end(),
            [](const Numbered& a, const Numbered& b) { return a.seq < b.seq; });
  std::vector<TraceSpan> out;
  out.reserve(present.size());
  for (auto& n : present) out.push_back(n.span);
  return out;
}

Tracer& Tracer::global() {
  static Tracer* g = new Tracer(4096);
  return *g;
}

}  // namespace gekko::metrics
