// relaxed-ok: the context is thread-local; node id, enable flag, and
// threshold are independent configuration scalars with no dependent
// non-atomic data.
#include "common/trace.h"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"
#include "common/logging.h"

namespace gekko::trace {

// ---------- span context ----------

namespace {
thread_local SpanContext tls_context{};
}  // namespace

SpanContext current() noexcept { return tls_context; }
void set_current(SpanContext ctx) noexcept { tls_context = ctx; }

namespace {
/// Process-unique id source: a per-process random-ish base (the tracer
/// pointer's address entropy mixed with the pid-salted counter) plus a
/// monotonic counter, both run through the splitmix64 finalizer so ids
/// from different processes diverge in the high bits too.
std::uint64_t next_id() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  static const std::uint64_t base =
      mix64(reinterpret_cast<std::uint64_t>(&counter) ^
            (static_cast<std::uint64_t>(::getpid()) << 40));
  const std::uint64_t id =
      mix64(base + counter.fetch_add(1, std::memory_order_relaxed));
  return id == 0 ? 1 : id;  // 0 is the "none" sentinel
}
}  // namespace

std::uint64_t new_trace_id() noexcept { return next_id(); }
std::uint64_t new_span_id() noexcept { return next_id(); }

// ---------- node identity ----------

std::uint32_t node_id() noexcept {
  return metrics::Tracer::global().node_id();
}
void set_node_id(std::uint32_t id) noexcept {
  metrics::Tracer::global().set_node_id(id);
}
void set_node_id_if_unset(std::uint32_t id) noexcept {
  metrics::Tracer::global().set_node_id_if_unset(id);
}

// ---------- sampling ----------

namespace {
std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{[] {
    const char* env = std::getenv("GEKKO_TRACE");
    return !(env != nullptr && env[0] == '0' && env[1] == '\0');
  }()};
  return flag;
}
}  // namespace

bool enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}
void set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

// ---------- slow-op watchdog ----------

namespace {
std::atomic<std::uint64_t>& threshold_ns() noexcept {
  static std::atomic<std::uint64_t> t{[]() -> std::uint64_t {
    if (const char* env = std::getenv("GEKKO_SLOW_OP_MS")) {
      char* end = nullptr;
      const unsigned long long ms = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0') return ms * 1'000'000ull;
    }
    return 200ull * 1'000'000ull;  // default: 200 ms
  }()};
  return t;
}

struct StagePad {
  std::array<std::pair<const char*, std::uint64_t>, 8> stages;
  std::size_t count = 0;
};
thread_local StagePad tls_stages{};

void append_ms(std::string* out, std::uint64_t ns) {
  // "12.345ms" without iostream formatting overhead.
  const std::uint64_t us = ns / 1000;
  *out += std::to_string(us / 1000);
  *out += '.';
  const std::uint64_t frac = us % 1000;
  if (frac < 100) *out += '0';
  if (frac < 10) *out += '0';
  *out += std::to_string(frac);
  *out += "ms";
}

std::string hex_id(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out = "0x";
  bool started = false;
  for (int shift = 60; shift >= 0; shift -= 4) {
    const unsigned nibble = (v >> shift) & 0xf;
    if (nibble != 0 || started || shift == 0) {
      out += digits[nibble];
      started = true;
    }
  }
  return out;
}
}  // namespace

std::uint64_t slow_op_threshold_ns() noexcept {
  return threshold_ns().load(std::memory_order_relaxed);
}
void set_slow_op_threshold_ms(std::uint64_t ms) noexcept {
  threshold_ns().store(ms * 1'000'000ull, std::memory_order_relaxed);
}

void stages_reset() noexcept { tls_stages.count = 0; }

void stage_add(const char* stage, std::uint64_t ns) noexcept {
  StagePad& pad = tls_stages;
  // Merge repeats (a fan-out adds "io" once per join round).
  for (std::size_t i = 0; i < pad.count; ++i) {
    if (pad.stages[i].first == stage) {
      pad.stages[i].second += ns;
      return;
    }
  }
  if (pad.count < pad.stages.size()) {
    pad.stages[pad.count++] = {stage, ns};
  }
}

std::vector<std::pair<const char*, std::uint64_t>> stages_snapshot() {
  const StagePad& pad = tls_stages;
  return {pad.stages.begin(), pad.stages.begin() + pad.count};
}

void log_slow_op(
    const char* layer, std::string_view op, std::uint64_t trace_id,
    std::uint64_t total_ns,
    std::initializer_list<std::pair<const char*, std::uint64_t>>
        extra_stages) {
  std::string line = "slow-op ";
  line += layer;
  line += '.';
  line += op;
  line += " trace=";
  line += hex_id(trace_id);
  line += " total=";
  append_ms(&line, total_ns);
  const StagePad& pad = tls_stages;
  for (std::size_t i = 0; i < pad.count; ++i) {
    line += ' ';
    line += pad.stages[i].first;
    line += '=';
    append_ms(&line, pad.stages[i].second);
  }
  for (const auto& [name, ns] : extra_stages) {
    line += ' ';
    line += name;
    line += '=';
    append_ms(&line, ns);
  }
  // Counted as well as logged: gkfs-mon derives a cluster slow-op RATE
  // from this family, which a log line cannot provide.
  static metrics::Counter& slow_ops =
      metrics::Registry::global().counter("trace.slow_ops");
  slow_ops.inc();
  GEKKO_WARN("trace") << line;
}

// ---------- assembly ----------

Span to_span(const metrics::TraceSpan& s) {
  Span out;
  out.trace_id = s.trace_id;
  out.span_id = s.span_id;
  out.parent_span_id = s.parent_span_id;
  out.node_id = s.node_id;
  out.name = s.name;
  out.rpc_id = s.rpc_id;
  out.attempt = s.attempt;
  out.thread = s.thread;
  out.start_ns = s.start_ns;
  out.duration_ns = s.duration_ns;
  return out;
}

void Assembler::add(Span span) {
  if (span.trace_id == 0) return;
  auto& spans = by_trace_[span.trace_id];
  for (const Span& existing : spans) {
    if (existing.span_id == span.span_id && span.span_id != 0) {
      return;  // duplicate delivery / double dump
    }
  }
  spans.push_back(std::move(span));
  ++count_;
}

void Assembler::add_spans(const std::vector<Span>& spans,
                          std::int64_t clock_offset_ns) {
  for (Span s : spans) {
    s.start_ns = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(s.start_ns) + clock_offset_ns);
    add(std::move(s));
  }
}

void Assembler::add_spans(const std::vector<metrics::TraceSpan>& spans,
                          std::int64_t clock_offset_ns) {
  for (const metrics::TraceSpan& s : spans) {
    Span owned = to_span(s);
    owned.start_ns = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(owned.start_ns) + clock_offset_ns);
    add(std::move(owned));
  }
}

std::vector<TraceTree> Assembler::assemble() const {
  std::vector<TraceTree> trees;
  trees.reserve(by_trace_.size());
  for (const auto& [trace_id, spans] : by_trace_) {
    TraceTree tree;
    tree.trace_id = trace_id;
    tree.spans = spans;
    // Parents start before their children (the parent span opened
    // first); sorting makes child lists chronological and rendering
    // stable regardless of dump arrival order.
    std::sort(tree.spans.begin(), tree.spans.end(),
              [](const Span& a, const Span& b) {
                return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                                : a.span_id < b.span_id;
              });
    tree.children.resize(tree.spans.size());
    std::unordered_map<std::uint64_t, std::size_t> index;
    index.reserve(tree.spans.size());
    for (std::size_t i = 0; i < tree.spans.size(); ++i) {
      if (tree.spans[i].span_id != 0) index.emplace(tree.spans[i].span_id, i);
    }
    tree.start_ns = UINT64_MAX;
    for (std::size_t i = 0; i < tree.spans.size(); ++i) {
      const Span& s = tree.spans[i];
      tree.start_ns = std::min(tree.start_ns, s.start_ns);
      tree.end_ns = std::max(tree.end_ns, s.end_ns());
      const auto parent = index.find(s.parent_span_id);
      if (s.parent_span_id == 0 || parent == index.end() ||
          parent->second == i) {
        // True root, or an orphan whose parent was lost to ring wrap /
        // drops: adopt as a root so the partial trace still renders.
        tree.roots.push_back(i);
      } else {
        tree.children[parent->second].push_back(i);
      }
    }
    if (tree.spans.empty()) tree.start_ns = 0;
    trees.push_back(std::move(tree));
  }
  std::sort(trees.begin(), trees.end(),
            [](const TraceTree& a, const TraceTree& b) {
              return a.start_ns < b.start_ns;
            });
  return trees;
}

std::vector<TraceTree> Assembler::slowest(std::size_t k) const {
  std::vector<TraceTree> trees = assemble();
  std::sort(trees.begin(), trees.end(),
            [](const TraceTree& a, const TraceTree& b) {
              return a.duration_ns() > b.duration_ns();
            });
  if (trees.size() > k) trees.resize(k);
  return trees;
}

// ---------- Chrome Trace Event export ----------

namespace {

void append_escaped(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out->push_back('?');
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

/// Microseconds with ns precision kept as 3 decimals.
void append_us(std::string* out, std::uint64_t ns) {
  *out += std::to_string(ns / 1000);
  *out += '.';
  const std::uint64_t frac = ns % 1000;
  if (frac < 100) *out += '0';
  if (frac < 10) *out += '0';
  *out += std::to_string(frac);
}

}  // namespace

std::string to_chrome_json(const std::vector<TraceTree>& trees) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ',';
    first = false;
  };

  // Process-name metadata, once per node.
  std::unordered_set<std::uint32_t> nodes;
  for (const TraceTree& tree : trees) {
    for (const Span& s : tree.spans) nodes.insert(s.node_id);
  }
  std::vector<std::uint32_t> ordered(nodes.begin(), nodes.end());
  std::sort(ordered.begin(), ordered.end());
  for (const std::uint32_t node : ordered) {
    sep();
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
           std::to_string(node) + ",\"tid\":0,\"args\":{\"name\":";
    append_escaped(&out, node == kUnknownNode
                             ? std::string("node ?")
                             : "node " + std::to_string(node));
    out += "}}";
  }

  for (const TraceTree& tree : trees) {
    for (std::size_t i = 0; i < tree.spans.size(); ++i) {
      const Span& s = tree.spans[i];
      sep();
      out += "{\"ph\":\"X\",\"name\":";
      append_escaped(&out, s.name);
      out += ",\"cat\":\"gekko\",\"pid\":" + std::to_string(s.node_id) +
             ",\"tid\":" + std::to_string(s.thread) + ",\"ts\":";
      append_us(&out, s.start_ns);
      out += ",\"dur\":";
      append_us(&out, s.duration_ns);
      out += ",\"args\":{\"trace\":";
      append_escaped(&out, hex_id(s.trace_id));
      out += ",\"span\":";
      append_escaped(&out, hex_id(s.span_id));
      if (s.rpc_id != 0) out += ",\"rpc\":" + std::to_string(s.rpc_id);
      if (s.attempt != 0) out += ",\"attempt\":" + std::to_string(s.attempt);
      out += "}}";

      // Flow arrow for each cross-node parent→child edge (the RPC
      // hop). Same cat+id+name binds the s/f pair; the child span id
      // is unique per edge.
      for (const std::size_t child_idx : tree.children[i]) {
        const Span& child = tree.spans[child_idx];
        if (child.node_id == s.node_id) continue;
        const std::string id = hex_id(child.span_id);
        sep();
        out += "{\"ph\":\"s\",\"name\":\"rpc\",\"cat\":\"rpc\",\"id\":";
        append_escaped(&out, id);
        out += ",\"pid\":" + std::to_string(s.node_id) +
               ",\"tid\":" + std::to_string(s.thread) + ",\"ts\":";
        append_us(&out, s.start_ns);
        out += "}";
        sep();
        out += "{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"rpc\",\"cat\":\"rpc\","
               "\"id\":";
        append_escaped(&out, id);
        out += ",\"pid\":" + std::to_string(child.node_id) +
               ",\"tid\":" + std::to_string(child.thread) + ",\"ts\":";
        append_us(&out, child.start_ns);
        out += "}";
      }
    }
  }
  out += "]}";
  return out;
}

namespace {

/// Cursor over the exporter's JSON subset (strings, numbers, flat
/// objects with one level of nested object to skip).
class ChromeParser {
 public:
  explicit ChromeParser(std::string_view in) : in_(in) {}

  bool consume(char c) {
    skip_ws_();
    if (pos_ >= in_.size() || in_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool peek(char c) {
    skip_ws_();
    return pos_ < in_.size() && in_[pos_] == c;
  }

  bool string(std::string* out) {
    skip_ws_();
    if (pos_ >= in_.size() || in_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < in_.size() && in_[pos_] != '"') {
      char c = in_[pos_++];
      if (c == '\\' && pos_ < in_.size()) c = in_[pos_++];
      out->push_back(c);
    }
    if (pos_ >= in_.size()) return false;
    ++pos_;
    return true;
  }

  bool number(double* out) {
    skip_ws_();
    const std::size_t start = pos_;
    if (pos_ < in_.size() && (in_[pos_] == '-' || in_[pos_] == '+')) ++pos_;
    while (pos_ < in_.size() &&
           (std::isdigit(static_cast<unsigned char>(in_[pos_])) ||
            in_[pos_] == '.' || in_[pos_] == 'e' || in_[pos_] == 'E' ||
            in_[pos_] == '-' || in_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    *out = std::strtod(std::string(in_.substr(start, pos_ - start)).c_str(),
                       nullptr);
    return true;
  }

  /// Skip a balanced {...} value (the "args" payload).
  bool skip_object() {
    skip_ws_();
    if (pos_ >= in_.size() || in_[pos_] != '{') return false;
    int depth = 0;
    bool in_string = false;
    while (pos_ < in_.size()) {
      const char c = in_[pos_++];
      if (in_string) {
        if (c == '\\') {
          if (pos_ < in_.size()) ++pos_;
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      if (c == '"') in_string = true;
      else if (c == '{') ++depth;
      else if (c == '}' && --depth == 0) return true;
    }
    return false;
  }

 private:
  void skip_ws_() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view in_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<std::vector<ChromeEvent>> parse_chrome_json(std::string_view json) {
  ChromeParser p(json);
  std::string key;
  if (!p.consume('{') || !p.string(&key) || key != "traceEvents" ||
      !p.consume(':') || !p.consume('[')) {
    return Errc::corruption;
  }
  std::vector<ChromeEvent> events;
  if (!p.consume(']')) {
    for (;;) {
      if (!p.consume('{')) return Errc::corruption;
      ChromeEvent ev;
      if (!p.consume('}')) {
        for (;;) {
          if (!p.string(&key) || !p.consume(':')) return Errc::corruption;
          if (p.peek('{')) {
            if (!p.skip_object()) return Errc::corruption;
          } else if (p.peek('"')) {
            std::string v;
            if (!p.string(&v)) return Errc::corruption;
            if (key == "name") ev.name = v;
            else if (key == "cat") ev.cat = v;
            else if (key == "ph") ev.ph = v;
            else if (key == "id") ev.id = v;
          } else {
            double v = 0;
            if (!p.number(&v)) return Errc::corruption;
            if (key == "pid") ev.pid = static_cast<std::int64_t>(v);
            else if (key == "tid") ev.tid = static_cast<std::int64_t>(v);
            else if (key == "ts") ev.ts = v;
            else if (key == "dur") ev.dur = v;
          }
          if (p.consume('}')) break;
          if (!p.consume(',')) return Errc::corruption;
        }
      }
      events.push_back(std::move(ev));
      if (p.consume(']')) break;
      if (!p.consume(',')) return Errc::corruption;
    }
  }
  if (!p.consume('}')) return Errc::corruption;
  return events;
}

// ---------- rendering ----------

namespace {

void format_span_(const TraceTree& tree, std::size_t idx, int depth,
                  const RpcNameFn& rpc_name, std::string* out) {
  const Span& s = tree.spans[idx];
  out->append(static_cast<std::size_t>(2 + 2 * depth), ' ');
  std::string label = s.name;
  if (s.rpc_id != 0) {
    std::string rpc;
    if (rpc_name) rpc = rpc_name(s.rpc_id);
    if (rpc.empty()) rpc = "id" + std::to_string(s.rpc_id);
    label += ' ';
    label += rpc;
  }
  if (s.attempt != 0) label += " attempt=" + std::to_string(s.attempt);
  *out += label;
  if (label.size() < 36) out->append(36 - label.size(), ' ');
  *out += " node=";
  *out += s.node_id == kUnknownNode ? std::string("?")
                                    : std::to_string(s.node_id);
  *out += " t";
  *out += std::to_string(s.thread);
  *out += " +";
  append_ms(out, s.start_ns - tree.start_ns);
  *out += ' ';
  append_ms(out, s.duration_ns);
  *out += '\n';
  for (const std::size_t child : tree.children[idx]) {
    format_span_(tree, child, depth + 1, rpc_name, out);
  }
}

}  // namespace

std::string format_trace(const TraceTree& tree, const RpcNameFn& rpc_name) {
  std::string out = "trace ";
  out += hex_id(tree.trace_id);
  out += " total=";
  append_ms(&out, tree.duration_ns());
  out += " spans=";
  out += std::to_string(tree.spans.size());
  out += '\n';
  for (const std::size_t root : tree.roots) {
    format_span_(tree, root, 0, rpc_name, &out);
  }
  return out;
}

}  // namespace gekko::trace
