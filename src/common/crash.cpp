// Fatal-signal postmortem writer. This translation unit is held to the
// async-signal-safety rule by gekko-lint: outside the marked setup
// section at the bottom, only signal-safe calls are allowed (write,
// fsync, clock_gettime, raise, _exit, the flight::sfmt helpers, and
// the install-time-warmed backtrace pair). See DESIGN.md §17.
// relaxed-ok: the handler guard, fd, and double-buffer index are
// independent scalars; the metrics buffers publish via release/acquire
// on the active index.
#include "common/crash.h"

#include <execinfo.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/flight_recorder.h"
#include "common/lockdep.h"
#include "common/logging.h"

namespace gekko::crash {
namespace {

namespace sfmt = flight::sfmt;

constexpr std::size_t kPathCap = 512;
constexpr std::size_t kBuildCap = 256;
constexpr std::size_t kMetricsCap = 64 * 1024;
constexpr std::size_t kBacktraceFrames = 64;
constexpr std::size_t kFlightTail = 64;  // last-N events per ring

std::atomic<int> g_fd{-1};  // -1 = not installed; reports go nowhere
std::atomic<bool> g_to_stderr{false};
std::atomic<std::uint32_t> g_node_id{0};
char g_path[kPathCap];   // written only at install time
char g_build[kBuildCap]; // written only at install time
std::atomic<int> g_in_handler{0};

/// Metrics double buffer: the publisher fills the inactive side, then
/// release-stores its index; the handler acquire-loads and reads a
/// complete snapshot.
char g_metrics[2][kMetricsCap];
std::atomic<std::size_t> g_metrics_len[2];
std::atomic<int> g_metrics_active{-1};

const int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};

const char* signal_name(int sig) noexcept {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    default: return "SIG?";
  }
}

std::uint64_t monotonic_ns() noexcept {
  struct timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

void fatal_handler(int sig, siginfo_t* /*info*/, void* /*uctx*/) {
  // A second fatal signal (crash while reporting) skips straight to
  // death; the half-written report stays parseable (truncation is an
  // expected input of flight::parse_postmortem).
  if (g_in_handler.exchange(1, std::memory_order_relaxed) != 0) {
    ::_exit(128 + sig);
  }
  const int fd = g_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    write_report(fd, sig);
    ::fsync(fd);
    if (!g_to_stderr.load(std::memory_order_relaxed)) {
      // A breadcrumb on stderr pointing at the report file.
      sfmt::write_str(2, "gkfsd: fatal ");
      sfmt::write_str(2, signal_name(sig));
      sfmt::write_str(2, ", postmortem at ");
      sfmt::write_str(2, g_path);
      sfmt::write_str(2, "\n");
    }
  }
  // Bound log loss: the active sink fd was registered at setup.
  ::fsync(log::sink_fd());
  // SA_RESETHAND restored the default disposition; re-raise so the
  // process dies with the original signal's wait status / core dump.
  // The signal is blocked during its own handler, so it must be
  // unblocked first or raise() only marks it pending and the _exit
  // below would turn the death into a normal exit.
  sigset_t unblock;
  sigemptyset(&unblock);
  sigaddset(&unblock, sig);
  ::sigprocmask(SIG_UNBLOCK, &unblock, nullptr);
  ::raise(sig);
  ::_exit(128 + sig);
}

}  // namespace

void write_report(int fd, int sig) noexcept {
  sfmt::write_str(fd, "GEKKO-POSTMORTEM v1\n");
  if (sig != 0) {
    sfmt::write_str(fd, "signal ");
    sfmt::write_dec(fd, static_cast<std::uint64_t>(sig));
    sfmt::write_str(fd, " ");
    sfmt::write_str(fd, signal_name(sig));
    sfmt::write_str(fd, "\n");
  }
  sfmt::write_str(fd, "node ");
  sfmt::write_dec(fd, g_node_id.load(std::memory_order_relaxed));
  sfmt::write_str(fd, "\npid ");
  sfmt::write_dec(fd, static_cast<std::uint64_t>(::getpid()));
  sfmt::write_str(fd, "\ntime_ns ");
  sfmt::write_dec(fd, monotonic_ns());
  sfmt::write_str(fd, "\nbuild ");
  sfmt::write_str(fd, g_build);
  sfmt::write_str(fd, "\n[backtrace]\n");
  if (sig != 0) {
    // backtrace() was warmed at install (its first call may allocate);
    // backtrace_symbols_fd formats straight to the fd, no malloc.
    void* frames[kBacktraceFrames];
    const int n = ::backtrace(frames, kBacktraceFrames);
    if (n > 0) ::backtrace_symbols_fd(frames, n, fd);
  }
  sfmt::write_str(fd, "[locks]\n");
  lockdep::crash_dump(fd);
  sfmt::write_str(fd, "[inflight]\n");
  flight::crash_dump_inflight(fd);
  sfmt::write_str(fd, "[flight]\n");
  flight::crash_dump_events(fd, kFlightTail);
  sfmt::write_str(fd, "[metrics]\n");
  const int active = g_metrics_active.load(std::memory_order_acquire);
  if (active >= 0) {
    const auto len = g_metrics_len[active].load(std::memory_order_relaxed);
    if (len > 0) {
      sfmt::write_all(fd, g_metrics[active], len);
      sfmt::write_str(fd, "\n");
    }
  }
  sfmt::write_str(fd, "[log]\n");
  log::crash_dump_tail(fd);
  sfmt::write_str(fd, "END\n");
}

void write_live_report(int fd) noexcept { write_report(fd, 0); }

// crash-setup-begin — everything below runs in normal (non-signal)
// context: install-time preparation, the metrics publisher, and clean
// shutdown. Unsafe calls are fine here; the handler never enters.

Status install(const InstallOptions& opts) {
  g_node_id.store(opts.node_id, std::memory_order_relaxed);
  std::snprintf(g_build, sizeof(g_build), "%s",
                opts.build_info != nullptr ? opts.build_info : "");

  // Resolve the report destination and pre-open it: the handler must
  // not call open() on a path that may no longer be creatable.
  const char* dir = opts.dir;
  if (dir == nullptr) dir = std::getenv("GEKKO_CRASH_DIR");
  int fd = -1;
  if (dir != nullptr && dir[0] != '\0') {
    std::snprintf(g_path, sizeof(g_path), "%s/gkfsd.%u.%d.crash", dir,
                  opts.node_id, static_cast<int>(::getpid()));
    fd = ::open(g_path, O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      return Status{Errc::io_error,
                    std::string("crash: cannot open ") + g_path};
    }
    g_to_stderr.store(false, std::memory_order_relaxed);
  } else {
    g_path[0] = '\0';
    fd = 2;
    g_to_stderr.store(true, std::memory_order_relaxed);
  }
  const int old = g_fd.exchange(fd, std::memory_order_relaxed);
  if (old >= 0 && old != 2 && old != fd) ::close(old);

  // Warm the backtrace machinery: the first backtrace() call may
  // dlopen/allocate, which must not happen inside the handler.
  void* warm[4];
  ::backtrace(warm, 4);

  // Alternate stack so a stack-overflow SIGSEGV can still report.
  static char* alt_stack = nullptr;
  if (alt_stack == nullptr) {
    const std::size_t alt_size =
        SIGSTKSZ > 64 * 1024 ? static_cast<std::size_t>(SIGSTKSZ)
                             : std::size_t{64 * 1024};
    alt_stack = static_cast<char*>(std::malloc(alt_size));
    if (alt_stack != nullptr) {
      stack_t ss{};
      ss.ss_sp = alt_stack;
      ss.ss_size = alt_size;
      ::sigaltstack(&ss, nullptr);
    }
  }

  struct sigaction sa{};
  sa.sa_sigaction = &fatal_handler;
  sigemptyset(&sa.sa_mask);
  // SA_RESETHAND: the disposition reverts to default on entry, so the
  // handler's re-raise kills the process with the real signal.
  sa.sa_flags = SA_SIGINFO | SA_RESETHAND | SA_ONSTACK;
  for (const int sig : kFatalSignals) {
    ::sigaction(sig, &sa, nullptr);
  }
  g_in_handler.store(0, std::memory_order_relaxed);
  return Status::ok();
}

void disarm() noexcept {
  for (const int sig : kFatalSignals) {
    ::signal(sig, SIG_DFL);
  }
  const int fd = g_fd.exchange(-1, std::memory_order_relaxed);
  if (fd >= 0 && fd != 2) {
    // An orderly shutdown leaves no empty .crash file behind.
    struct stat st{};
    const bool empty = ::fstat(fd, &st) == 0 && st.st_size == 0;
    ::close(fd);
    if (empty && g_path[0] != '\0') ::unlink(g_path);
  }
}

std::string postmortem_path() { return std::string(g_path); }

void publish_metrics_json(std::string_view json) {
  const int active = g_metrics_active.load(std::memory_order_relaxed);
  const int next = active == 0 ? 1 : 0;
  const auto len = json.size() < kMetricsCap ? json.size() : kMetricsCap;
  std::memcpy(g_metrics[next], json.data(), len);
  g_metrics_len[next].store(len, std::memory_order_relaxed);
  g_metrics_active.store(next, std::memory_order_release);
}

// crash-setup-end

}  // namespace gekko::crash
