// gekko::flight — the always-on black box (flight recorder).
//
// Every thread that records gets its own lock-free ring of fixed
// 32-byte binary event records; recording is four relaxed atomic
// stores plus one release store of the ring cursor, cheap enough to
// leave on in production (GEKKO_FLIGHT=0 turns it off). Unlike the
// span Tracer — which exists to MEASURE and needs an active trace —
// the flight recorder exists to EXPLAIN a crash: it captures the last
// few hundred protocol-level events per thread (engine dispatch/retry/
// timeout, fabric connect/evict/redial/kill, daemon io slices, kv
// flush/compaction/WAL, client op entries) whether or not tracing is
// sampled on, and stays readable from a fatal-signal handler.
//
// Record layout (32 bytes, mirrored on the wire by FlightDumpResponse
// and in the postmortem text format):
//   w0: monotonic ns            w1: trace id (0 = untraced)
//   w2: arg a0 (u64)            w3: a1(u32) | subsys(u8) | code(u8)
// The recording thread's compact id lives in the ring header, not the
// record. Wrap accounting matches metrics::Tracer: cursor counts every
// record ever written; recorded > capacity ⇒ oldest were overwritten.
//
// Cross-thread reads (snapshot(), the crash writers) are deliberately
// racy: a reader may observe one torn record at the wrap point. That
// is the same telemetry contract the Tracer documents, and the price
// of a record path with no synchronization beyond the cursor.
//
// The module also owns two crash-oriented side tables:
//  - the process-wide in-flight RPC table (inflight_begin/end), a
//    fixed slot array the signal handler can walk where the engine's
//    mutex-guarded pending map cannot be touched;
//  - the postmortem text codec: crash.cpp writes it with the
//    async-signal-safe sfmt helpers below, parse_postmortem() reads
//    it back for gkfs-debug, tests, and the flight fuzz family.
// relaxed-ok: ring slots and cursors are single-writer telemetry
// scalars; the only cross-thread publication (cursor) uses
// release/acquire, and readers tolerate torn records by contract.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace gekko::flight {

// ---------- event vocabulary ----------

enum class Subsys : std::uint8_t {
  none = 0,
  engine = 1,  // rpc engine
  fabric = 2,  // transport lifecycle
  daemon = 3,  // daemon io path
  kv = 4,      // LSM internals
  client = 5,  // client op entry
};

/// Event codes, scoped per subsystem (the pair (subsys, code) names an
/// event; event_name() renders it).
namespace ev {
// Subsys::engine
inline constexpr std::uint8_t engine_dispatch = 1;  // a0=seq, a1=rpc_id
inline constexpr std::uint8_t engine_retry = 2;     // a0=attempt, a1=rpc_id
inline constexpr std::uint8_t engine_timeout = 3;   // a0=seq, a1=rpc_id
// Subsys::fabric
inline constexpr std::uint8_t fabric_connect = 1;  // a0=dest
inline constexpr std::uint8_t fabric_evict = 2;    // a0=dest
inline constexpr std::uint8_t fabric_redial = 3;   // a0=dest
inline constexpr std::uint8_t fabric_kill = 4;     // a0=dest, a1=seq(lo32)
// Subsys::daemon
inline constexpr std::uint8_t daemon_io_begin = 1;  // a0=chunk, a1=len
inline constexpr std::uint8_t daemon_io_end = 2;    // a0=chunk, a1=len
// Subsys::kv
inline constexpr std::uint8_t kv_flush = 1;        // a0=memtable bytes
inline constexpr std::uint8_t kv_compaction = 2;   // a0=level
inline constexpr std::uint8_t kv_wal_append = 3;   // a0=record bytes
inline constexpr std::uint8_t kv_wal_recover = 4;  // a0=records recovered
// Subsys::client
inline constexpr std::uint8_t client_op = 1;  // a0=tag(op name)
}  // namespace ev

/// Static names for the pair above ("engine", "dispatch", ...).
/// Unknown values render as "?" — decoders must not reject them (a
/// newer node's dump may carry codes this build does not know).
[[nodiscard]] const char* subsys_name(std::uint8_t subsys) noexcept;
[[nodiscard]] const char* event_name(std::uint8_t subsys,
                                     std::uint8_t code) noexcept;

/// Pack the first ≤8 bytes of a NUL-terminated string into a u64
/// (little-endian) so an event arg can carry a short ASCII tag — the
/// client op entry records tag("write") and gkfs-debug prints it back.
[[nodiscard]] std::uint64_t tag(const char* s) noexcept;
/// Inverse of tag(): writes up to 8 chars + NUL; non-printable bytes
/// become '.' so hostile dumps cannot smuggle terminal escapes.
void untag(std::uint64_t packed, char out[9]) noexcept;

// ---------- recording ----------

/// Global switch; defaults to the GEKKO_FLIGHT environment variable
/// (unset/"1"/"true" = on, "0"/"false" = off), read once.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Record one event in the calling thread's ring, tagging it with the
/// thread's current trace id (trace::current()). ~20ns when enabled,
/// one relaxed load when not.
void record(Subsys subsys, std::uint8_t code, std::uint64_t a0 = 0,
            std::uint32_t a1 = 0) noexcept;
/// Same, with an explicit trace id (progress threads handle messages
/// for OTHER traces and must not consult their own context).
void record_traced(Subsys subsys, std::uint8_t code, std::uint64_t trace_id,
                   std::uint64_t a0 = 0, std::uint32_t a1 = 0) noexcept;

// ---------- dumping (normal context) ----------

/// One decoded record (exactly the 32-byte wire layout, unpacked).
struct Event {
  std::uint64_t ts_ns = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t a0 = 0;
  std::uint32_t a1 = 0;
  std::uint16_t thread = 0;
  std::uint8_t subsys = 0;
  std::uint8_t code = 0;

  bool operator==(const Event&) const = default;
};

struct RingStats {
  std::uint64_t recorded = 0;  // total events ever, across all rings
  std::uint64_t capacity = 0;  // sum of ring capacities
};

/// All rings' resident events merged and sorted by timestamp (racy
/// reads; see the header comment). Empty slots are skipped.
[[nodiscard]] std::vector<Event> snapshot(RingStats* stats = nullptr);

// ---------- in-flight RPC table ----------

struct InflightEntry {
  std::uint64_t seq = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t start_ns = 0;
  std::uint32_t dest = 0;
  std::uint16_t rpc_id = 0;
};

/// Register/clear a forward in the fixed crash-visible slot table
/// (seq-indexed; a collision with an older still-pending call simply
/// skips registration — forensics, not accounting). Lock-free.
void inflight_begin(std::uint64_t seq, std::uint16_t rpc_id,
                    std::uint32_t dest, std::uint64_t trace_id) noexcept;
void inflight_end(std::uint64_t seq) noexcept;
[[nodiscard]] std::vector<InflightEntry> inflight_snapshot();

// ---------- async-signal-safe writers ----------
// Callable from a fatal-signal handler: write()-only, no allocation,
// no locks, no libc formatting. Also used by the SIGUSR2 live dump.

/// "ev <ts> t<thread> <subsys>.<event> trace=<hex> a0=<hex> a1=<dec>"
/// lines, up to `last_n` newest per ring.
void crash_dump_events(int fd, std::size_t last_n) noexcept;
/// "rpc seq=<dec> id=<dec> dest=<dec> trace=<hex> start_ns=<dec>".
void crash_dump_inflight(int fd) noexcept;

/// Minimal async-signal-safe formatting, shared with crash.cpp (which
/// gekko-lint holds to a no-unsafe-calls rule).
namespace sfmt {
/// Decimal/hex into `buf` (≥21 bytes); returns length, no NUL needed.
std::size_t dec(char* buf, std::uint64_t v) noexcept;
std::size_t hex(char* buf, std::uint64_t v) noexcept;
/// Loop write(2) until done or hard error (EINTR retried).
void write_all(int fd, const char* data, std::size_t n) noexcept;
void write_str(int fd, const char* s) noexcept;
void write_dec(int fd, std::uint64_t v) noexcept;
void write_hex(int fd, std::uint64_t v) noexcept;
}  // namespace sfmt

// ---------- postmortem text format ----------

/// Parsed postmortem report (see DESIGN.md §17 for the format). The
/// writer side lives in crash.cpp; this parser backs gkfs-debug, the
/// death tests, and the `flight` fuzz family — it must survive
/// arbitrary bytes (truncated reports from a crash-during-crash are
/// expected inputs, flagged via `complete`).
struct Postmortem {
  int signal = 0;              // 0 = live report (SIGUSR2 / exit dump)
  std::string signal_name;
  std::uint32_t node_id = 0;
  std::uint64_t pid = 0;
  std::uint64_t capture_ns = 0;
  std::string build;
  std::vector<std::string> backtrace;  // raw backtrace_symbols_fd lines
  struct HeldLock {
    std::uint32_t thread = 0;
    std::string name;
    int rank = -1;
  };
  std::vector<HeldLock> locks;
  std::vector<InflightEntry> inflight;
  std::vector<Event> events;
  std::string metrics_json;
  std::vector<std::string> log_tail;
  bool complete = false;  // END marker present
};

/// Parse a postmortem report. Only the magic line is required; every
/// section is optional (truncation-tolerant). Rejects (corruption)
/// input that does not start with the magic.
[[nodiscard]] Result<Postmortem> parse_postmortem(std::string_view text);

/// Re-render a parsed report in the canonical on-disk format (the
/// fuzz family asserts parse→render→parse is a fixed point on the
/// structured sections).
[[nodiscard]] std::string render_postmortem(const Postmortem& pm);

}  // namespace gekko::flight
