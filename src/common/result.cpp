#include "common/result.h"

#include <cerrno>

namespace gekko {

std::string_view errc_name(Errc e) noexcept {
  switch (e) {
    case Errc::ok: return "ok";
    case Errc::not_found: return "not_found";
    case Errc::exists: return "exists";
    case Errc::is_directory: return "is_directory";
    case Errc::not_directory: return "not_directory";
    case Errc::not_empty: return "not_empty";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::no_space: return "no_space";
    case Errc::io_error: return "io_error";
    case Errc::not_supported: return "not_supported";
    case Errc::bad_fd: return "bad_fd";
    case Errc::busy: return "busy";
    case Errc::timed_out: return "timed_out";
    case Errc::disconnected: return "disconnected";
    case Errc::corruption: return "corruption";
    case Errc::permission: return "permission";
    case Errc::overflow: return "overflow";
    case Errc::again: return "again";
    case Errc::name_too_long: return "name_too_long";
    case Errc::internal: return "internal";
  }
  return "unknown";
}

int errc_to_errno(Errc e) noexcept {
  switch (e) {
    case Errc::ok: return 0;
    case Errc::not_found: return ENOENT;
    case Errc::exists: return EEXIST;
    case Errc::is_directory: return EISDIR;
    case Errc::not_directory: return ENOTDIR;
    case Errc::not_empty: return ENOTEMPTY;
    case Errc::invalid_argument: return EINVAL;
    case Errc::no_space: return ENOSPC;
    case Errc::io_error: return EIO;
    case Errc::not_supported: return ENOTSUP;
    case Errc::bad_fd: return EBADF;
    case Errc::busy: return EBUSY;
    case Errc::timed_out: return ETIMEDOUT;
    case Errc::disconnected: return ECONNRESET;
    case Errc::corruption: return EIO;
    case Errc::permission: return EACCES;
    case Errc::overflow: return EOVERFLOW;
    case Errc::again: return EAGAIN;
    case Errc::name_too_long: return ENAMETOOLONG;
    case Errc::internal: return EIO;
  }
  return EIO;
}

}  // namespace gekko
