// Minimal thread-safe leveled logger.
//
// Daemons and clients are hot paths; logging must be cheap when
// disabled. The macros evaluate the level FIRST and never touch their
// stream arguments below threshold. Each emitted line is prefixed with
// a monotonic timestamp (seconds since process start) and a compact
// thread id so interleaved daemon/handler output can be attributed:
//   [   12.304157] [t03] [WARN ] rpc: ...
#pragma once

#include <atomic>
#include <cstdio>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace gekko::log {

enum class Level : int { trace = 0, debug = 1, info = 2, warn = 3, error = 4, off = 5 };

/// Global minimum level (default: warn, so tests/benches stay quiet).
std::atomic<Level>& threshold() noexcept;

void set_level(Level lvl) noexcept;
Level level() noexcept;

/// True if a message at `lvl` would be emitted. The macro guard.
inline bool enabled(Level lvl) noexcept {
  return static_cast<int>(lvl) >= static_cast<int>(level());
}

/// Redirect fully formatted lines (no trailing newline) to `sink`
/// instead of stderr; nullptr restores stderr. Test capture hook.
using Sink = std::function<void(Level, std::string_view line)>;
void set_sink(Sink sink);

/// Small dense id for the calling thread (1, 2, 3, ... in first-log
/// order) — far more readable than std::thread::id hashes.
unsigned thread_number() noexcept;

/// Emit one line: "[ts] [tid] [lvl] component: message", atomically.
void write(Level lvl, std::string_view component, std::string_view message);

/// Every emitted line (any level at or above threshold) is also copied
/// into a bounded in-memory tail ring, regardless of sink. The crash
/// module writes that tail into postmortem reports so the last moments
/// before a fatal signal survive even when the active sink's buffering
/// would have eaten them.
///
/// Async-signal-safe: dumps the tail (oldest first) to `fd` with raw
/// write(2); a line being written concurrently may appear torn.
void crash_dump_tail(int fd) noexcept;

/// File descriptor behind the active sink (stderr by default). The
/// fatal-signal path fsync()s it — fflush() is not async-signal-safe,
/// so a process that redirects logs to a file should register the fd
/// here to bound loss on abort.
void set_sink_fd(int fd) noexcept;
[[nodiscard]] int sink_fd() noexcept;

namespace detail {
class LineBuilder {
 public:
  LineBuilder(Level lvl, std::string_view component)
      : lvl_(lvl), component_(component) {}
  ~LineBuilder() { write(lvl_, component_, os_.str()); }
  template <typename T>
  LineBuilder& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  Level lvl_;
  std::string_view component_;
  std::ostringstream os_;
};

/// Absorbs a LineBuilder chain into void so GEKKO_LOG can be a single
/// ternary expression. `&` binds looser than `<<`, so the whole chain
/// runs (or is skipped) as one operand.
struct Voidify {
  void operator&(const LineBuilder&) const noexcept {}
};
}  // namespace detail

}  // namespace gekko::log

// A single expression, not an if/else: usable inside un-braced
// if/else branches without dangling-else capture, and the stream
// arguments are never evaluated when the level is disabled.
#define GEKKO_LOG(lvl, component)                     \
  !::gekko::log::enabled(lvl)                         \
      ? (void)0                                       \
      : ::gekko::log::detail::Voidify() &             \
            ::gekko::log::detail::LineBuilder(lvl, component)

#define GEKKO_TRACE(component) GEKKO_LOG(::gekko::log::Level::trace, component)
#define GEKKO_DEBUG(component) GEKKO_LOG(::gekko::log::Level::debug, component)
#define GEKKO_INFO(component) GEKKO_LOG(::gekko::log::Level::info, component)
#define GEKKO_WARN(component) GEKKO_LOG(::gekko::log::Level::warn, component)
#define GEKKO_ERROR(component) GEKKO_LOG(::gekko::log::Level::error, component)
