// Minimal thread-safe leveled logger.
//
// Daemons and clients are hot paths; logging must be cheap when disabled.
// The macro guards evaluate the level before formatting anything.
#pragma once

#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>

namespace gekko::log {

enum class Level : int { trace = 0, debug = 1, info = 2, warn = 3, error = 4, off = 5 };

/// Global minimum level (default: warn, so tests/benches stay quiet).
std::atomic<Level>& threshold() noexcept;

void set_level(Level lvl) noexcept;
Level level() noexcept;

/// Emit one line: "[lvl] component: message\n" to stderr, atomically.
void write(Level lvl, std::string_view component, std::string_view message);

namespace detail {
class LineBuilder {
 public:
  LineBuilder(Level lvl, std::string_view component)
      : lvl_(lvl), component_(component) {}
  ~LineBuilder() { write(lvl_, component_, os_.str()); }
  template <typename T>
  LineBuilder& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  Level lvl_;
  std::string_view component_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace gekko::log

#define GEKKO_LOG(lvl, component)                                      \
  if (static_cast<int>(lvl) < static_cast<int>(::gekko::log::level())) \
    ;                                                                  \
  else                                                                 \
    ::gekko::log::detail::LineBuilder(lvl, component)

#define GEKKO_TRACE(component) GEKKO_LOG(::gekko::log::Level::trace, component)
#define GEKKO_DEBUG(component) GEKKO_LOG(::gekko::log::Level::debug, component)
#define GEKKO_INFO(component) GEKKO_LOG(::gekko::log::Level::info, component)
#define GEKKO_WARN(component) GEKKO_LOG(::gekko::log::Level::warn, component)
#define GEKKO_ERROR(component) GEKKO_LOG(::gekko::log::Level::error, component)
