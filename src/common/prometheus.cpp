#include "common/prometheus.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/stats.h"

namespace gekko::prom {
namespace {

bool valid_name_start(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool valid_name_char(char c) noexcept {
  return valid_name_start(c) || (c >= '0' && c <= '9');
}

std::string escape_label_value(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// `{a="1",le="250"}` or "" when there are no labels. `extra_key` (if
/// non-empty) is merged into sort position with the base labels.
std::string label_block(const std::map<std::string, std::string>& base,
                        std::string_view extra_key = {},
                        std::string_view extra_value = {}) {
  if (base.empty() && extra_key.empty()) return {};
  std::map<std::string, std::string> all = base;
  if (!extra_key.empty()) all[std::string(extra_key)] = extra_value;
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : all) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out += '"';
  }
  out += '}';
  return out;
}

std::string u64str(std::uint64_t v) { return std::to_string(v); }

}  // namespace

std::string mangle(std::string_view name) {
  std::string out;
  constexpr std::string_view kPrefix = "gekko_";
  if (name.substr(0, kPrefix.size()) != kPrefix) out = kPrefix;
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    out += valid_name_char(c) && c != ':' ? c : '_';
  }
  if (out.empty() || !valid_name_start(out[0])) out.insert(out.begin(), '_');
  return out;
}

std::string_view family_type_name(FamilyType t) noexcept {
  switch (t) {
    case FamilyType::counter: return "counter";
    case FamilyType::gauge: return "gauge";
    case FamilyType::histogram: return "histogram";
    case FamilyType::untyped: return "untyped";
  }
  return "untyped";
}

std::string render(const metrics::Registry& registry,
                   const RenderOptions& opts) {
  const metrics::Snapshot snap = registry.snapshot();
  const auto hists = registry.histograms_full();
  const std::string labels = label_block(opts.labels);
  std::string out;

  for (const auto& [name, value] : snap.counters) {
    const std::string m = mangle(name);
    out += "# TYPE " + m + " counter\n";
    out += m + labels + " " + u64str(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string m = mangle(name);
    out += "# TYPE " + m + " gauge\n";
    out += m + labels + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, hist] : hists) {
    const std::string m = mangle(name);
    out += "# TYPE " + m + " histogram\n";
    // Cumulative buckets: only boundaries where the count advances,
    // so the series stays small despite 1024 raw buckets. +Inf is
    // mandatory and always equals _count.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
      const std::uint64_t b = hist.bucket_count(i);
      if (b == 0) continue;
      cumulative += b;
      out += m + "_bucket" +
             label_block(opts.labels, "le",
                         u64str(LatencyHistogram::upper_bound_of(i))) +
             " " + u64str(cumulative) + "\n";
    }
    out += m + "_bucket" + label_block(opts.labels, "le", "+Inf") + " " +
           u64str(hist.count()) + "\n";
    out += m + "_sum" + labels + " " + u64str(hist.sum()) + "\n";
    out += m + "_count" + labels + " " + u64str(hist.count()) + "\n";
  }
  return out;
}

double Exposition::value_or(std::string_view family, double fallback) const {
  const Family* f = find(family);
  if (f == nullptr) return fallback;
  for (const auto& s : f->samples) {
    if (s.name == f->name) return s.value;
  }
  return fallback;
}

namespace {

Status parse_error(std::size_t line, std::string msg) {
  return Status{Errc::corruption,
                "line " + std::to_string(line) + ": " + std::move(msg)};
}

/// One parsed line-in-progress cursor.
struct Cursor {
  std::string_view s;
  std::size_t pos = 0;

  [[nodiscard]] bool eof() const noexcept { return pos >= s.size(); }
  [[nodiscard]] char peek() const noexcept { return eof() ? '\0' : s[pos]; }
  void skip_spaces() noexcept {
    while (!eof() && (s[pos] == ' ' || s[pos] == '\t')) ++pos;
  }
};

bool read_name(Cursor& c, std::string& out) {
  if (c.eof() || !valid_name_start(c.peek())) return false;
  const std::size_t start = c.pos;
  while (!c.eof() && valid_name_char(c.peek())) ++c.pos;
  out.assign(c.s.substr(start, c.pos - start));
  return true;
}

Status read_labels(Cursor& c, std::size_t line,
                   std::map<std::string, std::string>& out) {
  ++c.pos;  // consume '{'
  c.skip_spaces();
  if (c.peek() == '}') {
    ++c.pos;
    return Status::ok();
  }
  while (true) {
    std::string key;
    if (!read_name(c, key)) return parse_error(line, "bad label name");
    if (c.peek() != '=') return parse_error(line, "expected '=' after label");
    ++c.pos;
    if (c.peek() != '"') return parse_error(line, "label value not quoted");
    ++c.pos;
    std::string value;
    while (!c.eof() && c.peek() != '"') {
      char ch = c.peek();
      if (ch == '\\') {
        ++c.pos;
        if (c.eof()) return parse_error(line, "dangling escape");
        const char esc = c.peek();
        if (esc == 'n') {
          ch = '\n';
        } else if (esc == '\\' || esc == '"') {
          ch = esc;
        } else {
          return parse_error(line, "bad escape in label value");
        }
      }
      value += ch;
      ++c.pos;
    }
    if (c.eof()) return parse_error(line, "unterminated label value");
    ++c.pos;  // closing quote
    if (!out.emplace(std::move(key), std::move(value)).second) {
      return parse_error(line, "duplicate label");
    }
    c.skip_spaces();
    if (c.peek() == ',') {
      ++c.pos;
      c.skip_spaces();
      continue;
    }
    if (c.peek() == '}') {
      ++c.pos;
      return Status::ok();
    }
    return parse_error(line, "expected ',' or '}' in labels");
  }
}

Status read_value(Cursor& c, std::size_t line, double& out) {
  c.skip_spaces();
  if (c.eof()) return parse_error(line, "missing sample value");
  const std::string token(c.s.substr(c.pos));
  if (token == "+Inf" || token == "Inf") {
    out = std::numeric_limits<double>::infinity();
    return Status::ok();
  }
  if (token == "-Inf") {
    out = -std::numeric_limits<double>::infinity();
    return Status::ok();
  }
  char* end = nullptr;
  out = std::strtod(token.c_str(), &end);
  if (end == token.c_str()) return parse_error(line, "bad sample value");
  while (*end == ' ' || *end == '\t') ++end;
  // A trailing integer would be a timestamp; we never emit them and
  // reject them to keep the round-trip exact.
  if (*end != '\0') return parse_error(line, "trailing junk after value");
  return Status::ok();
}

/// Base family for a sample name: exact family match wins; otherwise a
/// histogram suffix (_bucket/_sum/_count) stripped down to a declared
/// histogram family.
const std::string* base_family(
    const std::map<std::string, Family>& families, const std::string& name,
    const std::map<std::string, std::string>& suffix_index) {
  if (families.count(name) != 0) return &families.find(name)->first;
  auto it = suffix_index.find(name);
  return it == suffix_index.end() ? nullptr : &it->second;
}

}  // namespace

Result<Exposition> parse(std::string_view text) {
  Exposition expo;
  // sample-name -> base histogram family, built as TYPE lines arrive.
  std::map<std::string, std::string> suffix_index;
  // Last line each family was touched on, so the histogram post-pass
  // can still report "line N: ..." context.
  std::map<std::string, std::size_t> family_line;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    std::string_view line = text.substr(
        start, nl == std::string_view::npos ? std::string_view::npos
                                            : nl - start);
    start = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (line.empty()) continue;

    if (line[0] == '#') {
      Cursor c{line, 1};
      c.skip_spaces();
      std::string keyword;
      if (!read_name(c, keyword)) continue;  // bare comment
      if (keyword == "HELP") continue;
      if (keyword != "TYPE") continue;  // other comments are legal
      c.skip_spaces();
      std::string fam_name;
      if (!read_name(c, fam_name)) {
        return parse_error(line_no, "bad family name in # TYPE");
      }
      c.skip_spaces();
      std::string type_name;
      if (!read_name(c, type_name)) {
        return parse_error(line_no, "missing type in # TYPE");
      }
      FamilyType type;
      if (type_name == "counter") {
        type = FamilyType::counter;
      } else if (type_name == "gauge") {
        type = FamilyType::gauge;
      } else if (type_name == "histogram") {
        type = FamilyType::histogram;
      } else if (type_name == "untyped" || type_name == "summary") {
        type = FamilyType::untyped;
      } else {
        return parse_error(line_no, "unknown type '" + type_name + "'");
      }
      auto [it, inserted] = expo.families.try_emplace(fam_name);
      if (!inserted) {
        return parse_error(line_no, "duplicate # TYPE for '" + fam_name + "'");
      }
      it->second.name = fam_name;
      it->second.type = type;
      family_line[fam_name] = line_no;
      if (type == FamilyType::histogram) {
        for (const char* suffix : {"_bucket", "_sum", "_count"}) {
          suffix_index.emplace(fam_name + suffix, fam_name);
        }
      }
      continue;
    }

    // Sample line.
    Cursor c{line, 0};
    Sample sample;
    if (!read_name(c, sample.name)) {
      return parse_error(line_no, "bad sample name");
    }
    if (c.peek() == '{') {
      GEKKO_RETURN_IF_ERROR(read_labels(c, line_no, sample.labels));
    }
    GEKKO_RETURN_IF_ERROR(read_value(c, line_no, sample.value));
    const std::string* base =
        base_family(expo.families, sample.name, suffix_index);
    if (base == nullptr) {
      return parse_error(line_no,
                         "sample '" + sample.name + "' has no # TYPE");
    }
    family_line[*base] = line_no;
    expo.families[*base].samples.push_back(std::move(sample));
  }

  // Histogram semantics: cumulative buckets ending in +Inf == _count.
  for (const auto& [fam_name, fam] : expo.families) {
    if (fam.type != FamilyType::histogram) continue;
    double prev_le = -std::numeric_limits<double>::infinity();
    double prev_cum = -1.0;
    double inf_value = -1.0;
    double count_value = -1.0;
    bool have_sum = false;
    const std::string bucket_name = fam_name + "_bucket";
    for (const auto& s : fam.samples) {
      if (s.name == bucket_name) {
        auto le_it = s.labels.find("le");
        if (le_it == s.labels.end()) {
          return parse_error(
              family_line[fam_name],
              fam_name + ": bucket sample without le label");
        }
        double le;
        if (le_it->second == "+Inf" || le_it->second == "Inf") {
          le = std::numeric_limits<double>::infinity();
        } else {
          char* end = nullptr;
          le = std::strtod(le_it->second.c_str(), &end);
          if (end == le_it->second.c_str() || *end != '\0') {
            return parse_error(
                family_line[fam_name], fam_name + ": bad le value");
          }
        }
        if (le <= prev_le) {
          return parse_error(
              family_line[fam_name], fam_name + ": le bounds not increasing");
        }
        if (s.value < prev_cum) {
          return parse_error(
              family_line[fam_name], fam_name + ": buckets not cumulative");
        }
        prev_le = le;
        prev_cum = s.value;
        if (std::isinf(le)) inf_value = s.value;
      } else if (s.name == fam_name + "_count") {
        count_value = s.value;
      } else if (s.name == fam_name + "_sum") {
        have_sum = true;
      }
    }
    if (inf_value < 0.0) {
      return parse_error(
          family_line[fam_name], fam_name + ": missing +Inf bucket");
    }
    if (count_value < 0.0) {
      return parse_error(
          family_line[fam_name], fam_name + ": missing _count");
    }
    if (!have_sum) {
      return parse_error(
          family_line[fam_name], fam_name + ": missing _sum");
    }
    if (inf_value != count_value) {
      return parse_error(
          family_line[fam_name], fam_name + ": +Inf bucket != _count");
    }
  }
  return expo;
}

}  // namespace gekko::prom
