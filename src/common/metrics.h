// gekko::metrics — process-wide observability substrate.
//
// Counters, gauges, and latency histograms behind a named Registry,
// plus a lock-free ring-buffer Tracer for per-RPC span capture. The
// record path is the hot path of every layer (client forwarders,
// engine progress/handler threads, daemon service handlers, storage
// and KV internals), so it takes NO lock:
//  - Counter: cache-line-sharded relaxed atomics (threads hash to a
//    shard; value() sums),
//  - Gauge: one relaxed atomic int64,
//  - Histogram: the LatencyHistogram bucket scheme with atomic bucket
//    counters (power-of-two buckets, 16 linear sub-buckets),
//  - Tracer: slots are atomic fields claimed by a fetch_add cursor.
// Registration (Registry::counter("layer.op.metric") etc.) takes a
// mutex but happens once per name; callers cache the reference.
//
// Metric naming scheme: `layer.op.metric`, e.g. `rpc.caller.stat.sent`,
// `daemon.write_chunks.latency`, `kv.compactions`, `net.socket.bytes_out`.
//
// snapshot() walks the registry under its mutex while recorders keep
// going (relaxed reads may be a few events stale — fine for telemetry)
// and serializes to a small JSON subset that Snapshot::from_json()
// parses back (gkfs-top, tests).
// relaxed-ok: counters, gauges, histogram buckets, and tracer slots
// are independent monotonic telemetry scalars; readers tolerate a few
// stale events and no non-atomic data is published through them (the
// tracer's seq field, the one real publication, uses release/acquire).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "common/thread_annotations.h"

namespace gekko::metrics {

/// Monotonic nanoseconds (steady clock) for latency measurement.
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonically increasing event counter, sharded across cache lines
/// so concurrent recorders never contend on one line.
class Counter {
 public:
  static constexpr std::size_t kShards = 8;

  void inc(std::uint64_t n = 1) noexcept {
    shards_[shard_index_()].v.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };

  static std::size_t shard_index_() noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t idx =
        next.fetch_add(1, std::memory_order_relaxed);
    return idx % kShards;
  }

  std::array<Shard, kShards> shards_{};
};

/// Point-in-time signed value (in-flight ops, republished absolutes).
class Gauge {
 public:
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  void sub(std::int64_t d) noexcept {
    v_.fetch_sub(d, std::memory_order_relaxed);
  }
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Concurrent latency histogram: LatencyHistogram's log2+linear bucket
/// layout with atomic bucket counters. record() is wait-free.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = LatencyHistogram::kBuckets;

  void record(std::uint64_t v) noexcept {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    buckets_[LatencyHistogram::index_of(v)].fetch_add(
        1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Copy the atomic buckets into a plain LatencyHistogram (for
  /// quantiles and merging). Concurrent recording keeps going; the
  /// copy is a consistent-enough telemetry view, not a barrier.
  [[nodiscard]] LatencyHistogram materialize() const noexcept {
    std::array<std::uint64_t, kBuckets> buckets;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    LatencyHistogram h;
    h.load(buckets, sum_.load(std::memory_order_relaxed));
    return h;
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Precomputed histogram digest carried in snapshots (quantiles cannot
/// be aggregated after the fact, so they are computed at capture time).
struct HistogramStats {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t max = 0;

  [[nodiscard]] double mean() const noexcept {
    return count ? static_cast<double>(sum) / static_cast<double>(count)
                 : 0.0;
  }
};

/// Point-in-time view of a Registry, serializable to/from JSON. The
/// JSON shape is the wire format of the daemon_stat telemetry RPC:
/// {"node_id":N,"captured_ns":T,"counters":{...},"gauges":{...},
///  "histograms":{"name":{"count":..,"sum":..,"p50":..,"p90":..,
///                        "p99":..,"max":..}}}
/// node_id + captured_ns make offline merges of snapshots from many
/// daemons unambiguous (which node, and in what order on that node's
/// monotonic clock). The parser accepts their absence (pre-stamp JSON).
struct Snapshot {
  /// 0xffffffff = not stamped (the daemon stamps its endpoint id).
  std::uint32_t node_id = 0xffffffffu;
  /// Monotonic (steady-clock) ns at capture on the producing node.
  std::uint64_t captured_ns = 0;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramStats> histograms;

  [[nodiscard]] std::string to_json() const;
  static Result<Snapshot> from_json(std::string_view json);

  [[nodiscard]] std::uint64_t counter_or(std::string_view name,
                                         std::uint64_t fallback = 0) const {
    auto it = counters.find(std::string(name));
    return it == counters.end() ? fallback : it->second;
  }
  [[nodiscard]] std::int64_t gauge_or(std::string_view name,
                                      std::int64_t fallback = 0) const {
    auto it = gauges.find(std::string(name));
    return it == gauges.end() ? fallback : it->second;
  }
};

/// Named metric owner. Lookup interns the name under a mutex (cold:
/// once per call site); the returned reference is stable for the
/// Registry's lifetime, so hot paths cache it and record lock-free.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] Snapshot snapshot() const;

  /// Full bucket-resolution copy of every histogram. Snapshot carries
  /// only quantile digests; Prometheus exposition needs the cumulative
  /// buckets themselves (prometheus.h renders them as `_bucket`
  /// series).
  [[nodiscard]] std::map<std::string, LatencyHistogram>
  histograms_full() const;

  /// Process-wide default registry (daemons, tools, benches).
  static Registry& global();

 private:
  /// Guards only the name-interning maps; the metric objects behind
  /// the unique_ptrs are lock-free and accessed without it.
  mutable Mutex mutex_{"metrics.registry", lockdep::rank::kMetricsRegistry};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GEKKO_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GEKKO_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GEKKO_GUARDED_BY(mutex_);
};

/// One captured span of a traced request. `name` must point at a
/// string literal (or other static-storage string): the tracer stores
/// the pointer, not a copy, to keep record() allocation-free (enforced
/// by gekko-lint's span-name rule).
///
/// span_id/parent_span_id make spans causal: a child's parent_span_id
/// names the span that caused it, possibly on another node (the RPC
/// engine ships the caller's span id in net::Message::parent_span).
/// 0 = no parent (a root span). See trace.h for the assembly layer.
struct TraceSpan {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  /// Stamped by Tracer::dump() from the tracer's node id.
  std::uint32_t node_id = 0xffffffffu;
  const char* name = "";
  std::uint16_t rpc_id = 0;
  /// Retry generation of the caller span (0 = first try).
  std::uint32_t attempt = 0;
  /// Compact recording-thread id (log::thread_number()).
  std::uint32_t thread = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
};

/// Fixed-capacity ring buffer of spans, dumpable on demand. record()
/// claims a slot with one fetch_add and writes atomic fields — no
/// lock, safe from any thread. A dump that races an in-progress
/// overwrite may observe a mixed span (telemetry, not a ledger);
/// unclaimed slots are skipped.
class Tracer {
 public:
  /// Capacity is rounded up to a power of two (minimum 8).
  explicit Tracer(std::size_t capacity = 4096);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// `name` first so the literal-name contract is mechanically
  /// checkable at every call site. The recording thread id is stamped
  /// here; the node id at dump() (one per tracer, not per span).
  void record(const char* name, std::uint64_t trace_id, std::uint64_t span_id,
              std::uint64_t parent_span_id, std::uint16_t rpc_id,
              std::uint32_t attempt, std::uint64_t start_ns,
              std::uint64_t duration_ns) noexcept;

  /// Spans currently resident, oldest first. At most capacity() spans:
  /// once the ring wraps, the oldest are overwritten.
  [[nodiscard]] std::vector<TraceSpan> dump() const;

  /// Total spans ever recorded (including overwritten ones).
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return cursor_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Node identity stamped on dumped spans (0xffffffff = unset). The
  /// engine assigns its fabric endpoint id at construction; first
  /// assignment wins so a client process keeps its primary endpoint.
  void set_node_id(std::uint32_t id) noexcept {
    node_id_.store(id, std::memory_order_relaxed);
  }
  void set_node_id_if_unset(std::uint32_t id) noexcept {
    std::uint32_t unset = 0xffffffffu;
    node_id_.compare_exchange_strong(unset, id, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint32_t node_id() const noexcept {
    return node_id_.load(std::memory_order_relaxed);
  }

  static Tracer& global();

 private:
  struct Slot {
    /// 0 = never written; else 1 + logical index of the producing
    /// record() call (monotonic, so dump() can order slots).
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> span_id{0};
    std::atomic<std::uint64_t> parent_span_id{0};
    std::atomic<const char*> name{""};
    std::atomic<std::uint32_t> rpc_id{0};
    std::atomic<std::uint32_t> attempt{0};
    std::atomic<std::uint32_t> thread{0};
    std::atomic<std::uint64_t> start_ns{0};
    std::atomic<std::uint64_t> duration_ns{0};
  };

  std::vector<Slot> slots_;
  std::size_t mask_;
  std::atomic<std::uint64_t> cursor_{0};
  std::atomic<std::uint32_t> node_id_{0xffffffffu};
};

}  // namespace gekko::metrics
