// Flat key-value configuration with typed getters.
//
// Used for daemon/cluster settings ("chunk_size=512KiB",
// "net.latency_us=1.3"). Values parse sizes with binary suffixes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/result.h"

namespace gekko {

class Config {
 public:
  Config() = default;

  /// Parse "key=value" lines; '#' starts a comment; blank lines skipped.
  static Result<Config> parse(std::string_view text);

  void set(std::string key, std::string value) {
    entries_[std::move(key)] = std::move(value);
  }

  [[nodiscard]] bool contains(const std::string& key) const {
    return entries_.contains(key);
  }

  [[nodiscard]] std::string get_string(const std::string& key,
                                       std::string fallback = {}) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback = 0) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback = 0.0) const;
  [[nodiscard]] bool get_bool(const std::string& key,
                              bool fallback = false) const;
  /// Parses "512KiB", "4MiB", "1GiB", "64k", plain numbers.
  [[nodiscard]] std::uint64_t get_size(const std::string& key,
                                       std::uint64_t fallback = 0) const;

  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

  /// Parse a size literal: digits with optional k/m/g | KiB/MiB/GiB | KB...
  static Result<std::uint64_t> parse_size(std::string_view text);

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace gekko
