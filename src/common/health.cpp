#include "common/health.h"

#include "common/logging.h"
#include "common/thread_annotations.h"

namespace gekko::health {

const char* state_name(State s) noexcept {
  switch (s) {
    case State::alive: return "alive";
    case State::suspect: return "suspect";
    case State::dead: return "dead";
  }
  return "unknown";
}

Tracker::Tracker(Thresholds thresholds, metrics::Registry* registry)
    : thresholds_(thresholds) {
  if (thresholds_.suspect_after == 0) thresholds_.suspect_after = 1;
  if (thresholds_.dead_after <= thresholds_.suspect_after) {
    thresholds_.dead_after = thresholds_.suspect_after + 1;
  }
  metrics::Registry& reg =
      registry != nullptr ? *registry : metrics::Registry::global();
  to_alive_ = &reg.counter("health.transitions.alive");
  to_suspect_ = &reg.counter("health.transitions.suspect");
  to_dead_ = &reg.counter("health.transitions.dead");
  g_alive_ = &reg.gauge("health.nodes.alive");
  g_suspect_ = &reg.gauge("health.nodes.suspect");
  g_dead_ = &reg.gauge("health.nodes.dead");
}

void Tracker::track(std::uint32_t node) {
  LockGuard lock(mutex_);
  if (nodes_.try_emplace(node).second) publish_gauges_();
}

State Tracker::record_ok(std::uint32_t node, std::uint64_t now_ns) {
  LockGuard lock(mutex_);
  Node& n = nodes_[node];
  n.h.probes++;
  n.h.last_probe_ns = now_ns;
  n.h.last_ok_ns = now_ns;
  // Transition first so the recovery log can report how many misses it
  // took; the streak resets either way.
  if (n.h.state != State::alive) set_state_(n, node, State::alive);
  n.h.consecutive_misses = 0;
  return n.h.state;
}

State Tracker::record_miss(std::uint32_t node, std::uint64_t now_ns) {
  LockGuard lock(mutex_);
  Node& n = nodes_[node];
  n.h.probes++;
  n.h.last_probe_ns = now_ns;
  ++n.h.consecutive_misses;
  if (n.h.consecutive_misses >= thresholds_.dead_after) {
    if (n.h.state != State::dead) set_state_(n, node, State::dead);
  } else if (n.h.consecutive_misses >= thresholds_.suspect_after) {
    if (n.h.state == State::alive) set_state_(n, node, State::suspect);
  }
  return n.h.state;
}

State Tracker::state_of(std::uint32_t node) const {
  LockGuard lock(mutex_);
  auto it = nodes_.find(node);
  return it == nodes_.end() ? State::alive : it->second.h.state;
}

NodeHealth Tracker::health_of(std::uint32_t node) const {
  LockGuard lock(mutex_);
  auto it = nodes_.find(node);
  return it == nodes_.end() ? NodeHealth{} : it->second.h;
}

std::map<std::uint32_t, NodeHealth> Tracker::all() const {
  LockGuard lock(mutex_);
  std::map<std::uint32_t, NodeHealth> out;
  for (const auto& [id, n] : nodes_) out[id] = n.h;
  return out;
}

std::size_t Tracker::count(State s) const {
  LockGuard lock(mutex_);
  std::size_t n = 0;
  for (const auto& [id, node] : nodes_) {
    if (node.h.state == s) ++n;
  }
  return n;
}

void Tracker::set_state_(Node& n, std::uint32_t node, State to) {
  const State from = n.h.state;
  n.h.state = to;
  ++n.h.transitions;
  switch (to) {
    case State::alive: to_alive_->inc(); break;
    case State::suspect: to_suspect_->inc(); break;
    case State::dead: to_dead_->inc(); break;
  }
  publish_gauges_();
  // Degradations warn, recoveries inform — operators tail for "dead".
  if (to == State::alive) {
    GEKKO_INFO("health") << "node " << node << " " << state_name(from)
                         << " -> " << state_name(to) << " (recovered after "
                         << n.h.consecutive_misses << " misses)";
  } else {
    GEKKO_WARN("health") << "node " << node << " " << state_name(from)
                         << " -> " << state_name(to) << " ("
                         << n.h.consecutive_misses << " consecutive misses)";
  }
}

void Tracker::publish_gauges_() {
  std::int64_t alive = 0;
  std::int64_t suspect = 0;
  std::int64_t dead = 0;
  for (const auto& [id, node] : nodes_) {
    switch (node.h.state) {
      case State::alive: ++alive; break;
      case State::suspect: ++suspect; break;
      case State::dead: ++dead; break;
    }
  }
  g_alive_->set(alive);
  g_suspect_->set(suspect);
  g_dead_->set(dead);
}

}  // namespace gekko::health
