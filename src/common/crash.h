// gekko::crash — fatal-signal postmortem reports (the black box dump).
//
// install() arms sigaction handlers for SIGSEGV/SIGABRT/SIGBUS/SIGFPE/
// SIGILL. When one fires, the handler writes a postmortem report —
// build info, backtrace, every thread's lockdep held-lock stack, the
// engine's in-flight RPC table, the last-N flight-recorder events, the
// most recent pre-serialized metrics snapshot, and the log tail ring —
// to a file pre-opened under GEKKO_CRASH_DIR (stderr when unset), then
// fsyncs and re-raises so the process still dies with the original
// signal's disposition (core dumps, wait status, etc. are preserved).
//
// Everything the handler touches is prepared at install time or kept
// in crash-visible lock-free structures by the rest of the system:
// the output fd is pre-opened, build info pre-formatted, the metrics
// snapshot double-buffered by publish_metrics_json(), and the flight/
// lockdep/log modules expose async-signal-safe dump entry points. The
// handler itself performs only write()/fsync()/clock_gettime() and the
// warmed backtrace pair — gekko-lint enforces the discipline on this
// translation unit (see tools/gekko-lint.py, signal-safety rule, and
// DESIGN.md §17 for exactly what is and is not captured in-handler).
//
// The same report writer doubles as the SIGUSR1/SIGUSR2 "live report"
// path (signal 0): identical format minus the signal header, so one
// parser (flight::parse_postmortem) and one decoder (gkfs-debug)
// serve both crash forensics and live debugging.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace gekko::crash {

struct InstallOptions {
  /// Directory for the postmortem file; nullptr consults the
  /// GEKKO_CRASH_DIR environment variable, and when that is unset too
  /// the report goes to stderr at crash time (no file is created).
  const char* dir = nullptr;
  /// Stamped into the report header ("node N").
  std::uint32_t node_id = 0;
  /// Pre-formatted build/version string for the header ("build ...").
  const char* build_info = "";
};

/// Arm the fatal-signal handlers. Pre-opens the postmortem file (named
/// gkfsd.<node>.<pid>.crash), installs an alternate signal stack so
/// stack-overflow SIGSEGVs still report, and warms backtrace() (whose
/// first call may allocate). Idempotent; later calls re-point the
/// report file. Returns io_error if the crash dir is not writable.
Status install(const InstallOptions& opts);

/// Restore default dispositions and remove the (empty) postmortem
/// file. Call at clean daemon shutdown so an orderly exit leaves no
/// stray .crash files behind.
void disarm() noexcept;

/// Path of the pre-opened postmortem file; empty in stderr mode or
/// before install().
[[nodiscard]] std::string postmortem_path();

/// Publish a pre-serialized metrics snapshot for the handler to embed
/// in the [metrics] section. Double-buffered: the handler always sees
/// a complete, older-or-current snapshot, never a torn one. Call from
/// ONE thread (the metrics sampler tick); last write wins.
void publish_metrics_json(std::string_view json);

/// Async-signal-safe report writer. `sig` != 0 writes the full crash
/// report (signal header + backtrace); 0 writes a live report (node,
/// locks, in-flight RPCs, flight events, metrics, log tail). Usable
/// directly for SIGUSR2-style live dumps to any fd.
void write_report(int fd, int sig) noexcept;
void write_live_report(int fd) noexcept;

}  // namespace gekko::crash
