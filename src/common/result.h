// Result/Status types used across all gekko modules.
//
// GekkoFS forwards POSIX-style error codes end-to-end (client -> RPC ->
// daemon -> KV/storage and back), so the error domain is a compact
// errno-like enum that serializes to a single byte on the wire.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace gekko {

/// Error codes. Values are stable (serialized on the wire).
enum class Errc : std::uint8_t {
  ok = 0,
  not_found = 1,         // ENOENT
  exists = 2,            // EEXIST
  is_directory = 3,      // EISDIR
  not_directory = 4,     // ENOTDIR
  not_empty = 5,         // ENOTEMPTY
  invalid_argument = 6,  // EINVAL
  no_space = 7,          // ENOSPC
  io_error = 8,          // EIO
  not_supported = 9,     // ENOTSUP (rename/link/... in GekkoFS)
  bad_fd = 10,           // EBADF
  busy = 11,             // EBUSY
  timed_out = 12,        // ETIMEDOUT
  disconnected = 13,     // endpoint gone / daemon down
  corruption = 14,       // checksum mismatch in WAL/SST/chunk
  permission = 15,       // EACCES (only from the node-local FS)
  overflow = 16,         // EOVERFLOW
  again = 17,            // EAGAIN / retryable
  name_too_long = 18,    // ENAMETOOLONG
  internal = 19,         // invariant violation
};

/// Human-readable name for an error code.
std::string_view errc_name(Errc e) noexcept;

/// Map to the closest POSIX errno value (for the gkfs_* C-like API).
int errc_to_errno(Errc e) noexcept;

/// A status: either ok or an error code with optional context message.
class [[nodiscard]] Status {
 public:
  Status() noexcept : code_(Errc::ok) {}
  /*implicit*/ Status(Errc code) noexcept : code_(code) {}
  Status(Errc code, std::string context)
      : code_(code), context_(std::move(context)) {}

  static Status ok() noexcept { return Status{}; }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == Errc::ok; }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] Errc code() const noexcept { return code_; }
  [[nodiscard]] const std::string& context() const noexcept {
    return context_;
  }

  [[nodiscard]] std::string to_string() const {
    std::string s{errc_name(code_)};
    if (!context_.empty()) {
      s += ": ";
      s += context_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }
  friend bool operator==(const Status& a, Errc e) noexcept {
    return a.code_ == e;
  }

 private:
  Errc code_;
  std::string context_;
};

/// Result<T>: value or Status. A minimal `expected`-alike (gcc 12 has no
/// <expected>). Error construction goes through Status/Errc implicitly.
template <typename T>
class [[nodiscard]] Result {
 public:
  /*implicit*/ Result(T value) : repr_(std::move(value)) {}
  /*implicit*/ Result(Errc code) : repr_(Status{code}) {
    assert(code != Errc::ok && "use a value for success");
  }
  /*implicit*/ Result(Status status) : repr_(std::move(status)) {
    assert(!std::get<Status>(repr_).is_ok() && "use a value for success");
  }

  [[nodiscard]] bool is_ok() const noexcept {
    return std::holds_alternative<T>(repr_);
  }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] const T& value() const& {
    assert(is_ok());
    return std::get<T>(repr_);
  }
  [[nodiscard]] T& value() & {
    assert(is_ok());
    return std::get<T>(repr_);
  }
  [[nodiscard]] T&& take() && {
    assert(is_ok());
    return std::get<T>(std::move(repr_));
  }
  [[nodiscard]] T value_or(T fallback) const& {
    return is_ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  [[nodiscard]] Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(repr_);
  }
  [[nodiscard]] Errc code() const noexcept {
    return is_ok() ? Errc::ok : std::get<Status>(repr_).code();
  }

  const T* operator->() const {
    assert(is_ok());
    return &std::get<T>(repr_);
  }
  T* operator->() {
    assert(is_ok());
    return &std::get<T>(repr_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::get<T>(std::move(repr_)); }

 private:
  std::variant<T, Status> repr_;
};

/// Propagate an error Status from an expression returning Status.
#define GEKKO_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::gekko::Status _gekko_st = (expr);              \
    if (!_gekko_st.is_ok()) return _gekko_st;        \
  } while (0)

/// Evaluate an expression returning Result<T>; assign value or propagate.
#define GEKKO_ASSIGN_OR_RETURN(lhs, expr)            \
  auto GEKKO_CONCAT_(_gekko_res, __LINE__) = (expr); \
  if (!GEKKO_CONCAT_(_gekko_res, __LINE__).is_ok())  \
    return GEKKO_CONCAT_(_gekko_res, __LINE__).status(); \
  lhs = std::move(GEKKO_CONCAT_(_gekko_res, __LINE__)).take()

#define GEKKO_CONCAT_(a, b) GEKKO_CONCAT_IMPL_(a, b)
#define GEKKO_CONCAT_IMPL_(a, b) a##b

}  // namespace gekko
