// gekko::health — per-daemon liveness state machine.
//
// The failure-detection primitive the replication/repair work will
// consume (ROADMAP "Replication + online repair"): a Tracker holds one
// state per monitored node and advances it on heartbeat outcomes fed
// by whoever probes (rpc::HeartbeatMonitor, gkfs-mon):
//
//     alive --miss×suspect_after--> suspect --miss×dead_after--> dead
//       ^                              |                           |
//       +------------- ok (redial succeeded) ---------------------+
//
// Thresholds count CONSECUTIVE misses from the last success, so the
// suspect->dead edge is "dead_after total misses", not "dead_after
// more after suspect". Any successful probe snaps the node back to
// alive from either degraded state (Mercury's model: the transport
// redials transparently, so one good response IS recovery).
//
// Every transition is exported twice: a log line (operator tail) and
// metric families (health.transitions.<state> counters plus
// health.nodes.<state> gauges) so Prometheus scrapes and gkfs-mon see
// the same truth.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/metrics.h"
#include "common/thread_annotations.h"

namespace gekko::health {

enum class State : std::uint8_t {
  alive = 0,
  suspect = 1,
  dead = 2,
};

[[nodiscard]] const char* state_name(State s) noexcept;

struct Thresholds {
  /// Consecutive misses that demote alive -> suspect.
  std::uint32_t suspect_after = 2;
  /// Consecutive misses that demote (alive|suspect) -> dead.
  /// Clamped to > suspect_after.
  std::uint32_t dead_after = 4;
};

struct NodeHealth {
  State state = State::alive;
  std::uint32_t consecutive_misses = 0;
  std::uint64_t probes = 0;       // total outcomes recorded
  std::uint64_t transitions = 0;  // state changes observed
  std::uint64_t last_ok_ns = 0;   // steady clock of last success, 0 = never
  std::uint64_t last_probe_ns = 0;
};

/// Thread-safe liveness registry. record_ok/record_miss are the only
/// inputs; they return the state AFTER the outcome is applied.
class Tracker {
 public:
  /// `registry` sinks the transition counters and per-state gauges;
  /// nullptr = metrics::Registry::global().
  explicit Tracker(Thresholds thresholds = {},
                   metrics::Registry* registry = nullptr);

  Tracker(const Tracker&) = delete;
  Tracker& operator=(const Tracker&) = delete;

  /// Start tracking `node` (idempotent). New nodes begin alive: a
  /// deployment's daemons are presumed up until a probe says otherwise.
  void track(std::uint32_t node);

  State record_ok(std::uint32_t node,
                  std::uint64_t now_ns = metrics::now_ns());
  State record_miss(std::uint32_t node,
                    std::uint64_t now_ns = metrics::now_ns());

  [[nodiscard]] State state_of(std::uint32_t node) const;
  [[nodiscard]] NodeHealth health_of(std::uint32_t node) const;
  [[nodiscard]] std::map<std::uint32_t, NodeHealth> all() const;
  [[nodiscard]] std::size_t count(State s) const;
  [[nodiscard]] const Thresholds& thresholds() const noexcept {
    return thresholds_;
  }

 private:
  struct Node {
    NodeHealth h;
  };

  void set_state_(Node& n, std::uint32_t node, State to)
      GEKKO_REQUIRES(mutex_);
  void publish_gauges_() GEKKO_REQUIRES(mutex_);

  Thresholds thresholds_;
  // Cached metric refs: transitions INTO each state, and current node
  // counts per state (interned once in the ctor, bumped lock-free).
  metrics::Counter* to_alive_;
  metrics::Counter* to_suspect_;
  metrics::Counter* to_dead_;
  metrics::Gauge* g_alive_;
  metrics::Gauge* g_suspect_;
  metrics::Gauge* g_dead_;
  mutable Mutex mutex_{"health.tracker", lockdep::rank::kHealth};
  std::map<std::uint32_t, Node> nodes_ GEKKO_GUARDED_BY(mutex_);
};

}  // namespace gekko::health
