// relaxed-ok: every atomic here is either a single-writer ring scalar
// (slots, cursors — readers tolerate torn records by the documented
// contract), a resolve-once flag, or a registry slot published with
// release and read with acquire.
#include "common/flight_recorder.h"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

#if defined(__SANITIZE_ADDRESS__)
#include <sanitizer/lsan_interface.h>
#endif

namespace gekko::flight {
namespace {

constexpr std::size_t kRingCapacity = 256;  // per thread, power of two
constexpr std::size_t kMaxRings = 256;      // threads that can record
constexpr std::size_t kInflightSlots = 512;

/// One 32-byte record, stored as four atomics so the crash handler and
/// snapshot() can read concurrently with the owning writer. w3 packs
/// a1 | subsys<<32 | code<<40 (header comment has the full layout).
struct Slot {
  std::atomic<std::uint64_t> w0{0};
  std::atomic<std::uint64_t> w1{0};
  std::atomic<std::uint64_t> w2{0};
  std::atomic<std::uint64_t> w3{0};
};

struct Ring {
  Slot slots[kRingCapacity];
  std::atomic<std::uint64_t> cursor{0};  // total ever written
  std::uint16_t thread = 0;              // log::thread_number() of owner
};

/// Registry of all rings ever created, appended with release stores so
/// any reader (including the signal handler) sees fully-constructed
/// rings. Rings are leaked by design: thread exit must not invalidate
/// what the crash handler may be walking.
std::atomic<Ring*> g_rings[kMaxRings]{};
std::atomic<std::size_t> g_ring_count{0};

thread_local Ring* t_ring = nullptr;

Ring* ring_for_thread() {
  if (t_ring != nullptr) return t_ring;
  auto idx = g_ring_count.fetch_add(1, std::memory_order_relaxed);
  if (idx >= kMaxRings) {
    // Out of registry slots: soak the overflow into the last ring
    // (shared, torn-prone) rather than dropping events entirely.
    t_ring = g_rings[kMaxRings - 1].load(std::memory_order_acquire);
    if (t_ring == nullptr) t_ring = new Ring();  // racing first-users; leak
    return t_ring;
  }
  auto* ring = new Ring();  // leaked: see registry comment
#if defined(__SANITIZE_ADDRESS__)
  __lsan_ignore_object(ring);
#endif
  ring->thread = static_cast<std::uint16_t>(log::thread_number());
  g_rings[idx].store(ring, std::memory_order_release);
  t_ring = ring;
  return ring;
}

std::atomic<int> g_enabled{-1};  // -1 unresolved, 0 off, 1 on

bool resolve_env_enabled() {
  const char* v = std::getenv("GEKKO_FLIGHT");
  if (v == nullptr) return true;  // always-on black box by default
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "false") == 0);
}

void record_impl(Subsys subsys, std::uint8_t code, std::uint64_t trace_id,
                 std::uint64_t a0, std::uint32_t a1) noexcept {
  Ring* ring = ring_for_thread();
  const auto cur = ring->cursor.load(std::memory_order_relaxed);
  Slot& s = ring->slots[cur & (kRingCapacity - 1)];
  s.w0.store(metrics::now_ns(), std::memory_order_relaxed);
  s.w1.store(trace_id, std::memory_order_relaxed);
  s.w2.store(a0, std::memory_order_relaxed);
  s.w3.store(static_cast<std::uint64_t>(a1) |
                 (static_cast<std::uint64_t>(subsys) << 32) |
                 (static_cast<std::uint64_t>(code) << 40),
             std::memory_order_relaxed);
  ring->cursor.store(cur + 1, std::memory_order_release);
}

Event unpack(const Slot& s, std::uint16_t thread) noexcept {
  Event e;
  e.ts_ns = s.w0.load(std::memory_order_relaxed);
  e.trace_id = s.w1.load(std::memory_order_relaxed);
  e.a0 = s.w2.load(std::memory_order_relaxed);
  const auto w3 = s.w3.load(std::memory_order_relaxed);
  e.a1 = static_cast<std::uint32_t>(w3 & 0xffffffffu);
  e.subsys = static_cast<std::uint8_t>((w3 >> 32) & 0xff);
  e.code = static_cast<std::uint8_t>((w3 >> 40) & 0xff);
  e.thread = thread;
  return e;
}

/// In-flight RPC table: seq-indexed open-addressing-without-probing.
/// A slot is claimed by storing its seq with release AFTER the payload
/// words, so a reader that trusts `seq` sees matching payload.
struct InflightSlot {
  std::atomic<std::uint64_t> seq{0};  // 0 = free
  std::atomic<std::uint64_t> trace_id{0};
  std::atomic<std::uint64_t> start_ns{0};
  std::atomic<std::uint64_t> meta{0};  // dest | rpc_id<<32
};
InflightSlot g_inflight[kInflightSlots];

}  // namespace

const char* subsys_name(std::uint8_t subsys) noexcept {
  switch (static_cast<Subsys>(subsys)) {
    case Subsys::none: return "none";
    case Subsys::engine: return "engine";
    case Subsys::fabric: return "fabric";
    case Subsys::daemon: return "daemon";
    case Subsys::kv: return "kv";
    case Subsys::client: return "client";
  }
  return "?";
}

const char* event_name(std::uint8_t subsys, std::uint8_t code) noexcept {
  switch (static_cast<Subsys>(subsys)) {
    case Subsys::engine:
      if (code == ev::engine_dispatch) return "dispatch";
      if (code == ev::engine_retry) return "retry";
      if (code == ev::engine_timeout) return "timeout";
      break;
    case Subsys::fabric:
      if (code == ev::fabric_connect) return "connect";
      if (code == ev::fabric_evict) return "evict";
      if (code == ev::fabric_redial) return "redial";
      if (code == ev::fabric_kill) return "kill";
      break;
    case Subsys::daemon:
      if (code == ev::daemon_io_begin) return "io_begin";
      if (code == ev::daemon_io_end) return "io_end";
      break;
    case Subsys::kv:
      if (code == ev::kv_flush) return "flush";
      if (code == ev::kv_compaction) return "compaction";
      if (code == ev::kv_wal_append) return "wal_append";
      if (code == ev::kv_wal_recover) return "wal_recover";
      break;
    case Subsys::client:
      if (code == ev::client_op) return "op";
      break;
    case Subsys::none:
      break;
  }
  return "?";
}

std::uint64_t tag(const char* s) noexcept {
  std::uint64_t packed = 0;
  for (int i = 0; i < 8 && s[i] != '\0'; ++i) {
    packed |= static_cast<std::uint64_t>(static_cast<unsigned char>(s[i]))
              << (8 * i);
  }
  return packed;
}

void untag(std::uint64_t packed, char out[9]) noexcept {
  int n = 0;
  for (int i = 0; i < 8; ++i) {
    const auto c = static_cast<unsigned char>((packed >> (8 * i)) & 0xff);
    if (c == 0) break;
    out[n++] = (c >= 0x20 && c < 0x7f) ? static_cast<char>(c) : '.';
  }
  out[n] = '\0';
}

bool enabled() noexcept {
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    state = resolve_env_enabled() ? 1 : 0;
    g_enabled.store(state, std::memory_order_relaxed);
  }
  return state == 1;
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

void record(Subsys subsys, std::uint8_t code, std::uint64_t a0,
            std::uint32_t a1) noexcept {
  if (!enabled()) return;
  record_impl(subsys, code, trace::current().trace_id, a0, a1);
}

void record_traced(Subsys subsys, std::uint8_t code, std::uint64_t trace_id,
                   std::uint64_t a0, std::uint32_t a1) noexcept {
  if (!enabled()) return;
  record_impl(subsys, code, trace_id, a0, a1);
}

std::vector<Event> snapshot(RingStats* stats) {
  std::vector<Event> out;
  std::uint64_t recorded = 0;
  std::uint64_t capacity = 0;
  const auto count =
      std::min(g_ring_count.load(std::memory_order_relaxed), kMaxRings);
  for (std::size_t r = 0; r < count; ++r) {
    Ring* ring = g_rings[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;  // mid-registration
    const auto cur = ring->cursor.load(std::memory_order_acquire);
    recorded += cur;
    capacity += kRingCapacity;
    const auto resident = std::min<std::uint64_t>(cur, kRingCapacity);
    for (std::uint64_t i = cur - resident; i < cur; ++i) {
      out.push_back(unpack(ring->slots[i & (kRingCapacity - 1)],
                           ring->thread));
    }
  }
  std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    return a.ts_ns < b.ts_ns;
  });
  if (stats != nullptr) {
    stats->recorded = recorded;
    stats->capacity = capacity;
  }
  return out;
}

void inflight_begin(std::uint64_t seq, std::uint16_t rpc_id,
                    std::uint32_t dest, std::uint64_t trace_id) noexcept {
  if (seq == 0) return;  // 0 marks a free slot
  InflightSlot& s = g_inflight[seq % kInflightSlots];
  if (s.seq.load(std::memory_order_relaxed) != 0) return;  // collision: skip
  s.trace_id.store(trace_id, std::memory_order_relaxed);
  s.start_ns.store(metrics::now_ns(), std::memory_order_relaxed);
  s.meta.store(static_cast<std::uint64_t>(dest) |
                   (static_cast<std::uint64_t>(rpc_id) << 32),
               std::memory_order_relaxed);
  s.seq.store(seq, std::memory_order_release);
}

void inflight_end(std::uint64_t seq) noexcept {
  if (seq == 0) return;
  InflightSlot& s = g_inflight[seq % kInflightSlots];
  // Only the owner clears; a collided registration never stored seq.
  std::uint64_t expect = seq;
  s.seq.compare_exchange_strong(expect, 0, std::memory_order_relaxed);
}

std::vector<InflightEntry> inflight_snapshot() {
  std::vector<InflightEntry> out;
  for (auto& s : g_inflight) {
    const auto seq = s.seq.load(std::memory_order_acquire);
    if (seq == 0) continue;
    InflightEntry e;
    e.seq = seq;
    e.trace_id = s.trace_id.load(std::memory_order_relaxed);
    e.start_ns = s.start_ns.load(std::memory_order_relaxed);
    const auto meta = s.meta.load(std::memory_order_relaxed);
    e.dest = static_cast<std::uint32_t>(meta & 0xffffffffu);
    e.rpc_id = static_cast<std::uint16_t>((meta >> 32) & 0xffff);
    out.push_back(e);
  }
  return out;
}

// ---------- async-signal-safe formatting ----------

namespace sfmt {

std::size_t dec(char* buf, std::uint64_t v) noexcept {
  char tmp[21];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

std::size_t hex(char* buf, std::uint64_t v) noexcept {
  static const char digits[] = "0123456789abcdef";
  char tmp[17];
  std::size_t n = 0;
  do {
    tmp[n++] = digits[v & 0xf];
    v >>= 4;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

void write_all(int fd, const char* data, std::size_t n) noexcept {
  while (n > 0) {
    const auto w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return;  // nothing useful to do from a signal handler
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

void write_str(int fd, const char* s) noexcept {
  write_all(fd, s, std::strlen(s));
}

void write_dec(int fd, std::uint64_t v) noexcept {
  char buf[21];
  write_all(fd, buf, dec(buf, v));
}

void write_hex(int fd, std::uint64_t v) noexcept {
  char buf[17];
  write_all(fd, buf, hex(buf, v));
}

}  // namespace sfmt

void crash_dump_events(int fd, std::size_t last_n) noexcept {
  const auto count =
      std::min(g_ring_count.load(std::memory_order_relaxed), kMaxRings);
  for (std::size_t r = 0; r < count; ++r) {
    Ring* ring = g_rings[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const auto cur = ring->cursor.load(std::memory_order_acquire);
    auto resident = std::min<std::uint64_t>(cur, kRingCapacity);
    resident = std::min<std::uint64_t>(resident, last_n);
    for (std::uint64_t i = cur - resident; i < cur; ++i) {
      const Event e =
          unpack(ring->slots[i & (kRingCapacity - 1)], ring->thread);
      sfmt::write_str(fd, "ev ");
      sfmt::write_dec(fd, e.ts_ns);
      sfmt::write_str(fd, " t");
      sfmt::write_dec(fd, e.thread);
      sfmt::write_str(fd, " ");
      sfmt::write_str(fd, subsys_name(e.subsys));
      sfmt::write_str(fd, ".");
      sfmt::write_str(fd, event_name(e.subsys, e.code));
      sfmt::write_str(fd, " trace=");
      sfmt::write_hex(fd, e.trace_id);
      sfmt::write_str(fd, " a0=");
      sfmt::write_hex(fd, e.a0);
      sfmt::write_str(fd, " a1=");
      sfmt::write_dec(fd, e.a1);
      sfmt::write_str(fd, "\n");
    }
  }
}

void crash_dump_inflight(int fd) noexcept {
  for (auto& s : g_inflight) {
    const auto seq = s.seq.load(std::memory_order_acquire);
    if (seq == 0) continue;
    const auto meta = s.meta.load(std::memory_order_relaxed);
    sfmt::write_str(fd, "rpc seq=");
    sfmt::write_dec(fd, seq);
    sfmt::write_str(fd, " id=");
    sfmt::write_dec(fd, (meta >> 32) & 0xffff);
    sfmt::write_str(fd, " dest=");
    sfmt::write_dec(fd, meta & 0xffffffffu);
    sfmt::write_str(fd, " trace=");
    sfmt::write_hex(fd, s.trace_id.load(std::memory_order_relaxed));
    sfmt::write_str(fd, " start_ns=");
    sfmt::write_dec(fd, s.start_ns.load(std::memory_order_relaxed));
    sfmt::write_str(fd, "\n");
  }
}

// ---------- postmortem text codec ----------

namespace {

constexpr std::string_view kMagic = "GEKKO-POSTMORTEM v1";

/// Split off the next line (without its '\n'); empty optional at end.
bool next_line(std::string_view& rest, std::string_view& line) {
  if (rest.empty()) return false;
  const auto nl = rest.find('\n');
  if (nl == std::string_view::npos) {
    line = rest;
    rest = {};
  } else {
    line = rest.substr(0, nl);
    rest = rest.substr(nl + 1);
  }
  return true;
}

bool parse_u64(std::string_view s, std::uint64_t& out, int base = 10) {
  if (s.empty()) return false;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out, base);
  return ec == std::errc() && ptr == last;
}

/// "key=value" fields on a section line; returns value or empty.
std::string_view field(std::string_view line, std::string_view key) {
  std::string_view rest = line;
  while (!rest.empty()) {
    const auto sp = rest.find(' ');
    const auto tok = rest.substr(0, sp);
    if (tok.size() > key.size() + 1 &&
        tok.substr(0, key.size()) == key && tok[key.size()] == '=') {
      return tok.substr(key.size() + 1);
    }
    if (sp == std::string_view::npos) break;
    rest = rest.substr(sp + 1);
  }
  return {};
}

/// "ev <ts> t<thread> <subsys>.<event> trace=<hex> a0=<hex> a1=<dec>".
bool parse_event_line(std::string_view line, Event& e) {
  if (line.substr(0, 3) != "ev ") return false;
  std::string_view rest = line.substr(3);
  const auto sp1 = rest.find(' ');
  if (sp1 == std::string_view::npos) return false;
  if (!parse_u64(rest.substr(0, sp1), e.ts_ns)) return false;
  rest = rest.substr(sp1 + 1);
  if (rest.empty() || rest[0] != 't') return false;
  const auto sp2 = rest.find(' ');
  if (sp2 == std::string_view::npos) return false;
  std::uint64_t thread = 0;
  if (!parse_u64(rest.substr(1, sp2 - 1), thread) || thread > 0xffff) {
    return false;
  }
  e.thread = static_cast<std::uint16_t>(thread);
  rest = rest.substr(sp2 + 1);
  const auto sp3 = rest.find(' ');
  if (sp3 == std::string_view::npos) return false;
  const auto name = rest.substr(0, sp3);
  const auto dot = name.find('.');
  if (dot == std::string_view::npos) return false;
  // Resolve names back to numeric (subsys, code); unknown names decode
  // as 0 ("none"/"?") rather than failing — forward compatibility.
  e.subsys = 0;
  e.code = 0;
  for (std::uint8_t s = 0; s <= 5; ++s) {
    if (name.substr(0, dot) == subsys_name(s)) {
      e.subsys = s;
      for (std::uint8_t c = 1; c < 8; ++c) {
        if (name.substr(dot + 1) == event_name(s, c)) {
          e.code = c;
          break;
        }
      }
      break;
    }
  }
  std::uint64_t a1 = 0;
  if (!parse_u64(field(line, "trace"), e.trace_id, 16)) return false;
  if (!parse_u64(field(line, "a0"), e.a0, 16)) return false;
  if (!parse_u64(field(line, "a1"), a1) || a1 > 0xffffffffu) return false;
  e.a1 = static_cast<std::uint32_t>(a1);
  return true;
}

bool parse_lock_line(std::string_view line, Postmortem::HeldLock& l) {
  if (line.substr(0, 6) != "lock t") return false;
  std::string_view rest = line.substr(6);
  const auto sp1 = rest.find(' ');
  if (sp1 == std::string_view::npos) return false;
  std::uint64_t thread = 0;
  if (!parse_u64(rest.substr(0, sp1), thread)) return false;
  l.thread = static_cast<std::uint32_t>(thread);
  rest = rest.substr(sp1 + 1);
  const auto sp2 = rest.rfind(" rank=");
  if (sp2 == std::string_view::npos || sp2 == 0) return false;
  l.name = std::string(rest.substr(0, sp2));
  std::uint64_t rank = 0;
  if (!parse_u64(rest.substr(sp2 + 6), rank)) return false;
  l.rank = static_cast<int>(rank);
  return true;
}

bool parse_inflight_line(std::string_view line, InflightEntry& e) {
  if (line.substr(0, 4) != "rpc ") return false;
  std::uint64_t id = 0;
  std::uint64_t dest = 0;
  if (!parse_u64(field(line, "seq"), e.seq)) return false;
  if (!parse_u64(field(line, "id"), id) || id > 0xffff) return false;
  if (!parse_u64(field(line, "dest"), dest) || dest > 0xffffffffu) {
    return false;
  }
  if (!parse_u64(field(line, "trace"), e.trace_id, 16)) return false;
  if (!parse_u64(field(line, "start_ns"), e.start_ns)) return false;
  e.rpc_id = static_cast<std::uint16_t>(id);
  e.dest = static_cast<std::uint32_t>(dest);
  return true;
}

void append_event_line(std::string& out, const Event& e) {
  char num[21];
  out += "ev ";
  out.append(num, sfmt::dec(num, e.ts_ns));
  out += " t";
  out.append(num, sfmt::dec(num, e.thread));
  out += ' ';
  out += subsys_name(e.subsys);
  out += '.';
  out += event_name(e.subsys, e.code);
  out += " trace=";
  out.append(num, sfmt::hex(num, e.trace_id));
  out += " a0=";
  out.append(num, sfmt::hex(num, e.a0));
  out += " a1=";
  out.append(num, sfmt::dec(num, e.a1));
  out += '\n';
}

}  // namespace

Result<Postmortem> parse_postmortem(std::string_view text) {
  std::string_view rest = text;
  std::string_view line;
  if (!next_line(rest, line) || line != kMagic) {
    return Status{Errc::corruption, "missing postmortem magic"};
  }
  Postmortem pm;
  enum class Section {
    header, backtrace, locks, inflight, flight, metrics, log
  };
  Section section = Section::header;
  while (next_line(rest, line)) {
    if (line == "END") {
      pm.complete = true;
      break;
    }
    if (!line.empty() && line.front() == '[' && line.back() == ']') {
      const auto name = line.substr(1, line.size() - 2);
      if (name == "backtrace") section = Section::backtrace;
      else if (name == "locks") section = Section::locks;
      else if (name == "inflight") section = Section::inflight;
      else if (name == "flight") section = Section::flight;
      else if (name == "metrics") section = Section::metrics;
      else if (name == "log") section = Section::log;
      else section = Section::header;  // unknown section: skip lines
      continue;
    }
    switch (section) {
      case Section::header: {
        const auto sp = line.find(' ');
        if (sp == std::string_view::npos) break;
        const auto key = line.substr(0, sp);
        const auto val = line.substr(sp + 1);
        std::uint64_t n = 0;
        if (key == "signal") {
          const auto sp2 = val.find(' ');
          if (parse_u64(val.substr(0, sp2), n)) {
            pm.signal = static_cast<int>(n);
          }
          if (sp2 != std::string_view::npos) {
            pm.signal_name = std::string(val.substr(sp2 + 1));
          }
        } else if (key == "node" && parse_u64(val, n)) {
          pm.node_id = static_cast<std::uint32_t>(n);
        } else if (key == "pid" && parse_u64(val, n)) {
          pm.pid = n;
        } else if (key == "time_ns" && parse_u64(val, n)) {
          pm.capture_ns = n;
        } else if (key == "build") {
          pm.build = std::string(val);
        }
        break;
      }
      case Section::backtrace:
        if (!line.empty()) pm.backtrace.emplace_back(line);
        break;
      case Section::locks: {
        Postmortem::HeldLock l;
        if (parse_lock_line(line, l)) pm.locks.push_back(std::move(l));
        break;
      }
      case Section::inflight: {
        InflightEntry e;
        if (parse_inflight_line(line, e)) pm.inflight.push_back(e);
        break;
      }
      case Section::flight: {
        Event e;
        if (parse_event_line(line, e)) pm.events.push_back(e);
        break;
      }
      case Section::metrics:
        if (!pm.metrics_json.empty()) pm.metrics_json += '\n';
        pm.metrics_json += std::string(line);
        break;
      case Section::log:
        if (!line.empty()) pm.log_tail.emplace_back(line);
        break;
    }
  }
  return pm;
}

std::string render_postmortem(const Postmortem& pm) {
  char num[21];
  std::string out{kMagic};
  out += '\n';
  if (pm.signal != 0) {
    out += "signal ";
    out.append(num, sfmt::dec(num, static_cast<std::uint64_t>(pm.signal)));
    out += ' ';
    out += pm.signal_name;
    out += '\n';
  }
  out += "node ";
  out.append(num, sfmt::dec(num, pm.node_id));
  out += "\npid ";
  out.append(num, sfmt::dec(num, pm.pid));
  out += "\ntime_ns ";
  out.append(num, sfmt::dec(num, pm.capture_ns));
  out += "\nbuild ";
  out += pm.build;
  out += '\n';
  out += "[backtrace]\n";
  for (const auto& l : pm.backtrace) {
    out += l;
    out += '\n';
  }
  out += "[locks]\n";
  for (const auto& l : pm.locks) {
    out += "lock t";
    out.append(num, sfmt::dec(num, l.thread));
    out += ' ';
    out += l.name;
    out += " rank=";
    out.append(num, sfmt::dec(num, static_cast<std::uint64_t>(
                                       l.rank < 0 ? 0 : l.rank)));
    out += '\n';
  }
  out += "[inflight]\n";
  for (const auto& e : pm.inflight) {
    out += "rpc seq=";
    out.append(num, sfmt::dec(num, e.seq));
    out += " id=";
    out.append(num, sfmt::dec(num, e.rpc_id));
    out += " dest=";
    out.append(num, sfmt::dec(num, e.dest));
    out += " trace=";
    out.append(num, sfmt::hex(num, e.trace_id));
    out += " start_ns=";
    out.append(num, sfmt::dec(num, e.start_ns));
    out += '\n';
  }
  out += "[flight]\n";
  for (const auto& e : pm.events) append_event_line(out, e);
  out += "[metrics]\n";
  if (!pm.metrics_json.empty()) {
    out += pm.metrics_json;
    out += '\n';
  }
  out += "[log]\n";
  for (const auto& l : pm.log_tail) {
    out += l;
    out += '\n';
  }
  if (pm.complete) out += "END\n";
  return out;
}

}  // namespace gekko::flight
