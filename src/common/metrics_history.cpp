#include "common/metrics_history.h"

#include <charconv>
#include <cstdlib>
#include <cstring>

#include "common/thread_annotations.h"

namespace gekko::metrics {

double rate_per_sec(const SamplePoint& prev, const SamplePoint& cur) noexcept {
  if (cur.captured_ns <= prev.captured_ns) return 0.0;
  if (cur.value < prev.value) return 0.0;  // producer restart, not -rate
  const double dv = static_cast<double>(cur.value - prev.value);
  const double dt_s =
      static_cast<double>(cur.captured_ns - prev.captured_ns) / 1e9;
  return dv / dt_s;
}

std::uint64_t monotonic_delta(const SamplePoint& prev,
                              const SamplePoint& cur) noexcept {
  if (cur.value < prev.value) return 0;
  return static_cast<std::uint64_t>(cur.value - prev.value);
}

std::uint64_t monotonic_delta(std::uint64_t prev, std::uint64_t cur) noexcept {
  return cur < prev ? 0 : cur - prev;
}

// ---------- FamilyHistory ----------

std::vector<SamplePoint> FamilyHistory::samples() const {
  std::vector<SamplePoint> out;
  const std::size_t n = size();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(recorded_ - n + i) % ring_.size()]);
  }
  return out;
}

double FamilyHistory::latest_rate() const noexcept {
  if (size() < 2) return 0.0;
  return rate_per_sec(back(1), back(0));
}

double FamilyHistory::window_rate() const noexcept {
  const std::size_t n = size();
  if (n < 2) return 0.0;
  // Per-interval deltas so a mid-window reset zeroes one interval only.
  std::uint64_t total = 0;
  for (std::size_t i = 1; i < n; ++i) {
    total += monotonic_delta(back(n - i), back(n - 1 - i));
  }
  const std::uint64_t t0 = back(n - 1).captured_ns;
  const std::uint64_t t1 = back(0).captured_ns;
  if (t1 <= t0) return 0.0;
  return static_cast<double>(total) * 1e9 / static_cast<double>(t1 - t0);
}

// ---------- History ----------

void History::add_snapshot(const Snapshot& snap) {
  LockGuard lock(mutex_);
  auto put = [&](const std::string& name, std::int64_t v) {
    auto it = families_.find(name);
    if (it == families_.end()) {
      it = families_.emplace(name, FamilyHistory(capacity_)).first;
    }
    it->second.append(SamplePoint{snap.captured_ns, v});
  };
  for (const auto& [name, v] : snap.counters) {
    put(name, static_cast<std::int64_t>(v));
  }
  for (const auto& [name, v] : snap.gauges) put(name, v);
  for (const auto& [name, h] : snap.histograms) {
    put(name + ".count", static_cast<std::int64_t>(h.count));
    put(name + ".sum", static_cast<std::int64_t>(h.sum));
  }
}

void History::append(std::string_view family, SamplePoint p) {
  LockGuard lock(mutex_);
  auto it = families_.find(family);
  if (it == families_.end()) {
    it = families_.emplace(std::string(family), FamilyHistory(capacity_))
             .first;
  }
  it->second.append(p);
}

std::size_t History::family_count() const {
  LockGuard lock(mutex_);
  return families_.size();
}

History::FamilyView History::family(std::string_view name) const {
  LockGuard lock(mutex_);
  FamilyView v;
  v.capacity = capacity_;
  auto it = families_.find(name);
  if (it == families_.end()) return v;
  v.recorded = it->second.recorded();
  v.capacity = it->second.capacity();
  v.samples = it->second.samples();
  return v;
}

std::map<std::string, History::FamilyView> History::families(
    std::string_view prefix) const {
  LockGuard lock(mutex_);
  std::map<std::string, FamilyView> out;
  for (const auto& [name, fh] : families_) {
    if (!prefix.empty() && name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    FamilyView v;
    v.recorded = fh.recorded();
    v.capacity = fh.capacity();
    v.samples = fh.samples();
    out.emplace(name, std::move(v));
  }
  return out;
}

double History::latest_rate(std::string_view family) const {
  LockGuard lock(mutex_);
  auto it = families_.find(family);
  if (it == families_.end()) return 0.0;
  return it->second.latest_rate();
}

// ---------- Sampler ----------

std::uint32_t sample_interval_ms_from_env(std::uint32_t fallback) noexcept {
  const char* env = std::getenv("GEKKO_SAMPLE_MS");
  if (env == nullptr || *env == '\0') return fallback;
  std::uint32_t v = 0;
  const char* last = env + std::strlen(env);
  const auto [ptr, ec] = std::from_chars(env, last, v);
  if (ec != std::errc() || ptr != last) return fallback;
  return v;
}

Sampler::Sampler(Registry& registry, SamplerOptions options)
    : registry_(registry),
      options_(std::move(options)),
      history_(options_.retention),
      tick_counter_(&registry.counter("metrics.sampler.ticks")) {}

Sampler::~Sampler() { stop(); }

void Sampler::start() {
  if (options_.interval_ms == 0) return;
  {
    LockGuard lock(mutex_);
    if (running_) return;
    running_ = true;
    stop_ = false;
  }
  thread_ = std::thread([this] { loop_(); });
}

void Sampler::stop() {
  {
    UniqueLock lock(mutex_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    LockGuard lock(mutex_);
    running_ = false;
  }
  // Final sample: the history always reflects the process's last state
  // (a tool polling right after shutdown still sees the full run).
  sample_once();
}

void Sampler::sample_once() {
  if (options_.pre_sample) options_.pre_sample();
  history_.add_snapshot(registry_.snapshot());
  tick_counter_->inc();
  LockGuard lock(mutex_);
  ++ticks_;
}

std::uint64_t Sampler::ticks() const noexcept {
  LockGuard lock(mutex_);
  return ticks_;
}

void Sampler::loop_() {
  for (;;) {
    sample_once();
    UniqueLock lock(mutex_);
    const bool stopping = cv_.wait_for(
        lock, std::chrono::milliseconds(options_.interval_ms),
        [this]() GEKKO_REQUIRES(mutex_) { return stop_; });
    if (stopping) return;
  }
}

}  // namespace gekko::metrics
