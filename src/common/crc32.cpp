#include "common/crc32.h"

#include <array>

namespace gekko {
namespace {

// Table-driven CRC32C (polynomial 0x1EDC6F41, reflected 0x82F63B78).
constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0x82F63B78U ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t len,
                     std::uint32_t init) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~init;
  for (std::size_t i = 0; i < len; ++i) {
    c = kTable[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace gekko
