// relaxed-ok: the level threshold and thread-number counter are
// independent monotonic scalars; no other data is published through
// them, so relaxed ordering is sufficient.
#include "common/logging.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>

#include "common/flight_recorder.h"
#include "common/thread_annotations.h"

namespace gekko::log {
namespace {
Mutex g_mutex{"log", lockdep::rank::kLog};
Sink g_sink GEKKO_GUARDED_BY(g_mutex);

/// Crash-safe tail: every emitted line is memcpy'd into a fixed ring
/// slot under g_mutex (single writer at a time), then the cursor is
/// release-published. The fatal-signal handler reads the ring without
/// the mutex — a slot being overwritten at that instant may come out
/// torn, which the postmortem contract accepts.
constexpr std::size_t kTailSlots = 64;
constexpr std::size_t kTailLine = 192;  // longer lines are truncated
struct TailSlot {
  char text[kTailLine];
};
TailSlot g_tail[kTailSlots];
std::atomic<std::uint64_t> g_tail_cursor{0};

std::atomic<int> g_sink_fd{2};  // stderr until told otherwise

void tail_append(const char* prefix, std::string_view component,
                 std::string_view message) {
  const auto cur = g_tail_cursor.load(std::memory_order_relaxed);
  char* slot = g_tail[cur % kTailSlots].text;
  std::size_t n = 0;
  auto put = [&](const char* s, std::size_t len) {
    const auto take = std::min(len, kTailLine - 1 - n);
    std::memcpy(slot + n, s, take);
    n += take;
  };
  put(prefix, std::strlen(prefix));
  put(" ", 1);
  put(component.data(), component.size());
  put(": ", 2);
  put(message.data(), message.size());
  slot[n] = '\0';
  g_tail_cursor.store(cur + 1, std::memory_order_release);
}

const char* level_tag(Level lvl) {
  switch (lvl) {
    case Level::trace: return "TRACE";
    case Level::debug: return "DEBUG";
    case Level::info: return "INFO ";
    case Level::warn: return "WARN ";
    case Level::error: return "ERROR";
    case Level::off: return "OFF  ";
  }
  return "?";
}

double seconds_since_start() noexcept {
  static const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
}  // namespace

std::atomic<Level>& threshold() noexcept {
  static std::atomic<Level> g_threshold{Level::warn};
  return g_threshold;
}

void set_level(Level lvl) noexcept {
  threshold().store(lvl, std::memory_order_relaxed);
}

Level level() noexcept { return threshold().load(std::memory_order_relaxed); }

void set_sink(Sink sink) {
  LockGuard lock(g_mutex);
  g_sink = std::move(sink);
}

unsigned thread_number() noexcept {
  static std::atomic<unsigned> g_next{0};
  thread_local const unsigned id =
      g_next.fetch_add(1, std::memory_order_relaxed) + 1;
  return id;
}

void write(Level lvl, std::string_view component, std::string_view message) {
  char prefix[48];
  std::snprintf(prefix, sizeof(prefix), "[%12.6f] [t%02u] [%s]",
                seconds_since_start(), thread_number(), level_tag(lvl));
  LockGuard lock(g_mutex);
  tail_append(prefix, component, message);
  if (g_sink) {
    std::string line;
    line.reserve(component.size() + message.size() + 56);
    line += prefix;
    line += ' ';
    line += component;
    line += ": ";
    line += message;
    g_sink(lvl, line);
    return;
  }
  std::fprintf(stderr, "%s %.*s: %.*s\n", prefix,
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

void crash_dump_tail(int fd) noexcept {
  namespace sfmt = flight::sfmt;
  const auto cur = g_tail_cursor.load(std::memory_order_acquire);
  const auto resident = std::min<std::uint64_t>(cur, kTailSlots);
  for (std::uint64_t i = cur - resident; i < cur; ++i) {
    const char* text = g_tail[i % kTailSlots].text;
    // Defensive length cap: a torn slot may lack its terminator.
    const auto n = ::strnlen(text, kTailLine - 1);
    if (n == 0) continue;
    sfmt::write_all(fd, text, n);
    sfmt::write_str(fd, "\n");
  }
}

void set_sink_fd(int fd) noexcept {
  g_sink_fd.store(fd, std::memory_order_relaxed);
}

int sink_fd() noexcept {
  return g_sink_fd.load(std::memory_order_relaxed);
}

}  // namespace gekko::log
