// relaxed-ok: the level threshold and thread-number counter are
// independent monotonic scalars; no other data is published through
// them, so relaxed ordering is sufficient.
#include "common/logging.h"

#include <chrono>

#include "common/thread_annotations.h"

namespace gekko::log {
namespace {
Mutex g_mutex{"log", lockdep::rank::kLog};
Sink g_sink GEKKO_GUARDED_BY(g_mutex);

const char* level_tag(Level lvl) {
  switch (lvl) {
    case Level::trace: return "TRACE";
    case Level::debug: return "DEBUG";
    case Level::info: return "INFO ";
    case Level::warn: return "WARN ";
    case Level::error: return "ERROR";
    case Level::off: return "OFF  ";
  }
  return "?";
}

double seconds_since_start() noexcept {
  static const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
}  // namespace

std::atomic<Level>& threshold() noexcept {
  static std::atomic<Level> g_threshold{Level::warn};
  return g_threshold;
}

void set_level(Level lvl) noexcept {
  threshold().store(lvl, std::memory_order_relaxed);
}

Level level() noexcept { return threshold().load(std::memory_order_relaxed); }

void set_sink(Sink sink) {
  LockGuard lock(g_mutex);
  g_sink = std::move(sink);
}

unsigned thread_number() noexcept {
  static std::atomic<unsigned> g_next{0};
  thread_local const unsigned id =
      g_next.fetch_add(1, std::memory_order_relaxed) + 1;
  return id;
}

void write(Level lvl, std::string_view component, std::string_view message) {
  char prefix[48];
  std::snprintf(prefix, sizeof(prefix), "[%12.6f] [t%02u] [%s]",
                seconds_since_start(), thread_number(), level_tag(lvl));
  LockGuard lock(g_mutex);
  if (g_sink) {
    std::string line;
    line.reserve(component.size() + message.size() + 56);
    line += prefix;
    line += ' ';
    line += component;
    line += ": ";
    line += message;
    g_sink(lvl, line);
    return;
  }
  std::fprintf(stderr, "%s %.*s: %.*s\n", prefix,
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace gekko::log
