#include "common/logging.h"

#include <mutex>

namespace gekko::log {
namespace {
std::mutex g_mutex;

const char* level_tag(Level lvl) {
  switch (lvl) {
    case Level::trace: return "TRACE";
    case Level::debug: return "DEBUG";
    case Level::info: return "INFO ";
    case Level::warn: return "WARN ";
    case Level::error: return "ERROR";
    case Level::off: return "OFF  ";
  }
  return "?";
}
}  // namespace

std::atomic<Level>& threshold() noexcept {
  static std::atomic<Level> g_threshold{Level::warn};
  return g_threshold;
}

void set_level(Level lvl) noexcept {
  threshold().store(lvl, std::memory_order_relaxed);
}

Level level() noexcept { return threshold().load(std::memory_order_relaxed); }

void write(Level lvl, std::string_view component, std::string_view message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_tag(lvl),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace gekko::log
