// gekko::metrics — time-series history for the Registry.
//
// PR 2's Registry answers "what are the totals right now"; this layer
// answers "what happened over the last few minutes". A Sampler thread
// periodically snapshots a Registry into fixed-size per-family ring
// buffers (History), so every daemon carries its own recent history —
// the input for rate/derivative computation (ops/s, retry rate) that
// gkfs-mon and gkfs-top render, and the telemetry the future
// replication/rebalancing work consumes (CFS-style per-shard load).
//
// Wrap accounting mirrors TraceDumpResponse: each family tracks
// `recorded` (samples ever appended) against `capacity`, so a consumer
// can tell "ring holds everything" from "oldest samples overwritten".
//
// Rate semantics (the hard edge cases live here, not in every tool):
//  - a counter that goes BACKWARDS between samples means the producing
//    process restarted; the rate for that interval is 0, never a huge
//    negative spike,
//  - a non-advancing clock (same capture_ns) yields rate 0,
//  - gauges use signed deltas (they legitimately go down).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/thread_annotations.h"

namespace gekko::metrics {

/// One observation of one family: value at a monotonic capture time.
struct SamplePoint {
  std::uint64_t captured_ns = 0;
  std::int64_t value = 0;
};

/// Per-second rate between two samples of a MONOTONIC family
/// (counters, histogram counts). A reset (cur < prev: the producer
/// restarted) or a non-advancing clock yields 0.0.
[[nodiscard]] double rate_per_sec(const SamplePoint& prev,
                                  const SamplePoint& cur) noexcept;

/// Delta between two samples of a monotonic family; 0 on reset instead
/// of a wrapped/negative value.
[[nodiscard]] std::uint64_t monotonic_delta(const SamplePoint& prev,
                                            const SamplePoint& cur) noexcept;

/// Convenience over raw cumulative values + wall interval (gkfs-top's
/// poll loop, which has no SamplePoints): per-interval delta with the
/// same reset-to-zero semantics.
[[nodiscard]] std::uint64_t monotonic_delta(std::uint64_t prev,
                                            std::uint64_t cur) noexcept;

/// Fixed-capacity ring of SamplePoints for one metric family.
/// Single-writer (the Sampler) — History serializes access.
class FamilyHistory {
 public:
  explicit FamilyHistory(std::size_t capacity) : ring_(capacity) {}

  void append(SamplePoint p) {
    ring_[recorded_ % ring_.size()] = p;
    ++recorded_;
  }

  /// Samples ever appended (including overwritten ones).
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  [[nodiscard]] std::size_t size() const noexcept {
    return recorded_ < ring_.size() ? static_cast<std::size_t>(recorded_)
                                    : ring_.size();
  }

  /// Resident samples, oldest first.
  [[nodiscard]] std::vector<SamplePoint> samples() const;

  /// Newest sample; `back(1)` the one before it. Caller checks size().
  [[nodiscard]] const SamplePoint& back(std::size_t ago = 0) const {
    return ring_[(recorded_ - 1 - ago) % ring_.size()];
  }

  /// Rate over the newest pair of samples (0.0 with fewer than 2).
  [[nodiscard]] double latest_rate() const noexcept;
  /// Rate over the whole resident window (0.0 with fewer than 2).
  /// Computed as the sum of per-interval deltas — a mid-window counter
  /// reset contributes 0 for its interval instead of poisoning the
  /// whole window.
  [[nodiscard]] double window_rate() const noexcept;

 private:
  std::vector<SamplePoint> ring_;
  std::uint64_t recorded_ = 0;
};

/// Thread-safe collection of per-family rings. The Sampler appends;
/// the metric_history RPC handler and tools read.
class History {
 public:
  explicit History(std::size_t capacity_per_family = 128)
      : capacity_(capacity_per_family < 2 ? 2 : capacity_per_family) {}

  History(const History&) = delete;
  History& operator=(const History&) = delete;

  /// Fold one Registry snapshot in: counters and gauges verbatim, each
  /// histogram as two derived monotonic families `<name>.count` and
  /// `<name>.sum` (rates of those give ops/s and time-spent/s; the
  /// quantile digests are point-in-time and stay snapshot-only).
  void add_snapshot(const Snapshot& snap);

  /// Direct append (tests, and samplers with custom folding).
  void append(std::string_view family, SamplePoint p);

  [[nodiscard]] std::size_t capacity_per_family() const noexcept {
    return capacity_;
  }
  [[nodiscard]] std::size_t family_count() const;

  /// Copy of one family's ring state; empty-ring copy if never seen.
  struct FamilyView {
    std::uint64_t recorded = 0;
    std::uint64_t capacity = 0;
    std::vector<SamplePoint> samples;  // oldest first
  };
  [[nodiscard]] FamilyView family(std::string_view name) const;

  /// Views of every family whose name starts with `prefix` ("" = all),
  /// sorted by name (the metric_history RPC payload).
  [[nodiscard]] std::map<std::string, FamilyView> families(
      std::string_view prefix = {}) const;

  /// Rate over the newest sample pair of `family` (0.0 if unknown or
  /// under-filled).
  [[nodiscard]] double latest_rate(std::string_view family) const;

 private:
  std::size_t capacity_;
  mutable Mutex mutex_{"metrics.history", lockdep::rank::kMetricsHistory};
  std::map<std::string, FamilyHistory, std::less<>> families_
      GEKKO_GUARDED_BY(mutex_);
};

/// GEKKO_SAMPLE_MS, or `fallback` when unset/garbage. 0 disables the
/// sampler.
[[nodiscard]] std::uint32_t sample_interval_ms_from_env(
    std::uint32_t fallback) noexcept;

struct SamplerOptions {
  /// Snapshot period. 0 = sampler disabled (start() is a no-op).
  std::uint32_t interval_ms = 1000;
  /// Ring capacity per family (wrap accounting tells readers when the
  /// window was exceeded).
  std::size_t retention = 128;
  /// Invoked before each snapshot, OUTSIDE every sampler lock — the
  /// daemon republishes backend absolutes (storage/kv gauges) here so
  /// the history sees them move.
  std::function<void()> pre_sample;
};

/// Periodic Registry → History pump on its own thread. start()/stop()
/// lifecycle; sampling cost is one Registry::snapshot() per tick
/// (mutex-protected map walk, off every hot path).
class Sampler {
 public:
  Sampler(Registry& registry, SamplerOptions options = {});
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Launch the sampling thread (no-op when interval_ms == 0 or
  /// already running).
  void start();
  /// Stop and join. Idempotent.
  void stop();

  /// Take one sample synchronously (tests; also used by stop() so the
  /// history always contains a final sample).
  void sample_once();

  [[nodiscard]] History& history() noexcept { return history_; }
  [[nodiscard]] const History& history() const noexcept { return history_; }
  [[nodiscard]] std::uint32_t interval_ms() const noexcept {
    return options_.interval_ms;
  }
  /// Samples taken so far (ticks × families is the history growth).
  [[nodiscard]] std::uint64_t ticks() const noexcept;

 private:
  void loop_();

  Registry& registry_;
  SamplerOptions options_;
  History history_;
  metrics::Counter* tick_counter_;  // metrics.sampler.ticks
  mutable Mutex mutex_{"metrics.sampler", lockdep::rank::kMetricsSampler};
  CondVar cv_;
  bool stop_ GEKKO_GUARDED_BY(mutex_) = false;
  bool running_ GEKKO_GUARDED_BY(mutex_) = false;
  std::uint64_t ticks_ GEKKO_GUARDED_BY(mutex_) = 0;
  std::thread thread_;
};

}  // namespace gekko::metrics
