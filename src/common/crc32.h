// CRC32C (Castagnoli) for WAL record and SST block checksums.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gekko {

/// CRC32C over a byte range; `init` chains partial computations.
std::uint32_t crc32c(const void* data, std::size_t len,
                     std::uint32_t init = 0) noexcept;

inline std::uint32_t crc32c(std::string_view s,
                            std::uint32_t init = 0) noexcept {
  return crc32c(s.data(), s.size(), init);
}

/// Masked CRC (RocksDB-style) so that CRCs of CRC-bearing data don't
/// collide with CRCs of raw payloads.
constexpr std::uint32_t mask_crc(std::uint32_t crc) noexcept {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8U;
}
constexpr std::uint32_t unmask_crc(std::uint32_t masked) noexcept {
  const std::uint32_t rot = masked - 0xa282ead8U;
  return (rot << 15) | (rot >> 17);
}

}  // namespace gekko
