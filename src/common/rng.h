// Deterministic PRNGs for workloads, tests, and the simulator.
//
// Reproducibility matters more than statistical extremes here: every
// benchmark run must be replayable from a seed printed in its header.
#pragma once

#include <cstdint>
#include <limits>

#include "common/hash.h"

namespace gekko {

/// SplitMix64 — used for seeding.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    return mix64(state_ - 0x9e3779b97f4a7c15ULL);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — main generator. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl_(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl_(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's multiply-shift; bias negligible for our n << 2^64.
    __extension__ using u128 = unsigned __int128;
    const u128 m = static_cast<u128>(operator()()) * n;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl_(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace gekko
