// gekko::trace — distributed request tracing over the metrics::Tracer
// substrate.
//
// The per-node Tracer (metrics.h) is a lock-free ring of spans; this
// layer gives those spans CAUSALITY and makes them assemble across
// processes:
//  - SpanContext: a (trace_id, span_id) pair carried in a thread-local
//    so every layer a request passes through on this thread can attach
//    child spans without plumbing arguments. The RPC engine ships the
//    context to the serving side in net::Message (trace_id +
//    parent_span), so daemon-side spans parent under the caller span.
//  - Assembler: merges span dumps from many nodes into causal trees
//    per trace id, adopting orphans (ring wrap / drops lose interior
//    spans; the surviving ones must still render).
//  - Chrome Trace Event exporter: one pid per node, one tid per
//    thread, complete ("X") events plus flow ("s"/"f") arrows for RPC
//    edges — loadable in about://tracing / Perfetto.
//  - Slow-op watchdog: any traced op exceeding GEKKO_SLOW_OP_MS logs a
//    single-line per-stage breakdown (queue/service/io/bulk/...) via
//    GEKKO_LOG, with no collector running.
//
// Span id propagation rules (DESIGN.md §12): ids are process-unique
// random-ish 64-bit values; 0 means "none". A span's parent_span_id
// points at the span that caused it, possibly on another node. The
// context is per-thread; work handed to another thread (daemon io
// slices) must capture the context by value and re-install it with
// ContextGuard.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"

namespace gekko::trace {

/// Sentinel for "node id not assigned yet" (node 0 is a valid daemon).
inline constexpr std::uint32_t kUnknownNode = 0xffffffffu;

// ---------- span context (thread-local propagation) ----------

struct SpanContext {
  std::uint64_t trace_id = 0;  ///< 0 = no active trace on this thread
  std::uint64_t span_id = 0;   ///< span new children should parent under

  [[nodiscard]] bool active() const noexcept { return trace_id != 0; }
};

/// The calling thread's current context ({0,0} when none).
[[nodiscard]] SpanContext current() noexcept;
void set_current(SpanContext ctx) noexcept;

/// RAII: install `ctx` for this scope, restore the previous context on
/// exit. Safe to nest (client.read → client.stat → rpc).
class ContextGuard {
 public:
  explicit ContextGuard(SpanContext ctx) noexcept : prev_(current()) {
    set_current(ctx);
  }
  ~ContextGuard() { set_current(prev_); }
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  SpanContext prev_;
};

/// Fresh non-zero ids (process-unique, mixed so ids from different
/// nodes do not collide in an assembled trace).
[[nodiscard]] std::uint64_t new_trace_id() noexcept;
[[nodiscard]] std::uint64_t new_span_id() noexcept;

/// RAII child span: records [construction, destruction) into `tracer`
/// under the thread's current context; a complete no-op when no trace
/// is active (storage/kv touch points off the traced path cost two
/// thread-local reads). `name` must be a string literal (the
/// TraceSpan::name contract — gekko-lint checks ScopedSpan sites too).
class ScopedSpan {
 public:
  ScopedSpan(metrics::Tracer& tracer, const char* name,
             std::uint16_t rpc_id = 0) noexcept
      : tracer_(tracer),
        name_(name),
        rpc_id_(rpc_id),
        ctx_(current()),
        t0_(ctx_.active() ? metrics::now_ns() : 0) {}
  ~ScopedSpan() {
    if (ctx_.active()) {
      tracer_.record(name_, ctx_.trace_id, new_span_id(), ctx_.span_id,  // span-name-ok: forwards the literal ctor argument, checked at ScopedSpan call sites
                     rpc_id_, 0, t0_, metrics::now_ns() - t0_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  metrics::Tracer& tracer_;
  const char* name_;
  std::uint16_t rpc_id_;
  SpanContext ctx_;
  std::uint64_t t0_;
};

// ---------- node identity ----------

/// The id spans recorded by this process carry (the fabric endpoint:
/// daemon id, or the client's high-half endpoint id).
[[nodiscard]] std::uint32_t node_id() noexcept;
void set_node_id(std::uint32_t id) noexcept;
/// First caller wins — the engine calls this at registration so the
/// process's primary endpoint names the node.
void set_node_id_if_unset(std::uint32_t id) noexcept;

// ---------- sampling ----------

/// Master switch for DEEP tracing (client root spans and the
/// storage/kv/io-slice child spans). The engine's three per-RPC spans
/// are always-on telemetry and unaffected. Default: on; env
/// GEKKO_TRACE=0 disables at process start.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

// ---------- slow-op watchdog ----------

/// Threshold in ns above which a traced op logs its per-stage
/// breakdown. From env GEKKO_SLOW_OP_MS (default 200 ms, a p99-style
/// bound for a local-SSD chunk op); 0 disables the watchdog.
[[nodiscard]] std::uint64_t slow_op_threshold_ns() noexcept;
void set_slow_op_threshold_ms(std::uint64_t ms) noexcept;

/// Per-thread stage scratchpad: layers on the serving path deposit
/// stage durations ("queue", "io", "bulk", ...) while an op runs; the
/// watchdog folds them into its single breakdown line. `stage` must be
/// a string literal (same lifetime contract as span names). At most 8
/// stages are kept; extras are dropped.
void stages_reset() noexcept;
void stage_add(const char* stage, std::uint64_t ns) noexcept;
[[nodiscard]] std::vector<std::pair<const char*, std::uint64_t>>
stages_snapshot();

/// Emit the single-line breakdown:
///   slow-op <layer>.<op> trace=0x<id> total=12.4ms queue=0.1ms ...
/// `extra_stages` are appended after the thread's deposited stages.
void log_slow_op(
    const char* layer, std::string_view op, std::uint64_t trace_id,
    std::uint64_t total_ns,
    std::initializer_list<std::pair<const char*, std::uint64_t>>
        extra_stages = {});

// ---------- assembled spans ----------

/// Owning span, the unit the Assembler and the wire codec work with
/// (metrics::TraceSpan borrows its name; a dump that crosses a process
/// boundary must own it).
struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  std::uint32_t node_id = kUnknownNode;
  std::string name;
  std::uint16_t rpc_id = 0;
  std::uint32_t attempt = 0;
  std::uint32_t thread = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;

  [[nodiscard]] std::uint64_t end_ns() const noexcept {
    return start_ns + duration_ns;
  }
};

[[nodiscard]] Span to_span(const metrics::TraceSpan& s);

/// One assembled causal tree: every surviving span of one trace id,
/// indexed, with child lists and root set. Spans whose parent was lost
/// (ring wrap, drops) are adopted as roots — a partial trace still
/// renders instead of vanishing.
struct TraceTree {
  std::uint64_t trace_id = 0;
  std::vector<Span> spans;
  std::vector<std::vector<std::size_t>> children;  ///< parallel to spans
  std::vector<std::size_t> roots;                  ///< indices into spans
  std::uint64_t start_ns = 0;  ///< earliest span start
  std::uint64_t end_ns = 0;    ///< latest span end

  [[nodiscard]] std::uint64_t duration_ns() const noexcept {
    return end_ns - start_ns;
  }
};

/// Merges span dumps (from this process and from daemons' trace_dump
/// responses) into TraceTrees. Duplicate span ids within a trace are
/// kept once (duplicate RPC delivery, double dumps); spans with
/// trace_id 0 are ignored.
class Assembler {
 public:
  void add(Span span);
  /// `clock_offset_ns` is added to each span's start: on a multi-host
  /// deployment, pass (collector_now - node_capture_ns) to normalize
  /// per-node steady-clock epochs. Same-host processes share
  /// CLOCK_MONOTONIC, so 0 is correct there.
  void add_spans(const std::vector<Span>& spans,
                 std::int64_t clock_offset_ns = 0);
  void add_spans(const std::vector<metrics::TraceSpan>& spans,
                 std::int64_t clock_offset_ns = 0);

  /// All assembled trees, oldest first.
  [[nodiscard]] std::vector<TraceTree> assemble() const;
  /// The k slowest trees by end-to-end (envelope) duration, slowest
  /// first.
  [[nodiscard]] std::vector<TraceTree> slowest(std::size_t k) const;

  [[nodiscard]] std::size_t span_count() const noexcept { return count_; }

 private:
  // trace id -> spans (dedup by span id at add()).
  std::map<std::uint64_t, std::vector<Span>> by_trace_;
  std::size_t count_ = 0;
};

// ---------- Chrome Trace Event export ----------

/// Serialize trees to Chrome Trace Event JSON ({"traceEvents":[...]}):
/// one "X" (complete) event per span with pid = node id and tid =
/// recording thread, "M" process_name metadata per node, and "s"/"f"
/// flow arrows for every parent→child edge that crosses nodes (the RPC
/// wire hops). Timestamps are microseconds (Chrome's unit).
[[nodiscard]] std::string to_chrome_json(const std::vector<TraceTree>& trees);

/// Minimal parse of the exporter's output (tests, tooling sanity):
/// flat event objects with string/number fields; nested "args" objects
/// are skipped. Not a general JSON parser.
struct ChromeEvent {
  std::string name;
  std::string cat;
  std::string ph;
  std::string id;  ///< flow id, empty when absent
  std::int64_t pid = -1;
  std::int64_t tid = -1;
  double ts = 0;
  double dur = 0;
};
Result<std::vector<ChromeEvent>> parse_chrome_json(std::string_view json);

// ---------- rendering ----------

/// Human name for a wire rpc id in printouts; empty string falls back
/// to "id<N>". (The proto layer's rpc_name slots in here; trace cannot
/// depend on proto.)
using RpcNameFn = std::function<std::string(std::uint16_t)>;

/// Indented per-stage rendering of one tree:
///   trace 0x9f2… total=12.41ms spans=9
///     client.write                      node=c0000001 +0.00ms 12.41ms
///       rpc.caller write_chunks         node=c0000001 +0.02ms 11.90ms
///         rpc.service write_chunks      node=1        +0.31ms 10.80ms
///           daemon.io.slice ...
[[nodiscard]] std::string format_trace(const TraceTree& tree,
                                       const RpcNameFn& rpc_name = nullptr);

}  // namespace gekko::trace
