#include "common/config.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <limits>

namespace gekko {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

Result<Config> Config::parse(std::string_view text) {
  Config cfg;
  std::size_t pos = 0;
  std::size_t lineno = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++lineno;

    if (auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status{Errc::invalid_argument,
                    "config line " + std::to_string(lineno) + ": missing '='"};
    }
    std::string_view key = trim(line.substr(0, eq));
    std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) {
      return Status{Errc::invalid_argument,
                    "config line " + std::to_string(lineno) + ": empty key"};
    }
    cfg.set(std::string{key}, std::string{value});
  }
  return cfg;
}

std::string Config::get_string(const std::string& key,
                               std::string fallback) const {
  auto it = entries_.find(key);
  return it != entries_.end() ? it->second : std::move(fallback);
}

std::int64_t Config::get_int(const std::string& key,
                             std::int64_t fallback) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  std::int64_t v = 0;
  auto [p, ec] = std::from_chars(it->second.data(),
                                 it->second.data() + it->second.size(), v);
  return ec == std::errc{} && p == it->second.data() + it->second.size()
             ? v
             : fallback;
}

double Config::get_double(const std::string& key, double fallback) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    double v = std::stod(it->second, &consumed);
    return consumed == it->second.size() ? v : fallback;
  } catch (...) {
    return fallback;
  }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return fallback;
}

std::uint64_t Config::get_size(const std::string& key,
                               std::uint64_t fallback) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  auto r = parse_size(it->second);
  return r ? *r : fallback;
}

Result<std::uint64_t> Config::parse_size(std::string_view text) {
  text = trim(text);
  if (text.empty()) return Errc::invalid_argument;
  std::uint64_t v = 0;
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{}) return Errc::invalid_argument;
  std::string_view suffix = trim(text.substr(
      static_cast<std::size_t>(p - text.data())));
  if (suffix.empty()) return v;

  std::string s{suffix};
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  // The shift wraps mod 2^64 (defined but wrong): "17179869184g" would
  // silently become 64 bytes. Reject anything whose scaled value does
  // not fit instead of handing back a wrapped size.
  const auto scaled = [v](unsigned shift) -> Result<std::uint64_t> {
    if (v > (std::numeric_limits<std::uint64_t>::max() >> shift)) {
      return Errc::invalid_argument;
    }
    return v << shift;
  };
  if (s == "k" || s == "kb" || s == "kib") return scaled(10);
  if (s == "m" || s == "mb" || s == "mib") return scaled(20);
  if (s == "g" || s == "gb" || s == "gib") return scaled(30);
  if (s == "t" || s == "tb" || s == "tib") return scaled(40);
  if (s == "b") return v;
  return Errc::invalid_argument;
}

}  // namespace gekko
