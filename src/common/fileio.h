// Thin RAII wrappers over POSIX file I/O used by the WAL, SSTables,
// and the chunk store. Buffered appends, positional reads, atomic
// replace-by-rename, and directory listing.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"

namespace gekko::io {

/// Append-only buffered writer. flush() pushes the user buffer to the
/// OS; sync() additionally fdatasync()s (durability point for the WAL).
class WritableFile {
 public:
  WritableFile() = default;
  ~WritableFile();
  WritableFile(WritableFile&& other) noexcept;
  WritableFile& operator=(WritableFile&& other) noexcept;
  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  /// Create (truncate) or open for append.
  static Result<WritableFile> create(const std::filesystem::path& p);
  static Result<WritableFile> open_append(const std::filesystem::path& p);

  Status append(std::span<const std::uint8_t> data);
  Status append(std::string_view data) {
    return append(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
  }
  Status flush();
  Status sync();
  Status close();

  [[nodiscard]] std::uint64_t size() const noexcept { return offset_; }
  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::uint64_t offset_ = 0;
  std::vector<std::uint8_t> buffer_;
};

/// Positional (pread) reader; safe for concurrent readers.
class RandomAccessFile {
 public:
  RandomAccessFile() = default;
  ~RandomAccessFile();
  RandomAccessFile(RandomAccessFile&& other) noexcept;
  RandomAccessFile& operator=(RandomAccessFile&& other) noexcept;
  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  static Result<RandomAccessFile> open(const std::filesystem::path& p);

  /// Read exactly out.size() bytes at `offset`; short read => io_error.
  Status read_exact(std::uint64_t offset, std::span<std::uint8_t> out) const;
  /// Read up to out.size() bytes; returns bytes read (0 at/after EOF).
  Result<std::size_t> read(std::uint64_t offset,
                           std::span<std::uint8_t> out) const;

  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::uint64_t size_ = 0;
};

/// Whole-file helpers.
Result<std::string> read_file(const std::filesystem::path& p);
/// Write via temp file + rename for atomic replacement (MANIFEST etc.).
Status write_file_atomic(const std::filesystem::path& p,
                         std::string_view content);
/// Names (not paths) of regular files directly inside `dir`.
Result<std::vector<std::string>> list_dir(const std::filesystem::path& dir);
Status remove_file(const std::filesystem::path& p);
Status ensure_dir(const std::filesystem::path& dir);

}  // namespace gekko::io
