// Eventual<T>: one-shot synchronization cell, after ABT_eventual /
// margo_request. An RPC forward sets the eventual from the progress
// thread; the caller waits (with optional deadline).
#pragma once

#include <cassert>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

namespace gekko::task {

template <typename T>
class EventualState {
 public:
  void set(T value) {
    {
      std::lock_guard lock(mutex_);
      assert(!value_.has_value() && "eventual set twice");
      value_.emplace(std::move(value));
    }
    cv_.notify_all();
  }

  /// Blocks until set.
  T wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return value_.has_value(); });
    return std::move(*value_);
  }

  /// Blocks until set or timeout. nullopt on timeout (value stays unset
  /// and may still arrive later; the state is shared_ptr-owned so a late
  /// set() is safe).
  std::optional<T> wait_for(std::chrono::nanoseconds timeout) {
    std::unique_lock lock(mutex_);
    if (!cv_.wait_for(lock, timeout, [&] { return value_.has_value(); })) {
      return std::nullopt;
    }
    return std::move(*value_);
  }

  [[nodiscard]] bool ready() const {
    std::lock_guard lock(mutex_);
    return value_.has_value();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::optional<T> value_;
};

/// Shared handle; copyable between setter and waiter.
template <typename T>
class Eventual {
 public:
  Eventual() : state_(std::make_shared<EventualState<T>>()) {}

  void set(T value) const { state_->set(std::move(value)); }
  T wait() const { return state_->wait(); }
  std::optional<T> wait_for(std::chrono::nanoseconds timeout) const {
    return state_->wait_for(timeout);
  }
  [[nodiscard]] bool ready() const { return state_->ready(); }

 private:
  std::shared_ptr<EventualState<T>> state_;
};

/// Countdown latch for fan-out RPC patterns (e.g. readdir broadcast).
class Latch {
 public:
  explicit Latch(std::size_t count) : remaining_(count) {}

  void count_down() {
    std::lock_guard lock(mutex_);
    if (remaining_ > 0) --remaining_;
    if (remaining_ == 0) cv_.notify_all();
  }

  void wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return remaining_ == 0; });
  }

  bool wait_for(std::chrono::nanoseconds timeout) {
    std::unique_lock lock(mutex_);
    return cv_.wait_for(lock, timeout, [&] { return remaining_ == 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t remaining_;
};

}  // namespace gekko::task
