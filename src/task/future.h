// Eventual<T>: one-shot synchronization cell, after ABT_eventual /
// margo_request. An RPC forward sets the eventual from the progress
// thread; the caller waits (with optional deadline).
#pragma once

#include <cassert>
#include <chrono>
#include <memory>
#include <optional>
#include <utility>

#include "common/thread_annotations.h"

namespace gekko::task {

template <typename T>
class EventualState {
 public:
  void set(T value) GEKKO_EXCLUDES(mutex_) {
    {
      LockGuard lock(mutex_);
      assert(!value_.has_value() && "eventual set twice");
      value_.emplace(std::move(value));
    }
    cv_.notify_all();
  }

  /// Blocks until set.
  T wait() GEKKO_EXCLUDES(mutex_) {
    UniqueLock lock(mutex_);
    cv_.wait(lock,
             [&]() GEKKO_REQUIRES(mutex_) { return value_.has_value(); });
    return std::move(*value_);
  }

  /// Blocks until set or timeout. nullopt on timeout (value stays unset
  /// and may still arrive later; the state is shared_ptr-owned so a late
  /// set() is safe).
  std::optional<T> wait_for(std::chrono::nanoseconds timeout)
      GEKKO_EXCLUDES(mutex_) {
    UniqueLock lock(mutex_);
    if (!cv_.wait_for(lock, timeout, [&]() GEKKO_REQUIRES(mutex_) {
          return value_.has_value();
        })) {
      return std::nullopt;
    }
    return std::move(*value_);
  }

  [[nodiscard]] bool ready() const GEKKO_EXCLUDES(mutex_) {
    LockGuard lock(mutex_);
    return value_.has_value();
  }

 private:
  mutable Mutex mutex_{"task.eventual", lockdep::rank::kEventual};
  CondVar cv_;
  std::optional<T> value_ GEKKO_GUARDED_BY(mutex_);
};

/// Shared handle; copyable between setter and waiter.
template <typename T>
class Eventual {
 public:
  Eventual() : state_(std::make_shared<EventualState<T>>()) {}

  void set(T value) const { state_->set(std::move(value)); }
  T wait() const { return state_->wait(); }
  std::optional<T> wait_for(std::chrono::nanoseconds timeout) const {
    return state_->wait_for(timeout);
  }
  [[nodiscard]] bool ready() const { return state_->ready(); }

 private:
  std::shared_ptr<EventualState<T>> state_;
};

/// Countdown latch for fan-out RPC patterns (e.g. readdir broadcast).
class Latch {
 public:
  explicit Latch(std::size_t count) : remaining_(count) {}

  void count_down() GEKKO_EXCLUDES(mutex_) {
    LockGuard lock(mutex_);
    if (remaining_ > 0) --remaining_;
    if (remaining_ == 0) cv_.notify_all();
  }

  void wait() GEKKO_EXCLUDES(mutex_) {
    UniqueLock lock(mutex_);
    cv_.wait(lock, [&]() GEKKO_REQUIRES(mutex_) { return remaining_ == 0; });
  }

  bool wait_for(std::chrono::nanoseconds timeout) GEKKO_EXCLUDES(mutex_) {
    UniqueLock lock(mutex_);
    return cv_.wait_for(
        lock, timeout, [&]() GEKKO_REQUIRES(mutex_) { return remaining_ == 0; });
  }

 private:
  Mutex mutex_{"task.latch", lockdep::rank::kLatch};
  CondVar cv_;
  std::size_t remaining_ GEKKO_GUARDED_BY(mutex_);
};

}  // namespace gekko::task
