// relaxed-ok: see pool.h — counters only; the queue synchronizes.
#include "task/pool.h"

#include "common/logging.h"

namespace gekko::task {

Pool::Pool(std::size_t workers, std::string name) : name_(std::move(name)) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop_(); });
  }
  GEKKO_DEBUG("task") << "pool '" << name_ << "' started with " << workers
                      << " workers";
}

Pool::~Pool() { shutdown(); }

bool Pool::post(Task task) {
  if (stopping_.load(std::memory_order_acquire)) return false;
  return queue_.push(std::move(task));
}

void Pool::shutdown() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Another caller already initiated shutdown; still wait for joins.
  }
  queue_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void Pool::worker_loop_() {
  while (auto task = queue_.pop()) {
    (*task)();
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace gekko::task
