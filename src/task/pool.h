// relaxed-ok: executed/queued tallies are standalone counters; task
// hand-off synchronizes through the BlockingQueue mutex.
// Worker pools modeled after Argobots execution streams (xstreams).
//
// Margo runs Mercury progress on dedicated xstreams and dispatches RPC
// handlers onto a pool of handler xstreams (paper §III.B.b). We reproduce
// that execution model with plain threads: a Pool owns N workers draining
// a shared queue of tasks. ULT-style blocking is emulated with Eventual
// (see future.h) — a handler that waits on an eventual occupies its
// worker, so pools that may block must be sized accordingly, exactly as
// Margo deployments size their handler pools.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/queue.h"

namespace gekko::task {

class Pool {
 public:
  using Task = std::function<void()>;

  /// Spawns `workers` threads immediately. `name` appears in logs.
  explicit Pool(std::size_t workers, std::string name = "pool");

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Drains outstanding tasks, then joins all workers.
  ~Pool();

  /// Enqueue a task. Returns false after shutdown began.
  bool post(Task task);

  /// Stop accepting tasks; running/queued tasks complete, workers join.
  void shutdown();

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Tasks executed since construction (relaxed; for stats only).
  [[nodiscard]] std::uint64_t executed() const noexcept {
    return executed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }

 private:
  void worker_loop_();

  std::string name_;
  BlockingQueue<Task> queue_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<bool> stopping_{false};
};

}  // namespace gekko::task
