// relaxed-ok: per-rank op tallies aggregated after join(); the join is
// the synchronization point.
#include "workload/mdtest.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace gekko::workload {
namespace {

using Clock = std::chrono::steady_clock;

std::string file_path(const MdtestConfig& cfg, std::uint32_t proc,
                      std::uint32_t index) {
  const std::string dir = cfg.unique_dir
                              ? cfg.base_dir + "/rank" + std::to_string(proc)
                              : cfg.base_dir;
  return dir + "/file." + std::to_string(proc) + "." + std::to_string(index);
}

/// Merge per-rank latency samples and fold percentiles into `r`.
void finish_latency(PhaseResult& r,
                    std::vector<std::vector<std::uint64_t>>& lat_ns) {
  std::vector<std::uint64_t> all;
  std::size_t total = 0;
  for (const auto& v : lat_ns) total += v.size();
  all.reserve(total);
  for (auto& v : lat_ns) all.insert(all.end(), v.begin(), v.end());
  if (all.empty()) return;
  const auto pct = [&](double p) {
    const auto k = static_cast<std::size_t>(
        p * static_cast<double>(all.size() - 1));
    std::nth_element(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k),
                     all.end());
    return static_cast<double>(all[k]) / 1000.0;  // ns -> us
  };
  r.p50_us = pct(0.50);
  r.p99_us = pct(0.99);
}

PhaseResult run_phase(
    FsAdapter& fs, const MdtestConfig& cfg,
    const std::function<Status(std::uint32_t, std::uint32_t)>& op) {
  std::atomic<std::uint64_t> errors{0};
  std::vector<std::vector<std::uint64_t>> lat_ns(cfg.procs);
  const auto t0 = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(cfg.procs);
  for (std::uint32_t p = 0; p < cfg.procs; ++p) {
    workers.emplace_back([&, p] {
      auto& lat = lat_ns[p];
      lat.reserve(cfg.files_per_proc);
      for (std::uint32_t i = 0; i < cfg.files_per_proc; ++i) {
        const auto op_t0 = Clock::now();
        Status st = op(p, i);
        lat.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - op_t0)
                .count()));
        if (!st.is_ok()) errors.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : workers) w.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();

  (void)fs;
  PhaseResult r;
  r.ops = static_cast<std::uint64_t>(cfg.procs) * cfg.files_per_proc;
  r.seconds = seconds;
  r.ops_per_sec = seconds > 0 ? static_cast<double>(r.ops) / seconds : 0;
  r.errors = errors.load();
  finish_latency(r, lat_ns);
  return r;
}

/// Batched phase: each rank submits its files in chunks of batch_size
/// through the adapter's bulk entry point. One latency sample per bulk
/// call; per-entry failures count individually.
PhaseResult run_batched_phase(
    FsAdapter& fs, const MdtestConfig& cfg,
    const std::function<Status(const std::vector<std::string>&,
                               std::vector<Errc>*)>& bulk_op) {
  std::atomic<std::uint64_t> errors{0};
  std::vector<std::vector<std::uint64_t>> lat_ns(cfg.procs);
  const auto t0 = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(cfg.procs);
  for (std::uint32_t p = 0; p < cfg.procs; ++p) {
    workers.emplace_back([&, p] {
      auto& lat = lat_ns[p];
      std::vector<std::string> chunk;
      std::vector<Errc> codes;
      chunk.reserve(cfg.batch_size);
      for (std::uint32_t i = 0; i < cfg.files_per_proc;) {
        chunk.clear();
        for (std::uint32_t j = 0;
             j < cfg.batch_size && i < cfg.files_per_proc; ++j, ++i) {
          chunk.push_back(file_path(cfg, p, i));
        }
        const auto call_t0 = Clock::now();
        Status st = bulk_op(chunk, &codes);
        lat.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - call_t0)
                .count()));
        if (!st.is_ok()) {
          errors.fetch_add(chunk.size(), std::memory_order_relaxed);
          continue;
        }
        std::uint64_t bad = 0;
        for (const Errc e : codes) {
          if (e != Errc::ok) ++bad;
        }
        if (bad > 0) errors.fetch_add(bad, std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : workers) w.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();

  (void)fs;
  PhaseResult r;
  r.ops = static_cast<std::uint64_t>(cfg.procs) * cfg.files_per_proc;
  r.seconds = seconds;
  r.ops_per_sec = seconds > 0 ? static_cast<double>(r.ops) / seconds : 0;
  r.errors = errors.load();
  finish_latency(r, lat_ns);
  return r;
}

}  // namespace

Result<MdtestResult> run_mdtest(FsAdapter& fs, const MdtestConfig& cfg) {
  // Working directories (ignore EEXIST across iterations).
  if (Status st = fs.mkdir(cfg.base_dir);
      !st.is_ok() && st.code() != Errc::exists) {
    return st;
  }
  if (cfg.unique_dir) {
    for (std::uint32_t p = 0; p < cfg.procs; ++p) {
      if (Status st = fs.mkdir(cfg.base_dir + "/rank" + std::to_string(p));
          !st.is_ok() && st.code() != Errc::exists) {
        return st;
      }
    }
  }

  MdtestResult result;
  if (cfg.batch_size > 1) {
    result.create = run_batched_phase(
        fs, cfg, [&](const std::vector<std::string>& paths,
                     std::vector<Errc>* out) {
          return fs.create_many(paths, out);
        });
    result.stat = run_batched_phase(
        fs, cfg, [&](const std::vector<std::string>& paths,
                     std::vector<Errc>* out) {
          return fs.stat_many(paths, out);
        });
    result.remove = run_batched_phase(
        fs, cfg, [&](const std::vector<std::string>& paths,
                     std::vector<Errc>* out) {
          return fs.remove_many(paths, out);
        });
  } else {
    result.create = run_phase(fs, cfg, [&](std::uint32_t p, std::uint32_t i) {
      return fs.create(file_path(cfg, p, i));
    });
    result.stat = run_phase(fs, cfg, [&](std::uint32_t p, std::uint32_t i) {
      return fs.stat(file_path(cfg, p, i));
    });
    result.remove = run_phase(fs, cfg, [&](std::uint32_t p, std::uint32_t i) {
      return fs.remove(file_path(cfg, p, i));
    });
  }

  if (result.create.errors + result.stat.errors + result.remove.errors > 0) {
    GEKKO_WARN("mdtest") << "errors: create=" << result.create.errors
                         << " stat=" << result.stat.errors
                         << " remove=" << result.remove.errors;
  }
  return result;
}

}  // namespace gekko::workload
