// relaxed-ok: per-rank op tallies aggregated after join(); the join is
// the synchronization point.
#include "workload/mdtest.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace gekko::workload {
namespace {

using Clock = std::chrono::steady_clock;

std::string file_path(const MdtestConfig& cfg, std::uint32_t proc,
                      std::uint32_t index) {
  const std::string dir = cfg.unique_dir
                              ? cfg.base_dir + "/rank" + std::to_string(proc)
                              : cfg.base_dir;
  return dir + "/file." + std::to_string(proc) + "." + std::to_string(index);
}

PhaseResult run_phase(
    FsAdapter& fs, const MdtestConfig& cfg,
    const std::function<Status(std::uint32_t, std::uint32_t)>& op) {
  std::atomic<std::uint64_t> errors{0};
  const auto t0 = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(cfg.procs);
  for (std::uint32_t p = 0; p < cfg.procs; ++p) {
    workers.emplace_back([&, p] {
      for (std::uint32_t i = 0; i < cfg.files_per_proc; ++i) {
        if (Status st = op(p, i); !st.is_ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();

  (void)fs;
  PhaseResult r;
  r.ops = static_cast<std::uint64_t>(cfg.procs) * cfg.files_per_proc;
  r.seconds = seconds;
  r.ops_per_sec = seconds > 0 ? static_cast<double>(r.ops) / seconds : 0;
  r.errors = errors.load();
  return r;
}

}  // namespace

Result<MdtestResult> run_mdtest(FsAdapter& fs, const MdtestConfig& cfg) {
  // Working directories (ignore EEXIST across iterations).
  if (Status st = fs.mkdir(cfg.base_dir);
      !st.is_ok() && st.code() != Errc::exists) {
    return st;
  }
  if (cfg.unique_dir) {
    for (std::uint32_t p = 0; p < cfg.procs; ++p) {
      if (Status st = fs.mkdir(cfg.base_dir + "/rank" + std::to_string(p));
          !st.is_ok() && st.code() != Errc::exists) {
        return st;
      }
    }
  }

  MdtestResult result;
  result.create = run_phase(fs, cfg, [&](std::uint32_t p, std::uint32_t i) {
    return fs.create(file_path(cfg, p, i));
  });
  result.stat = run_phase(fs, cfg, [&](std::uint32_t p, std::uint32_t i) {
    return fs.stat(file_path(cfg, p, i));
  });
  result.remove = run_phase(fs, cfg, [&](std::uint32_t p, std::uint32_t i) {
    return fs.remove(file_path(cfg, p, i));
  });

  if (result.create.errors + result.stat.errors + result.remove.errors > 0) {
    GEKKO_WARN("mdtest") << "errors: create=" << result.create.errors
                         << " stat=" << result.stat.errors
                         << " remove=" << result.remove.errors;
  }
  return result;
}

}  // namespace gekko::workload
