// IOR-like data workload driver (paper §IV.B).
//
// P worker threads, each writing/reading `bytes_per_proc` in
// `transfer_size` requests — sequential or random offsets, into a
// private file (file-per-process) or one shared file (each rank owns a
// disjoint strided region, IOR's segmented layout).
#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"
#include "workload/fs_adapter.h"

namespace gekko::workload {

struct IorConfig {
  std::uint32_t procs = 4;
  std::uint64_t transfer_size = 64 * 1024;
  std::uint64_t bytes_per_proc = 4 * 1024 * 1024;
  bool random_offsets = false;
  bool shared_file = false;
  std::string base_dir = "/ior";
  std::uint64_t seed = 42;
  bool verify = false;  // re-read and checksum-compare after write phase
};

struct IorPhaseResult {
  double mib_per_sec = 0;
  double seconds = 0;
  std::uint64_t bytes = 0;
  std::uint64_t ops = 0;
  double mean_latency_us = 0;
  std::uint64_t errors = 0;
};

struct IorResult {
  IorPhaseResult write;
  IorPhaseResult read;
  bool verified = true;
};

Result<IorResult> run_ior(FsAdapter& fs, const IorConfig& config);

}  // namespace gekko::workload
