// relaxed-ok: per-rank byte/op tallies aggregated after join(); the
// join is the synchronization point.
#include "workload/ior.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "common/rng.h"

namespace gekko::workload {
namespace {

using Clock = std::chrono::steady_clock;

/// Deterministic content for verification: each transfer's bytes are a
/// keyed xxhash stream of (proc, transfer index).
void fill_pattern(std::span<std::uint8_t> buf, std::uint32_t proc,
                  std::uint64_t index) {
  Xoshiro256 rng(xxhash64("ior", proc * 1000003ULL + index));
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng());
}

struct TransferPlan {
  std::uint64_t offset;
  std::uint64_t index;  // pattern index
};

std::vector<TransferPlan> make_plan(const IorConfig& cfg, std::uint32_t proc) {
  const std::uint64_t transfers = cfg.bytes_per_proc / cfg.transfer_size;
  std::vector<TransferPlan> plan;
  plan.reserve(transfers);
  // Shared file: rank p owns the p-th strided block of each "segment"
  // (IOR segmented layout) — disjoint regions, no overlap conflicts.
  for (std::uint64_t t = 0; t < transfers; ++t) {
    std::uint64_t offset;
    if (cfg.shared_file) {
      offset = (t * cfg.procs + proc) * cfg.transfer_size;
    } else {
      offset = t * cfg.transfer_size;
    }
    plan.push_back(TransferPlan{offset, t});
  }
  if (cfg.random_offsets) {
    // Shuffle the same offsets — random access over the identical byte
    // set, so verification still holds.
    Xoshiro256 rng(cfg.seed * 7919 + proc);
    for (std::size_t i = plan.size(); i > 1; --i) {
      std::swap(plan[i - 1], plan[rng.below(i)]);
    }
  }
  return plan;
}

std::string file_for(const IorConfig& cfg, std::uint32_t proc) {
  return cfg.shared_file ? cfg.base_dir + "/shared"
                         : cfg.base_dir + "/file." + std::to_string(proc);
}

}  // namespace

Result<IorResult> run_ior(FsAdapter& fs, const IorConfig& cfg) {
  if (cfg.transfer_size == 0 || cfg.bytes_per_proc % cfg.transfer_size != 0) {
    return Status{Errc::invalid_argument,
                  "bytes_per_proc must be a multiple of transfer_size"};
  }
  if (Status st = fs.mkdir(cfg.base_dir);
      !st.is_ok() && st.code() != Errc::exists) {
    return st;
  }

  IorResult result;
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> latency_ns_total{0};
  std::atomic<bool> verified{true};

  auto run_phase = [&](bool write_phase) -> IorPhaseResult {
    errors.store(0);
    latency_ns_total.store(0);
    const auto t0 = Clock::now();
    std::vector<std::thread> workers;
    workers.reserve(cfg.procs);
    for (std::uint32_t p = 0; p < cfg.procs; ++p) {
      workers.emplace_back([&, p] {
        auto fd = fs.open_stream(file_for(cfg, p), write_phase);
        if (!fd) {
          errors.fetch_add(1);
          return;
        }
        std::vector<std::uint8_t> buf(cfg.transfer_size);
        std::vector<std::uint8_t> expect;
        const auto plan = make_plan(cfg, p);
        for (const auto& tp : plan) {
          const auto op_t0 = Clock::now();
          if (write_phase) {
            fill_pattern(buf, p, tp.index);
            auto n = fs.pwrite_fd(*fd, tp.offset, buf);
            if (!n || *n != buf.size()) errors.fetch_add(1);
          } else {
            auto n = fs.pread_fd(*fd, tp.offset, buf);
            if (!n || *n != buf.size()) {
              errors.fetch_add(1);
            } else if (cfg.verify) {
              expect.resize(buf.size());
              fill_pattern(expect, p, tp.index);
              if (buf != expect) verified.store(false);
            }
          }
          latency_ns_total.fetch_add(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now() - op_t0)
                  .count(),
              std::memory_order_relaxed);
        }
        // status-ignored-ok: benchmark teardown; errors do not affect measurements
        (void)fs.close_stream(*fd);
      });
    }
    for (auto& w : workers) w.join();
    const double seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();

    IorPhaseResult r;
    r.ops = static_cast<std::uint64_t>(cfg.procs) *
            (cfg.bytes_per_proc / cfg.transfer_size);
    r.bytes = static_cast<std::uint64_t>(cfg.procs) * cfg.bytes_per_proc;
    r.seconds = seconds;
    r.mib_per_sec = seconds > 0
                        ? static_cast<double>(r.bytes) / (1 << 20) / seconds
                        : 0;
    r.mean_latency_us =
        r.ops > 0 ? static_cast<double>(latency_ns_total.load()) / 1e3 /
                        static_cast<double>(r.ops)
                  : 0;
    r.errors = errors.load();
    return r;
  };

  result.write = run_phase(true);
  result.read = run_phase(false);
  result.verified = verified.load();
  if (result.write.errors + result.read.errors > 0) {
    GEKKO_WARN("ior") << "errors: write=" << result.write.errors
                      << " read=" << result.read.errors;
  }
  return result;
}

}  // namespace gekko::workload
