// mdtest-like metadata workload driver (paper §IV.A).
//
// "mdtest performs create, stat, and remove operations in parallel in
//  a single directory — an important workload in many HPC applications
//  and among the most difficult workloads for a general-purpose PFS."
//
// P worker threads stand in for MPI ranks. Each creates/stats/removes
// its own `files_per_proc` zero-byte files in one shared directory
// (or one directory per rank: `unique_dir`, the paper's Lustre
// configuration variant).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/result.h"
#include "workload/fs_adapter.h"

namespace gekko::workload {

struct MdtestConfig {
  std::uint32_t procs = 4;
  std::uint32_t files_per_proc = 1000;
  bool unique_dir = false;  // one working dir per rank instead of shared
  std::string base_dir = "/mdtest";
  std::uint32_t iterations = 1;
  /// Ops per bulk call: <= 1 runs the classic one-op-at-a-time phases;
  /// > 1 drives the adapter's create_many/stat_many/remove_many in
  /// chunks of this size (batched metadata RPCs on GekkoFS).
  std::uint32_t batch_size = 0;
};

struct PhaseResult {
  double ops_per_sec = 0;
  double seconds = 0;
  std::uint64_t ops = 0;
  std::uint64_t errors = 0;
  /// Latency percentiles in microseconds. Single-op mode: per-op
  /// round-trip. Batch mode: per bulk CALL (the latency an application
  /// thread actually observes per submission).
  double p50_us = 0;
  double p99_us = 0;
};

struct MdtestResult {
  PhaseResult create;
  PhaseResult stat;
  PhaseResult remove;
};

/// Run all three phases; the adapter may be shared by all threads
/// (GekkoFS mounts and the baseline PFS are both thread-safe).
Result<MdtestResult> run_mdtest(FsAdapter& fs, const MdtestConfig& config);

}  // namespace gekko::workload
