// Uniform file-system interface so the mdtest/IOR drivers run
// unmodified against both GekkoFS (fs::Mount) and the baseline PFS —
// the "unmodified microbenchmark" discipline of the paper's evaluation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "baseline/pfs.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "fs/mount.h"

namespace gekko::workload {

class FsAdapter {
 public:
  virtual ~FsAdapter() = default;
  virtual Status create(std::string_view path) = 0;
  virtual Status stat(std::string_view path) = 0;
  virtual Status remove(std::string_view path) = 0;
  virtual Status mkdir(std::string_view path) = 0;
  // Bulk metadata ops (the mdtest batched phases). Per-entry outcome
  // lands in `out` in request order; the default implementations loop
  // over the single-op calls, so every adapter supports batch-mode
  // drivers — GekkoFS overrides with real batch RPCs.
  virtual Status create_many(const std::vector<std::string>& paths,
                             std::vector<Errc>* out) {
    out->assign(paths.size(), Errc::ok);
    for (std::size_t i = 0; i < paths.size(); ++i) {
      if (Status st = create(paths[i]); !st.is_ok()) (*out)[i] = st.code();
    }
    return Status::ok();
  }
  virtual Status stat_many(const std::vector<std::string>& paths,
                           std::vector<Errc>* out) {
    out->assign(paths.size(), Errc::ok);
    for (std::size_t i = 0; i < paths.size(); ++i) {
      if (Status st = stat(paths[i]); !st.is_ok()) (*out)[i] = st.code();
    }
    return Status::ok();
  }
  virtual Status remove_many(const std::vector<std::string>& paths,
                             std::vector<Errc>* out) {
    out->assign(paths.size(), Errc::ok);
    for (std::size_t i = 0; i < paths.size(); ++i) {
      if (Status st = remove(paths[i]); !st.is_ok()) (*out)[i] = st.code();
    }
    return Status::ok();
  }

  virtual Result<std::size_t> pwrite(std::string_view path,
                                     std::uint64_t offset,
                                     std::span<const std::uint8_t> data) = 0;
  virtual Result<std::size_t> pread(std::string_view path,
                                    std::uint64_t offset,
                                    std::span<std::uint8_t> out) = 0;

  // Handle-based streaming I/O (IOR opens once, then streams).
  virtual Result<int> open_stream(std::string_view path, bool for_write) = 0;
  virtual Result<std::size_t> pwrite_fd(int fd, std::uint64_t offset,
                                        std::span<const std::uint8_t> d) = 0;
  virtual Result<std::size_t> pread_fd(int fd, std::uint64_t offset,
                                       std::span<std::uint8_t> out) = 0;
  virtual Status close_stream(int fd) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// GekkoFS through the public Mount API.
class GekkoAdapter final : public FsAdapter {
 public:
  explicit GekkoAdapter(fs::Mount& mount) : mount_(mount) {}

  Status create(std::string_view path) override {
    auto fd = mount_.open(path, fs::create | fs::wr_only);
    if (!fd) return fd.status();
    return mount_.close(*fd);
  }
  Status stat(std::string_view path) override {
    return mount_.stat(path).status();
  }
  Status remove(std::string_view path) override {
    return mount_.unlink(path);
  }
  Status mkdir(std::string_view path) override { return mount_.mkdir(path); }
  Status create_many(const std::vector<std::string>& paths,
                     std::vector<Errc>* out) override {
    return mount_.client().create_batch(paths, proto::FileType::regular,
                                        out);
  }
  Status stat_many(const std::vector<std::string>& paths,
                   std::vector<Errc>* out) override {
    std::vector<proto::Metadata> mds;
    return mount_.client().stat_batch(paths, out, &mds);
  }
  Status remove_many(const std::vector<std::string>& paths,
                     std::vector<Errc>* out) override {
    return mount_.client().remove_batch(paths, out);
  }
  Result<std::size_t> pwrite(std::string_view path, std::uint64_t offset,
                             std::span<const std::uint8_t> data) override {
    auto fd = mount_.open(path, fs::create | fs::wr_only);
    if (!fd) return fd.status();
    auto n = mount_.pwrite(*fd, data, offset);
    Status close_st = mount_.close(*fd);
    if (!n) return n.status();
    if (!close_st.is_ok()) return close_st;
    return n;
  }
  Result<std::size_t> pread(std::string_view path, std::uint64_t offset,
                            std::span<std::uint8_t> out) override {
    auto fd = mount_.open(path, fs::rd_only);
    if (!fd) return fd.status();
    auto n = mount_.pread(*fd, out, offset);
    Status close_st = mount_.close(*fd);
    if (!n) return n.status();
    if (!close_st.is_ok()) return close_st;
    return n;
  }
  Result<int> open_stream(std::string_view path, bool for_write) override {
    return mount_.open(path, for_write ? (fs::create | fs::rd_wr)
                                       : fs::rd_only);
  }
  Result<std::size_t> pwrite_fd(int fd, std::uint64_t offset,
                                std::span<const std::uint8_t> d) override {
    return mount_.pwrite(fd, d, offset);
  }
  Result<std::size_t> pread_fd(int fd, std::uint64_t offset,
                               std::span<std::uint8_t> out) override {
    return mount_.pread(fd, out, offset);
  }
  Status close_stream(int fd) override { return mount_.close(fd); }

  [[nodiscard]] std::string_view name() const override { return "gekkofs"; }

 private:
  fs::Mount& mount_;
};

/// The Lustre-like baseline.
class BaselineAdapter final : public FsAdapter {
 public:
  explicit BaselineAdapter(baseline::ParallelFileSystem& pfs) : pfs_(pfs) {}

  Status create(std::string_view path) override {
    return pfs_.create(path, proto::FileType::regular);
  }
  Status stat(std::string_view path) override {
    return pfs_.stat(path).status();
  }
  Status remove(std::string_view path) override { return pfs_.unlink(path); }
  Status mkdir(std::string_view path) override { return pfs_.mkdir(path); }
  Result<std::size_t> pwrite(std::string_view path, std::uint64_t offset,
                             std::span<const std::uint8_t> data) override {
    if (Status st = pfs_.create(path, proto::FileType::regular);
        !st.is_ok() && st.code() != Errc::exists) {
      return st;
    }
    return pfs_.write(path, offset, data);
  }
  Result<std::size_t> pread(std::string_view path, std::uint64_t offset,
                            std::span<std::uint8_t> out) override {
    return pfs_.read(path, offset, out);
  }
  Result<int> open_stream(std::string_view path, bool for_write) override {
    if (for_write) {
      if (Status st = pfs_.create(path, proto::FileType::regular);
          !st.is_ok() && st.code() != Errc::exists) {
        return st;
      }
    } else if (Status st = pfs_.stat(path).status(); !st.is_ok()) {
      return st;
    }
    LockGuard lock(mutex_);
    const int fd = next_fd_++;
    handles_[fd] = std::string(path);
    return fd;
  }
  Result<std::size_t> pwrite_fd(int fd, std::uint64_t offset,
                                std::span<const std::uint8_t> d) override {
    auto path = handle_path_(fd);
    if (!path) return path.status();
    return pfs_.write(*path, offset, d);
  }
  Result<std::size_t> pread_fd(int fd, std::uint64_t offset,
                               std::span<std::uint8_t> out) override {
    auto path = handle_path_(fd);
    if (!path) return path.status();
    return pfs_.read(*path, offset, out);
  }
  Status close_stream(int fd) override {
    LockGuard lock(mutex_);
    return handles_.erase(fd) > 0 ? Status::ok() : Status{Errc::bad_fd};
  }

  [[nodiscard]] std::string_view name() const override { return "baseline"; }

 private:
  Result<std::string> handle_path_(int fd) const {
    LockGuard lock(mutex_);
    auto it = handles_.find(fd);
    if (it == handles_.end()) return Errc::bad_fd;
    return it->second;
  }

  baseline::ParallelFileSystem& pfs_;
  mutable Mutex mutex_{"workload.fs_adapter", lockdep::rank::kFsAdapter};
  int next_fd_ GEKKO_GUARDED_BY(mutex_) = 1;
  std::map<int, std::string> handles_ GEKKO_GUARDED_BY(mutex_);
};

}  // namespace gekko::workload
