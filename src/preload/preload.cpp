// LD_PRELOAD client interposition library (paper §III.B.a):
//
// "An application that uses GekkoFS must first preload the client
//  interposition library which intercepts all file system operations
//  and forwards them to a server (GekkoFS daemon), if necessary."
//
// This shim intercepts the libc calls an unmodified tool (cat, cp,
// dd, shell redirection, ...) issues, routes paths under GKFS_MOUNT
// into a GekkoFS client, and forwards everything else to the real
// libc via dlsym(RTLD_NEXT) — the dispatch test is FileMap::owns(fd)
// for descriptor calls and a prefix match for path calls, exactly the
// structure the paper describes.
//
// Deployment model (demo): the daemons run IN-PROCESS, booted lazily
// from environment variables on first use:
//   GKFS_MOUNT=/gkfs          namespace prefix to intercept
//   GKFS_ROOT=/tmp/gkfs-data  on-disk daemon state (persists!)
//   GKFS_NODES=2              daemon count
// Sequential processes share state through GKFS_ROOT (WAL/SSTs/chunks
// are durable); concurrent processes are NOT supported by the demo
// (two processes must not open the same node-local KV store).
//
// Usage (one line):
//   LD_PRELOAD=libgkfs_preload.so GKFS_MOUNT=/gkfs cp data.bin /gkfs/
//
// Known limitation (inherent to SYMBOL interposition): glibc's stdio
// performs writes through internal, non-interposable entry points, so
// shell BUILTINS (echo > /gkfs/x) cannot be redirected into GekkoFS.
// External tools calling read/write/openat through the PLT (cat, cp,
// dd, ls, stat, rm, mkdir, touch, ...) work. Production GekkoFS avoids
// this class of gap by intercepting at the SYSCALL level with
// syscall_intercept; that mechanism is orthogonal to everything this
// repository evaluates (see DESIGN.md §1).
#include <dirent.h>
#include <dlfcn.h>
#include <fcntl.h>
#include <stdarg.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "cluster/cluster.h"
#include "common/thread_annotations.h"
#include "fs/mount.h"
#include "net/transport.h"

namespace {

using gekko::Errc;

// ---------- real libc entry points ----------

template <typename Fn>
Fn real(const char* name) {
  static_assert(sizeof(Fn) == sizeof(void*));
  void* sym = ::dlsym(RTLD_NEXT, name);
  Fn fn;
  std::memcpy(&fn, &sym, sizeof(fn));
  return fn;
}

using open_fn = int (*)(const char*, int, ...);
using close_fn = int (*)(int);
using read_fn = ssize_t (*)(int, void*, size_t);
using write_fn = ssize_t (*)(int, const void*, size_t);
using pread_fn = ssize_t (*)(int, void*, size_t, off_t);
using pwrite_fn = ssize_t (*)(int, const void*, size_t, off_t);
using lseek_fn = off_t (*)(int, off_t, int);
using stat_fn = int (*)(const char*, struct stat*);
using fstat_fn = int (*)(int, struct stat*);
using unlink_fn = int (*)(const char*);
using mkdir_fn = int (*)(const char*, mode_t);
using rmdir_fn = int (*)(const char*);
using truncate_fn = int (*)(const char*, off_t);
using ftruncate_fn = int (*)(int, off_t);
using fsync_fn = int (*)(int);
using opendir_fn = DIR* (*)(const char*);
using readdir_fn = struct dirent* (*)(DIR*);
using closedir_fn = int (*)(DIR*);
using openat_fn = int (*)(int, const char*, int, ...);

// ---------- shim state ----------

struct ShimState {
  std::string mount_prefix;  // e.g. "/gkfs"
  std::unique_ptr<gekko::cluster::Cluster> cluster;        // embedded mode
  std::unique_ptr<gekko::net::HostedFabric> socket_fabric;  // attached mode
  std::unique_ptr<gekko::fs::Mount> mount;
  bool enabled = false;
  // dup2(gkfs_fd, n) aliases a LOW (kernel-range) fd to a GekkoFS fd —
  // shell redirection does exactly this with fds 0/1/2.
  gekko::Mutex alias_mutex{"preload.alias", gekko::lockdep::rank::kPreloadAlias};
  std::unordered_map<int, int> fd_aliases
      GEKKO_GUARDED_BY(alias_mutex);  // low fd -> gekko fd
};

std::once_flag g_init_once;
ShimState* g_state = nullptr;  // intentionally leaked (exit-order safety)
thread_local bool g_in_init = false;  // cluster boot re-enters open()

void init_shim() {
  g_in_init = true;
  const char* mount_prefix = ::getenv("GKFS_MOUNT");
  if (mount_prefix == nullptr || mount_prefix[0] != '/') {
    g_in_init = false;
    return;
  }

  auto state = std::make_unique<ShimState>();
  state->mount_prefix = mount_prefix;

  if (const char* hostfile = ::getenv("GKFS_HOSTFILE")) {
    // ATTACHED mode: connect to running gkfsd daemon processes over
    // Unix sockets or TCP, per the hostfile's addresses (concurrent
    // client processes are safe — the daemons own all state).
    auto fabric = gekko::net::make_fabric(hostfile, {});
    if (!fabric) {
      std::fprintf(stderr, "[gkfs-preload] hostfile: %s\n",
                   fabric.status().to_string().c_str());
      g_in_init = false;
      return;
    }
    std::vector<gekko::net::EndpointId> daemons =
        (*fabric)->daemon_ids();
    state->socket_fabric = std::move(*fabric);
    state->mount = std::make_unique<gekko::fs::Mount>(
        *state->socket_fabric, std::move(daemons));
  } else {
    // EMBEDDED mode: boot daemons in-process (sequential processes
    // only; they share state through GKFS_ROOT).
    const char* root = ::getenv("GKFS_ROOT");
    const char* nodes_env = ::getenv("GKFS_NODES");
    const std::uint32_t nodes =
        nodes_env != nullptr ? std::strtoul(nodes_env, nullptr, 10) : 2;
    gekko::cluster::ClusterOptions opts;
    opts.nodes = nodes > 0 ? nodes : 2;
    opts.root = root != nullptr ? root : "/tmp/gkfs-preload-data";
    auto cluster = gekko::cluster::Cluster::start(opts);
    if (!cluster) {
      std::fprintf(stderr, "[gkfs-preload] boot failed: %s\n",
                   cluster.status().to_string().c_str());
      g_in_init = false;
      return;
    }
    state->cluster = std::move(*cluster);
    state->mount = state->cluster->mount();
  }
  state->enabled = true;
  g_state = state.release();
  g_in_init = false;
}

bool debug_enabled() {
  static const bool on = ::getenv("GKFS_DEBUG") != nullptr;
  return on;
}

#define GKFS_SHIM_LOG(...)                                   \
  do {                                                       \
    if (debug_enabled()) {                                   \
      std::fprintf(stderr, "[gkfs] " __VA_ARGS__);           \
      std::fputc('\n', stderr);                              \
    }                                                        \
  } while (0)

ShimState* shim() {
  if (g_in_init) return nullptr;  // pass through during our own boot
  std::call_once(g_init_once, init_shim);
  return g_state;
}

/// Paths under the mount prefix are ours; returns the gekko-internal
/// path ("/gkfs/a/b" -> "/a/b") or nullopt.
std::optional<std::string> intercept_path(const char* path) {
  ShimState* s = shim();
  if (s == nullptr || !s->enabled || path == nullptr || path[0] != '/') {
    return std::nullopt;
  }
  const std::string_view p{path};
  const std::string_view prefix{s->mount_prefix};
  if (!p.starts_with(prefix)) return std::nullopt;
  if (p.size() == prefix.size()) return std::string{"/"};
  if (p[prefix.size()] != '/') return std::nullopt;
  return std::string(p.substr(prefix.size()));
}

/// Resolve an application fd to a GekkoFS fd (direct or via dup2
/// alias); -1 if the fd is not ours.
int resolve_fd(int fd) {
  if (g_state == nullptr) return -1;
  if (gekko::fs::FileMap::owns(fd)) return fd;
  gekko::LockGuard lock(g_state->alias_mutex);
  auto it = g_state->fd_aliases.find(fd);
  return it != g_state->fd_aliases.end() ? it->second : -1;
}

void drop_alias(int fd) {
  if (g_state == nullptr) return;
  gekko::LockGuard lock(g_state->alias_mutex);
  g_state->fd_aliases.erase(fd);
}

int fail_errno(Errc code) {
  errno = gekko::errc_to_errno(code);
  return -1;
}

std::uint32_t translate_flags(int oflags) {
  std::uint32_t flags = 0;
  switch (oflags & O_ACCMODE) {
    case O_RDONLY: flags |= gekko::fs::rd_only; break;
    case O_WRONLY: flags |= gekko::fs::wr_only; break;
    default: flags |= gekko::fs::rd_wr; break;
  }
  if (oflags & O_CREAT) flags |= gekko::fs::create;
  if (oflags & O_EXCL) flags |= gekko::fs::excl;
  if (oflags & O_TRUNC) flags |= gekko::fs::trunc;
  if (oflags & O_APPEND) flags |= gekko::fs::append;
  return flags;
}

void fill_stat(const gekko::proto::Metadata& md, struct stat* st) {
  std::memset(st, 0, sizeof(*st));
  st->st_mode = (md.is_directory() ? S_IFDIR : S_IFREG) | (md.mode & 07777);
  st->st_size = static_cast<off_t>(md.size);
  st->st_nlink = 1;
  st->st_blksize = 512 * 1024;
  st->st_blocks = static_cast<blkcnt_t>((md.size + 511) / 512);
  st->st_mtim.tv_sec = md.mtime_ns / 1000000000;
  st->st_mtim.tv_nsec = md.mtime_ns % 1000000000;
  st->st_ctim = st->st_mtim;
  st->st_atim = st->st_mtim;
}

// Fake DIR* encoding: heap cell holding the gekko dirfd + a dirent.
struct GkfsDir {
  std::uint32_t magic = 0x6b474653;  // "kGFS"
  int dirfd;
  struct dirent entry;
};

bool is_gkfs_dir(DIR* d) {
  // Heuristic tag check; libc DIR begins with an fd int, our magic is
  // far outside the fd range.
  return d != nullptr &&
         reinterpret_cast<GkfsDir*>(d)->magic == 0x6b474653;
}

}  // namespace

// ---------- interposed entry points ----------

extern "C" {

// Forward declarations: some interposers delegate to others (e.g.
// unlinkat -> unlink), and definition order below is grouped by theme.
int unlink(const char* path);
int rmdir(const char* path);
int mkdir(const char* path, mode_t mode);
int access(const char* path, int mode);
int dup(int fd);
int stat(const char* path, struct stat* st);

int open(const char* path, int oflags, ...) {
  mode_t mode = 0;
  if (oflags & O_CREAT) {
    va_list args;
    va_start(args, oflags);
    mode = va_arg(args, mode_t);
    va_end(args);
  }
  if (auto internal = intercept_path(path)) {
    auto fd = g_state->mount->open(*internal, translate_flags(oflags),
                                   mode != 0 ? mode : 0644);
    GKFS_SHIM_LOG("open(%s, %#x) -> %d", path, oflags,
                  fd.is_ok() ? *fd : -1);
    if (!fd) return fail_errno(fd.code());
    return *fd;
  }
  static open_fn next = real<open_fn>("open");
  return (oflags & O_CREAT) ? next(path, oflags, mode) : next(path, oflags);
}

int open64(const char* path, int oflags, ...) {
  mode_t mode = 0;
  if (oflags & O_CREAT) {
    va_list args;
    va_start(args, oflags);
    mode = va_arg(args, mode_t);
    va_end(args);
  }
  return open(path, oflags, mode);
}

int openat(int dirfd, const char* path, int oflags, ...) {
  mode_t mode = 0;
  if (oflags & O_CREAT) {
    va_list args;
    va_start(args, oflags);
    mode = va_arg(args, mode_t);
    va_end(args);
  }
  // Absolute paths (and AT_FDCWD) under the prefix are ours; coreutils
  // route almost everything through openat(AT_FDCWD, ...).
  if (path != nullptr && path[0] == '/') {
    if (intercept_path(path)) return open(path, oflags, mode);
  }
  static openat_fn next = real<openat_fn>("openat");
  return (oflags & O_CREAT) ? next(dirfd, path, oflags, mode)
                            : next(dirfd, path, oflags);
}

int close(int fd) {
  static close_fn next = real<close_fn>("close");
  if (const int gfd = resolve_fd(fd); gfd >= 0) {
    if (gfd == fd) {
      gekko::Status st = g_state->mount->close(fd);
      if (!st.is_ok()) return fail_errno(st.code());
    } else {
      (void)g_state->mount->close(gfd);  // status-ignored-ok: the alias owns its dup
      drop_alias(fd);
      (void)next(fd);  // status-ignored-ok: release the /dev/null kernel placeholder
    }
    return 0;
  }
  return next(fd);
}

ssize_t read(int fd, void* buf, size_t count) {
  if (const int gfd = resolve_fd(fd); gfd >= 0) {
    auto n = g_state->mount->read(
        gfd, std::span<std::uint8_t>(static_cast<std::uint8_t*>(buf), count));
    if (!n) return fail_errno(n.code());
    return static_cast<ssize_t>(*n);
  }
  static read_fn next = real<read_fn>("read");
  return next(fd, buf, count);
}

ssize_t write(int fd, const void* buf, size_t count) {
  if (fd < 3 && resolve_fd(fd) < 0 && g_state != nullptr) {
    GKFS_SHIM_LOG("write(%d) passthrough", fd);
  }
  if (const int gfd = resolve_fd(fd); gfd >= 0) {
    auto n = g_state->mount->write(
        gfd, std::span<const std::uint8_t>(
                 static_cast<const std::uint8_t*>(buf), count));
    if (!n) return fail_errno(n.code());
    return static_cast<ssize_t>(*n);
  }
  static write_fn next = real<write_fn>("write");
  return next(fd, buf, count);
}

ssize_t pread(int fd, void* buf, size_t count, off_t offset) {
  if (const int gfd = resolve_fd(fd); gfd >= 0) {
    auto n = g_state->mount->pread(
        gfd, std::span<std::uint8_t>(static_cast<std::uint8_t*>(buf), count),
        static_cast<std::uint64_t>(offset));
    if (!n) return fail_errno(n.code());
    return static_cast<ssize_t>(*n);
  }
  static pread_fn next = real<pread_fn>("pread");
  return next(fd, buf, count, offset);
}

ssize_t pwrite(int fd, const void* buf, size_t count, off_t offset) {
  if (const int gfd = resolve_fd(fd); gfd >= 0) {
    auto n = g_state->mount->pwrite(
        gfd, std::span<const std::uint8_t>(
                 static_cast<const std::uint8_t*>(buf), count),
        static_cast<std::uint64_t>(offset));
    if (!n) return fail_errno(n.code());
    return static_cast<ssize_t>(*n);
  }
  static pwrite_fn next = real<pwrite_fn>("pwrite");
  return next(fd, buf, count, offset);
}

off_t lseek(int fd, off_t offset, int whence) {
  if (const int gfd = resolve_fd(fd); gfd >= 0) {
    gekko::fs::Mount::Whence w = gekko::fs::Mount::Whence::set;
    if (whence == SEEK_CUR) w = gekko::fs::Mount::Whence::cur;
    if (whence == SEEK_END) w = gekko::fs::Mount::Whence::end;
    auto pos = g_state->mount->lseek(gfd, offset, w);
    if (!pos) return fail_errno(pos.code());
    return static_cast<off_t>(*pos);
  }
  static lseek_fn next = real<lseek_fn>("lseek");
  return next(fd, offset, whence);
}

int stat(const char* path, struct stat* st) {
  if (auto internal = intercept_path(path)) {
    auto md = g_state->mount->stat(*internal);
    if (!md) return fail_errno(md.code());
    fill_stat(*md, st);
    return 0;
  }
  static stat_fn next = real<stat_fn>("stat");
  return next(path, st);
}

int lstat(const char* path, struct stat* st) {
  if (intercept_path(path)) return stat(path, st);  // no symlinks in gkfs
  static stat_fn next = real<stat_fn>("lstat");
  return next(path, st);
}

int fstat(int fd, struct stat* st) {
  if (const int gfd = resolve_fd(fd); gfd >= 0) {
    auto md = g_state->mount->fstat(gfd);
    if (!md) return fail_errno(md.code());
    fill_stat(*md, st);
    return 0;
  }
  static fstat_fn next = real<fstat_fn>("fstat");
  return next(fd, st);
}

int unlink(const char* path) {
  if (auto internal = intercept_path(path)) {
    gekko::Status st = g_state->mount->unlink(*internal);
    if (!st.is_ok()) return fail_errno(st.code());
    return 0;
  }
  static unlink_fn next = real<unlink_fn>("unlink");
  return next(path);
}

int mkdir(const char* path, mode_t mode) {
  if (auto internal = intercept_path(path)) {
    gekko::Status st = g_state->mount->mkdir(*internal, mode);
    if (!st.is_ok()) return fail_errno(st.code());
    return 0;
  }
  static mkdir_fn next = real<mkdir_fn>("mkdir");
  return next(path, mode);
}

int rmdir(const char* path) {
  if (auto internal = intercept_path(path)) {
    gekko::Status st = g_state->mount->rmdir(*internal);
    if (!st.is_ok()) return fail_errno(st.code());
    return 0;
  }
  static rmdir_fn next = real<rmdir_fn>("rmdir");
  return next(path);
}

int truncate(const char* path, off_t length) {
  if (auto internal = intercept_path(path)) {
    gekko::Status st = g_state->mount->truncate(
        *internal, static_cast<std::uint64_t>(length));
    if (!st.is_ok()) return fail_errno(st.code());
    return 0;
  }
  static truncate_fn next = real<truncate_fn>("truncate");
  return next(path, length);
}

int ftruncate(int fd, off_t length) {
  if (const int gfd = resolve_fd(fd); gfd >= 0) {
    auto file = g_state->mount->file_map().file(gfd);
    if (!file) return fail_errno(Errc::bad_fd);
    gekko::Status st = g_state->mount->truncate(
        file->path, static_cast<std::uint64_t>(length));
    if (!st.is_ok()) return fail_errno(st.code());
    return 0;
  }
  static ftruncate_fn next = real<ftruncate_fn>("ftruncate");
  return next(fd, length);
}

int fsync(int fd) {
  if (const int gfd = resolve_fd(fd); gfd >= 0) {
    gekko::Status st = g_state->mount->fsync(gfd);
    if (!st.is_ok()) return fail_errno(st.code());
    return 0;
  }
  static fsync_fn next = real<fsync_fn>("fsync");
  return next(fd);
}

int fdatasync(int fd) { return fsync(fd); }

// rename across or inside the GekkoFS namespace: unsupported by design.
int renameat2(int, const char* from, int, const char* to, unsigned int);

int renameat(int fromfd, const char* from, int tofd, const char* to) {
  return renameat2(fromfd, from, tofd, to, 0);
}

int renameat2(int fromfd, const char* from, int tofd, const char* to,
              unsigned int flags) {
  const bool from_gkfs =
      from != nullptr && from[0] == '/' && intercept_path(from).has_value();
  const bool to_gkfs =
      to != nullptr && to[0] == '/' && intercept_path(to).has_value();
  if (from_gkfs || to_gkfs) {
    errno = ENOTSUP;
    return -1;
  }
  static auto next = real<int (*)(int, const char*, int, const char*,
                                  unsigned int)>("renameat2");
  return next(fromfd, from, tofd, to, flags);
}

int rename(const char* from, const char* to) {
  const bool from_gkfs = intercept_path(from).has_value();
  const bool to_gkfs = intercept_path(to).has_value();
  if (from_gkfs || to_gkfs) {
    errno = ENOTSUP;
    return -1;
  }
  static auto next = real<int (*)(const char*, const char*)>("rename");
  return next(from, to);
}

DIR* opendir(const char* path) {
  if (auto internal = intercept_path(path)) {
    auto dirfd = g_state->mount->opendir(*internal);
    if (!dirfd) {
      errno = gekko::errc_to_errno(dirfd.code());
      return nullptr;
    }
    auto* handle = new GkfsDir();
    handle->dirfd = *dirfd;
    return reinterpret_cast<DIR*>(handle);
  }
  static opendir_fn next = real<opendir_fn>("opendir");
  return next(path);
}

struct dirent* readdir(DIR* dir) {
  if (is_gkfs_dir(dir)) {
    auto* handle = reinterpret_cast<GkfsDir*>(dir);
    auto entry = g_state->mount->readdir(handle->dirfd);
    if (!entry || !entry->has_value()) return nullptr;
    std::memset(&handle->entry, 0, sizeof(handle->entry));
    std::snprintf(handle->entry.d_name, sizeof(handle->entry.d_name), "%s",
                  (*entry)->name.c_str());
    handle->entry.d_type =
        (*entry)->type == gekko::proto::FileType::directory ? DT_DIR
                                                            : DT_REG;
    return &handle->entry;
  }
  static readdir_fn next = real<readdir_fn>("readdir");
  return next(dir);
}

int closedir(DIR* dir) {
  if (is_gkfs_dir(dir)) {
    auto* handle = reinterpret_cast<GkfsDir*>(dir);
    // status-ignored-ok: teardown of a handle being freed
    (void)g_state->mount->closedir(handle->dirfd);
    delete handle;
    return 0;
  }
  static closedir_fn next = real<closedir_fn>("closedir");
  return next(dir);
}

int dup(int fd) {
  if (const int gfd = resolve_fd(fd); gfd >= 0) {
    // Share the open-file description through the FileMap (POSIX dup
    // shares the offset).
    auto file = g_state->mount->file_map().file(gfd);
    if (!file) return fail_errno(Errc::bad_fd);
    return const_cast<gekko::fs::FileMap&>(g_state->mount->file_map())
        .insert_file(std::move(file));
  }
  static auto next = real<int (*)(int)>("dup");
  return next(fd);
}

int dup2(int oldfd, int newfd) {
  GKFS_SHIM_LOG("dup2(%d, %d) gfd=%d", oldfd, newfd, resolve_fd(oldfd));
  static auto next = real<int (*)(int, int)>("dup2");
  if (const int gfd = resolve_fd(oldfd); gfd >= 0) {
    if (newfd == oldfd) return newfd;
    // Shell redirection: stdout/stderr now point at a GekkoFS file.
    (void)close(newfd);  // status-ignored-ok: evicting whatever was there (real or alias)
    // Pin `newfd` at the KERNEL level with a /dev/null placeholder so
    // the kernel never reissues this number while our alias lives —
    // otherwise a later real open() could collide with it.
    static open_fn ropen = real<open_fn>("open");
    const int placeholder = ropen("/dev/null", O_RDONLY);
    if (placeholder >= 0) {
      if (placeholder != newfd) {
        next(placeholder, newfd);
        static close_fn rclose = real<close_fn>("close");
        rclose(placeholder);
      }
    }
    // Duplicate the open-file description (POSIX dup2): the caller
    // may close the original fd and keep using the duplicate.
    auto file = g_state->mount->file_map().file(gfd);
    if (!file) return fail_errno(Errc::bad_fd);
    const int gdup =
        const_cast<gekko::fs::FileMap&>(g_state->mount->file_map())
            .insert_file(std::move(file));
    gekko::LockGuard lock(g_state->alias_mutex);
    g_state->fd_aliases[newfd] = gdup;
    return newfd;
  }
  drop_alias(newfd);  // real dup2 implicitly closes an aliased target
  return next(oldfd, newfd);
}

int fcntl(int fd, int cmd, ...) {
  va_list args;
  va_start(args, cmd);
  void* arg = va_arg(args, void*);
  va_end(args);
  if (const int gfd = resolve_fd(fd); gfd >= 0) {
    GKFS_SHIM_LOG("fcntl(%d, %d)", fd, cmd);
    switch (cmd) {
      case F_DUPFD:
      case F_DUPFD_CLOEXEC:
        return dup(gfd);
      case F_GETFL: {
        auto file = g_state->mount->file_map().file(gfd);
        if (!file) return fail_errno(Errc::bad_fd);
        int fl = 0;
        if (file->readable() && file->writable()) {
          fl = O_RDWR;
        } else if (file->writable()) {
          fl = O_WRONLY;
        }
        if (file->appending()) fl |= O_APPEND;
        return fl;
      }
      case F_GETFD:
        return 0;
      case F_SETFD:
      case F_SETFL:
        return 0;  // CLOEXEC/nonblock are meaningless for gekko fds
      default:
        errno = EINVAL;
        return -1;
    }
  }
  static auto next = real<int (*)(int, int, ...)>("fcntl");
  return next(fd, cmd, arg);
}

int fcntl64(int fd, int cmd, ...) {
  va_list args;
  va_start(args, cmd);
  void* arg = va_arg(args, void*);
  va_end(args);
  if (resolve_fd(fd) >= 0) {
    return fcntl(fd, cmd, arg);
  }
  static auto next = real<int (*)(int, int, ...)>("fcntl64");
  return next(fd, cmd, arg);
}

ssize_t writev(int fd, const struct iovec* iov, int iovcnt) {
  GKFS_SHIM_LOG("writev(%d, cnt=%d) gfd=%d", fd, iovcnt, resolve_fd(fd));
  if (resolve_fd(fd) >= 0) {
    ssize_t total = 0;
    for (int i = 0; i < iovcnt; ++i) {
      const ssize_t n = write(fd, iov[i].iov_base, iov[i].iov_len);
      if (n < 0) return total > 0 ? total : n;
      total += n;
      if (static_cast<size_t>(n) < iov[i].iov_len) break;
    }
    return total;
  }
  static auto next =
      real<ssize_t (*)(int, const struct iovec*, int)>("writev");
  return next(fd, iov, iovcnt);
}

ssize_t readv(int fd, const struct iovec* iov, int iovcnt) {
  if (resolve_fd(fd) >= 0) {
    ssize_t total = 0;
    for (int i = 0; i < iovcnt; ++i) {
      const ssize_t n = read(fd, iov[i].iov_base, iov[i].iov_len);
      if (n < 0) return total > 0 ? total : n;
      total += n;
      if (static_cast<size_t>(n) < iov[i].iov_len) break;
    }
    return total;
  }
  static auto next =
      real<ssize_t (*)(int, const struct iovec*, int)>("readv");
  return next(fd, iov, iovcnt);
}

int fstatat(int dirfd, const char* path, struct stat* st, int flags) {
  if (path != nullptr && path[0] == '/' && intercept_path(path)) {
    return stat(path, st);
  }
  static auto next =
      real<int (*)(int, const char*, struct stat*, int)>("fstatat");
  return next(dirfd, path, st, flags);
}

int statx(int dirfd, const char* path, int flags, unsigned int mask,
          struct statx* stxbuf) {
  const bool self_fd =
      (flags & AT_EMPTY_PATH) != 0 && resolve_fd(dirfd) >= 0;
  if (self_fd ||
      (path != nullptr && path[0] == '/' && intercept_path(path))) {
    gekko::Result<gekko::proto::Metadata> md = gekko::Errc::not_found;
    if (self_fd) {
      md = g_state->mount->fstat(resolve_fd(dirfd));
    } else {
      auto internal = intercept_path(path);
      md = g_state->mount->stat(*internal);
    }
    if (!md) return fail_errno(md.code());
    std::memset(stxbuf, 0, sizeof(*stxbuf));
    stxbuf->stx_mask = mask & (STATX_TYPE | STATX_MODE | STATX_SIZE |
                               STATX_MTIME | STATX_NLINK);
    stxbuf->stx_mode = static_cast<std::uint16_t>(
        (md->is_directory() ? S_IFDIR : S_IFREG) | (md->mode & 07777));
    stxbuf->stx_size = md->size;
    stxbuf->stx_nlink = 1;
    stxbuf->stx_blksize = 512 * 1024;
    stxbuf->stx_mtime.tv_sec = md->mtime_ns / 1000000000;
    stxbuf->stx_mtime.tv_nsec =
        static_cast<std::uint32_t>(md->mtime_ns % 1000000000);
    stxbuf->stx_ctime = stxbuf->stx_mtime;
    return 0;
  }
  static auto next = real<int (*)(int, const char*, int, unsigned int,
                                  struct statx*)>("statx");
  return next(dirfd, path, flags, mask, stxbuf);
}

// touch: creation happens via openat(O_CREAT); the subsequent
// timestamp update is accepted and ignored (GekkoFS keeps coarse
// mtimes maintained by writes, not utimensat).
int utimensat(int dirfd, const char* path, const struct timespec* times,
              int flags) {
  if (path != nullptr && path[0] == '/' && intercept_path(path)) {
    auto internal = intercept_path(path);
    auto md = g_state->mount->stat(*internal);
    if (!md) return fail_errno(md.code());
    return 0;
  }
  static auto next = real<int (*)(int, const char*, const struct timespec*,
                                  int)>("utimensat");
  return next(dirfd, path, times, flags);
}

// No permission enforcement in GekkoFS (paper §III.A): accept chmod.
int chmod(const char* path, mode_t mode) {
  if (intercept_path(path)) return 0;
  static auto next = real<int (*)(const char*, mode_t)>("chmod");
  return next(path, mode);
}

int fchmod(int fd, mode_t mode) {
  if (resolve_fd(fd) >= 0) return 0;
  static auto next = real<int (*)(int, mode_t)>("fchmod");
  return next(fd, mode);
}

int unlinkat(int dirfd, const char* path, int flags) {
  if (path != nullptr && path[0] == '/' && intercept_path(path)) {
    if (flags & AT_REMOVEDIR) {
      return rmdir(path);
    }
    return unlink(path);
  }
  static auto next = real<int (*)(int, const char*, int)>("unlinkat");
  return next(dirfd, path, flags);
}

int mkdirat(int dirfd, const char* path, mode_t mode) {
  if (path != nullptr && path[0] == '/' && intercept_path(path)) {
    return mkdir(path, mode);
  }
  static auto next = real<int (*)(int, const char*, mode_t)>("mkdirat");
  return next(dirfd, path, mode);
}

int faccessat(int dirfd, const char* path, int mode, int flags) {
  if (path != nullptr && path[0] == '/' && intercept_path(path)) {
    return access(path, mode);
  }
  static auto next =
      real<int (*)(int, const char*, int, int)>("faccessat");
  return next(dirfd, path, mode, flags);
}

int access(const char* path, int mode) {
  if (auto internal = intercept_path(path)) {
    auto md = g_state->mount->stat(*internal);
    if (!md) return fail_errno(md.code());
    return 0;  // no permission enforcement in GekkoFS
  }
  static auto next = real<int (*)(const char*, int)>("access");
  return next(path, mode);
}

}  // extern "C"
