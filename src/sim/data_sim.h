// Data-phase cluster model (Fig. 3 and §IV.B): the IOR workload —
// P processes per node stream transfers of a given size into their own
// file (file-per-process) or one shared file, sequentially or at
// random offsets.
//
// Each simulated transfer runs through the REAL placement code
// (proto::split_extent + proto::Distributor): slices are grouped per
// target daemon exactly like the production client does, then each
// per-daemon RPC traverses client NIC -> wire -> daemon CPU -> SSD and
// joins. Writes end with a size-update RPC to the file's metadata
// daemon — synchronous, or absorbed by the client size cache (the
// paper's shared-file fix).
#pragma once

#include <cstdint>

#include "proto/distributor.h"
#include "sim/calibration.h"

namespace gekko::sim {

struct DataSimConfig {
  std::uint32_t nodes = 1;
  std::uint64_t transfer_size = 512 * 1024;
  std::uint32_t transfers_per_proc = 20;
  std::uint32_t chunk_size = 512 * 1024;
  bool write = true;
  bool random_offsets = false;
  bool shared_file = false;
  /// 0 = synchronous size updates (paper default);
  /// N = client buffers N updates before sending one (§IV.B cache).
  std::uint32_t size_cache_interval = 0;
  /// Client stat cache (paper future-work #2): reads skip the per-read
  /// metadata RPC (warm-cache steady state).
  bool stat_cache = false;
  proto::DistributionPolicy policy = proto::DistributionPolicy::hash;
  std::uint64_t seed = 1;
  Calibration cal{};
};

SimResult run_gekkofs_data(const DataSimConfig& config);

/// Aggregated node-local SSD peak for the reference line in Fig. 3
/// (MiB/s for `nodes` SSDs at sequential streaming).
double ssd_peak_mib_s(const Calibration& cal, std::uint32_t nodes,
                      bool write);

}  // namespace gekko::sim
