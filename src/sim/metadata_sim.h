// Metadata-phase cluster models (Fig. 2): GekkoFS vs Lustre running the
// mdtest workload — P processes per node, each creating/stat-ing/
// removing its own zero-byte files in ONE shared directory.
//
// GekkoFS model: every op is one RPC to the daemon selected by hashing
// the file path (the REAL HashDistributor code); daemons are
// independent single-server KV queues. Linear scaling falls out of the
// placement structure, not out of an assumed formula.
//
// Lustre model: every op crosses a higher-latency network to ONE MDS
// (a c-server queue); creates/removes additionally serialize through
// the parent directory's lock. `single_dir=false` gives each process
// its own directory (no shared lock), the paper's `unique dir` line.
#pragma once

#include <cstdint>

#include "sim/calibration.h"

namespace gekko::sim {

enum class MetaPhase { create, stat, remove };

struct MetadataSimConfig {
  std::uint32_t nodes = 1;
  MetaPhase phase = MetaPhase::create;
  /// Files per process; the paper uses 100k, we default to a scaled
  /// steady-state sample (throughput is time-invariant in this model).
  std::uint32_t ops_per_proc = 200;
  std::uint64_t seed = 1;
  Calibration cal{};
};

struct LustreSimConfig {
  std::uint32_t nodes = 1;
  MetaPhase phase = MetaPhase::create;
  std::uint32_t ops_per_proc = 200;
  bool single_dir = true;  // false => "unique dir"
  std::uint64_t seed = 1;
  Calibration cal{};
};

SimResult run_gekkofs_metadata(const MetadataSimConfig& config);
SimResult run_lustre_metadata(const LustreSimConfig& config);

}  // namespace gekko::sim
