#include "sim/data_sim.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "proto/chunking.h"
#include "simkit/resource.h"
#include "simkit/simulator.h"

namespace gekko::sim {
namespace {

/// SSD service time for one contiguous slice.
double ssd_service(const Calibration& cal, bool write, std::uint64_t bytes,
                   bool random_subchunk) {
  const double bw = write ? cal.ssd_write_bw : cal.ssd_read_bw;
  const double iops = write ? cal.ssd_write_iops : cal.ssd_read_iops;
  double t = std::max(static_cast<double>(bytes) / bw, 1.0 / iops);
  if (random_subchunk) {
    t *= write ? cal.ssd_random_write_penalty : cal.ssd_random_read_penalty;
  }
  return t;
}

struct NodeResources {
  std::unique_ptr<simkit::Resource> nic;   // client-side NIC serialization
  std::unique_ptr<simkit::Resource> cpu;   // daemon handler CPU
  std::unique_ptr<simkit::Resource> ssd;   // one SSD per node
  std::unique_ptr<simkit::Resource> kv;    // metadata (size updates, stat)
};

}  // namespace

double ssd_peak_mib_s(const Calibration& cal, std::uint32_t nodes,
                      bool write) {
  const double bw = write ? cal.ssd_peak_write_bw : cal.ssd_peak_read_bw;
  return nodes * bw / (1024.0 * 1024.0);
}

SimResult run_gekkofs_data(const DataSimConfig& config) {
  simkit::Simulator sim;
  const Calibration& cal = config.cal;
  const std::uint32_t nodes = config.nodes;
  const std::uint32_t procs = nodes * cal.procs_per_node;

  std::vector<NodeResources> node_res(nodes);
  for (std::uint32_t n = 0; n < nodes; ++n) {
    node_res[n].nic =
        std::make_unique<simkit::Resource>(sim, 1, "nic" + std::to_string(n));
    node_res[n].cpu =
        std::make_unique<simkit::Resource>(sim, 2, "cpu" + std::to_string(n));
    node_res[n].ssd =
        std::make_unique<simkit::Resource>(sim, 1, "ssd" + std::to_string(n));
    node_res[n].kv =
        std::make_unique<simkit::Resource>(sim, 1, "kv" + std::to_string(n));
  }

  auto dist = proto::make_distributor(config.policy, nodes);

  struct ProcState {
    std::string path;
    std::uint32_t done = 0;
    std::uint32_t cache_pending = 0;
    Xoshiro256 rng{0};
  };

  struct Shared {
    std::uint64_t transfers = 0;
    std::uint64_t bytes = 0;
    double last_done = 0;
    OnlineStats latency;
    // Steady-state measurement window: fixed-op closed-loop runs end in
    // a straggler tail (procs pinned to the most-loaded SSD finish
    // last); rate is measured between 20% and 80% completion.
    std::uint64_t total_expected = 0;
    double t20 = -1, t80 = -1;
  };
  auto shared = std::make_shared<Shared>();
  shared->total_expected = static_cast<std::uint64_t>(procs) *
                           config.transfers_per_proc;
  auto states = std::make_shared<std::vector<ProcState>>(procs);
  for (std::uint32_t p = 0; p < procs; ++p) {
    auto& st = (*states)[p];
    st.path = config.shared_file ? std::string("/ior/shared")
                                 : "/ior/file." + std::to_string(p);
    st.rng = Xoshiro256(config.seed * 1315423911ULL + p);
  }

  // The logical file region random offsets land in (chunk-aligned file
  // space several times larger than what one run writes, like IOR's
  // pre-created 4 GiB files).
  const std::uint64_t file_span = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(config.transfers_per_proc) *
          config.transfer_size * 4,
      std::uint64_t{1} << 30);

  auto start_transfer_holder =
      std::make_shared<std::function<void(std::uint32_t)>>();
  auto* start_transfer = start_transfer_holder.get();

  *start_transfer = [&, shared, states, start_transfer](std::uint32_t proc) {
    auto& st = (*states)[proc];
    if (st.done >= config.transfers_per_proc) return;
    const std::uint32_t client_node = proc / cal.procs_per_node;

    std::uint64_t offset;
    bool random_subchunk = false;
    if (config.random_offsets) {
      offset = st.rng.below(file_span - config.transfer_size);
      if (config.transfer_size < config.chunk_size) {
        // Sub-chunk random access hits a random position inside a chunk
        // (paper: for transfer >= chunk size random == sequential).
        random_subchunk = true;
      } else {
        offset &= ~(static_cast<std::uint64_t>(config.chunk_size) - 1);
      }
    } else if (config.shared_file) {
      // IOR segmented layout: rank p owns the p-th strided block of
      // each segment — disjoint offsets, like the real benchmark.
      offset = (static_cast<std::uint64_t>(st.done) * procs + proc) *
               config.transfer_size;
    } else {
      offset = static_cast<std::uint64_t>(st.done) * config.transfer_size;
    }

    // REAL placement path: chunk split + distributor, grouped per daemon.
    const auto extents =
        proto::split_extent(offset, config.transfer_size, config.chunk_size);
    std::map<std::uint32_t, std::pair<std::uint64_t, std::uint32_t>>
        per_daemon;  // daemon -> {bytes, slice count}
    for (const auto& e : extents) {
      const std::uint32_t target = dist->chunk_target(st.path, e.chunk_id);
      auto& agg = per_daemon[target];
      agg.first += e.length;
      agg.second += 1;
    }

    const double t0 = sim.now();

    auto complete = [&, shared, states, start_transfer, proc, t0] {
      auto& ps = (*states)[proc];
      ++ps.done;
      ++shared->transfers;
      shared->bytes += config.transfer_size;
      shared->latency.add(sim.now() - t0);
      shared->last_done = sim.now();
      if (shared->t20 < 0 &&
          shared->transfers * 5 >= shared->total_expected) {
        shared->t20 = sim.now();
      }
      if (shared->t80 < 0 &&
          shared->transfers * 5 >= shared->total_expected * 4) {
        shared->t80 = sim.now();
      }
      (*start_transfer)(proc);
    };

    // Writes: size update to the metadata owner after the data lands
    // (or absorbed by the client cache). Reads: a stat RPC up front is
    // modeled as part of the same join (issued concurrently here; the
    // real client serializes it, a difference that only adds a fixed
    // RTT at low load).
    auto after_data = [&, shared, states, complete, proc]() mutable {
      auto& ps = (*states)[proc];
      bool need_md_rpc;
      if (!config.write) {
        need_md_rpc = !config.stat_cache;  // stat for EOF
      } else if (config.size_cache_interval == 0) {
        need_md_rpc = true;  // synchronous size update
      } else {
        need_md_rpc = (++ps.cache_pending >= config.size_cache_interval);
        if (need_md_rpc) ps.cache_pending = 0;
      }
      if (!need_md_rpc) {
        complete();
        return;
      }
      const std::uint32_t md_target = dist->metadata_target(ps.path);
      sim.schedule(cal.net_latency_s, [&, md_target, complete] {
        node_res[md_target].kv->acquire(
            cal.rpc_overhead_s + cal.kv_update_size_s, [&, complete] {
              sim.schedule(cal.net_latency_s, complete);
            });
      });
    };

    auto join = std::make_shared<simkit::Join>(
        per_daemon.size(), std::move(after_data));

    for (const auto& [daemon, agg] : per_daemon) {
      const std::uint64_t bytes = agg.first;
      const std::uint32_t slices = agg.second;
      const double wire_time =
          static_cast<double>(bytes) / cal.net_bw_bytes_per_s;
      const double cpu_time =
          cal.rpc_overhead_s + cal.rpc_per_slice_s * slices;
      // SSD sees one service per slice; aggregate them as one request
      // (FCFS makes the sum equivalent for same-file slices).
      double ssd_time = 0;
      const std::uint64_t per_slice = bytes / slices;
      for (std::uint32_t s = 0; s < slices; ++s) {
        ssd_time += ssd_service(cal, config.write, per_slice,
                                random_subchunk);
      }

      // client NIC (serializes this node's outgoing data) -> wire
      // latency -> daemon CPU -> SSD -> response latency -> join.
      node_res[client_node].nic->acquire(wire_time, [&, daemon, cpu_time,
                                                     ssd_time, join] {
        sim.schedule(cal.net_latency_s, [&, daemon, cpu_time, ssd_time,
                                         join] {
          node_res[daemon].cpu->acquire(cpu_time, [&, daemon, ssd_time,
                                                   join] {
            node_res[daemon].ssd->acquire(ssd_time, [&, join] {
              sim.schedule(cal.net_latency_s, [join] { join->arrive(); });
            });
          });
        });
      });
    }
  };

  for (std::uint32_t p = 0; p < procs; ++p) (*start_transfer)(p);
  const std::uint64_t events = sim.run();

  SimResult r;
  r.total_ops = shared->transfers;
  r.sim_seconds = shared->last_done;
  // Steady-state rate from the 20%..80% completion window; fall back to
  // whole-run averaging when the run is too short for a window.
  const bool windowed =
      shared->t20 >= 0 && shared->t80 > shared->t20;
  const double window_ops =
      windowed ? 0.6 * static_cast<double>(shared->total_expected) : 0;
  if (windowed) {
    r.ops_per_sec = window_ops / (shared->t80 - shared->t20);
    r.mib_per_sec = r.ops_per_sec *
                    static_cast<double>(config.transfer_size) /
                    (1024.0 * 1024.0);
  } else if (r.sim_seconds > 0) {
    r.ops_per_sec = static_cast<double>(r.total_ops) / r.sim_seconds;
    r.mib_per_sec = static_cast<double>(shared->bytes) / (1024.0 * 1024.0) /
                    r.sim_seconds;
  }
  r.mean_latency_s = shared->latency.mean();
  r.events = events;
  return r;
}

}  // namespace gekko::sim
