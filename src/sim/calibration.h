// Calibration constants for the cluster models.
//
// Sources:
//  - MOGON II hardware description (paper §IV): 100 Gbit/s Omni-Path,
//    Intel DC S3700 SATA SSDs, 2-socket Broadwell nodes, 16 procs/node.
//  - Fitted anchors from the paper's own numbers:
//      * Fig. 2 @512 nodes: 46 M creates/s, 44 M stats/s, 22 M removes/s
//        (≈ 90k / 86k / 43k per node) and ~1405x/359x/453x vs Lustre
//        => Lustre ≈ 33k creates/s, 122k stats/s, 48k removes/s, flat.
//      * Fig. 3 @512 nodes: 141 GiB/s write (~80% of aggregated SSD
//        peak), 204 GiB/s read (~70%), >13M write IOPS / >22M read
//        IOPS at 8 KiB, mean latency <= 700 us at 8 KiB.
//      * §IV.B: random 8 KiB: write -33%, read -60%;
//        shared-file without size cache: ~150K writes/s ceiling.
//
// Absolute values are inputs, not results; what the simulator *produces*
// is the scaling shape, crossovers, and contention cliffs.
#pragma once

#include <cstdint>

namespace gekko::sim {

struct Calibration {
  // --- network (Omni-Path 100 Gbit/s, non-blocking fat tree) ---
  double net_latency_s = 1.5e-6;          // one-way small-message latency
  double net_bw_bytes_per_s = 11.0e9;     // effective per-NIC bandwidth
  double rpc_overhead_s = 3.0e-6;         // serialize+dispatch per RPC
  double rpc_per_slice_s = 0.8e-6;        // per chunk-slice handling

  // --- GekkoFS daemon metadata service (RocksDB-backed KV) ---
  double kv_create_s = 7.3e-6;            // ~90k creates/s/daemon net
  double kv_stat_s = 7.8e-6;              // ~86k stats/s/daemon net
  double kv_remove_s = 18.4e-6;           // ~43k removes/s/daemon net
  double kv_update_size_s = 3.5e-6;       // shared-file ceiling ~150k/s
                                          // (incl. rpc_overhead on the
                                          // metadata owner's queue)
  std::size_t daemon_md_servers = 1;      // KV write path is serialized

  // --- node-local SSD (DC S3700 scratch, as deployed) ---
  // Raw device streaming peaks (the white reference boxes in Fig. 3):
  double ssd_peak_write_bw = 370.0e6;     // bytes/s sequential
  double ssd_peak_read_bw = 560.0e6;
  // Effective rates through the chunk-file persistence layer (XFS
  // allocation/journaling overhead; yields the paper's ~80%/~70%
  // of-aggregated-peak efficiency):
  double ssd_write_bw = 315.0e6;
  double ssd_read_bw = 420.0e6;
  double ssd_write_iops = 26000.0;        // effective chunk-file IOPS
  double ssd_read_iops = 45000.0;
  double ssd_random_write_penalty = 1.5;  // -33% throughput (paper)
  double ssd_random_read_penalty = 2.5;   // -60% throughput (paper)

  // --- Lustre baseline (centralized MDS; shared with other users) ---
  double mds_rtt_s = 100.0e-6;            // client<->MDS round trip
  std::size_t mds_servers = 16;           // MDS service threads
  double mds_create_svc_s = 60.0e-6;      // per-create CPU on the MDS
  double mds_stat_svc_s = 110.0e-6;       // ~122k stats/s at 16 threads
  double mds_remove_svc_s = 90.0e-6;
  // Serialized critical section on the parent directory (single-dir
  // create storm pathology): throughput caps near 1/section.
  double dir_lock_create_s = 30.0e-6;     // => ~33k creates/s ceiling
  double dir_lock_remove_s = 21.0e-6;     // => ~48k removes/s ceiling
  // Interference from other jobs on the shared system (paper ran
  // Lustre tests on the production file system): multiplicative jitter.
  double lustre_jitter = 0.15;

  // --- workload ---
  std::uint32_t procs_per_node = 16;
};

/// One throughput sample from a simulated run.
struct SimResult {
  double ops_per_sec = 0;
  double mib_per_sec = 0;
  double mean_latency_s = 0;
  double p99_latency_s = 0;
  double sim_seconds = 0;
  std::uint64_t total_ops = 0;
  std::uint64_t events = 0;
};

}  // namespace gekko::sim
