#include "sim/metadata_sim.h"

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "proto/distributor.h"
#include "simkit/resource.h"
#include "simkit/simulator.h"

namespace gekko::sim {
namespace {

double phase_service(const Calibration& cal, MetaPhase phase) {
  switch (phase) {
    case MetaPhase::create: return cal.kv_create_s;
    case MetaPhase::stat: return cal.kv_stat_s;
    case MetaPhase::remove: return cal.kv_remove_s;
  }
  return cal.kv_create_s;
}

}  // namespace

SimResult run_gekkofs_metadata(const MetadataSimConfig& config) {
  simkit::Simulator sim;
  const Calibration& cal = config.cal;
  const std::uint32_t nodes = config.nodes;
  const std::uint32_t procs = nodes * cal.procs_per_node;
  const double service = phase_service(cal, config.phase);

  // One KV queue per daemon (write path serialized, as in the real DB).
  std::vector<std::unique_ptr<simkit::Resource>> daemons;
  daemons.reserve(nodes);
  for (std::uint32_t d = 0; d < nodes; ++d) {
    daemons.push_back(std::make_unique<simkit::Resource>(
        sim, cal.daemon_md_servers, "kv" + std::to_string(d)));
  }

  proto::HashDistributor dist(nodes);

  struct Shared {
    std::uint64_t completed = 0;
    double first_done = 0;
    double last_done = 0;
    OnlineStats latency;
  };
  auto shared = std::make_shared<Shared>();
  const std::uint64_t total_ops =
      static_cast<std::uint64_t>(procs) * config.ops_per_proc;

  // Closed loop per process: issue -> (net) -> daemon KV -> (net) -> next.
  // Declared as a shared recursive lambda so the completion continuation
  // can re-enter it.
  auto issue_holder = std::make_shared<std::function<void(std::uint32_t,
                                                          std::uint32_t)>>();
  auto* issue = issue_holder.get();  // raw: outlives sim.run(), no cycle
  *issue = [&sim, &daemons, &dist, cal, service, shared, issue, config,
            total_ops](std::uint32_t proc, std::uint32_t op) {
    if (op >= config.ops_per_proc) return;
    // mdtest file name: all procs share one directory; GekkoFS's flat
    // hashing makes the directory irrelevant (single == unique dir).
    const std::string path = "/mdtest/file." + std::to_string(proc) + "." +
                             std::to_string(op);
    const std::uint32_t target = dist.metadata_target(path);
    const double t0 = sim.now();
    sim.schedule(cal.net_latency_s, [&sim, &daemons, target, service, cal,
                                     shared, issue, proc, op, t0,
                                     total_ops] {
      daemons[target]->acquire(
          cal.rpc_overhead_s + service,
          [&sim, cal, shared, issue, proc, op, t0, total_ops] {
            sim.schedule(cal.net_latency_s, [shared, issue, proc, op, t0,
                                             total_ops, &sim] {
              shared->latency.add(sim.now() - t0);
              if (shared->completed++ == 0) shared->first_done = sim.now();
              shared->last_done = sim.now();
              (void)total_ops;
              (*issue)(proc, op + 1);
            });
          });
    });
  };

  for (std::uint32_t p = 0; p < procs; ++p) (*issue)(p, 0);
  const std::uint64_t events = sim.run();

  SimResult r;
  r.total_ops = shared->completed;
  r.sim_seconds = shared->last_done;
  r.ops_per_sec =
      r.sim_seconds > 0 ? static_cast<double>(r.total_ops) / r.sim_seconds
                        : 0;
  r.mean_latency_s = shared->latency.mean();
  r.events = events;
  return r;
}

SimResult run_lustre_metadata(const LustreSimConfig& config) {
  simkit::Simulator sim;
  const Calibration& cal = config.cal;
  const std::uint32_t nodes = config.nodes;
  const std::uint32_t procs = nodes * cal.procs_per_node;

  // ONE metadata server for the whole system.
  simkit::Resource mds(sim, cal.mds_servers, "mds");
  // Parent-directory critical section. single dir: one shared lock;
  // unique dir: per-process locks (no contention).
  std::vector<std::unique_ptr<simkit::Resource>> dir_locks;
  const std::uint32_t lock_count = config.single_dir ? 1 : procs;
  dir_locks.reserve(lock_count);
  for (std::uint32_t i = 0; i < lock_count; ++i) {
    dir_locks.push_back(
        std::make_unique<simkit::Resource>(sim, 1, "dirlock"));
  }

  double mds_service = 0;
  double lock_service = 0;
  switch (config.phase) {
    case MetaPhase::create:
      mds_service = cal.mds_create_svc_s;
      lock_service = cal.dir_lock_create_s;
      break;
    case MetaPhase::stat:
      mds_service = cal.mds_stat_svc_s;
      lock_service = 0;  // stat takes no directory write lock
      break;
    case MetaPhase::remove:
      mds_service = cal.mds_remove_svc_s;
      lock_service = cal.dir_lock_remove_s;
      break;
  }

  struct Shared {
    std::uint64_t completed = 0;
    double last_done = 0;
    OnlineStats latency;
    Xoshiro256 rng;
    explicit Shared(std::uint64_t seed) : rng(seed) {}
  };
  auto shared = std::make_shared<Shared>(config.seed);

  auto issue_holder = std::make_shared<std::function<void(std::uint32_t,
                                                          std::uint32_t)>>();
  auto* issue = issue_holder.get();  // raw: outlives sim.run(), no cycle
  *issue = [&sim, &mds, &dir_locks, cal, mds_service, lock_service, shared,
            issue, config](std::uint32_t proc, std::uint32_t op) {
    if (op >= config.ops_per_proc) return;
    const double t0 = sim.now();
    // Interference from the shared production system.
    const double jitter =
        1.0 + cal.lustre_jitter * shared->rng.uniform();
    const std::uint32_t lock_idx =
        config.single_dir ? 0 : proc % dir_locks.size();

    sim.schedule(cal.mds_rtt_s / 2, [&sim, &mds, &dir_locks, cal,
                                     mds_service, lock_service, jitter,
                                     lock_idx, shared, issue, proc, op,
                                     t0] {
      mds.acquire(mds_service * jitter, [&sim, &dir_locks, cal,
                                         lock_service, jitter, lock_idx,
                                         shared, issue, proc, op, t0] {
        auto finish = [&sim, cal, shared, issue, proc, op, t0] {
          sim.schedule(cal.mds_rtt_s / 2,
                       [shared, issue, proc, op, t0, &sim] {
                         shared->latency.add(sim.now() - t0);
                         ++shared->completed;
                         shared->last_done = sim.now();
                         (*issue)(proc, op + 1);
                       });
        };
        if (lock_service > 0) {
          dir_locks[lock_idx]->acquire(lock_service * jitter,
                                       std::move(finish));
        } else {
          finish();
        }
      });
    });
  };

  for (std::uint32_t p = 0; p < procs; ++p) (*issue)(p, 0);
  const std::uint64_t events = sim.run();

  SimResult r;
  r.total_ops = shared->completed;
  r.sim_seconds = shared->last_done;
  r.ops_per_sec =
      r.sim_seconds > 0 ? static_cast<double>(r.total_ops) / r.sim_seconds
                        : 0;
  r.mean_latency_s = shared->latency.mean();
  r.events = events;
  return r;
}

}  // namespace gekko::sim
