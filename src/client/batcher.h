// Client-side metadata-RPC coalescing (the batched-create hot path).
//
// Small metadata ops (create/stat/remove) targeting the same daemon are
// queued per daemon and shipped as ONE batch RPC when the queue hits a
// count or byte threshold, or when its oldest entry has waited
// max_delay (a timer thread sweeps stragglers). Every enqueued op gets
// an Eventual completion carrying its per-entry outcome, so callers
// keep the synchronous one-status-per-op interface while the wire sees
// amortized round-trips.
//
// Failure semantics: a transport-level failure of the batch RPC fails
// every entry in that flush with the transport's Errc; per-entry
// errors (exists, not_found, ...) arrive as BatchStatus values and
// never poison batch-mates. Mutating batches are NOT retried (same
// replay rule as single create/remove); batch_stat retries through the
// engine's idempotent-rpc machinery.
//
// Locking: batcher queues rank BEFORE the rpc engine's locks
// (lockdep::rank::kClientBatcher); flushes swap a queue out under the
// lock and forward with it RELEASED, so enqueues on other daemons never
// stall behind a round-trip.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "net/fabric.h"
#include "proto/messages.h"
#include "rpc/engine.h"
#include "task/future.h"

namespace gekko::client {

struct BatchOptions {
  /// Route single-op create/stat/remove through the coalescing queues.
  bool enabled = false;
  /// Flush a daemon's queue at this many entries...
  std::size_t max_entries = 128;
  /// ...or this many encoded payload bytes, whichever first.
  std::size_t max_bytes = 128 * 1024;
  /// Max time the OLDEST entry of a queue waits before the timer
  /// thread flushes it (the latency an op can pay for batching).
  std::chrono::milliseconds max_delay{2};
};

class Batcher {
 public:
  /// Per-entry stat outcome; md valid iff status == Errc::ok.
  struct StatOutcome {
    Errc status = Errc::io_error;
    proto::Metadata md;
  };
  /// Per-entry remove outcome; sizes valid iff status == Errc::ok.
  struct RemoveOutcome {
    Errc status = Errc::io_error;
    std::uint64_t old_size = 0;
    bool was_directory = false;
  };

  Batcher(rpc::Engine& engine, std::vector<net::EndpointId> daemons,
          BatchOptions options, metrics::Registry& registry);
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  task::Eventual<Errc> enqueue_create(std::uint32_t daemon_id,
                                      proto::BatchCreateRequest::Entry entry);
  task::Eventual<StatOutcome> enqueue_stat(std::uint32_t daemon_id,
                                           std::string path);
  task::Eventual<RemoveOutcome> enqueue_remove(std::uint32_t daemon_id,
                                               std::string path);

  /// Drain every queue now (close/fsync barrier and shutdown path).
  void flush_all();

 private:
  using Clock = std::chrono::steady_clock;

  struct CreateQueue {
    std::vector<proto::BatchCreateRequest::Entry> entries;
    std::vector<task::Eventual<Errc>> completions;
    std::size_t bytes = 0;
    Clock::time_point oldest{};
  };
  struct StatQueue {
    std::vector<std::string> paths;
    std::vector<task::Eventual<StatOutcome>> completions;
    std::size_t bytes = 0;
    Clock::time_point oldest{};
  };
  struct RemoveQueue {
    std::vector<std::string> paths;
    std::vector<task::Eventual<RemoveOutcome>> completions;
    std::size_t bytes = 0;
    Clock::time_point oldest{};
  };

  void timer_loop_();
  /// Sweep queues whose oldest entry aged past max_delay (or all of
  /// them); swaps each out under the lock, sends with it released.
  void sweep_(bool force);

  void flush_create_(std::uint32_t daemon_id, CreateQueue q);
  void flush_stat_(std::uint32_t daemon_id, StatQueue q);
  void flush_remove_(std::uint32_t daemon_id, RemoveQueue q);

  rpc::Engine& engine_;
  std::vector<net::EndpointId> daemons_;
  BatchOptions options_;

  mutable Mutex mutex_{"client.batcher", lockdep::rank::kClientBatcher};
  CondVar cv_;  // wakes the timer on first-entry arrivals and shutdown
  std::vector<CreateQueue> creates_ GEKKO_GUARDED_BY(mutex_);
  std::vector<StatQueue> stats_ GEKKO_GUARDED_BY(mutex_);
  std::vector<RemoveQueue> removes_ GEKKO_GUARDED_BY(mutex_);
  bool stopping_ GEKKO_GUARDED_BY(mutex_) = false;

  metrics::Counter* enqueued_;
  metrics::Counter* flushes_full_;
  metrics::Counter* flushes_deadline_;
  metrics::Counter* rpcs_;
  metrics::Histogram* flush_entries_;

  std::thread timer_;
};

}  // namespace gekko::client
