// GekkoFS client forwarding layer (paper §III.B.a).
//
// The client resolves the responsible daemon for every operation
// locally (Distributor — no directory service), splits data requests
// into chunk-sized slices, exposes its buffers as bulk regions for
// one-sided transfer, and issues one RPC per involved daemon,
// concurrently. All operations are synchronous and uncached except the
// optional shared-file size-update cache (§IV.B).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "client/batcher.h"
#include "client/size_cache.h"
#include "client/stat_cache.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "net/fabric.h"
#include "proto/distributor.h"
#include "proto/messages.h"
#include "rpc/engine.h"

namespace gekko::client {

struct ClientOptions {
  std::uint32_t chunk_size = 512 * 1024;  // must match the daemons
  proto::DistributionPolicy distribution = proto::DistributionPolicy::hash;
  /// Size-update write-back interval; 0 = synchronous (paper default).
  std::uint32_t size_cache_interval = 0;
  /// Metadata (stat) cache TTL; 0 = disabled (paper default). Paper
  /// future-work item #2; see client/stat_cache.h for the trade.
  std::chrono::milliseconds stat_cache_ttl{0};
  rpc::EngineOptions rpc_options;
  /// Metadata-RPC coalescing (batcher.h). Off by default: single ops go
  /// out as single RPCs; enabled, create/stat/remove singles queue per
  /// daemon and ship as batch RPCs (count/bytes/deadline flush).
  BatchOptions batch;
  /// Metric sink (forwarding-layer counters, fan-out histograms).
  /// nullptr = metrics::Registry::global(). Also seeds the engine's
  /// registry unless rpc_options.registry is set explicitly.
  metrics::Registry* registry = nullptr;
};

struct ClientStats {
  std::uint64_t rpcs_sent = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t size_updates_sent = 0;
  std::uint64_t size_updates_absorbed = 0;
  std::uint64_t stat_cache_hits = 0;
  std::uint64_t stat_cache_misses = 0;
};

class Client {
 public:
  /// `daemons` lists the endpoint of every GekkoFS daemon, in daemon-id
  /// order; all clients must agree on this order (it seeds the hash
  /// distribution, like the hosts file a real GekkoFS deployment
  /// shares).
  Client(net::Fabric& fabric, std::vector<net::EndpointId> daemons,
         ClientOptions options = {});

  // -- metadata ------------------------------------------------------------
  Status create(std::string_view path, proto::FileType type,
                std::uint32_t mode = 0644);
  Result<proto::Metadata> stat(std::string_view path);
  /// Unlink: removes metadata, then chunk data if the file had any.
  Status remove(std::string_view path);
  Status truncate(std::string_view path, std::uint64_t new_size);
  /// Flush any cached size updates for `path` (close/fsync barrier).
  Status flush_size(std::string_view path);

  // -- bulk metadata -------------------------------------------------------
  // Explicit batch entry points (the mdtest batched phases): entries
  // are grouped by owning daemon, one batch RPC per daemon in flight
  // concurrently, outcomes scattered back IN REQUEST ORDER. The
  // returned Status reflects request-building only; per-entry results
  // (ok / exists / not_found / transport errors) land in `out`.

  Status create_batch(const std::vector<std::string>& paths,
                      proto::FileType type, std::vector<Errc>* out,
                      std::uint32_t mode = 0644);
  /// mds[i] valid iff (*out)[i] == Errc::ok.
  Status stat_batch(const std::vector<std::string>& paths,
                    std::vector<Errc>* out,
                    std::vector<proto::Metadata>* mds);
  Status remove_batch(const std::vector<std::string>& paths,
                      std::vector<Errc>* out);
  /// Drain the single-op coalescing queues (no-op when batching is
  /// off). Barrier before reading cluster-wide state the batched ops
  /// should be visible in.
  void flush_batches();

  // -- data ----------------------------------------------------------------
  /// Returns bytes written (always all of `data` on success).
  Result<std::size_t> write(std::string_view path, std::uint64_t offset,
                            std::span<const std::uint8_t> data);
  /// Returns bytes read (trimmed at EOF).
  Result<std::size_t> read(std::string_view path, std::uint64_t offset,
                           std::span<std::uint8_t> out);

  // -- directories ----------------------------------------------------------
  /// Readdir broadcast: merged shards from every daemon. Eventually
  /// consistent: concurrent creates/removes may or may not appear.
  Result<std::vector<proto::Dirent>> readdir(std::string_view dir);
  /// Remove a directory; Errc::not_empty if any daemon reports children.
  Status rmdir(std::string_view path);

  // -- cluster -------------------------------------------------------------
  Result<std::vector<proto::DaemonStatResponse>> daemon_stats();
  /// Drain every daemon's trace ring (trace_dump broadcast). Feed the
  /// responses plus this process's own Tracer dump to a
  /// trace::Assembler to get cross-node causal trees.
  Result<std::vector<proto::TraceDumpResponse>> trace_dumps();
  /// Drain every daemon's flight-recorder rings (flight_dump
  /// broadcast) — the live half of the crash-forensics black box;
  /// gkfs-debug --live renders the result as a timeline.
  Result<std::vector<proto::FlightDumpResponse>> flight_dumps();
  /// One concurrent heartbeat round, one slot per daemon (daemon-id
  /// order). nullopt = that daemon missed (timeout/disconnect/garbage)
  /// — unlike daemon_stats(), one dead daemon does NOT fail the round;
  /// partial liveness is the entire point. `timeout` zero uses the
  /// engine's rpc_timeout.
  std::vector<std::optional<proto::HeartbeatResponse>> heartbeats(
      std::chrono::milliseconds timeout = std::chrono::milliseconds{0});
  /// Drain every daemon's metric_history rings (prefix-filtered
  /// server-side). Same partial-result contract as heartbeats().
  std::vector<std::optional<proto::MetricHistoryResponse>> metric_histories(
      std::string_view prefix = {},
      std::chrono::milliseconds timeout = std::chrono::milliseconds{0});

  [[nodiscard]] std::uint32_t daemon_count() const noexcept {
    return static_cast<std::uint32_t>(daemons_.size());
  }
  [[nodiscard]] std::uint32_t chunk_size() const noexcept {
    return options_.chunk_size;
  }
  [[nodiscard]] const proto::Distributor& distributor() const noexcept {
    return *distributor_;
  }
  [[nodiscard]] ClientStats stats() const;
  [[nodiscard]] rpc::Engine& engine() noexcept { return *engine_; }

 private:
  [[nodiscard]] net::EndpointId endpoint_of_(std::uint32_t daemon_id) const {
    return daemons_[daemon_id];
  }
  /// finish() a fan-out call; on a transient failure of an idempotent
  /// rpc, re-forward that single call (engine backoff policy applies).
  Result<std::vector<std::uint8_t>> finish_or_retry_(
      rpc::Engine::PendingCall& call, net::EndpointId ep,
      std::uint16_t rpc_id, std::vector<std::uint8_t> payload,
      net::BulkRegion bulk = {});
  Status send_size_update_(const std::string& path, std::uint64_t size);
  Status remove_data_everywhere_(std::string_view path);

  net::Fabric& fabric_;
  std::vector<net::EndpointId> daemons_;
  ClientOptions options_;
  metrics::Registry* registry_;  // resolved from options_, never null
  std::unique_ptr<proto::Distributor> distributor_;
  std::unique_ptr<rpc::Engine> engine_;
  SizeCache size_cache_;
  StatCache stat_cache_;
  mutable Mutex stats_mutex_{"client.stats", lockdep::rank::kClientStats};
  ClientStats stats_ GEKKO_GUARDED_BY(stats_mutex_);

  // Cached registry references (record path takes no lock).
  struct ClientMetrics {
    metrics::Counter* rpcs_sent;
    metrics::Counter* bytes_written;
    metrics::Counter* bytes_read;
    metrics::Counter* stat_cache_hits;
    metrics::Counter* stat_cache_misses;
    metrics::Counter* size_updates_sent;
    metrics::Counter* size_updates_absorbed;
    metrics::Histogram* write_fanout;  // daemons touched per write()
    metrics::Histogram* read_fanout;   // daemons touched per read()
  };
  ClientMetrics m_;
  /// Single-op coalescing queues (options_.batch.enabled). Declared
  /// last: its destructor flushes through engine_, so it must die first.
  std::unique_ptr<Batcher> batcher_;
};

/// Wall-clock nanoseconds (client-stamped ctimes/mtimes).
std::int64_t now_ns();

}  // namespace gekko::client
