// Client-side metadata (stat) cache — the paper's second future-work
// item ("evaluate benefits of caching").
//
// GekkoFS's synchronous design issues one stat RPC per read (the file
// size bounds the read at EOF). For read-mostly phases this doubles
// metadata traffic for no benefit. The cache keeps Metadata per path
// for a bounded time; local mutations (write/truncate/remove) update
// or invalidate the entry immediately, so a single client always reads
// its own writes. Cross-client freshness degrades to the TTL — the
// same consistency trade the paper makes for the size-update cache.
#pragma once

#include <chrono>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/thread_annotations.h"
#include "proto/metadata.h"

namespace gekko::client {

class StatCache {
 public:
  using Clock = std::chrono::steady_clock;

  /// ttl == 0 disables the cache (paper-default synchronous mode).
  explicit StatCache(std::chrono::milliseconds ttl) : ttl_(ttl) {}

  [[nodiscard]] bool enabled() const noexcept { return ttl_.count() > 0; }

  std::optional<proto::Metadata> lookup(const std::string& path) {
    if (!enabled()) return std::nullopt;
    LockGuard lock(mutex_);
    auto it = entries_.find(path);
    if (it == entries_.end()) {
      ++misses_;
      return std::nullopt;
    }
    if (Clock::now() >= it->second.expires) {
      entries_.erase(it);
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    return it->second.md;
  }

  void store(const std::string& path, const proto::Metadata& md) {
    if (!enabled()) return;
    LockGuard lock(mutex_);
    entries_[path] = Entry{md, Clock::now() + ttl_};
  }

  /// Local write at [.., end): grow the cached size (read-your-writes).
  void on_local_write(const std::string& path, std::uint64_t end) {
    if (!enabled()) return;
    LockGuard lock(mutex_);
    auto it = entries_.find(path);
    if (it != entries_.end() && end > it->second.md.size) {
      it->second.md.size = end;
    }
  }

  void invalidate(const std::string& path) {
    if (!enabled()) return;
    LockGuard lock(mutex_);
    entries_.erase(path);
  }

  void clear() {
    LockGuard lock(mutex_);
    entries_.clear();
  }

  [[nodiscard]] std::uint64_t hits() const {
    LockGuard lock(mutex_);
    return hits_;
  }
  [[nodiscard]] std::uint64_t misses() const {
    LockGuard lock(mutex_);
    return misses_;
  }

 private:
  struct Entry {
    proto::Metadata md;
    Clock::time_point expires;
  };

  std::chrono::milliseconds ttl_;
  mutable Mutex mutex_{"client.stat_cache", lockdep::rank::kStatCache};
  std::unordered_map<std::string, Entry> entries_ GEKKO_GUARDED_BY(mutex_);
  std::uint64_t hits_ GEKKO_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ GEKKO_GUARDED_BY(mutex_) = 0;
};

}  // namespace gekko::client
