#include "client/client.h"
#include "common/thread_annotations.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "common/flight_recorder.h"
#include "common/logging.h"
#include "common/trace.h"
#include "proto/chunking.h"

namespace gekko::client {

using proto::RpcId;

namespace {

// RAII root span + watchdog for one client entry point. Inherits the
// thread's context when a trace is already active (rmdir → stat →
// readdir nest under one trace); otherwise starts a fresh trace when
// deep tracing is enabled, so every forward() issued inside the scope
// carries this op's trace id. The slow-op line fires for top-level ops
// only (nested ops show up inside their root's trace) and keeps
// working with tracing sampled off — the watchdog needs no collector.
class OpTrace {
 public:
  OpTrace(metrics::Tracer& tracer, const char* span_name,
          const char* op) noexcept
      : tracer_(tracer),
        span_name_(span_name),
        op_(op),
        prev_(trace::current()),
        t0_(metrics::now_ns()) {
    std::uint64_t trace_id = prev_.trace_id;
    if (trace_id == 0 && trace::enabled()) trace_id = trace::new_trace_id();
    if (trace_id != 0) {
      span_id_ = trace::new_span_id();
      trace::set_current({trace_id, span_id_});
    }
    // Flight-recorder entry marker: works with tracing sampled off
    // (trace_id 0) so a postmortem always names the op in progress.
    flight::record_traced(flight::Subsys::client, flight::ev::client_op,
                          trace_id, flight::tag(op));
  }
  ~OpTrace() {
    const std::uint64_t dur = metrics::now_ns() - t0_;
    const trace::SpanContext ctx = trace::current();
    if (span_id_ != 0) {
      tracer_.record(span_name_, ctx.trace_id, span_id_, prev_.span_id,  // span-name-ok: forwards the literal ctor argument, checked at OpTrace call sites
                     0, 0, t0_, dur);
      trace::set_current(prev_);
    }
    const std::uint64_t threshold = trace::slow_op_threshold_ns();
    if (threshold != 0 && dur > threshold && !prev_.active()) {
      trace::log_slow_op("client", op_, ctx.trace_id, dur);
    }
  }
  OpTrace(const OpTrace&) = delete;
  OpTrace& operator=(const OpTrace&) = delete;

 private:
  metrics::Tracer& tracer_;
  const char* span_name_;
  const char* op_;
  trace::SpanContext prev_;
  std::uint64_t t0_;
  std::uint64_t span_id_ = 0;
};

}  // namespace

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

Client::Client(net::Fabric& fabric, std::vector<net::EndpointId> daemons,
               ClientOptions options)
    : fabric_(fabric),
      daemons_(std::move(daemons)),
      options_(std::move(options)),
      registry_(options_.registry != nullptr ? options_.registry
                                             : &metrics::Registry::global()),
      distributor_(proto::make_distributor(
          options_.distribution,
          static_cast<std::uint32_t>(daemons_.size()))),
      size_cache_(options_.size_cache_interval),
      stat_cache_(options_.stat_cache_ttl) {
  m_.rpcs_sent = &registry_->counter("client.rpcs_sent");
  m_.bytes_written = &registry_->counter("client.bytes_written");
  m_.bytes_read = &registry_->counter("client.bytes_read");
  m_.stat_cache_hits = &registry_->counter("client.stat_cache.hits");
  m_.stat_cache_misses = &registry_->counter("client.stat_cache.misses");
  m_.size_updates_sent = &registry_->counter("client.size_updates.sent");
  m_.size_updates_absorbed =
      &registry_->counter("client.size_updates.absorbed");
  m_.write_fanout = &registry_->histogram("client.write.fanout");
  m_.read_fanout = &registry_->histogram("client.read.fanout");

  rpc::EngineOptions rpc_opts = options_.rpc_options;
  if (rpc_opts.name == "engine") rpc_opts.name = "gkfs-client";
  if (rpc_opts.registry == nullptr) rpc_opts.registry = registry_;
  if (!rpc_opts.rpc_name) rpc_opts.rpc_name = proto::rpc_name;
  // The client engine only *sends*; one handler thread suffices for the
  // (none) incoming requests, and the progress thread completes
  // responses.
  rpc_opts.handler_threads = 1;
  // Failure semantics at the forwarding layer: idempotent reads retry
  // through the engine after transient outcomes (a daemon hiccup or
  // restart); mutating rpcs never do — a replayed create/remove could
  // double-apply. The per-id classification lives in ONE place,
  // proto::rpc_retry_class() (messages.h), where gekko-protocheck
  // enforces that every RpcId is classified explicitly. Non-retryable
  // failures surface as the POSIX error errc_to_errno maps them to
  // (disconnected → ECONNRESET, internal → EIO, ...). Callers can
  // override both knobs via rpc_options.
  if (!rpc_opts.retryable) {
    rpc_opts.retryable = [](std::uint16_t id) {
      return proto::rpc_retryable(id);
    };
    if (rpc_opts.max_attempts <= 1) rpc_opts.max_attempts = 3;
  }
  engine_ = std::make_unique<rpc::Engine>(fabric_, rpc_opts);
  if (options_.batch.enabled) {
    batcher_ = std::make_unique<Batcher>(*engine_, daemons_, options_.batch,
                                         *registry_);
  }
}

Result<std::vector<std::uint8_t>> Client::finish_or_retry_(
    rpc::Engine::PendingCall& call, net::EndpointId ep, std::uint16_t rpc_id,
    std::vector<std::uint8_t> payload, net::BulkRegion bulk) {
  auto r = engine_->finish(call);
  if (r.is_ok()) return r;
  const Errc code = r.code();
  if (code != Errc::timed_out && code != Errc::disconnected &&
      code != Errc::again) {
    return r;
  }
  if (!engine_->is_retryable(rpc_id)) return r;
  // Fan-out calls bypass forward()'s retry loop; re-forward this one
  // call synchronously (the engine applies its own backoff policy).
  m_.rpcs_sent->inc();
  {
    LockGuard lock(stats_mutex_);
    ++stats_.rpcs_sent;
  }
  return engine_->forward(ep, rpc_id, std::move(payload), bulk);
}

// ---------- metadata ----------

Status Client::create(std::string_view path, proto::FileType type,
                      std::uint32_t mode) {
  OpTrace op(engine_->tracer(), "client.create", "create");
  const std::uint32_t target = distributor_->metadata_target(path);
  if (batcher_) {
    proto::BatchCreateRequest::Entry entry;
    entry.path = std::string(path);
    entry.type = static_cast<std::uint8_t>(type);
    entry.mode = mode;
    entry.ctime_ns = now_ns();
    const Errc e =
        batcher_->enqueue_create(target, std::move(entry)).wait();
    return e == Errc::ok ? Status::ok() : Status{e};
  }
  proto::CreateRequest req;
  req.path = std::string(path);
  req.type = static_cast<std::uint8_t>(type);
  req.mode = mode;
  req.ctime_ns = now_ns();
  auto resp = engine_->forward(endpoint_of_(target),
                               proto::to_wire(RpcId::create), req.encode());
  m_.rpcs_sent->inc();
  {
    LockGuard lock(stats_mutex_);
    ++stats_.rpcs_sent;
  }
  return resp.status();
}

Result<proto::Metadata> Client::stat(std::string_view path) {
  OpTrace op(engine_->tracer(), "client.stat", "stat");
  const std::string key{path};
  if (auto cached = stat_cache_.lookup(key)) {
    m_.stat_cache_hits->inc();
    return *cached;
  }
  m_.stat_cache_misses->inc();
  const std::uint32_t target = distributor_->metadata_target(path);
  if (batcher_) {
    auto outcome = batcher_->enqueue_stat(target, key).wait();
    if (outcome.status != Errc::ok) return outcome.status;
    stat_cache_.store(key, outcome.md);
    return outcome.md;
  }
  proto::PathRequest req{std::string(path)};
  auto resp = engine_->forward(endpoint_of_(target),
                               proto::to_wire(RpcId::stat), req.encode());
  m_.rpcs_sent->inc();
  {
    LockGuard lock(stats_mutex_);
    ++stats_.rpcs_sent;
  }
  if (!resp) return resp.status();
  auto decoded = proto::StatResponse::decode(
      std::string_view(reinterpret_cast<const char*>(resp->data()),
                       resp->size()));
  if (!decoded) return decoded.status();
  stat_cache_.store(key, decoded->metadata);
  return decoded->metadata;
}

Status Client::remove(std::string_view path) {
  OpTrace op(engine_->tracer(), "client.remove", "remove");
  size_cache_.forget(std::string(path));
  stat_cache_.invalidate(std::string(path));
  const std::uint32_t target = distributor_->metadata_target(path);
  if (batcher_) {
    auto outcome =
        batcher_->enqueue_remove(target, std::string(path)).wait();
    if (outcome.status != Errc::ok) return outcome.status;
    if (outcome.old_size == 0 || outcome.was_directory) return Status::ok();
    return remove_data_everywhere_(path);
  }
  proto::PathRequest req{std::string(path)};
  auto resp =
      engine_->forward(endpoint_of_(target),
                       proto::to_wire(RpcId::remove_metadata), req.encode());
  m_.rpcs_sent->inc();
  {
    LockGuard lock(stats_mutex_);
    ++stats_.rpcs_sent;
  }
  if (!resp) return resp.status();
  auto decoded = proto::StatResponse::decode(
      std::string_view(reinterpret_cast<const char*>(resp->data()),
                       resp->size()));
  if (!decoded) return decoded.status();

  // Zero-byte files (the dominant mdtest case) need no data cleanup:
  // one RPC per remove, which is what makes Fig. 2c scale.
  if (decoded->metadata.size == 0 ||
      decoded->metadata.is_directory()) {
    return Status::ok();
  }
  return remove_data_everywhere_(path);
}

Status Client::remove_data_everywhere_(std::string_view path) {
  proto::PathRequest req{std::string(path)};
  std::vector<rpc::Engine::PendingCall> calls;
  calls.reserve(daemons_.size());
  for (const net::EndpointId ep : daemons_) {
    calls.push_back(engine_->begin_forward(
        ep, proto::to_wire(RpcId::remove_data), req.encode()));
  }
  m_.rpcs_sent->inc(daemons_.size());
  {
    LockGuard lock(stats_mutex_);
    stats_.rpcs_sent += daemons_.size();
  }
  Status first_error = Status::ok();
  for (auto& call : calls) {
    auto r = engine_->finish(call);
    if (!r && first_error.is_ok()) first_error = r.status();
  }
  return first_error;
}

// ---------- bulk metadata ----------

namespace {
std::string_view as_view(const std::vector<std::uint8_t>& bytes) {
  return std::string_view(reinterpret_cast<const char*>(bytes.data()),
                          bytes.size());
}
}  // namespace

Status Client::create_batch(const std::vector<std::string>& paths,
                            proto::FileType type, std::vector<Errc>* out,
                            std::uint32_t mode) {
  OpTrace op(engine_->tracer(), "client.create_batch", "create_batch");
  out->assign(paths.size(), Errc::ok);
  if (paths.empty()) return Status::ok();

  const std::int64_t ctime = now_ns();
  std::map<std::uint32_t, proto::BatchCreateRequest> per_daemon;
  std::map<std::uint32_t, std::vector<std::size_t>> origin;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const std::uint32_t target = distributor_->metadata_target(paths[i]);
    proto::BatchCreateRequest::Entry e;
    e.path = paths[i];
    e.type = static_cast<std::uint8_t>(type);
    e.mode = mode;
    e.ctime_ns = ctime;
    per_daemon[target].entries.push_back(std::move(e));
    origin[target].push_back(i);
  }

  std::vector<rpc::Engine::PendingCall> calls;
  std::vector<std::uint32_t> call_daemon;
  calls.reserve(per_daemon.size());
  for (const auto& [daemon_id, req] : per_daemon) {
    call_daemon.push_back(daemon_id);
    calls.push_back(engine_->begin_forward(endpoint_of_(daemon_id),
                                           proto::to_wire(RpcId::batch_create),
                                           req.encode()));
  }
  m_.rpcs_sent->inc(per_daemon.size());
  {
    LockGuard lock(stats_mutex_);
    stats_.rpcs_sent += per_daemon.size();
  }

  for (std::size_t c = 0; c < calls.size(); ++c) {
    const std::vector<std::size_t>& idx = origin[call_daemon[c]];
    auto r = engine_->finish(calls[c]);
    if (!r) {
      // Transport failure: every entry routed to this daemon fails with
      // the transport's code; other daemons' entries are unaffected.
      for (const std::size_t i : idx) (*out)[i] = r.code();
      continue;
    }
    auto resp = proto::BatchCreateResponse::decode(as_view(*r));
    if (!resp || resp->statuses.size() != idx.size()) {
      for (const std::size_t i : idx) (*out)[i] = Errc::corruption;
      continue;
    }
    for (std::size_t j = 0; j < idx.size(); ++j) {
      (*out)[idx[j]] = proto::batch_status_to_errc(resp->statuses[j]);
    }
  }
  return Status::ok();
}

Status Client::stat_batch(const std::vector<std::string>& paths,
                          std::vector<Errc>* out,
                          std::vector<proto::Metadata>* mds) {
  OpTrace op(engine_->tracer(), "client.stat_batch", "stat_batch");
  out->assign(paths.size(), Errc::ok);
  mds->assign(paths.size(), proto::Metadata{});
  if (paths.empty()) return Status::ok();

  std::map<std::uint32_t, proto::BatchPathRequest> per_daemon;
  std::map<std::uint32_t, std::vector<std::size_t>> origin;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const std::uint32_t target = distributor_->metadata_target(paths[i]);
    per_daemon[target].paths.push_back(paths[i]);
    origin[target].push_back(i);
  }

  std::vector<rpc::Engine::PendingCall> calls;
  std::vector<std::uint32_t> call_daemon;
  std::vector<std::vector<std::uint8_t>> call_reqs;
  calls.reserve(per_daemon.size());
  for (const auto& [daemon_id, req] : per_daemon) {
    call_daemon.push_back(daemon_id);
    call_reqs.push_back(req.encode());
    calls.push_back(engine_->begin_forward(endpoint_of_(daemon_id),
                                           proto::to_wire(RpcId::batch_stat),
                                           call_reqs.back()));
  }
  m_.rpcs_sent->inc(per_daemon.size());
  {
    LockGuard lock(stats_mutex_);
    stats_.rpcs_sent += per_daemon.size();
  }

  for (std::size_t c = 0; c < calls.size(); ++c) {
    const std::vector<std::size_t>& idx = origin[call_daemon[c]];
    auto r = finish_or_retry_(calls[c], endpoint_of_(call_daemon[c]),
                              proto::to_wire(RpcId::batch_stat),
                              std::move(call_reqs[c]));
    if (!r) {
      for (const std::size_t i : idx) (*out)[i] = r.code();
      continue;
    }
    auto resp = proto::BatchStatResponse::decode(as_view(*r));
    if (!resp || resp->entries.size() != idx.size()) {
      for (const std::size_t i : idx) (*out)[i] = Errc::corruption;
      continue;
    }
    for (std::size_t j = 0; j < idx.size(); ++j) {
      auto& e = resp->entries[j];
      (*out)[idx[j]] = proto::batch_status_to_errc(e.status);
      if (e.status == proto::BatchStatus::ok) {
        (*mds)[idx[j]] = std::move(e.metadata);
      }
    }
  }
  return Status::ok();
}

Status Client::remove_batch(const std::vector<std::string>& paths,
                            std::vector<Errc>* out) {
  OpTrace op(engine_->tracer(), "client.remove_batch", "remove_batch");
  out->assign(paths.size(), Errc::ok);
  if (paths.empty()) return Status::ok();
  for (const auto& p : paths) {
    size_cache_.forget(p);
    stat_cache_.invalidate(p);
  }

  std::map<std::uint32_t, proto::BatchPathRequest> per_daemon;
  std::map<std::uint32_t, std::vector<std::size_t>> origin;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const std::uint32_t target = distributor_->metadata_target(paths[i]);
    per_daemon[target].paths.push_back(paths[i]);
    origin[target].push_back(i);
  }

  std::vector<rpc::Engine::PendingCall> calls;
  std::vector<std::uint32_t> call_daemon;
  calls.reserve(per_daemon.size());
  for (const auto& [daemon_id, req] : per_daemon) {
    call_daemon.push_back(daemon_id);
    calls.push_back(engine_->begin_forward(endpoint_of_(daemon_id),
                                           proto::to_wire(RpcId::batch_remove),
                                           req.encode()));
  }
  m_.rpcs_sent->inc(per_daemon.size());
  {
    LockGuard lock(stats_mutex_);
    stats_.rpcs_sent += per_daemon.size();
  }

  // Files that had data still need chunk cleanup (rare under mdtest:
  // its files are empty, so removes stay one batch RPC per daemon).
  std::vector<std::size_t> need_cleanup;
  for (std::size_t c = 0; c < calls.size(); ++c) {
    const std::vector<std::size_t>& idx = origin[call_daemon[c]];
    auto r = engine_->finish(calls[c]);
    if (!r) {
      for (const std::size_t i : idx) (*out)[i] = r.code();
      continue;
    }
    auto resp = proto::BatchRemoveResponse::decode(as_view(*r));
    if (!resp || resp->entries.size() != idx.size()) {
      for (const std::size_t i : idx) (*out)[i] = Errc::corruption;
      continue;
    }
    for (std::size_t j = 0; j < idx.size(); ++j) {
      const auto& e = resp->entries[j];
      (*out)[idx[j]] = proto::batch_status_to_errc(e.status);
      if (e.status == proto::BatchStatus::ok && e.old_size > 0 &&
          e.was_directory == 0) {
        need_cleanup.push_back(idx[j]);
      }
    }
  }
  for (const std::size_t i : need_cleanup) {
    Status st = remove_data_everywhere_(paths[i]);
    if (!st.is_ok()) (*out)[i] = st.code();
  }
  return Status::ok();
}

void Client::flush_batches() {
  if (batcher_) batcher_->flush_all();
}

Status Client::truncate(std::string_view path, std::uint64_t new_size) {
  OpTrace op(engine_->tracer(), "client.truncate", "truncate");
  stat_cache_.invalidate(std::string(path));
  proto::TruncateRequest req;
  req.path = std::string(path);
  req.new_size = new_size;

  const std::uint32_t target = distributor_->metadata_target(path);
  auto resp = engine_->forward(endpoint_of_(target),
                               proto::to_wire(RpcId::truncate_metadata),
                               req.encode());
  m_.rpcs_sent->inc();
  {
    LockGuard lock(stats_mutex_);
    ++stats_.rpcs_sent;
  }
  GEKKO_RETURN_IF_ERROR(resp.status());

  // Chunk cleanup on every daemon that may hold chunks past the cut.
  std::vector<rpc::Engine::PendingCall> calls;
  calls.reserve(daemons_.size());
  for (const net::EndpointId ep : daemons_) {
    calls.push_back(engine_->begin_forward(
        ep, proto::to_wire(RpcId::truncate_data), req.encode()));
  }
  m_.rpcs_sent->inc(daemons_.size());
  {
    LockGuard lock(stats_mutex_);
    stats_.rpcs_sent += daemons_.size();
  }
  Status first_error = Status::ok();
  for (auto& call : calls) {
    auto r = engine_->finish(call);
    if (!r && first_error.is_ok()) first_error = r.status();
  }
  return first_error;
}

Status Client::send_size_update_(const std::string& path,
                                 std::uint64_t size) {
  proto::UpdateSizeRequest req;
  req.path = path;
  req.observed_size = size;
  req.mtime_ns = now_ns();
  const std::uint32_t target = distributor_->metadata_target(path);
  auto resp =
      engine_->forward(endpoint_of_(target),
                       proto::to_wire(RpcId::update_size), req.encode());
  m_.rpcs_sent->inc();
  m_.size_updates_sent->inc();
  {
    LockGuard lock(stats_mutex_);
    ++stats_.rpcs_sent;
    ++stats_.size_updates_sent;
  }
  return resp.status();
}

Status Client::flush_size(std::string_view path) {
  const std::string key{path};
  if (auto pending = size_cache_.flush(key)) {
    return send_size_update_(key, *pending);
  }
  return Status::ok();
}

// ---------- data ----------

Result<std::size_t> Client::write(std::string_view path, std::uint64_t offset,
                                  std::span<const std::uint8_t> data) {
  if (data.empty()) return std::size_t{0};
  OpTrace op(engine_->tracer(), "client.write", "write");

  // Split into chunk slices, then group per target daemon.
  const auto extents =
      proto::split_extent(offset, data.size(), options_.chunk_size);
  std::map<std::uint32_t, proto::ChunkIoRequest> per_daemon;
  for (const auto& e : extents) {
    const std::uint32_t target = distributor_->chunk_target(path, e.chunk_id);
    auto& req = per_daemon[target];
    if (req.path.empty()) req.path = std::string(path);
    req.slices.push_back(proto::ChunkSlice{e.chunk_id, e.offset_in_chunk,
                                           e.length, e.buffer_offset});
  }

  // Expose the write buffer once; every daemon pulls its slices.
  const net::BulkRegion bulk = net::BulkRegion::expose_read(data);
  m_.write_fanout->record(per_daemon.size());

  std::vector<rpc::Engine::PendingCall> calls;
  calls.reserve(per_daemon.size());
  for (const auto& [daemon_id, req] : per_daemon) {
    calls.push_back(engine_->begin_forward(endpoint_of_(daemon_id),
                                           proto::to_wire(RpcId::write_chunks),
                                           req.encode(), bulk));
  }
  m_.rpcs_sent->inc(per_daemon.size());
  {
    LockGuard lock(stats_mutex_);
    stats_.rpcs_sent += per_daemon.size();
  }

  std::uint64_t written = 0;
  Status first_error = Status::ok();
  for (auto& call : calls) {
    auto r = engine_->finish(call);
    if (!r) {
      if (first_error.is_ok()) first_error = r.status();
      continue;
    }
    auto decoded = proto::ChunkIoResponse::decode(
        std::string_view(reinterpret_cast<const char*>(r->data()),
                         r->size()));
    if (!decoded) {
      if (first_error.is_ok()) first_error = decoded.status();
      continue;
    }
    written += decoded->bytes;
  }
  GEKKO_RETURN_IF_ERROR(first_error);

  // Size update to the metadata owner — synchronous by default, or
  // absorbed by the write-back cache (paper §IV.B).
  const std::string key{path};
  const std::uint64_t observed = offset + data.size();
  stat_cache_.on_local_write(key, observed);
  if (auto to_send = size_cache_.observe(key, observed)) {
    GEKKO_RETURN_IF_ERROR(send_size_update_(key, *to_send));
  } else {
    m_.size_updates_absorbed->inc();
    LockGuard lock(stats_mutex_);
    ++stats_.size_updates_absorbed;
  }

  m_.bytes_written->inc(written);
  {
    LockGuard lock(stats_mutex_);
    stats_.bytes_written += written;
  }
  return static_cast<std::size_t>(written);
}

Result<std::size_t> Client::read(std::string_view path, std::uint64_t offset,
                                 std::span<std::uint8_t> out) {
  if (out.empty()) return std::size_t{0};
  OpTrace op(engine_->tracer(), "client.read", "read");

  // The file size bounds the read (EOF). One stat to the metadata owner.
  auto md = stat(path);
  if (!md) return md.status();
  if (offset >= md->size) return std::size_t{0};
  const std::uint64_t readable =
      std::min<std::uint64_t>(out.size(), md->size - offset);

  const auto extents =
      proto::split_extent(offset, readable, options_.chunk_size);
  std::map<std::uint32_t, proto::ChunkIoRequest> per_daemon;
  for (const auto& e : extents) {
    const std::uint32_t target = distributor_->chunk_target(path, e.chunk_id);
    auto& req = per_daemon[target];
    if (req.path.empty()) req.path = std::string(path);
    req.slices.push_back(proto::ChunkSlice{e.chunk_id, e.offset_in_chunk,
                                           e.length, e.buffer_offset});
  }

  const net::BulkRegion bulk =
      net::BulkRegion::expose_write(out.subspan(0, readable));
  m_.read_fanout->record(per_daemon.size());

  std::vector<rpc::Engine::PendingCall> calls;
  std::vector<net::EndpointId> call_eps;
  std::vector<std::vector<std::uint8_t>> call_reqs;
  calls.reserve(per_daemon.size());
  for (const auto& [daemon_id, req] : per_daemon) {
    call_eps.push_back(endpoint_of_(daemon_id));
    call_reqs.push_back(req.encode());
    calls.push_back(engine_->begin_forward(call_eps.back(),
                                           proto::to_wire(RpcId::read_chunks),
                                           call_reqs.back(), bulk));
  }
  m_.rpcs_sent->inc(per_daemon.size());
  {
    LockGuard lock(stats_mutex_);
    stats_.rpcs_sent += per_daemon.size();
  }

  std::uint64_t transferred = 0;
  Status first_error = Status::ok();
  for (std::size_t i = 0; i < calls.size(); ++i) {
    auto& call = calls[i];
    auto r = finish_or_retry_(call, call_eps[i],
                              proto::to_wire(RpcId::read_chunks),
                              std::move(call_reqs[i]), bulk);
    if (!r) {
      if (first_error.is_ok()) first_error = r.status();
      continue;
    }
    auto decoded = proto::ChunkIoResponse::decode(
        std::string_view(reinterpret_cast<const char*>(r->data()),
                         r->size()));
    if (!decoded) {
      if (first_error.is_ok()) first_error = decoded.status();
      continue;
    }
    transferred += decoded->bytes;
  }
  GEKKO_RETURN_IF_ERROR(first_error);

  m_.bytes_read->inc(transferred);
  {
    LockGuard lock(stats_mutex_);
    stats_.bytes_read += transferred;
  }
  return static_cast<std::size_t>(readable);
}

// ---------- directories ----------

Result<std::vector<proto::Dirent>> Client::readdir(std::string_view dir) {
  OpTrace op(engine_->tracer(), "client.readdir", "readdir");
  proto::DirentsRequest req{std::string(dir)};
  std::vector<rpc::Engine::PendingCall> calls;
  calls.reserve(daemons_.size());
  for (const net::EndpointId ep : daemons_) {
    calls.push_back(engine_->begin_forward(
        ep, proto::to_wire(RpcId::get_dirents), req.encode()));
  }
  m_.rpcs_sent->inc(daemons_.size());
  {
    LockGuard lock(stats_mutex_);
    stats_.rpcs_sent += daemons_.size();
  }

  std::vector<proto::Dirent> merged;
  for (std::size_t i = 0; i < calls.size(); ++i) {
    auto& call = calls[i];
    auto r = finish_or_retry_(call, daemons_[i],
                              proto::to_wire(RpcId::get_dirents),
                              req.encode());
    if (!r) return r.status();
    auto decoded = proto::DirentsResponse::decode(
        std::string_view(reinterpret_cast<const char*>(r->data()),
                         r->size()));
    if (!decoded) return decoded.status();
    merged.insert(merged.end(), decoded->entries.begin(),
                  decoded->entries.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const proto::Dirent& a, const proto::Dirent& b) {
              return a.name < b.name;
            });
  return merged;
}

Status Client::rmdir(std::string_view path) {
  OpTrace op(engine_->tracer(), "client.rmdir", "rmdir");
  auto md = stat(path);
  if (!md) return md.status();
  if (!md->is_directory()) return Errc::not_directory;
  auto entries = readdir(path);
  if (!entries) return entries.status();
  if (!entries->empty()) return Errc::not_empty;
  return remove(path);
}

// ---------- cluster ----------

Result<std::vector<proto::DaemonStatResponse>> Client::daemon_stats() {
  std::vector<rpc::Engine::PendingCall> calls;
  calls.reserve(daemons_.size());
  for (const net::EndpointId ep : daemons_) {
    calls.push_back(engine_->begin_forward(
        ep, proto::to_wire(RpcId::daemon_stat), {}));
  }
  std::vector<proto::DaemonStatResponse> out;
  for (auto& call : calls) {
    auto r = engine_->finish(call);
    if (!r) return r.status();
    auto decoded = proto::DaemonStatResponse::decode(
        std::string_view(reinterpret_cast<const char*>(r->data()),
                         r->size()));
    if (!decoded) return decoded.status();
    out.push_back(*decoded);
  }
  return out;
}

Result<std::vector<proto::TraceDumpResponse>> Client::trace_dumps() {
  std::vector<rpc::Engine::PendingCall> calls;
  calls.reserve(daemons_.size());
  for (const net::EndpointId ep : daemons_) {
    calls.push_back(engine_->begin_forward(
        ep, proto::to_wire(RpcId::trace_dump), {}));
  }
  std::vector<proto::TraceDumpResponse> out;
  for (auto& call : calls) {
    auto r = engine_->finish(call);
    if (!r) return r.status();
    auto decoded = proto::TraceDumpResponse::decode(
        std::string_view(reinterpret_cast<const char*>(r->data()),
                         r->size()));
    if (!decoded) return decoded.status();
    out.push_back(std::move(*decoded));
  }
  return out;
}

Result<std::vector<proto::FlightDumpResponse>> Client::flight_dumps() {
  std::vector<rpc::Engine::PendingCall> calls;
  calls.reserve(daemons_.size());
  for (const net::EndpointId ep : daemons_) {
    calls.push_back(engine_->begin_forward(
        ep, proto::to_wire(RpcId::flight_dump), {}));
  }
  std::vector<proto::FlightDumpResponse> out;
  for (auto& call : calls) {
    auto r = engine_->finish(call);
    if (!r) return r.status();
    auto decoded = proto::FlightDumpResponse::decode(
        std::string_view(reinterpret_cast<const char*>(r->data()),
                         r->size()));
    if (!decoded) return decoded.status();
    out.push_back(std::move(*decoded));
  }
  return out;
}

std::vector<std::optional<proto::HeartbeatResponse>> Client::heartbeats(
    std::chrono::milliseconds timeout) {
  std::vector<rpc::Engine::PendingCall> calls;
  calls.reserve(daemons_.size());
  for (const net::EndpointId ep : daemons_) {
    calls.push_back(
        engine_->begin_forward(ep, proto::to_wire(RpcId::heartbeat), {}));
  }
  std::vector<std::optional<proto::HeartbeatResponse>> out;
  out.reserve(calls.size());
  for (auto& call : calls) {
    auto r = timeout.count() > 0 ? engine_->finish(call, timeout)
                                 : engine_->finish(call);
    if (!r) {
      out.push_back(std::nullopt);
      continue;
    }
    auto decoded = proto::HeartbeatResponse::decode(std::string_view(
        reinterpret_cast<const char*>(r->data()), r->size()));
    out.push_back(decoded.is_ok()
                      ? std::optional<proto::HeartbeatResponse>(*decoded)
                      : std::nullopt);
  }
  return out;
}

std::vector<std::optional<proto::MetricHistoryResponse>>
Client::metric_histories(std::string_view prefix,
                         std::chrono::milliseconds timeout) {
  proto::MetricHistoryRequest req{std::string(prefix)};
  std::vector<rpc::Engine::PendingCall> calls;
  calls.reserve(daemons_.size());
  for (const net::EndpointId ep : daemons_) {
    calls.push_back(engine_->begin_forward(
        ep, proto::to_wire(RpcId::metric_history), req.encode()));
  }
  std::vector<std::optional<proto::MetricHistoryResponse>> out;
  out.reserve(calls.size());
  for (auto& call : calls) {
    auto r = timeout.count() > 0 ? engine_->finish(call, timeout)
                                 : engine_->finish(call);
    if (!r) {
      out.push_back(std::nullopt);
      continue;
    }
    auto decoded = proto::MetricHistoryResponse::decode(std::string_view(
        reinterpret_cast<const char*>(r->data()), r->size()));
    out.push_back(decoded.is_ok() ? std::optional<proto::MetricHistoryResponse>(
                                        std::move(*decoded))
                                  : std::nullopt);
  }
  return out;
}

ClientStats Client::stats() const {
  ClientStats s;
  {
    LockGuard lock(stats_mutex_);
    s = stats_;
  }
  // Read the cache counters after dropping stats_mutex_: the stat
  // cache's lock ranks BEFORE client.stats (DESIGN §11.1), so calling
  // into it while holding stats_mutex_ was a lock-order violation
  // (caught by lockdep in cache_test's integration case).
  s.stat_cache_hits = stat_cache_.hits();
  s.stat_cache_misses = stat_cache_.misses();
  return s;
}

}  // namespace gekko::client
