#include "client/batcher.h"

#include <algorithm>
#include <utility>

#include "common/thread_annotations.h"

namespace gekko::client {

using proto::RpcId;

namespace {

std::string_view as_view(const std::vector<std::uint8_t>& bytes) {
  return std::string_view(reinterpret_cast<const char*>(bytes.data()),
                          bytes.size());
}

/// Encoded-size estimate for the byte threshold (length prefix + path +
/// fixed fields); exactness doesn't matter, only that it grows with the
/// payload.
std::size_t entry_cost(std::string_view path) { return path.size() + 16; }

}  // namespace

Batcher::Batcher(rpc::Engine& engine, std::vector<net::EndpointId> daemons,
                 BatchOptions options, metrics::Registry& registry)
    : engine_(engine),
      daemons_(std::move(daemons)),
      options_(options),
      creates_(daemons_.size()),
      stats_(daemons_.size()),
      removes_(daemons_.size()) {
  enqueued_ = &registry.counter("client.batch.enqueued");
  flushes_full_ = &registry.counter("client.batch.flushes.full");
  flushes_deadline_ = &registry.counter("client.batch.flushes.deadline");
  rpcs_ = &registry.counter("client.batch.rpcs");
  flush_entries_ = &registry.histogram("client.batch.flush_entries");
  timer_ = std::thread([this] { timer_loop_(); });
}

Batcher::~Batcher() {
  {
    LockGuard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (timer_.joinable()) timer_.join();
  sweep_(/*force=*/true);  // fail no one: drain stragglers synchronously
}

task::Eventual<Errc> Batcher::enqueue_create(
    std::uint32_t daemon_id, proto::BatchCreateRequest::Entry entry) {
  task::Eventual<Errc> ev;
  CreateQueue ready;
  bool full = false;
  {
    UniqueLock lock(mutex_);
    CreateQueue& q = creates_[daemon_id];
    if (q.completions.empty()) {
      q.oldest = Clock::now();
      cv_.notify_one();  // timer re-arms for this queue's deadline
    }
    q.bytes += entry_cost(entry.path);
    q.entries.push_back(std::move(entry));
    q.completions.push_back(ev);
    enqueued_->inc();
    if (q.entries.size() >= options_.max_entries ||
        q.bytes >= options_.max_bytes) {
      ready = std::exchange(q, CreateQueue{});
      full = true;
    }
  }
  if (full) {
    flushes_full_->inc();
    flush_create_(daemon_id, std::move(ready));
  }
  return ev;
}

task::Eventual<Batcher::StatOutcome> Batcher::enqueue_stat(
    std::uint32_t daemon_id, std::string path) {
  task::Eventual<StatOutcome> ev;
  StatQueue ready;
  bool full = false;
  {
    UniqueLock lock(mutex_);
    StatQueue& q = stats_[daemon_id];
    if (q.completions.empty()) {
      q.oldest = Clock::now();
      cv_.notify_one();
    }
    q.bytes += entry_cost(path);
    q.paths.push_back(std::move(path));
    q.completions.push_back(ev);
    enqueued_->inc();
    if (q.paths.size() >= options_.max_entries ||
        q.bytes >= options_.max_bytes) {
      ready = std::exchange(q, StatQueue{});
      full = true;
    }
  }
  if (full) {
    flushes_full_->inc();
    flush_stat_(daemon_id, std::move(ready));
  }
  return ev;
}

task::Eventual<Batcher::RemoveOutcome> Batcher::enqueue_remove(
    std::uint32_t daemon_id, std::string path) {
  task::Eventual<RemoveOutcome> ev;
  RemoveQueue ready;
  bool full = false;
  {
    UniqueLock lock(mutex_);
    RemoveQueue& q = removes_[daemon_id];
    if (q.completions.empty()) {
      q.oldest = Clock::now();
      cv_.notify_one();
    }
    q.bytes += entry_cost(path);
    q.paths.push_back(std::move(path));
    q.completions.push_back(ev);
    enqueued_->inc();
    if (q.paths.size() >= options_.max_entries ||
        q.bytes >= options_.max_bytes) {
      ready = std::exchange(q, RemoveQueue{});
      full = true;
    }
  }
  if (full) {
    flushes_full_->inc();
    flush_remove_(daemon_id, std::move(ready));
  }
  return ev;
}

void Batcher::flush_all() { sweep_(/*force=*/true); }

void Batcher::timer_loop_() {
  for (;;) {
    {
      UniqueLock lock(mutex_);
      if (stopping_) return;
      Clock::time_point earliest = Clock::time_point::max();
      for (const auto& q : creates_) {
        if (!q.completions.empty()) earliest = std::min(earliest, q.oldest);
      }
      for (const auto& q : stats_) {
        if (!q.completions.empty()) earliest = std::min(earliest, q.oldest);
      }
      for (const auto& q : removes_) {
        if (!q.completions.empty()) earliest = std::min(earliest, q.oldest);
      }
      if (earliest == Clock::time_point::max()) {
        cv_.wait(lock);
        continue;
      }
      const auto deadline = earliest + options_.max_delay;
      const auto now = Clock::now();
      if (deadline > now) {
        cv_.wait_for(lock, deadline - now,
                     [&]() GEKKO_REQUIRES(mutex_) { return stopping_; });
        if (stopping_) return;
        continue;  // re-derive: the queue may have flushed full meanwhile
      }
    }
    sweep_(/*force=*/false);
  }
}

void Batcher::sweep_(bool force) {
  std::vector<std::pair<std::uint32_t, CreateQueue>> ripe_creates;
  std::vector<std::pair<std::uint32_t, StatQueue>> ripe_stats;
  std::vector<std::pair<std::uint32_t, RemoveQueue>> ripe_removes;
  const Clock::time_point now = Clock::now();
  {
    UniqueLock lock(mutex_);
    auto ripe = [&](const auto& q) {
      return !q.completions.empty() &&
             (force || q.oldest + options_.max_delay <= now);
    };
    for (std::uint32_t d = 0; d < creates_.size(); ++d) {
      if (ripe(creates_[d])) {
        ripe_creates.emplace_back(d, std::exchange(creates_[d],
                                                   CreateQueue{}));
      }
      if (ripe(stats_[d])) {
        ripe_stats.emplace_back(d, std::exchange(stats_[d], StatQueue{}));
      }
      if (ripe(removes_[d])) {
        ripe_removes.emplace_back(d,
                                  std::exchange(removes_[d], RemoveQueue{}));
      }
    }
  }
  if (!force) {
    flushes_deadline_->inc(ripe_creates.size() + ripe_stats.size() +
                           ripe_removes.size());
  }
  for (auto& [d, q] : ripe_creates) flush_create_(d, std::move(q));
  for (auto& [d, q] : ripe_stats) flush_stat_(d, std::move(q));
  for (auto& [d, q] : ripe_removes) flush_remove_(d, std::move(q));
}

void Batcher::flush_create_(std::uint32_t daemon_id, CreateQueue q) {
  proto::BatchCreateRequest req;
  req.entries = std::move(q.entries);
  rpcs_->inc();
  flush_entries_->record(req.entries.size());
  auto r = engine_.forward(daemons_[daemon_id],
                           proto::to_wire(RpcId::batch_create), req.encode());
  if (!r) {
    for (const auto& ev : q.completions) ev.set(r.code());
    return;
  }
  auto resp = proto::BatchCreateResponse::decode(as_view(*r));
  if (!resp || resp->statuses.size() != q.completions.size()) {
    for (const auto& ev : q.completions) ev.set(Errc::corruption);
    return;
  }
  for (std::size_t i = 0; i < q.completions.size(); ++i) {
    q.completions[i].set(proto::batch_status_to_errc(resp->statuses[i]));
  }
}

void Batcher::flush_stat_(std::uint32_t daemon_id, StatQueue q) {
  proto::BatchPathRequest req;
  req.paths = std::move(q.paths);
  rpcs_->inc();
  flush_entries_->record(req.paths.size());
  auto r = engine_.forward(daemons_[daemon_id],
                           proto::to_wire(RpcId::batch_stat), req.encode());
  if (!r) {
    for (const auto& ev : q.completions) ev.set(StatOutcome{r.code(), {}});
    return;
  }
  auto resp = proto::BatchStatResponse::decode(as_view(*r));
  if (!resp || resp->entries.size() != q.completions.size()) {
    for (const auto& ev : q.completions) {
      ev.set(StatOutcome{Errc::corruption, {}});
    }
    return;
  }
  for (std::size_t i = 0; i < q.completions.size(); ++i) {
    auto& e = resp->entries[i];
    q.completions[i].set(StatOutcome{proto::batch_status_to_errc(e.status),
                                     std::move(e.metadata)});
  }
}

void Batcher::flush_remove_(std::uint32_t daemon_id, RemoveQueue q) {
  proto::BatchPathRequest req;
  req.paths = std::move(q.paths);
  rpcs_->inc();
  flush_entries_->record(req.paths.size());
  auto r = engine_.forward(daemons_[daemon_id],
                           proto::to_wire(RpcId::batch_remove), req.encode());
  if (!r) {
    for (const auto& ev : q.completions) {
      ev.set(RemoveOutcome{r.code(), 0, false});
    }
    return;
  }
  auto resp = proto::BatchRemoveResponse::decode(as_view(*r));
  if (!resp || resp->entries.size() != q.completions.size()) {
    for (const auto& ev : q.completions) {
      ev.set(RemoveOutcome{Errc::corruption, 0, false});
    }
    return;
  }
  for (std::size_t i = 0; i < q.completions.size(); ++i) {
    const auto& e = resp->entries[i];
    q.completions[i].set(RemoveOutcome{proto::batch_status_to_errc(e.status),
                                       e.old_size, e.was_directory != 0});
  }
}

}  // namespace gekko::client
