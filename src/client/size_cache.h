// Client-side size-update write-back cache (paper §IV.B).
//
// "No more than approximately 150K write operations per second were
//  achieved [on a shared file] ... due to network contention on the
//  daemon which maintains the shared file's metadata whose size needs
//  to be constantly updated. To overcome this limitation, we added a
//  rudimentary client cache to locally buffer size updates of a number
//  of write operations before they are send to the node that manages
//  the file's metadata."
//
// The cache buffers the running max(offset+len) per path and releases
// one update per `flush_interval` writes (or on explicit flush at
// close()/fsync()). This trades metadata freshness for shared-file
// write scalability — exactly the paper's trade.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/thread_annotations.h"

namespace gekko::client {

class SizeCache {
 public:
  /// `flush_interval` == 0 disables caching entirely (paper's default
  /// synchronous mode); N > 0 flushes every Nth buffered update.
  explicit SizeCache(std::uint32_t flush_interval = 0)
      : interval_(flush_interval) {}

  [[nodiscard]] bool enabled() const noexcept { return interval_ > 0; }

  /// Record a local size observation. Returns the size to send to the
  /// metadata daemon *now*, or nullopt if it was absorbed.
  std::optional<std::uint64_t> observe(const std::string& path,
                                       std::uint64_t observed_size) {
    if (interval_ == 0) return observed_size;  // pass-through
    LockGuard lock(mutex_);
    auto& e = entries_[path];
    if (observed_size > e.pending_max) e.pending_max = observed_size;
    if (++e.buffered < interval_) return std::nullopt;
    e.buffered = 0;
    const std::uint64_t out = e.pending_max;
    return out;
  }

  /// Drain the pending update for one path (close/fsync barrier).
  std::optional<std::uint64_t> flush(const std::string& path) {
    if (interval_ == 0) return std::nullopt;
    LockGuard lock(mutex_);
    auto it = entries_.find(path);
    if (it == entries_.end() || it->second.buffered == 0) return std::nullopt;
    const std::uint64_t out = it->second.pending_max;
    entries_.erase(it);
    return out;
  }

  /// Drop state for a path without flushing (unlink).
  void forget(const std::string& path) {
    if (interval_ == 0) return;
    LockGuard lock(mutex_);
    entries_.erase(path);
  }

  [[nodiscard]] std::size_t pending_paths() const {
    LockGuard lock(mutex_);
    return entries_.size();
  }

 private:
  struct Entry {
    std::uint64_t pending_max = 0;
    std::uint32_t buffered = 0;
  };

  std::uint32_t interval_;
  mutable Mutex mutex_{"client.size_cache", lockdep::rank::kSizeCache};
  std::unordered_map<std::string, Entry> entries_ GEKKO_GUARDED_BY(mutex_);
};

}  // namespace gekko::client
