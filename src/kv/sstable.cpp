#include "kv/sstable.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/crc32.h"
#include "common/logging.h"

namespace gekko::kv {
namespace {

constexpr std::size_t kFooterSize = 40;

std::string encode_handle(const BlockHandle& h) {
  std::string s(16, '\0');
  std::memcpy(s.data(), &h.offset, 8);
  std::memcpy(s.data() + 8, &h.size, 8);
  return s;
}

Result<BlockHandle> decode_handle(std::string_view s) {
  if (s.size() != 16) return Status{Errc::corruption, "bad block handle"};
  BlockHandle h;
  std::memcpy(&h.offset, s.data(), 8);
  std::memcpy(&h.size, s.data() + 8, 8);
  return h;
}

}  // namespace

std::string table_file_name(std::uint64_t number) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%08" PRIu64 ".sst", number);
  return buf;
}

// ---------- TableBuilder ----------

TableBuilder::TableBuilder(const Options& options, io::WritableFile file)
    : options_(options),
      file_(std::move(file)),
      data_block_(options.block_restart_interval),
      index_block_(1),
      filter_(options.bloom_bits_per_key) {}

Status TableBuilder::add(std::string_view internal_key,
                         std::string_view value) {
  if (count_ == 0) smallest_.assign(internal_key);

  if (has_pending_index_) {
    // Emit the deferred index entry for the previous block now that we
    // know the first key of this block (LevelDB would shorten the
    // separator; we use the previous block's last key as-is).
    index_block_.add(pending_index_key_, encode_handle(pending_handle_));
    has_pending_index_ = false;
  }

  data_block_.add(internal_key, value);
  if (options_.bloom_bits_per_key > 0) {
    filter_.add(extract_user_key(internal_key));
  }
  last_key_.assign(internal_key);
  ++count_;

  if (data_block_.size_estimate() >= options_.block_size) {
    return flush_data_block_();
  }
  return Status::ok();
}

Status TableBuilder::flush_data_block_() {
  if (data_block_.empty()) return Status::ok();
  const std::string contents = data_block_.finish();
  data_block_.reset();
  auto handle = write_raw_block_(contents);
  if (!handle) return handle.status();
  pending_index_key_ = last_key_;
  pending_handle_ = *handle;
  has_pending_index_ = true;
  return Status::ok();
}

Result<BlockHandle> TableBuilder::write_raw_block_(std::string_view contents) {
  BlockHandle handle;
  handle.offset = file_.size();
  handle.size = contents.size();
  GEKKO_RETURN_IF_ERROR(file_.append(contents));
  const std::uint32_t crc = mask_crc(crc32c(contents));
  std::uint8_t buf[4];
  std::memcpy(buf, &crc, 4);
  GEKKO_RETURN_IF_ERROR(file_.append(std::span<const std::uint8_t>(buf, 4)));
  return handle;
}

Result<TableMeta> TableBuilder::finish() {
  GEKKO_RETURN_IF_ERROR(flush_data_block_());
  if (has_pending_index_) {
    index_block_.add(pending_index_key_, encode_handle(pending_handle_));
    has_pending_index_ = false;
  }

  BlockHandle filter_handle{};
  if (options_.bloom_bits_per_key > 0 && filter_.key_count() > 0) {
    const std::string filter = filter_.finish();
    GEKKO_ASSIGN_OR_RETURN(filter_handle, write_raw_block_(filter));
  }

  const std::string index = index_block_.finish();
  BlockHandle index_handle;
  GEKKO_ASSIGN_OR_RETURN(index_handle, write_raw_block_(index));

  std::string footer(kFooterSize, '\0');
  std::memcpy(footer.data(), &index_handle.offset, 8);
  std::memcpy(footer.data() + 8, &index_handle.size, 8);
  std::memcpy(footer.data() + 16, &filter_handle.offset, 8);
  std::memcpy(footer.data() + 24, &filter_handle.size, 8);
  std::memcpy(footer.data() + 32, &kTableMagic, 8);
  GEKKO_RETURN_IF_ERROR(file_.append(footer));
  GEKKO_RETURN_IF_ERROR(file_.sync());

  TableMeta meta;
  meta.file_size = file_.size();
  meta.entry_count = count_;
  meta.smallest = smallest_;
  meta.largest = last_key_;
  GEKKO_RETURN_IF_ERROR(file_.close());
  return meta;
}

// ---------- Table ----------

Result<std::shared_ptr<Table>> Table::open(const std::filesystem::path& path,
                                           const Options& options,
                                           std::uint64_t file_number) {
  auto file = io::RandomAccessFile::open(path);
  if (!file) return file.status();
  if (file->size() < kFooterSize) {
    return Status{Errc::corruption, "table too small: " + path.string()};
  }

  std::string footer(kFooterSize, '\0');
  GEKKO_RETURN_IF_ERROR(file->read_exact(
      file->size() - kFooterSize,
      std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(footer.data()),
                              footer.size())));

  BlockHandle index_handle, filter_handle;
  std::uint64_t magic;
  std::memcpy(&index_handle.offset, footer.data(), 8);
  std::memcpy(&index_handle.size, footer.data() + 8, 8);
  std::memcpy(&filter_handle.offset, footer.data() + 16, 8);
  std::memcpy(&filter_handle.size, footer.data() + 24, 8);
  std::memcpy(&magic, footer.data() + 32, 8);
  if (magic != kTableMagic) {
    return Status{Errc::corruption, "bad table magic: " + path.string()};
  }

  auto table = std::shared_ptr<Table>(new Table());
  table->file_ = std::move(*file);
  table->cache_ = options.block_cache;
  table->file_number_ = file_number;

  // Index/filter blocks are pinned in the Table, never in the cache.
  GEKKO_ASSIGN_OR_RETURN(table->index_block_,
                         table->read_block_raw_(index_handle));
  if (filter_handle.size > 0) {
    GEKKO_ASSIGN_OR_RETURN(table->filter_block_,
                           table->read_block_raw_(filter_handle));
  }
  return table;
}

Result<std::shared_ptr<const std::string>> Table::read_block_(
    const BlockHandle& handle) const {
  if (cache_) {
    if (auto hit = cache_->lookup(file_number_, handle.offset)) {
      return hit;
    }
  }
  auto raw = read_block_raw_(handle);
  if (!raw) return raw.status();
  if (cache_) {
    return cache_->insert(file_number_, handle.offset, std::move(*raw));
  }
  return std::make_shared<const std::string>(std::move(*raw));
}

Result<std::string> Table::read_block_raw_(const BlockHandle& handle) const {
  // handle.offset/size come off disk (footer or index block) and may
  // be corrupt or hostile. Validate the whole [offset, offset+size+4)
  // range against the file overflow-safely BEFORE the allocation: a
  // forged 2^60-byte handle must fail as corruption, not as an
  // out-of-memory crash in the resize below.
  const std::uint64_t file_size = file_.size();
  if (handle.offset > file_size || handle.size > file_size - handle.offset ||
      file_size - handle.offset - handle.size < 4) {
    return Status{Errc::corruption, "block handle out of file bounds"};
  }
  std::string contents(handle.size, '\0');
  GEKKO_RETURN_IF_ERROR(file_.read_exact(
      handle.offset,
      std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(contents.data()),
                              contents.size())));
  std::uint8_t crc_buf[4];
  GEKKO_RETURN_IF_ERROR(file_.read_exact(
      handle.offset + handle.size, std::span<std::uint8_t>(crc_buf, 4)));
  std::uint32_t stored;
  std::memcpy(&stored, crc_buf, 4);
  if (stored != mask_crc(crc32c(contents))) {
    return Status{Errc::corruption, "block crc mismatch"};
  }
  return contents;
}

Status Table::get(std::string_view user_key, SequenceNumber snapshot_seq,
                  LookupResult* result) const {
  if (!filter_block_.empty() &&
      !bloom_may_contain(filter_block_, user_key)) {
    return Status::ok();  // definitely absent from this table
  }

  const std::string lookup = make_lookup_key(user_key, snapshot_seq);
  BlockIterator index_iter(index_block_);
  index_iter.seek(lookup);
  while (index_iter.valid()) {
    auto handle = decode_handle(index_iter.value());
    if (!handle) return handle.status();
    auto block = read_block_(*handle);
    if (!block) return block.status();

    BlockIterator it(**block);
    it.seek(lookup);
    while (it.valid()) {
      const std::string_view ikey = it.key();
      if (extract_user_key(ikey) != user_key) return Status::ok();
      const std::uint64_t trailer = extract_trailer(ikey);
      if (trailer_sequence(trailer) > snapshot_seq) {
        it.next();
        continue;
      }
      switch (trailer_type(trailer)) {
        case ValueType::value:
          result->state = LookupState::found;
          result->value = it.value();
          return Status::ok();
        case ValueType::deletion:
          result->state = LookupState::deleted;
          return Status::ok();
        case ValueType::merge:
          result->pending_merges.emplace_back(it.value());
          it.next();
          continue;
      }
    }
    // The run of this user key may spill into the next data block.
    index_iter.next();
  }
  return Status::ok();
}

// ---------- Table::Iterator ----------

Table::Iterator::Iterator(std::shared_ptr<const Table> table)
    : table_(std::move(table)), index_iter_(table_->index_block_) {}

void Table::Iterator::load_block_and_(void (BlockIterator::*pos)()) {
  valid_ = false;
  if (!index_iter_.valid()) return;
  auto handle = decode_handle(index_iter_.value());
  if (!handle) return;
  auto block = table_->read_block_(*handle);
  if (!block) return;
  block_data_ = std::move(*block);
  block_iter_.emplace(*block_data_);
  ((*block_iter_).*pos)();
  valid_ = block_iter_->valid();
}

void Table::Iterator::skip_exhausted_blocks_() {
  while (!valid_) {
    index_iter_.next();
    if (!index_iter_.valid()) return;
    load_block_and_(&BlockIterator::seek_to_first);
  }
}

void Table::Iterator::seek_to_first() {
  index_iter_.seek_to_first();
  load_block_and_(&BlockIterator::seek_to_first);
  skip_exhausted_blocks_();
}

void Table::Iterator::seek(std::string_view internal_target) {
  index_iter_.seek(internal_target);
  if (!index_iter_.valid()) {
    valid_ = false;
    return;
  }
  // Capture target before loading (block_iter_ lambda-free approach).
  const std::string target(internal_target);
  load_block_and_(&BlockIterator::seek_to_first);
  if (valid_) {
    block_iter_->seek(target);
    valid_ = block_iter_->valid();
  }
  skip_exhausted_blocks_();
}

void Table::Iterator::next() {
  if (!valid_) return;
  block_iter_->next();
  valid_ = block_iter_->valid();
  skip_exhausted_blocks_();
}

}  // namespace gekko::kv
