// Bloom filter over user keys, double-hashing scheme (Kirsch &
// Mitzenmacher) with xxhash64 as the base hash — matches the
// RocksDB-style "may contain" fast path GekkoFS relies on for
// negative stat() lookups.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gekko::kv {

class BloomFilterBuilder {
 public:
  explicit BloomFilterBuilder(int bits_per_key);

  void add(std::string_view user_key) { hashes_.push_back(hash_(user_key)); }

  /// Serialize: bit array + [k u8]. Empty if no keys were added.
  std::string finish();

  [[nodiscard]] std::size_t key_count() const noexcept {
    return hashes_.size();
  }

  static std::uint64_t hash_(std::string_view key) noexcept;

 private:
  int bits_per_key_;
  int k_;  // number of probes
  std::vector<std::uint64_t> hashes_;
};

/// Query over a serialized filter. Empty filter => may_contain == true
/// (no filter means no exclusion).
bool bloom_may_contain(std::string_view filter, std::string_view user_key);

}  // namespace gekko::kv
