#include "kv/write_batch.h"

#include "common/codec.h"

namespace gekko::kv {

void WriteBatch::put(std::string_view key, std::string_view value) {
  append_op_(ValueType::value, key, value, true);
}

void WriteBatch::erase(std::string_view key) {
  append_op_(ValueType::deletion, key, {}, false);
}

void WriteBatch::merge(std::string_view key, std::string_view operand) {
  append_op_(ValueType::merge, key, operand, true);
}

void WriteBatch::clear() {
  rep_.clear();
  count_ = 0;
}

void WriteBatch::append_op_(ValueType t, std::string_view key,
                            std::string_view value, bool has_value) {
  Encoder enc(&rep_);
  enc.u8(static_cast<std::uint8_t>(t));
  enc.str(key);
  if (has_value) enc.str(value);
  ++count_;
}

Status WriteBatch::for_each(const OpFn& fn) const {
  Decoder dec(rep_);
  for (std::uint32_t i = 0; i < count_; ++i) {
    auto type = dec.u8();
    if (!type) return type.status();
    const auto t = static_cast<ValueType>(*type);
    auto key = dec.str();
    if (!key) return key.status();
    std::string_view value;
    if (t != ValueType::deletion) {
      auto v = dec.str();
      if (!v) return v.status();
      value = *v;
    }
    fn(t, *key, value);
  }
  if (!dec.done()) return Status{Errc::corruption, "trailing batch bytes"};
  return Status::ok();
}

Result<WriteBatch> WriteBatch::from_bytes(std::string_view bytes) {
  WriteBatch batch;
  batch.rep_.assign(bytes.begin(), bytes.end());
  // Validate structure and count ops.
  Decoder dec(batch.rep_);
  std::uint32_t count = 0;
  while (!dec.done()) {
    auto type = dec.u8();
    if (!type) return type.status();
    const auto t = static_cast<ValueType>(*type);
    if (t != ValueType::value && t != ValueType::deletion &&
        t != ValueType::merge) {
      return Status{Errc::corruption, "bad op type in batch"};
    }
    auto key = dec.str();
    if (!key) return key.status();
    if (t != ValueType::deletion) {
      auto v = dec.str();
      if (!v) return v.status();
    }
    ++count;
  }
  batch.count_ = count;
  return batch;
}

}  // namespace gekko::kv
