// Merge operators used by GekkoFS metadata.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "kv/options.h"

namespace gekko::kv {

/// Operand and value are 8-byte little-endian u64; merge keeps the max.
/// GekkoFS daemons use this to fold concurrent file-size updates
/// (size = max(size, offset + count)) without read-modify-write races.
class U64MaxMergeOperator final : public MergeOperator {
 public:
  [[nodiscard]] std::string_view name() const override { return "u64_max"; }

  [[nodiscard]] std::string merge(std::string_view /*key*/,
                                  const std::string* existing,
                                  std::string_view operand) const override {
    const std::uint64_t op = decode(operand);
    const std::uint64_t base =
        existing != nullptr ? decode(*existing) : 0;
    return encode(op > base ? op : base);
  }

  static std::uint64_t decode(std::string_view v) noexcept {
    if (v.size() != 8) return 0;
    std::uint64_t x;
    std::memcpy(&x, v.data(), 8);
    return x;
  }

  static std::string encode(std::uint64_t v) {
    std::string s(8, '\0');
    std::memcpy(s.data(), &v, 8);
    return s;
  }
};

/// Simple append-with-separator operator (used in tests).
class AppendMergeOperator final : public MergeOperator {
 public:
  explicit AppendMergeOperator(char sep = ',') : sep_(sep) {}

  [[nodiscard]] std::string_view name() const override { return "append"; }

  [[nodiscard]] std::string merge(std::string_view /*key*/,
                                  const std::string* existing,
                                  std::string_view operand) const override {
    if (existing == nullptr || existing->empty()) {
      return std::string(operand);
    }
    std::string out = *existing;
    out.push_back(sep_);
    out.append(operand);
    return out;
  }

 private:
  char sep_;
};

}  // namespace gekko::kv
