// Internal iterator interface + k-way merging iterator over LSM
// components (memtables and tables), in internal-key order.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "kv/internal_key.h"
#include "kv/memtable.h"
#include "kv/sstable.h"

namespace gekko::kv {

class InternalIterator {
 public:
  virtual ~InternalIterator() = default;
  [[nodiscard]] virtual bool valid() const = 0;
  [[nodiscard]] virtual std::string_view key() const = 0;
  [[nodiscard]] virtual std::string_view value() const = 0;
  virtual void seek_to_first() = 0;
  virtual void seek(std::string_view internal_target) = 0;
  virtual void next() = 0;
};

class MemTableIterator final : public InternalIterator {
 public:
  explicit MemTableIterator(std::shared_ptr<const MemTable> mem)
      : mem_(std::move(mem)), it_(mem_->iterator()) {}

  [[nodiscard]] bool valid() const override { return it_.valid(); }
  [[nodiscard]] std::string_view key() const override { return it_.key(); }
  [[nodiscard]] std::string_view value() const override {
    return it_.value();
  }
  void seek_to_first() override { it_.seek_to_first(); }
  void seek(std::string_view target) override { it_.seek(target); }
  void next() override { it_.next(); }

 private:
  std::shared_ptr<const MemTable> mem_;  // keeps skiplist alive
  SkipList::Iterator it_;
};

class TableIterator final : public InternalIterator {
 public:
  explicit TableIterator(std::shared_ptr<const Table> table)
      : it_(std::move(table)) {}

  [[nodiscard]] bool valid() const override { return it_.valid(); }
  [[nodiscard]] std::string_view key() const override { return it_.key(); }
  [[nodiscard]] std::string_view value() const override {
    return it_.value();
  }
  void seek_to_first() override { it_.seek_to_first(); }
  void seek(std::string_view target) override { it_.seek(target); }
  void next() override { it_.next(); }

 private:
  Table::Iterator it_;
};

/// Linear k-way merge (k is small: one memtable, one immutable, a few
/// dozen tables). Ties on identical internal keys cannot happen —
/// sequence numbers are unique per op.
class MergingIterator final : public InternalIterator {
 public:
  explicit MergingIterator(
      std::vector<std::unique_ptr<InternalIterator>> children)
      : children_(std::move(children)) {}

  [[nodiscard]] bool valid() const override { return current_ != nullptr; }
  [[nodiscard]] std::string_view key() const override {
    return current_->key();
  }
  [[nodiscard]] std::string_view value() const override {
    return current_->value();
  }

  void seek_to_first() override {
    for (auto& c : children_) c->seek_to_first();
    find_smallest_();
  }

  void seek(std::string_view target) override {
    for (auto& c : children_) c->seek(target);
    find_smallest_();
  }

  void next() override {
    current_->next();
    find_smallest_();
  }

 private:
  void find_smallest_() {
    current_ = nullptr;
    for (auto& c : children_) {
      if (!c->valid()) continue;
      if (current_ == nullptr ||
          compare_internal(c->key(), current_->key()) < 0) {
        current_ = c.get();
      }
    }
  }

  std::vector<std::unique_ptr<InternalIterator>> children_;
  InternalIterator* current_ = nullptr;
};

}  // namespace gekko::kv
