// relaxed-ok: node next-pointers use release/acquire where publication
// matters; relaxed loads are confined to traversal hints and the
// height counter per the LevelDB skiplist memory-model argument.
// Lock-free-read skiplist, after LevelDB's memtable structure.
//
// Concurrency contract: one writer at a time (the DB write path is
// serialized by a mutex, as in LevelDB), any number of concurrent
// readers without locks. Nodes are never unlinked while the list lives;
// memory is reclaimed when the whole skiplist is destroyed (memtables
// are immutable-after-flush and dropped wholesale).
//
// Keys are self-contained strings (internal keys with trailer); the
// value is stored alongside the key in the node.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "kv/internal_key.h"

namespace gekko::kv {

class SkipList {
 public:
  static constexpr int kMaxHeight = 12;

  SkipList() : rng_(0x6e6b6b0f5ULL), head_(make_node_("", "", kMaxHeight)) {
    max_height_.store(1, std::memory_order_relaxed);
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  ~SkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0].load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  /// Insert an internal key (must not already be present — sequence
  /// numbers make every internal key unique). Single writer only.
  void insert(std::string_view key, std::string_view value) {
    Node* prev[kMaxHeight];
    Node* x = find_greater_or_equal_(key, prev);
    assert(x == nullptr || compare_internal(x->key, key) != 0);
    (void)x;

    const int height = random_height_();
    if (height > max_height_.load(std::memory_order_relaxed)) {
      for (int i = max_height_.load(std::memory_order_relaxed); i < height;
           ++i) {
        prev[i] = head_;
      }
      max_height_.store(height, std::memory_order_relaxed);
    }

    Node* node = make_node_(key, value, height);
    for (int i = 0; i < height; ++i) {
      node->next[i].store(prev[i]->next[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
      prev[i]->next[i].store(node, std::memory_order_release);
    }
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  struct Node;  // defined below; forward-declared for Iterator

 public:
  /// Forward iterator over internal-key order. Readers may iterate
  /// concurrently with one writer.
  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    [[nodiscard]] bool valid() const noexcept { return node_ != nullptr; }
    [[nodiscard]] std::string_view key() const noexcept {
      return node_->key;
    }
    [[nodiscard]] std::string_view value() const noexcept {
      return node_->value;
    }

    void next() {
      assert(valid());
      node_ = node_->next[0].load(std::memory_order_acquire);
    }

    /// Position at the first node with key >= target.
    void seek(std::string_view target) {
      node_ = list_->find_greater_or_equal_(target, nullptr);
    }

    void seek_to_first() {
      node_ = list_->head_->next[0].load(std::memory_order_acquire);
    }

   private:
    const SkipList* list_;
    const Node* node_;
  };

 private:
  struct Node {
    std::string key;
    std::string value;
    int height;
    // Flexible "array" of atomic next pointers, sized by height.
    std::atomic<Node*> next[1];

    static void* operator new(std::size_t base, int h) {
      return ::operator new(base + sizeof(std::atomic<Node*>) *
                                       static_cast<std::size_t>(h - 1));
    }
    static void operator delete(void* p) { ::operator delete(p); }
    static void operator delete(void* p, int) { ::operator delete(p); }
  };

  static Node* make_node_(std::string_view key, std::string_view value,
                          int height) {
    Node* n = new (height) Node{std::string(key), std::string(value), height,
                                {}};
    for (int i = 0; i < height; ++i) {
      n->next[i].store(nullptr, std::memory_order_relaxed);
    }
    return n;
  }

  int random_height_() {
    // P(level up) = 1/4, as in LevelDB.
    int h = 1;
    while (h < kMaxHeight && (rng_() & 3) == 0) ++h;
    return h;
  }

  /// First node with key >= target; fills prev[] when non-null.
  Node* find_greater_or_equal_(std::string_view target,
                               Node* prev[]) const {
    Node* x = head_;
    int level = max_height_.load(std::memory_order_relaxed) - 1;
    while (true) {
      Node* next = x->next[level].load(std::memory_order_acquire);
      if (next != nullptr && compare_internal(next->key, target) < 0) {
        x = next;
      } else {
        if (prev != nullptr) prev[level] = x;
        if (level == 0) return next;
        --level;
      }
    }
  }

  Xoshiro256 rng_;
  Node* head_;
  std::atomic<int> max_height_{1};
  std::atomic<std::size_t> count_{0};
};

}  // namespace gekko::kv
