// Tuning knobs for the LSM KV store (RocksDB stand-in).
//
// Defaults mirror what GekkoFS needs: small values (packed file
// metadata), NAND-friendly sequential writes, strong per-key consistency.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

namespace gekko::kv {

/// Associative merge operator (RocksDB-style). GekkoFS uses one to fold
/// size updates into metadata without read-modify-write on the daemon.
class MergeOperator {
 public:
  virtual ~MergeOperator() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Fold `operand` into `existing` (absent if the key had no value).
  /// Returns the merged full value.
  [[nodiscard]] virtual std::string merge(
      std::string_view key, const std::string* existing,
      std::string_view operand) const = 0;
};

class BlockCache;  // cache.h

struct Options {
  /// Memtable flush threshold (approximate bytes of key+value data).
  std::size_t memtable_budget = 4 * 1024 * 1024;
  /// Target uncompressed size of one SST data block.
  std::size_t block_size = 4 * 1024;
  /// Restart point interval inside a data block.
  int block_restart_interval = 16;
  /// Bloom filter bits per key (0 disables filters).
  int bloom_bits_per_key = 10;
  /// Number of L0 files that triggers an L0->L1 compaction.
  int l0_compaction_trigger = 4;
  /// Max bytes in L1; each deeper level is 10x larger.
  std::uint64_t l1_max_bytes = 16ULL * 1024 * 1024;
  /// Target size of a single SST produced by compaction.
  std::uint64_t target_sst_size = 4ULL * 1024 * 1024;
  /// fsync the WAL on every commit (GekkoFS trades this off; the paper's
  /// deployments run on node-local scratch, so default is buffered).
  bool wal_sync = false;
  /// Run flushes/compactions on background threads (off = inline, used
  /// by deterministic tests; every memtable switch then counts as one
  /// hard stall).
  bool background_compaction = true;
  /// Background workers sharing flush + compaction duty. Flushes stay
  /// strictly ordered (one at a time); extra workers run compactions of
  /// disjoint level pairs concurrently with the flush.
  int compaction_threads = 2;
  /// Sealed memtables allowed to queue before writers hard-stop. The
  /// old engine's behaviour is max_immutable_memtables = 1.
  std::size_t max_immutable_memtables = 2;
  /// L0 file count at which writers start soft-slowing (sleep
  /// slowdown_sleep_us per write) to let compaction catch up.
  int l0_slowdown_trigger = 8;
  /// L0 file count at which writers hard-stop until compaction drains.
  int l0_stop_trigger = 16;
  /// Soft-slowdown sleep per write, microseconds.
  std::uint32_t slowdown_sleep_us = 200;
  /// Merge operator; may be null if merge() is never called.
  std::shared_ptr<const MergeOperator> merge_operator;
  /// Shared LRU cache for SST data blocks; null disables caching.
  std::shared_ptr<BlockCache> block_cache;
};

struct WriteOptions {
  /// Force a durable WAL sync for this write.
  bool sync = false;
};

struct ReadOptions {
  /// Read at this snapshot sequence number (0 = latest).
  std::uint64_t snapshot_seq = 0;
};

}  // namespace gekko::kv
