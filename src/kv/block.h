// SSTable data/index block format (LevelDB-style).
//
// Entry: [shared varint][non_shared varint][value_len varint]
//        [key_delta bytes][value bytes]
// Keys are prefix-compressed against the previous entry; every
// `restart_interval` entries a full key is stored and its offset is
// recorded in the restart array, enabling binary search:
// Block trailer: [restart offsets u32 x N][restart count u32]
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace gekko::kv {

class BlockBuilder {
 public:
  explicit BlockBuilder(int restart_interval)
      : restart_interval_(restart_interval) {
    restarts_.push_back(0);
  }

  /// Keys must be added in strictly increasing internal-key order.
  void add(std::string_view key, std::string_view value);

  /// Append the restart array and return the serialized block.
  /// The builder must be reset() before reuse.
  std::string finish();

  void reset();

  [[nodiscard]] std::size_t size_estimate() const noexcept {
    return buffer_.size() + restarts_.size() * 4 + 4;
  }
  [[nodiscard]] bool empty() const noexcept { return counter_total_ == 0; }

 private:
  int restart_interval_;
  std::string buffer_;
  std::vector<std::uint32_t> restarts_;
  int counter_ = 0;         // entries since last restart
  int counter_total_ = 0;   // all entries
  std::string last_key_;
};

/// Iterator over a serialized block. The block bytes must outlive the
/// iterator (the reader pins the block in memory).
class BlockIterator {
 public:
  explicit BlockIterator(std::string_view block);

  [[nodiscard]] bool valid() const noexcept { return valid_; }
  /// Block parse error, if any (invalidates the iterator).
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] std::string_view key() const noexcept { return key_; }
  [[nodiscard]] std::string_view value() const noexcept { return value_; }

  void seek_to_first();
  /// Position at first entry with internal key >= target.
  void seek(std::string_view target);
  void next();

 private:
  void corrupt_(const char* why);
  /// Parse entry at offset; returns offset past it, or 0 on corruption.
  std::uint32_t parse_entry_(std::uint32_t offset);
  [[nodiscard]] std::uint32_t restart_point_(std::uint32_t index) const;
  void seek_to_restart_(std::uint32_t index);

  std::string_view data_;        // entries region (excludes restart array)
  std::string_view raw_;         // whole block
  std::uint32_t num_restarts_ = 0;
  std::uint32_t current_ = 0;    // offset of current entry
  std::uint32_t next_offset_ = 0;
  std::string key_;
  std::string_view value_;
  bool valid_ = false;
  Status status_ = Status::ok();
};

}  // namespace gekko::kv
