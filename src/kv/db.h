// The LSM key-value store facade (RocksDB stand-in).
//
// One DB instance backs one GekkoFS daemon's metadata. Guarantees:
//  - atomic WriteBatch commits through a WAL,
//  - strongly consistent point reads (read-your-writes),
//  - snapshot-isolated scans,
//  - merge operators for contention-free size updates,
//  - leveled compaction on a pool of background workers that do their
//    file I/O with the DB lock RELEASED, so the foreground write path
//    only stalls when the whole pipeline (immutable memtables + L0) is
//    saturated. Stall accounting distinguishes soft slowdowns (writers
//    briefly sleep to let compaction catch up) from hard stops (writer
//    blocked on done_cv_): kv.stall.foreground_ms == 0 is the
//    "stall-free" gate in bench/metadata_scale.
// relaxed-ok: the per-op counters (puts/gets/deletes/merges) and the
// slowdown flag/counters are standalone tallies read/written outside
// mutex_ on purpose (the get/put hot path must not re-take the DB lock
// just to count); stats() folds them into the locked snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "kv/iterator.h"
#include "kv/memtable.h"
#include "kv/options.h"
#include "kv/version.h"
#include "kv/wal.h"
#include "kv/write_batch.h"

namespace gekko::kv {

struct DbStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t deletes = 0;
  std::uint64_t merges = 0;
  std::uint64_t flushes = 0;
  std::uint64_t compactions = 0;
  std::uint64_t wal_appends = 0;
  std::uint64_t wal_syncs = 0;
  /// Hard foreground stalls: a writer blocked until a flush/compaction
  /// freed pipeline space (episodes / total blocked time). With
  /// background_compaction off every memtable switch flushes inline and
  /// counts as one stop.
  std::uint64_t stall_stops = 0;
  std::uint64_t stall_foreground_ms = 0;
  /// Soft slowdowns: writers slept slowdown_sleep_us because the
  /// pipeline neared saturation (L0 at l0_slowdown_trigger or the
  /// immutable queue full). Kept separate from the hard-stop time.
  std::uint64_t stall_slowdowns = 0;
  std::uint64_t stall_slowdown_ms = 0;
  /// WAL replay outcome from the last open. recovered_records > 0 means
  /// the previous process died with unflushed writes (dirty restart);
  /// tail_corruptions counts WAL files whose tail was torn or corrupt
  /// and got discarded at the first bad record. Exported to gkfs-mon as
  /// kv.wal.recovered_records / kv.wal.tail_corruptions.
  std::uint64_t wal_recovered_records = 0;
  std::uint64_t wal_tail_corruptions = 0;
  std::uint64_t compact_bytes_in = 0;
  std::uint64_t compact_bytes_out = 0;
  std::uint64_t compactions_running = 0;
  std::uint64_t immutable_memtables = 0;
  std::uint64_t level_files[kNumLevels] = {};
  std::uint64_t level_bytes[kNumLevels] = {};
  std::size_t memtable_bytes = 0;
};

class DB;

/// RAII snapshot handle: pins a sequence number against compaction GC.
class Snapshot {
 public:
  ~Snapshot();
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;
  [[nodiscard]] std::uint64_t sequence() const noexcept { return seq_; }

 private:
  friend class DB;
  Snapshot(DB* db, std::uint64_t seq) : db_(db), seq_(seq) {}
  DB* db_;
  std::uint64_t seq_;
};

class DB {
 public:
  static Result<std::unique_ptr<DB>> open(const std::filesystem::path& dir,
                                          Options options);
  ~DB();

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  // -- writes ------------------------------------------------------------
  Status put(std::string_view key, std::string_view value,
             const WriteOptions& wo = {});
  Status erase(std::string_view key, const WriteOptions& wo = {});
  Status merge(std::string_view key, std::string_view operand,
               const WriteOptions& wo = {});
  Status write(const WriteBatch& batch, const WriteOptions& wo = {});

  /// put-if-absent, atomic w.r.t. other writers. Errc::exists if present.
  /// This is the GekkoFS create(): a single KV insert replaces directory
  /// entry + inode allocation of a traditional FS.
  Status insert(std::string_view key, std::string_view value,
                const WriteOptions& wo = {});

  /// delete-if-present. Errc::not_found if absent.
  Status remove_existing(std::string_view key, const WriteOptions& wo = {});

  /// Batched put-if-absent: one lock acquisition and ONE WAL append for
  /// every key that passes its existence check (the batched-create hot
  /// path). Per-key outcome lands in `out` in request order (ok /
  /// exists); a non-ok return means the shared commit failed and no
  /// entry was applied.
  Status insert_many(
      const std::vector<std::pair<std::string, std::string>>& kvs,
      std::vector<Errc>* out, const WriteOptions& wo = {});

  /// Batched delete-if-present, same contract as insert_many. The old
  /// value of each removed key (merge operands folded) lands in
  /// `old_values` so callers can act on what was deleted.
  Status remove_many(const std::vector<std::string>& keys,
                     std::vector<Errc>* out,
                     std::vector<std::string>* old_values,
                     const WriteOptions& wo = {});

  // -- reads -------------------------------------------------------------
  Result<std::string> get(std::string_view key, const ReadOptions& ro = {});
  /// true/false without copying the value (stat-style existence check).
  Result<bool> contains(std::string_view key, const ReadOptions& ro = {});

  /// Ordered scan of user keys in [start, end) (end empty = unbounded),
  /// at a consistent snapshot. fn returns false to stop early.
  Status scan(std::string_view start, std::string_view end,
              const std::function<bool(std::string_view key,
                                       std::string_view value)>& fn,
              const ReadOptions& ro = {});

  /// Prefix scan convenience (GekkoFS readdir: scan "/dir/").
  Status scan_prefix(std::string_view prefix,
                     const std::function<bool(std::string_view,
                                              std::string_view)>& fn,
                     const ReadOptions& ro = {});

  /// Count keys in [start, end) — used by tests and df-style stats.
  Result<std::uint64_t> count_range(std::string_view start,
                                    std::string_view end);

  // -- management ---------------------------------------------------------
  std::shared_ptr<Snapshot> snapshot();
  /// Force memtable flush (and wait for it).
  Status flush();
  /// Run compactions until no level is over threshold.
  Status compact_all();
  [[nodiscard]] DbStats stats() const;
  [[nodiscard]] const Options& options() const { return options_; }

 private:
  friend class Snapshot;

  /// One sealed memtable waiting to become an L0 table. wal_no is the
  /// WAL file that covered it (0 = none, e.g. recovery replay); the
  /// flush deletes exactly that file once the data is durable.
  struct ImmTable {
    std::shared_ptr<MemTable> mem;
    std::uint64_t wal_no = 0;
  };

  DB(std::filesystem::path dir, Options options);

  Status recover_();
  Status write_locked_(const WriteBatch& batch, bool sync, UniqueLock& lock)
      GEKKO_REQUIRES(mutex_);
  Status maybe_switch_memtable_(UniqueLock& lock) GEKKO_REQUIRES(mutex_);
  /// Seal mem_ behind a fresh WAL and queue it for flushing.
  Status switch_memtable_locked_() GEKKO_REQUIRES(mutex_);
  /// Flush the OLDEST immutable memtable (front of the queue). With
  /// unlocked_io the SST build runs with mutex_ released; the version
  /// install and the queue pop happen in the same lock hold, so readers
  /// never see an imm and its L0 table at once (merge operands would
  /// double-apply).
  Status flush_front_(UniqueLock& lock, bool unlocked_io)
      GEKKO_REQUIRES(mutex_);
  /// Build one L0 table from a sealed memtable. Pure file I/O — no DB
  /// state touched, safe to run with or without the lock.
  Result<FileEntry> build_l0_(const MemTable& mem, std::uint64_t file_no);
  /// Level with compaction debt whose input/output levels are idle;
  /// -1 when there is nothing runnable right now.
  [[nodiscard]] int pick_compaction_level_locked_() const
      GEKKO_REQUIRES(mutex_);
  /// Compact `level` into level+1. Caller guarantees both levels are
  /// idle; the level-busy flags serialize compactions per level pair
  /// while allowing disjoint pairs (and flushes) to run concurrently.
  Status compact_level_(int level, UniqueLock& lock, bool unlocked_io)
      GEKKO_REQUIRES(mutex_);
  void update_slowdown_locked_() GEKKO_REQUIRES(mutex_);
  /// Soft backpressure: sleep once (outside the lock) when the pipeline
  /// is near saturation.
  void throttle_();
  Status lookup_locked_(std::string_view key, std::uint64_t snap,
                        LookupResult* lr) GEKKO_REQUIRES(mutex_);
  void worker_loop_();
  void fail_background_locked_(const Status& st) GEKKO_REQUIRES(mutex_);
  void release_snapshot_(std::uint64_t seq);
  [[nodiscard]] std::uint64_t oldest_snapshot_locked_() const
      GEKKO_REQUIRES(mutex_);
  Result<std::string> fold_merges_(std::string_view key,
                                   const LookupResult& lr) const;
  Status get_internal_(std::string_view key, std::uint64_t snap,
                       LookupResult* lr);

  std::filesystem::path dir_;
  Options options_;

  mutable Mutex mutex_{"kv.db", lockdep::rank::kKvDb};
  CondVar work_cv_;  // wakes the background workers
  CondVar done_cv_;  // signals flush/compaction done
  std::shared_ptr<MemTable> mem_ GEKKO_GUARDED_BY(mutex_);
  /// Sealed memtables, oldest first. Flushes drain strictly from the
  /// front (one at a time) so L0 file numbers preserve recency order.
  std::deque<ImmTable> imms_ GEKKO_GUARDED_BY(mutex_);
  std::optional<WalWriter> wal_ GEKKO_GUARDED_BY(mutex_);
  VersionSet versions_ GEKKO_GUARDED_BY(mutex_);
  std::multiset<std::uint64_t> active_snapshots_ GEKKO_GUARDED_BY(mutex_);

  std::vector<std::thread> workers_;
  bool shutting_down_ GEKKO_GUARDED_BY(mutex_) = false;
  bool background_error_set_ GEKKO_GUARDED_BY(mutex_) = false;
  Status background_error_ GEKKO_GUARDED_BY(mutex_) = Status::ok();
  bool flush_in_progress_ GEKKO_GUARDED_BY(mutex_) = false;
  /// True while a compaction has this level as input or output.
  bool level_busy_[kNumLevels] GEKKO_GUARDED_BY(mutex_) = {};
  int compactions_running_ GEKKO_GUARDED_BY(mutex_) = 0;

  /// Flush/compaction/WAL/stall tallies, mutated only under mutex_ (the
  /// level_* and memtable fields are recomputed by stats()).
  mutable DbStats stats_ GEKKO_GUARDED_BY(mutex_);
  /// Per-op counters bumped OUTSIDE mutex_ — put()/get() return after
  /// dropping the DB lock and must not re-take it to count. These were
  /// plain DbStats fields once: incrementing them unlocked while
  /// stats() read them under the lock was a data race (found by the
  /// annotation-pass PR; regression-tested in kv_test).
  struct OpCounters {
    std::atomic<std::uint64_t> puts{0};
    std::atomic<std::uint64_t> gets{0};
    std::atomic<std::uint64_t> deletes{0};
    std::atomic<std::uint64_t> merges{0};
    std::atomic<std::uint64_t> stall_slowdowns{0};
    std::atomic<std::uint64_t> stall_slowdown_us{0};
  };
  mutable OpCounters ops_;
  /// Writers read this before taking mutex_; set under the lock on
  /// every pipeline-state transition.
  std::atomic<bool> slowdown_active_{false};
};

}  // namespace gekko::kv
