// The LSM key-value store facade (RocksDB stand-in).
//
// One DB instance backs one GekkoFS daemon's metadata. Guarantees:
//  - atomic WriteBatch commits through a WAL,
//  - strongly consistent point reads (read-your-writes),
//  - snapshot-isolated scans,
//  - merge operators for contention-free size updates,
//  - leveled background compaction.
// relaxed-ok: the per-op counters (puts/gets/deletes/merges) are
// standalone tallies bumped outside mutex_ on purpose (the get/put hot
// path must not re-take the DB lock just to count); stats() folds them
// into the locked snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "kv/iterator.h"
#include "kv/memtable.h"
#include "kv/options.h"
#include "kv/version.h"
#include "kv/wal.h"
#include "kv/write_batch.h"

namespace gekko::kv {

struct DbStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t deletes = 0;
  std::uint64_t merges = 0;
  std::uint64_t flushes = 0;
  std::uint64_t compactions = 0;
  std::uint64_t wal_appends = 0;
  std::uint64_t wal_syncs = 0;
  std::uint64_t level_files[kNumLevels] = {};
  std::uint64_t level_bytes[kNumLevels] = {};
  std::size_t memtable_bytes = 0;
};

class DB;

/// RAII snapshot handle: pins a sequence number against compaction GC.
class Snapshot {
 public:
  ~Snapshot();
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;
  [[nodiscard]] std::uint64_t sequence() const noexcept { return seq_; }

 private:
  friend class DB;
  Snapshot(DB* db, std::uint64_t seq) : db_(db), seq_(seq) {}
  DB* db_;
  std::uint64_t seq_;
};

class DB {
 public:
  static Result<std::unique_ptr<DB>> open(const std::filesystem::path& dir,
                                          Options options);
  ~DB();

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  // -- writes ------------------------------------------------------------
  Status put(std::string_view key, std::string_view value,
             const WriteOptions& wo = {});
  Status erase(std::string_view key, const WriteOptions& wo = {});
  Status merge(std::string_view key, std::string_view operand,
               const WriteOptions& wo = {});
  Status write(const WriteBatch& batch, const WriteOptions& wo = {});

  /// put-if-absent, atomic w.r.t. other writers. Errc::exists if present.
  /// This is the GekkoFS create(): a single KV insert replaces directory
  /// entry + inode allocation of a traditional FS.
  Status insert(std::string_view key, std::string_view value,
                const WriteOptions& wo = {});

  /// delete-if-present. Errc::not_found if absent.
  Status remove_existing(std::string_view key, const WriteOptions& wo = {});

  // -- reads -------------------------------------------------------------
  Result<std::string> get(std::string_view key, const ReadOptions& ro = {});
  /// true/false without copying the value (stat-style existence check).
  Result<bool> contains(std::string_view key, const ReadOptions& ro = {});

  /// Ordered scan of user keys in [start, end) (end empty = unbounded),
  /// at a consistent snapshot. fn returns false to stop early.
  Status scan(std::string_view start, std::string_view end,
              const std::function<bool(std::string_view key,
                                       std::string_view value)>& fn,
              const ReadOptions& ro = {});

  /// Prefix scan convenience (GekkoFS readdir: scan "/dir/").
  Status scan_prefix(std::string_view prefix,
                     const std::function<bool(std::string_view,
                                              std::string_view)>& fn,
                     const ReadOptions& ro = {});

  /// Count keys in [start, end) — used by tests and df-style stats.
  Result<std::uint64_t> count_range(std::string_view start,
                                    std::string_view end);

  // -- management ---------------------------------------------------------
  std::shared_ptr<Snapshot> snapshot();
  /// Force memtable flush (and wait for it).
  Status flush();
  /// Run compactions until no level is over threshold.
  Status compact_all();
  [[nodiscard]] DbStats stats() const;
  [[nodiscard]] const Options& options() const { return options_; }

 private:
  friend class Snapshot;

  DB(std::filesystem::path dir, Options options);

  Status recover_();
  Status write_locked_(const WriteBatch& batch, bool sync, UniqueLock& lock)
      GEKKO_REQUIRES(mutex_);
  Status maybe_switch_memtable_(UniqueLock& lock) GEKKO_REQUIRES(mutex_);
  Status flush_imm_locked_(UniqueLock& lock) GEKKO_REQUIRES(mutex_);
  Status maybe_compact_locked_(UniqueLock& lock) GEKKO_REQUIRES(mutex_);
  Status compact_level_locked_(int level, UniqueLock& lock)
      GEKKO_REQUIRES(mutex_);
  void background_loop_();
  void release_snapshot_(std::uint64_t seq);
  [[nodiscard]] std::uint64_t oldest_snapshot_locked_() const
      GEKKO_REQUIRES(mutex_);
  Result<std::string> fold_merges_(std::string_view key,
                                   const LookupResult& lr) const;
  Status get_internal_(std::string_view key, std::uint64_t snap,
                       LookupResult* lr);

  std::filesystem::path dir_;
  Options options_;

  mutable Mutex mutex_{"kv.db", lockdep::rank::kKvDb};
  CondVar work_cv_;  // wakes the background thread
  CondVar done_cv_;  // signals flush/compaction done
  std::shared_ptr<MemTable> mem_ GEKKO_GUARDED_BY(mutex_);
  std::shared_ptr<MemTable> imm_
      GEKKO_GUARDED_BY(mutex_);  // being flushed (may be null)
  std::optional<WalWriter> wal_ GEKKO_GUARDED_BY(mutex_);
  VersionSet versions_ GEKKO_GUARDED_BY(mutex_);
  std::multiset<std::uint64_t> active_snapshots_ GEKKO_GUARDED_BY(mutex_);

  std::thread background_;
  bool shutting_down_ GEKKO_GUARDED_BY(mutex_) = false;
  bool background_error_set_ GEKKO_GUARDED_BY(mutex_) = false;
  Status background_error_ GEKKO_GUARDED_BY(mutex_) = Status::ok();

  /// Flush/compaction/WAL tallies, mutated only under mutex_ (the
  /// level_* and memtable fields are recomputed by stats()).
  mutable DbStats stats_ GEKKO_GUARDED_BY(mutex_);
  /// Per-op counters bumped OUTSIDE mutex_ — put()/get() return after
  /// dropping the DB lock and must not re-take it to count. These were
  /// plain DbStats fields once: incrementing them unlocked while
  /// stats() read them under the lock was a data race (found by this
  /// PR's annotation pass; regression-tested in kv_test).
  struct OpCounters {
    std::atomic<std::uint64_t> puts{0};
    std::atomic<std::uint64_t> gets{0};
    std::atomic<std::uint64_t> deletes{0};
    std::atomic<std::uint64_t> merges{0};
  };
  mutable OpCounters ops_;
};

}  // namespace gekko::kv
