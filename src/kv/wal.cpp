#include "kv/wal.h"

#include <cstring>
#include <vector>

#include "common/codec.h"
#include "common/crc32.h"
#include "common/logging.h"
#include "common/trace.h"

namespace gekko::kv {

namespace {
constexpr std::size_t kHeaderSize = 4 + 4 + 8;  // crc, len, seq
}

Result<WalWriter> WalWriter::create(const std::filesystem::path& path) {
  auto file = io::WritableFile::create(path);
  if (!file) return file.status();
  WalWriter w;
  w.file_ = std::move(*file);
  return w;
}

Status WalWriter::append(SequenceNumber first_seq,
                         std::string_view batch_bytes, bool sync) {
  // Traced touch point: a slow metadata op shows whether the WAL
  // append (and its optional fsync) is the culprit.
  trace::ScopedSpan span(metrics::Tracer::global(), "kv.wal.append");
  std::vector<std::uint8_t> header(kHeaderSize);
  const auto len = static_cast<std::uint32_t>(batch_bytes.size());

  // CRC covers length, seq, and payload.
  std::uint32_t crc = crc32c(&len, sizeof(len));
  crc = crc32c(&first_seq, sizeof(first_seq), crc);
  crc = crc32c(batch_bytes, crc);
  const std::uint32_t masked = mask_crc(crc);

  std::memcpy(header.data(), &masked, 4);
  std::memcpy(header.data() + 4, &len, 4);
  std::memcpy(header.data() + 8, &first_seq, 8);

  GEKKO_RETURN_IF_ERROR(file_.append(header));
  GEKKO_RETURN_IF_ERROR(file_.append(batch_bytes));
  if (sync) return file_.sync();
  return file_.flush();
}

Result<WalRecoveryStats> wal_recover(
    const std::filesystem::path& path,
    const std::function<Status(SequenceNumber, std::string_view)>& fn) {
  WalRecoveryStats stats;
  auto file = io::RandomAccessFile::open(path);
  if (!file) {
    if (file.code() == Errc::not_found) return stats;  // fresh DB
    return file.status();
  }

  std::uint64_t offset = 0;
  std::vector<std::uint8_t> header(kHeaderSize);
  std::vector<std::uint8_t> payload;

  while (offset + kHeaderSize <= file->size()) {
    // Short reads (the file shrank under us, or size() overstated a
    // torn tail) are tail corruption like any other truncated record:
    // everything already applied is durable, the rest is discarded.
    // Only a clean read of a record that then fails the callback is a
    // hard recovery error.
    if (Status st = file->read_exact(offset, header); !st.is_ok()) {
      stats.tail_corruption = true;
      GEKKO_WARN("kv.wal") << "short header read at offset " << offset
                           << ": " << st.to_string() << "; discarding tail";
      break;
    }
    std::uint32_t masked, len;
    SequenceNumber seq;
    std::memcpy(&masked, header.data(), 4);
    std::memcpy(&len, header.data() + 4, 4);
    std::memcpy(&seq, header.data() + 8, 8);

    // The length is untrusted until the CRC passes — and the CRC needs
    // the payload, which is sized by the length. Bound the allocation
    // FIRST: a record claiming more than kMaxWalRecordBytes (or more
    // than the file holds) is corruption, never a reason to allocate.
    if (len > kMaxWalRecordBytes) {
      stats.tail_corruption = true;
      GEKKO_WARN("kv.wal") << "record at offset " << offset << " claims "
                           << len << " payload bytes (cap "
                           << kMaxWalRecordBytes << "); discarding tail";
      break;
    }
    if (offset + kHeaderSize + len > file->size()) {
      stats.tail_corruption = true;  // torn write at the tail
      break;
    }
    payload.resize(len);
    if (len > 0) {
      if (Status st = file->read_exact(offset + kHeaderSize, payload);
          !st.is_ok()) {
        stats.tail_corruption = true;
        GEKKO_WARN("kv.wal") << "short payload read at offset " << offset
                             << ": " << st.to_string()
                             << "; discarding tail";
        break;
      }
    }

    std::uint32_t crc = crc32c(&len, sizeof(len));
    crc = crc32c(&seq, sizeof(seq), crc);
    crc = crc32c(payload.data(), payload.size(), crc);
    if (mask_crc(crc) != masked) {
      stats.tail_corruption = true;
      GEKKO_WARN("kv.wal") << "crc mismatch at offset " << offset
                           << "; discarding tail";
      break;
    }

    GEKKO_RETURN_IF_ERROR(
        fn(seq, std::string_view(reinterpret_cast<const char*>(payload.data()),
                                 payload.size())));
    ++stats.records_applied;
    stats.bytes_applied += kHeaderSize + len;
    offset += kHeaderSize + len;
  }
  if (offset < file->size() && !stats.tail_corruption) {
    stats.tail_corruption = true;  // trailing partial header
  }
  return stats;
}

}  // namespace gekko::kv
