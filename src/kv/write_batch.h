// Atomic multi-op write batch, serialized as the WAL payload.
//
// Format: [count u32] then per op: [type u8][key str][value str?]
// (strings are varint-length-prefixed; deletions carry no value).
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "kv/internal_key.h"

namespace gekko::kv {

class WriteBatch {
 public:
  void put(std::string_view key, std::string_view value);
  void erase(std::string_view key);
  void merge(std::string_view key, std::string_view operand);
  void clear();

  [[nodiscard]] std::uint32_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    return rep_;
  }
  [[nodiscard]] std::size_t approximate_size() const noexcept {
    return rep_.size();
  }

  /// Replay ops in insertion order. Used both to apply to the memtable
  /// and to recover from the WAL.
  using OpFn = std::function<void(ValueType, std::string_view key,
                                  std::string_view value)>;
  Status for_each(const OpFn& fn) const;

  /// Reconstruct from serialized bytes (WAL recovery).
  static Result<WriteBatch> from_bytes(std::string_view bytes);

 private:
  void append_op_(ValueType t, std::string_view key, std::string_view value,
                  bool has_value);

  std::vector<std::uint8_t> rep_;
  std::uint32_t count_ = 0;
};

}  // namespace gekko::kv
