// Write-ahead log.
//
// Record framing: [masked crc32c u32][length u32][seq u64][payload]
// where payload is a serialized WriteBatch and seq is the sequence
// number assigned to the batch's first op. Recovery replays records in
// order and stops cleanly at the first truncated or corrupt record
// (torn tail after a crash) — everything before it is durable.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string_view>

#include "common/fileio.h"
#include "common/result.h"
#include "kv/internal_key.h"

namespace gekko::kv {

class WalWriter {
 public:
  static Result<WalWriter> create(const std::filesystem::path& path);

  /// Append one batch record. When `sync`, fdatasync before returning.
  Status append(SequenceNumber first_seq, std::string_view batch_bytes,
                bool sync);

  Status close() { return file_.close(); }
  [[nodiscard]] std::uint64_t size() const noexcept { return file_.size(); }

 private:
  io::WritableFile file_;
};

/// Sanity bound on one record's payload. The length field is a u32
/// read from a possibly-corrupt header; without a cap a flipped high
/// bit turns recovery into a 4 GiB allocation. Batches are bounded by
/// the memtable switch threshold (MiBs), so anything near this limit
/// is corruption, not data.
inline constexpr std::uint32_t kMaxWalRecordBytes = 64u << 20;

struct WalRecoveryStats {
  std::uint64_t records_applied = 0;
  std::uint64_t bytes_applied = 0;
  bool tail_corruption = false;  // stopped early at a bad record
};

/// Replay all intact records: fn(first_seq, batch_bytes).
/// A missing WAL file is not an error (fresh DB): zero records applied.
Result<WalRecoveryStats> wal_recover(
    const std::filesystem::path& path,
    const std::function<Status(SequenceNumber, std::string_view)>& fn);

}  // namespace gekko::kv
