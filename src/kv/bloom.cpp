#include "kv/bloom.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace gekko::kv {

BloomFilterBuilder::BloomFilterBuilder(int bits_per_key)
    : bits_per_key_(std::max(1, bits_per_key)) {
  // k = bits_per_key * ln(2), clamped to [1, 30].
  k_ = std::clamp(static_cast<int>(bits_per_key_ * 0.69), 1, 30);
}

std::uint64_t BloomFilterBuilder::hash_(std::string_view key) noexcept {
  return xxhash64(key, /*seed=*/0xb100f11e7ULL);
}

std::string BloomFilterBuilder::finish() {
  if (hashes_.empty()) return {};
  std::size_t bits = hashes_.size() * static_cast<std::size_t>(bits_per_key_);
  bits = std::max<std::size_t>(bits, 64);
  const std::size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  std::string filter(bytes, '\0');
  for (const std::uint64_t h : hashes_) {
    const std::uint64_t h1 = h;
    const std::uint64_t h2 = (h >> 17) | (h << 47);  // rotated second hash
    for (int i = 0; i < k_; ++i) {
      const std::uint64_t bit =
          (h1 + static_cast<std::uint64_t>(i) * h2) % bits;
      filter[bit / 8] |= static_cast<char>(1u << (bit % 8));
    }
  }
  filter.push_back(static_cast<char>(k_));
  return filter;
}

bool bloom_may_contain(std::string_view filter, std::string_view user_key) {
  if (filter.size() < 2) return true;  // absent/degenerate filter
  const std::size_t bytes = filter.size() - 1;
  const std::size_t bits = bytes * 8;
  const int k = static_cast<std::uint8_t>(filter.back());
  if (k <= 0 || k > 30) return true;

  const std::uint64_t h = BloomFilterBuilder::hash_(user_key);
  const std::uint64_t h1 = h;
  const std::uint64_t h2 = (h >> 17) | (h << 47);
  for (int i = 0; i < k; ++i) {
    const std::uint64_t bit = (h1 + static_cast<std::uint64_t>(i) * h2) % bits;
    if ((static_cast<std::uint8_t>(filter[bit / 8]) & (1u << (bit % 8))) ==
        0) {
      return false;
    }
  }
  return true;
}

}  // namespace gekko::kv
