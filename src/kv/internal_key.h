// Internal key encoding: user_key | trailer(8B) where
// trailer = (sequence << 8) | value_type, stored little-endian.
//
// Ordering: user key ascending, then sequence DESCENDING (newest first),
// then type descending — identical to LevelDB/RocksDB so iterators see
// the newest visible version of each user key first.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace gekko::kv {

enum class ValueType : std::uint8_t {
  deletion = 0,
  value = 1,
  merge = 2,
};

using SequenceNumber = std::uint64_t;

inline constexpr SequenceNumber kMaxSequence =
    (1ULL << 56) - 1;  // 7 bytes of sequence space

inline std::uint64_t pack_trailer(SequenceNumber seq, ValueType t) noexcept {
  return (seq << 8) | static_cast<std::uint64_t>(t);
}

inline SequenceNumber trailer_sequence(std::uint64_t trailer) noexcept {
  return trailer >> 8;
}

inline ValueType trailer_type(std::uint64_t trailer) noexcept {
  return static_cast<ValueType>(trailer & 0xff);
}

/// Append the 8-byte trailer to `dst`.
inline void append_trailer(std::string& dst, SequenceNumber seq,
                           ValueType t) {
  const std::uint64_t trailer = pack_trailer(seq, t);
  char buf[8];
  std::memcpy(buf, &trailer, 8);
  dst.append(buf, 8);
}

inline std::string make_internal_key(std::string_view user_key,
                                     SequenceNumber seq, ValueType t) {
  std::string k;
  k.reserve(user_key.size() + 8);
  k.append(user_key);
  append_trailer(k, seq, t);
  return k;
}

/// A "lookup key": the largest internal key visible at `seq` for
/// `user_key` under internal ordering (seq descending).
inline std::string make_lookup_key(std::string_view user_key,
                                   SequenceNumber seq) {
  return make_internal_key(user_key, seq, ValueType::merge);
}

inline std::string_view extract_user_key(std::string_view internal) noexcept {
  return internal.substr(0, internal.size() - 8);
}

inline std::uint64_t extract_trailer(std::string_view internal) noexcept {
  std::uint64_t trailer;
  std::memcpy(&trailer, internal.data() + internal.size() - 8, 8);
  return trailer;
}

/// Internal-key comparator: user key asc, trailer (seq|type) desc.
inline int compare_internal(std::string_view a, std::string_view b) noexcept {
  const std::string_view ua = extract_user_key(a);
  const std::string_view ub = extract_user_key(b);
  if (int c = ua.compare(ub); c != 0) return c < 0 ? -1 : 1;
  const std::uint64_t ta = extract_trailer(a);
  const std::uint64_t tb = extract_trailer(b);
  if (ta > tb) return -1;  // higher seq sorts first
  if (ta < tb) return 1;
  return 0;
}

}  // namespace gekko::kv
