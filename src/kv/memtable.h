// relaxed-ok: approximate_bytes is a monotone size estimate used for
// flush heuristics; writers publish entries via the skiplist, not this
// counter.
// Memtable: skiplist of internal keys with visibility-aware point reads.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "kv/internal_key.h"
#include "kv/skiplist.h"

namespace gekko::kv {

/// Outcome of a point lookup in one LSM component.
enum class LookupState {
  not_present,  // keep searching older components
  found,        // value is final
  deleted,      // tombstone: stop searching, key absent
};

struct LookupResult {
  LookupState state = LookupState::not_present;
  std::string value;  // valid when state == found
  /// Merge operands collected newest-first while descending components.
  /// Lookup continues past merges until a base value/deletion/bottom.
  std::vector<std::string> pending_merges;
};

class MemTable {
 public:
  MemTable() = default;

  /// Insert one op. Called with the DB write mutex held.
  void add(SequenceNumber seq, ValueType type, std::string_view user_key,
           std::string_view value) {
    list_.insert(make_internal_key(user_key, seq, type), value);
    approx_bytes_.fetch_add(user_key.size() + value.size() + 16,
                            std::memory_order_relaxed);
  }

  /// Point lookup visible at `snapshot_seq`. Appends any merge operands
  /// (newest first) to `result.pending_merges` and sets state if a base
  /// value or tombstone is found.
  void get(std::string_view user_key, SequenceNumber snapshot_seq,
           LookupResult* result) const {
    SkipList::Iterator it(&list_);
    it.seek(make_lookup_key(user_key, snapshot_seq));
    while (it.valid()) {
      const std::string_view ikey = it.key();
      if (extract_user_key(ikey) != user_key) break;
      const std::uint64_t trailer = extract_trailer(ikey);
      if (trailer_sequence(trailer) > snapshot_seq) {
        it.next();  // newer than our snapshot; skip
        continue;
      }
      switch (trailer_type(trailer)) {
        case ValueType::value:
          result->state = LookupState::found;
          result->value = it.value();
          return;
        case ValueType::deletion:
          result->state = LookupState::deleted;
          return;
        case ValueType::merge:
          result->pending_merges.emplace_back(it.value());
          it.next();
          continue;
      }
    }
    // state stays not_present; merges (if any) continue in older parts.
  }

  [[nodiscard]] std::size_t approximate_bytes() const noexcept {
    return approx_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t entry_count() const noexcept {
    return list_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return list_.size() == 0; }

  [[nodiscard]] SkipList::Iterator iterator() const {
    return SkipList::Iterator(&list_);
  }

 private:
  SkipList list_;
  std::atomic<std::size_t> approx_bytes_{0};
};

}  // namespace gekko::kv
